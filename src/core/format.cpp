#include "core/format.hpp"

#include <cstring>
#include <fstream>

#include "core/bytesio.hpp"
#include "util/hash.hpp"

namespace parhuff {

namespace {
// Two live container versions (docs/format.md). "PHF2" is the original
// layout and is still what gets written whenever a stream carries no
// optional metadata — byte-identical to every container the seed wrote.
// "PHF3" appends a tagged optional-field region after the stream section;
// readers skip tags they do not understand, so future fields never force
// another magic bump (the version-bump rule).
constexpr char kMagicV2[4] = {'P', 'H', 'F', '2'};
constexpr char kMagicV3[4] = {'P', 'H', 'F', '3'};
constexpr u32 kMaxOptionalFields = 64;

/// GAP1 field payload: u32 subseq_bits | u64 n | u8 gaps[n] | u16 counts[n].
std::vector<u8> serialize_gap_field(const EncodedStream& s) {
  ByteWriter w;
  w.put<u32>(s.gap_subseq_bits);
  w.put<u64>(static_cast<u64>(s.gaps.size()));
  w.put_array(std::span<const u8>(s.gaps));
  w.put_array(std::span<const u16>(s.gap_counts));
  return w.take();
}

/// Parse + validate a GAP1 payload against the already-deserialized stream
/// geometry. Entry count and bounds are checked BEFORE the arrays are
/// materialized; the decoder re-validates per-chunk count sums on use.
void parse_gap_field(std::span<const u8> payload, EncodedStream& s) {
  ByteReader r(payload);
  const u32 subseq = r.get<u32>();
  if (subseq < 64 || subseq > 32768) {
    throw std::runtime_error(
        "parhuff container: gap subsequence size out of range");
  }
  const u64 n = r.get<u64>();
  u64 expect = 0;
  for (std::size_t c = 0; c < s.chunks(); ++c) {
    if (s.chunk_bits[c] != 0) expect += (s.chunk_bits[c] + subseq - 1) / subseq;
  }
  if (n != expect) {
    throw std::runtime_error("parhuff container: gap metadata count mismatch");
  }
  s.gap_subseq_bits = subseq;
  s.gaps = r.get_array<u8>(static_cast<std::size_t>(n));
  s.gap_counts = r.get_array<u16>(static_cast<std::size_t>(n));
  if (!r.done()) {
    throw std::runtime_error("parhuff container: gap field trailing bytes");
  }
  for (std::size_t i = 0; i < s.gaps.size(); ++i) {
    if (s.gaps[i] == EncodedStream::kNoGap) {
      if (s.gap_counts[i] != 0) {
        throw std::runtime_error(
            "parhuff container: gap sentinel with nonzero count");
      }
    } else if (s.gaps[i] >= subseq) {
      throw std::runtime_error("parhuff container: gap exceeds subsequence");
    }
  }
}

/// RLE1 field payload: u32 run_symbol | u64 orig_symbols | u64 n_runs |
/// u64 pos[n_runs] | u32 len[n_runs].
std::vector<u8> serialize_rle_field(const EncodedStream& s) {
  ByteWriter w;
  w.put<u32>(s.rle_symbol);
  w.put<u64>(s.rle_orig_symbols);
  w.put<u64>(static_cast<u64>(s.rle_run_pos.size()));
  w.put_array(std::span<const u64>(s.rle_run_pos));
  w.put_array(std::span<const u32>(s.rle_run_len));
  return w.take();
}

/// Parse + validate an RLE1 payload against the already-deserialized
/// stream. Every structural invariant — ascending non-overlapping runs,
/// in-range extents, the exact residual + runs == original symbol-count
/// balance — is an enforced check here, not a decoder-side assert: a
/// forged field must fail typed before rle_expand ever touches it.
void parse_rle_field(std::span<const u8> payload, EncodedStream& s) {
  ByteReader r(payload);
  const u32 run_symbol = r.get<u32>();
  const u64 orig = r.get<u64>();
  if (orig == 0) {
    throw std::runtime_error("parhuff container: rle with zero originals");
  }
  const u64 n_runs = r.get<u64>();
  // Every run removes >= 1 symbol and the residual stream is never empty
  // (the accumulator guarantees it), so n_runs is strictly below orig.
  if (n_runs >= orig) {
    throw std::runtime_error("parhuff container: rle run count range");
  }
  std::vector<u64> pos = r.get_array<u64>(static_cast<std::size_t>(n_runs));
  std::vector<u32> len = r.get_array<u32>(static_cast<std::size_t>(n_runs));
  if (!r.done()) {
    throw std::runtime_error("parhuff container: rle field trailing bytes");
  }
  u64 removed = 0;
  u64 next_free = 0;  // first original index not covered by earlier runs
  for (std::size_t k = 0; k < pos.size(); ++k) {
    if (len[k] == 0) {
      throw std::runtime_error("parhuff container: rle zero-length run");
    }
    // Subtraction forms: pos + len could wrap for forged values near 2^64.
    if (pos[k] < next_free || pos[k] > orig ||
        static_cast<u64>(len[k]) > orig - pos[k]) {
      throw std::runtime_error("parhuff container: rle run out of range");
    }
    next_free = pos[k] + len[k];
    removed += len[k];
  }
  if (removed + static_cast<u64>(s.n_symbols) != orig) {
    throw std::runtime_error("parhuff container: rle symbol-count mismatch");
  }
  s.rle_symbol = run_symbol;
  s.rle_orig_symbols = orig;
  s.rle_run_pos = std::move(pos);
  s.rle_run_len = std::move(len);
}
}  // namespace

// --- Codebook section. --------------------------------------------------------

std::vector<u8> serialize_codebook(const Codebook& cb) {
  ByteWriter w;
  w.put<u8>(static_cast<u8>(cb.max_len));
  w.put<u32>(cb.nbins);
  std::vector<u8> lens(cb.nbins, 0);
  for (u32 i = 0; i < cb.nbins; ++i) lens[i] = cb.cw[i].len;
  w.put_array(std::span<const u8>(lens));
  w.put<u32>(static_cast<u32>(cb.sorted_syms.size()));
  w.put_array(std::span<const u32>(cb.sorted_syms));
  return w.take();
}

Codebook deserialize_codebook(std::span<const u8> bytes,
                              std::size_t* consumed) {
  ByteReader r(bytes);
  const u8 max_len = r.get<u8>();
  const u32 nbins = r.get<u32>();
  if (nbins == 0 || nbins > (u32{1} << 24)) {
    throw std::runtime_error("parhuff container: implausible nbins");
  }
  const std::vector<u8> lens = r.get_array<u8>(nbins);
  const u32 n_present = r.get<u32>();
  std::vector<u32> sorted_syms = r.get_array<u32>(n_present);

  // Rebuild canonical metadata from the lengths, then graft the stored
  // reverse-table order and rederive the forward table from it.
  Codebook cb = canonize_from_lengths(lens);
  if (cb.sorted_syms.size() != n_present) {
    throw std::runtime_error("parhuff container: reverse table size");
  }
  if (cb.max_len != max_len) {
    throw std::runtime_error("parhuff container: max_len mismatch");
  }
  for (const u32 sym : sorted_syms) {
    if (sym >= nbins || lens[sym] == 0) {
      throw std::runtime_error("parhuff container: invalid reverse entry");
    }
  }
  cb.sorted_syms = std::move(sorted_syms);
  for (unsigned l = 1; l <= cb.max_len; ++l) {
    for (u32 i = 0; i < cb.count[l]; ++i) {
      const u32 sym = cb.sorted_syms[cb.entry[l] + i];
      if (lens[sym] != l) {
        throw std::runtime_error("parhuff container: reverse order invalid");
      }
      cb.cw[sym] = Codeword{cb.first[l] + i, static_cast<u8>(l)};
    }
  }
  const std::string err = cb.validate();
  if (!err.empty()) {
    throw std::runtime_error("parhuff container: codebook invalid: " + err);
  }
  if (consumed) *consumed = r.position();
  return cb;
}

// --- Stream section. -----------------------------------------------------------

std::vector<u8> serialize_stream(const EncodedStream& s) {
  ByteWriter w;
  w.put<u64>(static_cast<u64>(s.n_symbols));
  w.put<u32>(s.chunk_symbols);
  w.put<u32>(s.reduce_factor);
  w.put<u8>(s.chunk_reduce.empty() ? 0 : 1);
  w.put<u32>(static_cast<u32>(s.chunk_bits.size()));
  w.put_array(std::span<const u64>(s.chunk_bits));
  if (!s.chunk_reduce.empty()) {
    w.put_array(std::span<const u8>(s.chunk_reduce));
  }
  w.put<u64>(static_cast<u64>(s.payload.size()));
  w.put_array(std::span<const word_t>(s.payload));
  w.put<u32>(static_cast<u32>(s.overflow.size()));
  for (const OverflowEntry& e : s.overflow) {
    w.put<u32>(e.chunk);
    w.put<u32>(e.group);
    w.put<u64>(e.bit_offset);
    w.put<u32>(e.bit_len);
    w.put<u32>(e.n_symbols);
  }
  w.put<u64>(static_cast<u64>(s.overflow_payload.size()));
  w.put<u64>(s.overflow_bits);
  w.put_array(std::span<const word_t>(s.overflow_payload));
  // Integrity checksum over everything above.
  auto body = w.take();
  const u64 digest = fnv1a(body);
  ByteWriter tail;
  tail.put_bytes(body);
  tail.put<u64>(digest);
  return tail.take();
}

EncodedStream deserialize_stream(std::span<const u8> bytes,
                                 std::size_t* consumed) {
  ByteReader r(bytes);
  EncodedStream s;
  s.n_symbols = static_cast<std::size_t>(r.get<u64>());
  s.chunk_symbols = r.get<u32>();
  s.reduce_factor = r.get<u32>();
  if (s.chunk_symbols == 0) {
    throw std::runtime_error("parhuff container: zero chunk size");
  }
  const bool per_chunk_reduce = r.get<u8>() != 0;
  const u32 n_chunks = r.get<u32>();
  const std::size_t expect_chunks =
      s.n_symbols == 0 ? 0
                       : (s.n_symbols + s.chunk_symbols - 1) / s.chunk_symbols;
  if (n_chunks != expect_chunks) {
    throw std::runtime_error("parhuff container: chunk count mismatch");
  }
  s.chunk_bits = r.get_array<u64>(n_chunks);
  // A chunk of N symbols can hold at most N * kMaxCodeLen main-stream bits;
  // bound with a round 64 bits/symbol. This is the check that makes the
  // rest of the layout arithmetic safe: without it a forged near-2^64
  // chunk_bits value wraps words_for_bits() to 0 cells, slips through the
  // payload size comparison below, and hands decoders a BitReader claiming
  // billions of bits over an empty span.
  for (const u64 cb : s.chunk_bits) {
    if (cb > static_cast<u64>(s.chunk_symbols) * 64) {
      throw std::runtime_error("parhuff container: implausible chunk bits");
    }
  }
  if (per_chunk_reduce) {
    s.chunk_reduce = r.get_array<u8>(n_chunks);
    for (const u8 cr : s.chunk_reduce) {
      if (cr == 0 || cr > 15) {
        throw std::runtime_error("parhuff container: bad per-chunk reduce");
      }
    }
  }
  const u64 payload_words = r.get<u64>();
  if (layout_chunks(s) != payload_words) {
    throw std::runtime_error("parhuff container: payload size mismatch");
  }
  s.payload = r.get_array<word_t>(static_cast<std::size_t>(payload_words));

  const u32 n_overflow = r.get<u32>();
  s.overflow.reserve(n_overflow);
  for (u32 i = 0; i < n_overflow; ++i) {
    OverflowEntry e;
    e.chunk = r.get<u32>();
    e.group = r.get<u32>();
    e.bit_offset = r.get<u64>();
    e.bit_len = r.get<u32>();
    e.n_symbols = r.get<u32>();
    if (e.chunk >= n_chunks) {
      throw std::runtime_error("parhuff container: overflow chunk range");
    }
    s.overflow.push_back(e);
  }
  const u64 ovf_words = r.get<u64>();
  s.overflow_bits = r.get<u64>();
  // Guard the multiplication: a forged word count near 2^64 would wrap
  // `ovf_words * kWordBits` and pass the bit-range check.
  if (ovf_words > ~u64{0} / kWordBits ||
      s.overflow_bits > ovf_words * kWordBits) {
    throw std::runtime_error("parhuff container: overflow bits range");
  }
  s.overflow_payload = r.get_array<word_t>(static_cast<std::size_t>(ovf_words));
  for (const OverflowEntry& e : s.overflow) {
    // Subtraction form: `bit_offset + bit_len` can wrap for a forged
    // offset near 2^64.
    if (e.bit_offset > s.overflow_bits ||
        e.bit_len > s.overflow_bits - e.bit_offset) {
      throw std::runtime_error("parhuff container: overflow entry range");
    }
  }
  const std::size_t body_end = r.position();
  const u64 stored = r.get<u64>();
  if (stored != fnv1a(bytes.subspan(0, body_end))) {
    throw std::runtime_error("parhuff container: checksum mismatch");
  }
  if (consumed) *consumed = r.position();
  return s;
}

// --- Whole container. -----------------------------------------------------------

template <typename Sym>
std::vector<u8> serialize(const Compressed<Sym>& blob) {
  ByteWriter w;
  const bool v3 = blob.stream.has_gaps() || blob.stream.has_rle();
  w.put_array(std::span<const char>(v3 ? kMagicV3 : kMagicV2, 4));
  w.put<u8>(static_cast<u8>(sizeof(Sym)));
  const auto cb = serialize_codebook(blob.codebook);
  w.put_bytes(cb);
  const auto st = serialize_stream(blob.stream);
  w.put_bytes(st);
  if (v3) {
    // Fields are written in tag-introduction order (GAP1 then RLE1), so a
    // gap-only container is byte-identical to what the previous revision
    // wrote (pinned by the golden tests).
    const auto put_field = [&w](u32 tag, const std::vector<u8>& field) {
      w.put<u32>(tag);
      w.put<u64>(static_cast<u64>(field.size()));
      w.put_bytes(field);
      w.put<u64>(fnv1a(field));
    };
    w.put<u32>(static_cast<u32>(blob.stream.has_gaps()) +
               static_cast<u32>(blob.stream.has_rle()));  // n_fields
    if (blob.stream.has_gaps()) {
      put_field(kContainerFieldGap, serialize_gap_field(blob.stream));
    }
    if (blob.stream.has_rle()) {
      put_field(kContainerFieldRle, serialize_rle_field(blob.stream));
    }
  }
  return w.take();
}

template <typename Sym>
Compressed<Sym> deserialize(std::span<const u8> bytes) {
  ByteReader r(bytes);
  const auto magic = r.get_array<char>(4);
  const bool v3 = std::memcmp(magic.data(), kMagicV3, 4) == 0;
  if (!v3 && std::memcmp(magic.data(), kMagicV2, 4) != 0) {
    throw std::runtime_error("parhuff container: bad magic");
  }
  const u8 sym_bytes = r.get<u8>();
  if (sym_bytes != sizeof(Sym)) {
    throw std::runtime_error("parhuff container: symbol width mismatch");
  }
  Compressed<Sym> blob;
  std::size_t used = 0;
  blob.codebook =
      deserialize_codebook(bytes.subspan(r.position()), &used);
  const std::size_t stream_at = r.position() + used;
  std::size_t stream_used = 0;
  blob.stream = deserialize_stream(bytes.subspan(stream_at), &stream_used);
  std::size_t at = stream_at + stream_used;
  if (v3) {
    // Optional-field region. Every field is length-prefixed and carries its
    // own checksum, so a reader can verify and skip fields whose tags it
    // does not understand — the fallback-to-self-sync semantics: a stream
    // whose GAP1 field was skipped simply decodes via the older tiers.
    ByteReader fr(bytes.subspan(at));
    const u32 n_fields = fr.get<u32>();
    if (n_fields > kMaxOptionalFields) {
      throw std::runtime_error(
          "parhuff container: implausible optional field count");
    }
    bool saw_gap = false, saw_rle = false;
    for (u32 i = 0; i < n_fields; ++i) {
      const u32 tag = fr.get<u32>();
      const u64 len = fr.get<u64>();
      const auto payload = fr.get_view(static_cast<std::size_t>(len));
      if (fr.get<u64>() != fnv1a(payload)) {
        throw std::runtime_error(
            "parhuff container: optional field checksum mismatch");
      }
      if (tag == kContainerFieldGap) {
        if (saw_gap) {
          throw std::runtime_error(
              "parhuff container: duplicate optional field");
        }
        saw_gap = true;
        parse_gap_field(payload, blob.stream);
      } else if (tag == kContainerFieldRle) {
        if (saw_rle) {
          throw std::runtime_error(
              "parhuff container: duplicate optional field");
        }
        saw_rle = true;
        parse_rle_field(payload, blob.stream);
      }
      // Unknown tag: verified, skipped.
    }
    at += fr.position();
  }
  if (at != bytes.size()) {
    throw std::runtime_error("parhuff container: trailing bytes");
  }
  return blob;
}

// --- Files. -----------------------------------------------------------------------

void write_file(const std::string& path, std::span<const u8> bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

std::vector<u8> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  const std::streamsize size = f.tellg();
  f.seekg(0);
  std::vector<u8> bytes(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!f) throw std::runtime_error("read failed: " + path);
  return bytes;
}

template std::vector<u8> serialize<u8>(const Compressed<u8>&);
template std::vector<u8> serialize<u16>(const Compressed<u16>&);
template Compressed<u8> deserialize<u8>(std::span<const u8>);
template Compressed<u16> deserialize<u16>(std::span<const u8>);

}  // namespace parhuff
