#include "core/tree.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace parhuff {

namespace {

struct Node {
  u64 freq;
  i32 left;   // child indices into the arena; -1 for leaves
  i32 right;
  i32 symbol; // original symbol for leaves, -1 for internal nodes
};

/// Depth-propagate lengths from the root with an explicit stack (codes can
/// be deep for adversarial frequency profiles, so no recursion).
void assign_depths(const std::vector<Node>& arena, i32 root,
                   std::vector<u8>& lens, u64* ops) {
  if (root < 0) return;
  std::vector<std::pair<i32, u32>> stack;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    if (ops) ++*ops;
    const Node& nd = arena[static_cast<std::size_t>(idx)];
    if (nd.symbol >= 0) {
      if (depth > kMaxCodeLen) throw std::runtime_error("code too long");
      // The single-symbol degenerate tree has depth 0; use 1 bit.
      lens[static_cast<std::size_t>(nd.symbol)] =
          static_cast<u8>(depth == 0 ? 1 : depth);
      continue;
    }
    stack.emplace_back(nd.left, depth + 1);
    stack.emplace_back(nd.right, depth + 1);
  }
}

}  // namespace

std::vector<u8> build_lengths_pq(std::span<const u64> freq,
                                 SerialBuildStats* stats) {
  std::vector<u8> lens(freq.size(), 0);
  std::vector<Node> arena;
  arena.reserve(freq.size() * 2);
  u64 ops = 0;

  using Entry = std::pair<u64, i32>;  // (freq, arena index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] == 0) continue;
    arena.push_back(Node{freq[s], -1, -1, static_cast<i32>(s)});
    heap.emplace(freq[s], static_cast<i32>(arena.size() - 1));
    ++ops;
  }
  if (heap.empty()) return lens;

  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    arena.push_back(Node{fa + fb, a, b, -1});
    heap.emplace(fa + fb, static_cast<i32>(arena.size() - 1));
    // Two pops + one push on a binary heap: ~3 log n dependent steps, plus
    // the node allocation. Count the actual comparisons approximately.
    u64 lg = 1;
    for (std::size_t sz = heap.size(); sz > 1; sz >>= 1) ++lg;
    ops += 3 * lg + 4;
  }
  assign_depths(arena, static_cast<i32>(arena.size() - 1), lens, &ops);
  if (stats) {
    stats->dependent_ops += ops;
    stats->tree_nodes += arena.size();
  }
  return lens;
}

std::vector<u8> build_lengths_twoqueue(std::span<const u64> freq,
                                       SerialBuildStats* stats) {
  std::vector<u8> lens(freq.size(), 0);
  u64 ops = 0;

  // Sort the present symbols by frequency (stable on symbol for determinism).
  std::vector<u32> order;
  order.reserve(freq.size());
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) order.push_back(static_cast<u32>(s));
  }
  if (order.empty()) return lens;
  if (order.size() == 1) {
    lens[order[0]] = 1;
    if (stats) stats->dependent_ops += 1;
    return lens;
  }
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
  });
  {
    u64 lg = 1;
    for (std::size_t sz = order.size(); sz > 1; sz >>= 1) ++lg;
    ops += order.size() * lg;  // sort cost on the serial critical path
  }

  const std::size_t m = order.size();
  // Flat arrays: leaf queue = sorted leaves; internal queue grows in
  // ascending order by construction (classic two-queue invariant).
  std::vector<u64> ifreq;      // internal node frequencies (FIFO)
  std::vector<i32> iparent;    // parent index within ifreq, -1 while root
  std::vector<i32> leaf_parent(m, -1);  // internal index each leaf melds into
  ifreq.reserve(m);
  iparent.reserve(m);

  std::size_t lhead = 0, ihead = 0;
  auto take_smallest = [&](bool& is_leaf) -> std::size_t {
    // Tie-break toward leaves: yields the flattest optimal tree, matching
    // the usual "package leaves before packages" convention.
    if (lhead < m &&
        (ihead >= ifreq.size() || freq[order[lhead]] <= ifreq[ihead])) {
      is_leaf = true;
      return lhead++;
    }
    is_leaf = false;
    return ihead++;
  };

  while ((m - lhead) + (ifreq.size() - ihead) > 1) {
    bool al, bl;
    const std::size_t a = take_smallest(al);
    const std::size_t b = take_smallest(bl);
    const u64 fa = al ? freq[order[a]] : ifreq[a];
    const u64 fb = bl ? freq[order[b]] : ifreq[b];
    const i32 parent = static_cast<i32>(ifreq.size());
    ifreq.push_back(fa + fb);
    iparent.push_back(-1);
    if (al) leaf_parent[a] = parent; else iparent[a] = parent;
    if (bl) leaf_parent[b] = parent; else iparent[b] = parent;
    ops += 8;
  }

  // Depth of each internal node = hops to the root; compute by walking the
  // parent chain from the back (parents always have larger indices, so a
  // reverse pass resolves each in O(1)).
  std::vector<u32> idepth(ifreq.size(), 0);
  for (std::size_t i = ifreq.size(); i-- > 0;) {
    if (iparent[i] >= 0) {
      idepth[i] = idepth[static_cast<std::size_t>(iparent[i])] + 1;
    }
    ++ops;
  }
  for (std::size_t l = 0; l < m; ++l) {
    const i32 p = leaf_parent[l];
    const u32 depth = (p >= 0 ? idepth[static_cast<std::size_t>(p)] : 0) + 1;
    if (depth > kMaxCodeLen) throw std::runtime_error("code too long");
    lens[order[l]] = static_cast<u8>(depth);
    ++ops;
  }
  if (stats) {
    stats->dependent_ops += ops;
    stats->tree_nodes += ifreq.size() + m;
  }
  return lens;
}

Codebook build_codebook_serial(std::span<const u64> freq,
                               SerialBuildStats* stats) {
  return canonize_from_lengths(build_lengths_twoqueue(freq, stats));
}

}  // namespace parhuff
