#pragma once
// Dense→sparse conversion (the cuSPARSE-substitute of §V-B2): breaking
// points are produced as a dense 0/1 mask over reduce groups; storing them
// requires the compact index list. Implemented as the classic
// count → exclusive scan → scatter kernel sequence.

#include <span>
#include <vector>

#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

/// Indices of nonzero mask entries, in ascending order.
[[nodiscard]] std::vector<u32> dense_to_sparse(std::span<const u8> mask,
                                               simt::MemTally* tally = nullptr);

}  // namespace parhuff
