#include "core/streaming.hpp"

#include <cstring>
#include <stdexcept>

#include "core/bytesio.hpp"
#include "core/decode.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/encode_simt.hpp"
#include "core/entropy.hpp"
#include "core/executor.hpp"
#include "core/format.hpp"
#include "core/histogram.hpp"
#include "core/par_codebook.hpp"
#include "core/tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simt/coop.hpp"
#include "util/fault_inject.hpp"

namespace parhuff {

namespace {
constexpr u32 kFrameMagic = 0x50485346u;  // "PHSF"
}  // namespace

template <typename Sym>
StreamingCompressor<Sym>::StreamingCompressor(PipelineConfig cfg)
    : cfg_(std::move(cfg)), freq_(cfg_.nbins, 0) {
  if (cfg_.nbins == 0) throw std::invalid_argument("nbins must be positive");
}

template <typename Sym>
void StreamingCompressor<Sym>::observe(std::span<const Sym> segment) {
  if (frozen_) {
    throw std::logic_error("StreamingCompressor: observe() after freeze()");
  }
  // Injection site fires before the histogram touches freq_, so a failed
  // observe() leaves the accumulated profile unchanged and retryable.
  util::FaultInjector::global().maybe_throw("streaming.observe");
  obs::TraceSpan span("streaming.observe", "streaming");
  obs::MetricsRegistry::global().counter_add("streaming.segments_observed");
  obs::MetricsRegistry::global().counter_add(
      "streaming.observed_bytes", segment.size() * sizeof(Sym));
  const auto h = histogram_openmp<Sym>(segment, cfg_.nbins, cfg_.cpu_threads);
  for (std::size_t b = 0; b < freq_.size(); ++b) freq_[b] += h[b];
}

template <typename Sym>
void StreamingCompressor<Sym>::smooth() {
  if (frozen_) {
    throw std::logic_error("StreamingCompressor: smooth() after freeze()");
  }
  for (u64& f : freq_) {
    if (f == 0) f = 1;
  }
}

template <typename Sym>
void StreamingCompressor<Sym>::freeze() {
  if (frozen_) throw std::logic_error("StreamingCompressor: double freeze()");
  u64 total = 0;
  for (u64 f : freq_) total += f;
  if (total == 0) {
    throw std::logic_error("StreamingCompressor: freeze() before observe()");
  }
  // Fires before frozen_ flips, so a failed freeze() leaves the
  // compressor un-frozen: callers may retry freeze() or reset().
  util::FaultInjector::global().maybe_throw("streaming.freeze");
  obs::TraceSpan span("streaming.freeze", "streaming");
  cb_ = build_codebook(freq_, cfg_);
  frozen_ = true;
}

template <typename Sym>
void StreamingCompressor<Sym>::reset() {
  freq_.assign(cfg_.nbins, 0);
  cb_ = Codebook{};
  frozen_ = false;
  obs::MetricsRegistry::global().counter_add("streaming.resets");
}

template <typename Sym>
const Codebook& StreamingCompressor<Sym>::codebook() const {
  if (!frozen_) {
    throw std::logic_error("StreamingCompressor: codebook() before freeze()");
  }
  return cb_;
}

template <typename Sym>
std::vector<u8> StreamingCompressor<Sym>::header() const {
  if (!frozen_) {
    throw std::logic_error("StreamingCompressor: header() before freeze()");
  }
  ByteWriter w;
  w.put_array(std::span<const char>(kStreamHeaderMagic, 4));
  w.put<u8>(static_cast<u8>(sizeof(Sym)));
  w.put_bytes(serialize_codebook(cb_));
  return w.take();
}

template <typename Sym>
std::vector<u8> StreamingCompressor<Sym>::encode_segment(
    std::span<const Sym> segment, const CancelToken* cancel) {
  if (!frozen_) {
    throw std::logic_error(
        "StreamingCompressor: encode_segment() before freeze()");
  }
  // A failed segment encode loses only that frame — the codebook and
  // header stay valid, so the caller can re-encode the same segment.
  util::FaultInjector::global().maybe_throw("streaming.encode_segment");
  obs::TraceSpan span("streaming.encode_segment", "streaming");
  Timer seg_timer;
  const EncodedStream s = encode_with_codebook<Sym>(segment, cb_, cfg_, freq_,
                                                    nullptr, cancel);
  const std::vector<u8> body = serialize_stream(s);
  ByteWriter w;
  w.put<u32>(kFrameMagic);
  w.put<u64>(static_cast<u64>(body.size()));
  w.put_bytes(body);
  auto frame = w.take();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.stage_add("streaming.encode_segment", seg_timer.seconds());
  reg.counter_add("streaming.segments_encoded");
  reg.counter_add("streaming.input_bytes", segment.size() * sizeof(Sym));
  reg.counter_add("streaming.frame_bytes", frame.size());
  return frame;
}

template <typename Sym>
StreamingDecompressor<Sym>::StreamingDecompressor(
    std::span<const u8> header) {
  ByteReader r(header);
  const auto magic = r.get_array<char>(4);
  if (std::memcmp(magic.data(), kStreamHeaderMagic, 4) != 0) {
    throw std::runtime_error("parhuff stream: bad header magic");
  }
  const u8 sym_bytes = r.get<u8>();
  if (sym_bytes != sizeof(Sym)) {
    throw std::runtime_error("parhuff stream: symbol width mismatch");
  }
  std::size_t used = 0;
  cb_ = deserialize_codebook(header.subspan(r.position()), &used);
  if (r.position() + used != header.size()) {
    throw std::runtime_error("parhuff stream: trailing header bytes");
  }
}

template <typename Sym>
std::vector<Sym> StreamingDecompressor<Sym>::decode_segment(
    std::span<const u8> frame, const CancelToken* cancel) const {
  obs::TraceSpan span("streaming.decode_segment", "streaming");
  obs::MetricsRegistry::global().counter_add("streaming.segments_decoded");
  ByteReader r(frame);
  if (r.get<u32>() != kFrameMagic) {
    throw std::runtime_error("parhuff stream: bad frame magic");
  }
  const u64 body_len = r.get<u64>();
  const auto body = r.get_view(static_cast<std::size_t>(body_len));
  if (!r.done()) {
    throw std::runtime_error("parhuff stream: trailing frame bytes");
  }
  std::size_t used = 0;
  const EncodedStream s = deserialize_stream(body, &used);
  if (used != body.size()) {
    throw std::runtime_error("parhuff stream: frame length mismatch");
  }
  return decode_stream<Sym>(s, cb_, 0, cancel);
}

template <typename Sym>
std::size_t StreamingDecompressor<Sym>::header_length(
    std::span<const u8> bytes) {
  ByteReader r(bytes);
  const auto magic = r.get_array<char>(4);
  if (std::memcmp(magic.data(), kStreamHeaderMagic, 4) != 0) {
    throw std::runtime_error("parhuff stream: bad header magic");
  }
  const u8 sym_bytes = r.get<u8>();
  if (sym_bytes != sizeof(Sym)) {
    throw std::runtime_error("parhuff stream: symbol width mismatch");
  }
  std::size_t used = 0;
  (void)deserialize_codebook(bytes.subspan(r.position()), &used);
  return r.position() + used;
}

template <typename Sym>
bool StreamingDecompressor<Sym>::frame_length(std::span<const u8> bytes,
                                              std::size_t* total) {
  constexpr std::size_t kPreamble = sizeof(u32) + sizeof(u64);
  if (bytes.size() < kPreamble) return false;
  ByteReader r(bytes);
  if (r.get<u32>() != kFrameMagic) {
    throw std::runtime_error("parhuff stream: bad frame magic");
  }
  const u64 body_len = r.get<u64>();
  *total = kPreamble + static_cast<std::size_t>(body_len);
  return true;
}

template <typename Sym>
std::vector<std::span<const u8>> StreamingDecompressor<Sym>::split_frames(
    std::span<const u8> bytes) {
  std::vector<std::span<const u8>> frames;
  ByteReader r(bytes);
  while (!r.done()) {
    const std::size_t frame_start = r.position();
    if (r.get<u32>() != kFrameMagic) {
      throw std::runtime_error("parhuff stream: bad frame magic");
    }
    const u64 body_len = r.get<u64>();
    (void)r.get_view(static_cast<std::size_t>(body_len));
    frames.push_back(bytes.subspan(frame_start,
                                   r.position() - frame_start));
  }
  return frames;
}

template class StreamingCompressor<u8>;
template class StreamingCompressor<u16>;
template class StreamingDecompressor<u8>;
template class StreamingDecompressor<u16>;

}  // namespace parhuff
