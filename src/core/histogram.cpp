#include "core/histogram.hpp"

#include <algorithm>
#include <cassert>

#include "simt/atomics.hpp"
#include "simt/block.hpp"
#include "util/parallel.hpp"

namespace parhuff {

template <typename Sym>
std::vector<u64> histogram_serial(std::span<const Sym> data,
                                  std::size_t nbins,
                                  const CancelToken* cancel) {
  std::vector<u64> hist(nbins, 0);
  constexpr std::size_t kPollStride = std::size_t{64} * 1024;
  for (std::size_t base = 0; base < data.size(); base += kPollStride) {
    if (cancel) cancel->check();
    const std::size_t end = std::min(base + kPollStride, data.size());
    for (std::size_t i = base; i < end; ++i) {
      const Sym s = data[i];
      assert(static_cast<std::size_t>(s) < nbins);
      ++hist[static_cast<std::size_t>(s)];
    }
  }
  return hist;
}

template <typename Sym>
std::vector<u64> histogram_openmp(std::span<const Sym> data,
                                  std::size_t nbins, int threads,
                                  const CancelToken* cancel) {
  const int p = threads > 0 ? threads : max_threads();
  if (p <= 1 || data.size() < 1u << 16) {
    return histogram_serial(data, nbins, cancel);
  }

  // One private histogram per thread over a contiguous chunk, then a
  // bin-parallel reduction (each thread sums a bin range across privates).
  std::vector<std::vector<u64>> priv(static_cast<std::size_t>(p));
  parallel_chunks(
      data.size(), static_cast<std::size_t>(p),
      [&](std::size_t t, std::size_t begin, std::size_t end) {
        if (cancel) cancel->check();
        auto& h = priv[t];
        h.assign(nbins, 0);
        for (std::size_t i = begin; i < end; ++i) {
          ++h[static_cast<std::size_t>(data[i])];
        }
      },
      p);
  std::vector<u64> hist(nbins, 0);
  parallel_for(
      nbins,
      [&](std::size_t b) {
        u64 sum = 0;
        for (const auto& h : priv) {
          if (!h.empty()) sum += h[b];
        }
        hist[b] = sum;
      },
      p);
  return hist;
}

template <typename Sym>
std::vector<u64> histogram_simt(std::span<const Sym> data, std::size_t nbins,
                                simt::MemTally* tally,
                                const SimtHistogramConfig& cfg,
                                const CancelToken* cancel) {
  std::vector<u64> hist(nbins, 0);
  if (data.empty()) return hist;

  const std::size_t replica_bytes = nbins * sizeof(u32);
  // Replication degree: as many sub-histograms as fit the budget, capped at
  // 8 (diminishing returns past that on real hardware).
  std::size_t replicas = replica_bytes == 0
                             ? 1
                             : std::min<std::size_t>(
                                   8, cfg.shared_budget_bytes / replica_bytes);
  const bool use_shared = replicas >= 1;
  if (!use_shared) replicas = 0;

  const int grid = cfg.grid_dim;
  const int block = cfg.block_dim;
  const std::size_t per_block = (data.size() + grid - 1) / grid;

  simt::launch(grid, block, tally, [&](simt::BlockCtx& blk) {
    const std::size_t begin =
        static_cast<std::size_t>(blk.block_id()) * per_block;
    const std::size_t end = std::min(begin + per_block, data.size());
    if (begin >= end) return;
    // Cooperative poll, once per block partition (core/cancel.hpp).
    if (cancel) cancel->check();
    const std::size_t count = end - begin;

    if (use_shared) {
      auto shared = blk.shared_array<u32>(nbins * replicas);
      std::fill(shared.begin(), shared.end(), 0);

      // Phase 1: strided reads (coalesced on hardware: consecutive threads
      // read consecutive elements), shared atomic updates into replica
      // (tid % replicas).
      blk.threads([&](int tid) {
        const std::size_t repl =
            static_cast<std::size_t>(tid) % replicas * nbins;
        for (std::size_t i = begin + static_cast<std::size_t>(tid); i < end;
             i += static_cast<std::size_t>(blk.block_dim())) {
          const auto bin = static_cast<std::size_t>(data[i]);
          assert(bin < nbins);
          // Within the simulator a block is executed by one host thread, so
          // a plain increment implements the shared atomic.
          ++shared[repl + bin];
        }
      });
      blk.tally().global_read(count, sizeof(Sym), simt::Pattern::kCoalesced);
      // Conflict depth: expected collisions grow as active threads per
      // replica divided by populated bins (uniformly approximated).
      const double conflict =
          1.0 + static_cast<double>(block) /
                    (static_cast<double>(replicas) *
                     std::max<double>(1.0, static_cast<double>(nbins)));
      blk.tally().shared_atomic(count, conflict);
      blk.sync();

      // Phase 2: replica reduction + global flush (bin-parallel across the
      // block's threads, global atomics to combine blocks).
      blk.threads([&](int tid) {
        for (std::size_t b = static_cast<std::size_t>(tid); b < nbins;
             b += static_cast<std::size_t>(blk.block_dim())) {
          u64 sum = 0;
          for (std::size_t r = 0; r < replicas; ++r) {
            sum += shared[r * nbins + b];
          }
          if (sum > 0) simt::atomic_add(hist[b], sum);
        }
      });
      blk.tally().shared_access(nbins * replicas, sizeof(u32));
      blk.tally().global_atomic(std::min<u64>(nbins, count),
                                static_cast<double>(grid) / 8.0);
    } else if (cfg.allow_multipass) {
      // Multi-pass: each pass owns a bin range sized to the shared budget,
      // re-reading the block's input partition and counting only in-range
      // symbols. n_passes x coalesced reads, conflict-light shared atomics.
      const std::size_t bins_per_pass =
          std::max<std::size_t>(1, cfg.shared_budget_bytes / sizeof(u32));
      auto shared = blk.shared_array<u32>(bins_per_pass);
      const std::size_t passes = (nbins + bins_per_pass - 1) / bins_per_pass;
      for (std::size_t pass = 0; pass < passes; ++pass) {
        if (cancel) cancel->check();
        const std::size_t lo = pass * bins_per_pass;
        const std::size_t hi = std::min(lo + bins_per_pass, nbins);
        std::fill(shared.begin(),
                  shared.begin() + static_cast<std::ptrdiff_t>(hi - lo), 0);
        blk.threads([&](int tid) {
          for (std::size_t i = begin + static_cast<std::size_t>(tid);
               i < end; i += static_cast<std::size_t>(blk.block_dim())) {
            const auto bin = static_cast<std::size_t>(data[i]);
            if (bin >= lo && bin < hi) ++shared[bin - lo];
          }
        });
        blk.tally().global_read(count, sizeof(Sym),
                                simt::Pattern::kCoalesced);
        blk.tally().shared_atomic(count / passes + 1, 1.1);
        blk.sync();
        blk.threads([&](int tid) {
          for (std::size_t b = lo + static_cast<std::size_t>(tid); b < hi;
               b += static_cast<std::size_t>(blk.block_dim())) {
            if (shared[b - lo] > 0) {
              simt::atomic_add(hist[b], static_cast<u64>(shared[b - lo]));
            }
          }
        });
        blk.tally().global_atomic(std::min<u64>(hi - lo, count),
                                  static_cast<double>(grid) / 8.0);
        blk.sync();
      }
    } else {
      // Degenerate path: direct global atomics (heavily contended —
      // visible in the tally).
      blk.threads([&](int tid) {
        for (std::size_t i = begin + static_cast<std::size_t>(tid); i < end;
             i += static_cast<std::size_t>(blk.block_dim())) {
          simt::atomic_add(hist[static_cast<std::size_t>(data[i])], u64{1});
        }
      });
      blk.tally().global_read(count, sizeof(Sym), simt::Pattern::kCoalesced);
      blk.tally().global_atomic(count, 4.0);
    }
  });
  return hist;
}

template std::vector<u64> histogram_serial<u8>(std::span<const u8>,
                                               std::size_t,
                                               const CancelToken*);
template std::vector<u64> histogram_serial<u16>(std::span<const u16>,
                                                std::size_t,
                                                const CancelToken*);
template std::vector<u64> histogram_openmp<u8>(std::span<const u8>,
                                               std::size_t, int,
                                               const CancelToken*);
template std::vector<u64> histogram_openmp<u16>(std::span<const u16>,
                                                std::size_t, int,
                                                const CancelToken*);
template std::vector<u64> histogram_simt<u8>(std::span<const u8>, std::size_t,
                                             simt::MemTally*,
                                             const SimtHistogramConfig&,
                                             const CancelToken*);
template std::vector<u64> histogram_simt<u16>(std::span<const u16>,
                                              std::size_t, simt::MemTally*,
                                              const SimtHistogramConfig&,
                                              const CancelToken*);

}  // namespace parhuff
