#pragma once
// GPU Merge Path (Green, McColl, Bader, ICS'12), the PARMERGE of
// Algorithm 1.
//
// Two sorted sequences A (size na) and B (size nb) are merged by cutting the
// merge matrix along `parts` equally spaced cross diagonals. Each diagonal's
// intersection with the merge path is found by an independent binary search
// (fine-grained, one thread per partition boundary on the GPU); the segments
// between consecutive intersections are then merged serially (coarse-grained,
// one thread per partition). The paper notes the practical complexity
// O(n/p + log n) with p partitions; tests verify both the partition points
// and the merged output against std::merge.
//
// The interface is index-based so the codebook algorithm can merge
// structure-of-arrays node representations without materializing records:
// `less(i, j)` compares A[i] against B[j]; `emit(k, from_a, src)` receives
// the merged order. Stability: equal keys take A's element first.

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace parhuff {

/// Resolve the merge-path split point on cross diagonal `d` (0 <= d <=
/// na+nb): returns i such that the first d merged elements are exactly
/// A[0..i) and B[0..d-i). Binary search, O(log min(na, nb, d)).
template <typename LessAB>
std::size_t merge_path_split(std::size_t d, std::size_t na, std::size_t nb,
                             LessAB&& a_le_b) {
  // Invariant for the correct i: (i == 0 or A[i-1] <= B[d-i]) and
  // (i == d-range or B[d-i-1] < A[i]).  a_le_b(i, j) must return
  // "A[i] <= B[j]" to make the merge stable toward A.
  std::size_t lo = d > nb ? d - nb : 0;
  std::size_t hi = d < na ? d : na;
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo) / 2;  // candidate: take i from A
    const std::size_t j = d - i;               // and j from B
    // If A[i] <= B[j-1] we can still take more from A (i too small).
    if (j > 0 && a_le_b(i, j - 1)) {
      lo = i + 1;
    } else {
      hi = i;
    }
  }
  return lo;
}

/// Full partitioned merge. `exec` supplies the two parallel phases
/// (partition-point search, then per-partition serial merge).
/// `a_le_b(i, j)` returns A[i] <= B[j]; `emit(k, from_a, src_index)` is
/// called exactly once for every output rank k in [0, na+nb), from the
/// thread that owns rank k's partition.
template <typename Exec, typename LessAB, typename Emit>
void merge_path(Exec& exec, std::size_t na, std::size_t nb, LessAB&& a_le_b,
                Emit&& emit, std::size_t parts) {
  const std::size_t total = na + nb;
  if (total == 0) return;
  if (parts == 0) parts = 1;
  if (parts > total) parts = total;

  // Phase 1 (fine-grained): locate the merge path on `parts+1` diagonals.
  std::vector<std::size_t> split_a(parts + 1);
  exec.par(parts + 1, [&](std::size_t p) {
    const std::size_t d = p * total / parts;
    split_a[p] = merge_path_split(d, na, nb, a_le_b);
  });

  // Phase 2 (coarse-grained): serial merge of each segment.
  exec.par(parts, [&](std::size_t p) {
    const std::size_t d0 = p * total / parts;
    const std::size_t d1 = (p + 1) * total / parts;
    std::size_t i = split_a[p];
    std::size_t j = d0 - i;
    const std::size_t i_end = split_a[p + 1];
    const std::size_t j_end = d1 - i_end;
    std::size_t k = d0;
    while (i < i_end && j < j_end) {
      if (a_le_b(i, j)) {
        emit(k++, true, i++);
      } else {
        emit(k++, false, j++);
      }
    }
    while (i < i_end) emit(k++, true, i++);
    while (j < j_end) emit(k++, false, j++);
    assert(k == d1);
  });
}

}  // namespace parhuff
