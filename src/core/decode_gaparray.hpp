#pragma once
// Gap-array fully parallel decoder, after Rivera, Di, Tian, Yu, Tao &
// Cappello ("Optimizing Huffman Decoding for Error-Bounded Lossy
// Compression on GPUs", IPDPS'22) — the decode-side successor to the
// self-synchronizing scheme in decode_selfsync.hpp.
//
// The self-sync decoder (CUHD-style) recovers subsequence boundaries at
// decode time with Jacobi correction passes: a tentative decode of every
// S-bit subsequence, then passes that re-decode every subsequence whose
// start was corrected, then an emit pass — ~3 full walks over the chunk's
// bits plus a data-dependent number of corrections. The gap-array insight
// is that the ENCODER already knows every boundary: while the stream is
// produced (or in one cheap post-encode scan) it records, per subsequence,
//
//   gap[i]   — bit distance from the boundary i·S to the first codeword
//              starting at/after it (< max codeword length, one byte),
//   count[i] — how many codewords start inside subsequence i.
//
// With both stored, decoding is embarrassingly parallel with NO
// synchronization scan: thread i seeks to i·S + gap[i], an exclusive scan
// of the counts gives its output offset, and a single emit walk writes the
// symbols — one pass over the payload instead of the self-sync decoder's
// three, and no inter-thread fixpoint iteration at all.
//
// Chunks containing overflow (breaking) groups fall back to the sequential
// splice path, exactly like decode_selfsync: the side stream interrupts
// the main bitstream, so per-subsequence metadata does not apply.
//
// Metadata travels in the container as a versioned optional field
// (docs/format.md): old streams simply lack it (decoders pick another
// tier), and readers that do not understand it skip the field and fall
// back to self-sync — see docs/decode.md for the compatibility matrix.
//
// All deserialized metadata is untrusted: the kernel re-validates counts
// against the chunk's symbol total, bounds every seek through the
// hardened BitReader, and throws (never reads out of bounds) on forgeries.

#include <vector>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

/// Default gap granularity: 1024-bit subsequences cost 3 bytes of metadata
/// per 128 payload bytes (~2.3%) and still expose 2^10-way intra-chunk
/// parallelism per 2^10-symbol chunk on hardware.
inline constexpr u32 kDefaultGapSubseqBits = 1024;

struct GapArrayStats {
  u64 subsequences = 0;     ///< gap-metadata entries consumed
  u64 fallback_chunks = 0;  ///< chunks decoded sequentially (overflow)
};

/// Encode-time annotation: scan each chunk's main bitstream against `cb`
/// and fill `s.gaps` / `s.gap_counts` / `s.gap_subseq_bits`. Chunks with
/// overflow groups get all-sentinel entries (the decoder falls back for
/// them). Throws std::invalid_argument when `subseq_bits` is out of range
/// ([64, 32768], and at least twice the longest codeword) and
/// std::runtime_error when the stream does not decode under `cb`.
/// Idempotent: re-annotating replaces the previous metadata.
void annotate_gaps(EncodedStream& s, const Codebook& cb,
                   u32 subseq_bits = kDefaultGapSubseqBits);

/// Fully parallel per-chunk decode using the stream's gap metadata.
/// Throws std::invalid_argument when `s` carries none (callers select the
/// tier; see pipeline decode_auto), std::runtime_error on corrupt or
/// forged metadata. `cancel` is polled at every chunk entry and per 64 Ki
/// emitted symbols, matching the decode-side cancellation contract.
template <typename Sym>
[[nodiscard]] std::vector<Sym> decode_gaparray(
    const EncodedStream& s, const Codebook& cb,
    simt::MemTally* tally = nullptr, GapArrayStats* stats = nullptr,
    const CancelToken* cancel = nullptr);

extern template std::vector<u8> decode_gaparray<u8>(const EncodedStream&,
                                                    const Codebook&,
                                                    simt::MemTally*,
                                                    GapArrayStats*,
                                                    const CancelToken*);
extern template std::vector<u16> decode_gaparray<u16>(const EncodedStream&,
                                                      const Codebook&,
                                                      simt::MemTally*,
                                                      GapArrayStats*,
                                                      const CancelToken*);

}  // namespace parhuff
