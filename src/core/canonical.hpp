#pragma once
// Canonical Huffman codebook: forward table, reverse (decoding) table, and
// the First/Entry metadata of §IV-B2 that enables treeless decoding.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/codeword.hpp"
#include "util/types.hpp"

namespace parhuff {

/// A canonical codebook over the alphabet [0, nbins).
///
/// Canonical property: codewords are assigned per length level L in
/// ascending numeric order starting at first[L], where
///   first[L] = (first[L'] + count[L']) << (L - L')
/// for the previous populated level L'. This makes the decoder treeless:
/// after reading L bits with value v, the code is complete iff
///   first[L] <= v < first[L] + count[L],
/// and the symbol is sorted_syms[entry[L] + (v - first[L])].
struct Codebook {
  u32 nbins = 0;
  /// Forward table, indexed by symbol; len == 0 → symbol absent.
  std::vector<Codeword> cw;
  /// Longest codeword length H (0 for an empty book).
  unsigned max_len = 0;
  /// first[L], L in [0, max_len]: numeric value of the smallest codeword of
  /// length L (undefined where count[L] == 0).
  std::vector<u64> first;
  /// count[L]: number of codewords of length L.
  std::vector<u32> count;
  /// entry[L]: number of codewords strictly shorter than L (prefix sum of
  /// count) — the paper's Entry array.
  std::vector<u32> entry;
  /// Reverse codebook: symbols ordered by (length asc, codeword asc).
  std::vector<u32> sorted_syms;

  [[nodiscard]] std::size_t present_symbols() const {
    return sorted_syms.size();
  }

  /// Average codeword bitwidth under the given frequency profile (the
  /// paper's "avg. bits" column).
  [[nodiscard]] double average_bits(std::span<const u64> freq) const;

  /// Kraft sum numerator scaled by 2^max_len: equals 1 << max_len exactly
  /// for a complete prefix code.
  [[nodiscard]] u64 kraft_scaled() const;

  /// Validates every canonical invariant (prefix-freeness via per-level
  /// ranges, First/Entry consistency, reverse-table agreement). Returns an
  /// empty string on success, else a description of the violation. Used by
  /// tests and by debug assertions in the pipeline.
  [[nodiscard]] std::string validate() const;
};

/// Builds the canonical metadata (first/count/entry/sorted_syms/max_len) and
/// reassigns codeword values canonically, given only the per-symbol code
/// *lengths* in `lens`. This is the serial canonizer the paper describes in
/// §IV-B2 (O(n)): parhuff uses it to canonize tree-built baseline codebooks
/// and to rebuild a Codebook from the lengths stored in the file format.
/// Throws std::invalid_argument if the lengths violate Kraft or exceed
/// kMaxCodeLen.
[[nodiscard]] Codebook canonize_from_lengths(std::span<const u8> lens);

/// Instrumented operation count of the last canonize_from_lengths call on
/// this thread (drives the modeled "~200 us to canonize 1024 codewords"
/// claim reproduction).
[[nodiscard]] u64 canonize_last_op_count();

}  // namespace parhuff
