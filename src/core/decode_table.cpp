#include "core/decode_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decode.hpp"

namespace parhuff {

namespace {
constexpr u32 kEscape = 0xFFFFFFFFu;
}

DecodeTable::DecodeTable(const Codebook& cb, unsigned k) : cb_(cb) {
  k_ = std::min<unsigned>(k, std::max<unsigned>(cb.max_len, 1));
  if (k_ == 0) k_ = 1;
  if (k_ > 20) throw std::invalid_argument("DecodeTable: k too large");
  table_.assign(std::size_t{1} << k_, Entry{kEscape, 0});

  // Every codeword of length <= k owns the 2^(k-len) table slots that
  // share its prefix; longer codewords leave their prefix slots at the
  // escape marker.
  for (u32 sym = 0; sym < cb.nbins; ++sym) {
    const Codeword cw = cb.cw[sym];
    if (cw.len == 0 || cw.len > k_) continue;
    const std::size_t base =
        static_cast<std::size_t>(cw.bits << (k_ - cw.len));
    const std::size_t span = std::size_t{1} << (k_ - cw.len);
    for (std::size_t i = 0; i < span; ++i) {
      table_[base + i] = Entry{sym, cw.len};
    }
  }
}

template <typename Sym>
void DecodeTable::decode(BitReader& br, std::size_t count, Sym* out) const {
  for (std::size_t i = 0; i < count; ++i) {
    const u64 window = br.peek(k_);
    const Entry e = table_[static_cast<std::size_t>(window)];
    if (e.symbol != kEscape && e.len <= br.remaining()) {
      br.skip(e.len);
      out[i] = static_cast<Sym>(e.symbol);
      continue;
    }
    // Slow path: codeword longer than k, or the tail of the stream where
    // the zero-padded window could alias a shorter code.
    decode_symbols(br, cb_, 1, out + i);
  }
}

template void DecodeTable::decode<u8>(BitReader&, std::size_t, u8*) const;
template void DecodeTable::decode<u16>(BitReader&, std::size_t, u16*) const;

}  // namespace parhuff
