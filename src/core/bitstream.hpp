#pragma once
// MSB-first bit stream primitives over 32-bit words.
//
// Conventions (used consistently by every encoder/decoder in parhuff):
//  * A codeword of length L is a right-aligned numeric value (its low L bits
//    hold the code; bit L-1 is emitted first).
//  * The stream packs bits into u32 cells from the most-significant bit
//    down, so concatenation of codewords is shift-and-or — the operation the
//    paper's REDUCE-merge performs in registers and SHUFFLE-merge performs
//    across cells.

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace parhuff {

/// Payload cell type. The paper's kernels move uint32_t cells; breaking
/// statistics (Table II/V) are defined against this width.
using word_t = u32;
inline constexpr unsigned kWordBits = 32;

/// Number of word cells needed for `bits` bits.
[[nodiscard]] constexpr std::size_t words_for_bits(u64 bits) {
  return static_cast<std::size_t>((bits + kWordBits - 1) / kWordBits);
}

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  BitWriter() = default;
  explicit BitWriter(std::vector<word_t>& sink) : out_(&sink) {}

  /// Append the low `len` bits of `value` (MSB of those first). len <= 58.
  void put(u64 value, unsigned len) {
    assert(len <= kMaxCodeLen);
    if (len == 0) return;
    value &= (len >= 64 ? ~u64{0} : ((u64{1} << len) - 1));
    unsigned remaining = len;
    while (remaining > 0) {
      const unsigned room = kWordBits - fill_;
      const unsigned take = remaining < room ? remaining : room;
      const u64 chunk = value >> (remaining - take);  // top `take` bits
      cur_ |= static_cast<word_t>(chunk << (room - take));
      fill_ += take;
      remaining -= take;
      if (fill_ == kWordBits) flush_word();
    }
    bits_ += len;
  }

  /// Total bits written so far.
  [[nodiscard]] u64 bits() const { return bits_; }

  /// Flush the trailing partial word (zero-padded) and return the buffer.
  /// The writer is left empty.
  std::vector<word_t> finish() {
    if (fill_ > 0) flush_word();
    std::vector<word_t> r;
    if (out_ == nullptr) {
      r = std::move(own_);
      own_.clear();
    }
    // (with an external sink the caller keeps the buffer; r stays empty)
    bits_ = 0;
    return r;
  }

  /// Flush the trailing partial word into the external sink.
  void finish_into_sink() {
    if (fill_ > 0) flush_word();
  }

 private:
  void flush_word() {
    sink().push_back(cur_);
    cur_ = 0;
    fill_ = 0;
  }
  std::vector<word_t>& sink() { return out_ ? *out_ : own_; }

  std::vector<word_t>* out_ = nullptr;
  std::vector<word_t> own_;
  word_t cur_ = 0;
  unsigned fill_ = 0;
  u64 bits_ = 0;
};

/// MSB-first bit reader over a word span.
///
/// Bounds are enforced, not asserted: decoders run over attacker-supplied
/// containers, and NDEBUG builds (the default CMAKE_BUILD_TYPE is Release)
/// compile asserts away. The constructor rejects a bit count the span
/// cannot back — which also closes the words_for_bits() wrap route, where
/// a near-2^64 bit count maps to 0 cells — and every advancing accessor
/// throws instead of reading out of bounds.
class BitReader {
 public:
  BitReader(std::span<const word_t> words, u64 total_bits)
      : words_(words), total_bits_(total_bits) {
    if (total_bits > static_cast<u64>(words.size()) * kWordBits) {
      throw std::out_of_range(
          "BitReader: bit count exceeds the backing span");
    }
  }

  /// Next single bit (0/1). Throws std::out_of_range past the end.
  [[nodiscard]] unsigned bit() {
    if (pos_ >= total_bits_) {
      throw std::out_of_range("BitReader: read past end of stream");
    }
    const std::size_t w = static_cast<std::size_t>(pos_ / kWordBits);
    const unsigned off = static_cast<unsigned>(pos_ % kWordBits);
    ++pos_;
    return (words_[w] >> (kWordBits - 1 - off)) & 1u;
  }

  /// Next `len` bits as a right-aligned value (len <= 58).
  [[nodiscard]] u64 take(unsigned len) {
    u64 v = 0;
    for (unsigned i = 0; i < len; ++i) v = (v << 1) | bit();
    return v;
  }

  /// Next `len` bits without advancing (len <= 57). Bits beyond the end of
  /// the stream read as zero, so table-driven decoders can peek a full
  /// window near the tail. Word-granular: at most three cell reads.
  [[nodiscard]] u64 peek(unsigned len) const {
    u64 v = 0;
    unsigned got = 0;
    u64 p = pos_;
    while (got < len && p < total_bits_) {
      const std::size_t w = static_cast<std::size_t>(p / kWordBits);
      const unsigned off = static_cast<unsigned>(p % kWordBits);
      unsigned take = kWordBits - off;
      if (take > len - got) take = len - got;
      if (static_cast<u64>(take) > total_bits_ - p) {
        take = static_cast<unsigned>(total_bits_ - p);
      }
      // Top `take` bits of the cell after skipping `off` bits.
      const u64 chunk =
          (static_cast<u64>(words_[w]) << (kWordBits + off)) >> (64 - take);
      v = (v << take) | chunk;
      got += take;
      p += take;
    }
    if (got < len) v <<= (len - got);  // zero padding past the end
    return v;
  }

  /// Advance by `n` bits. Throws std::out_of_range when n > remaining()
  /// (the subtraction form avoids the pos_ + n overflow a forged length
  /// field could provoke).
  void skip(u64 n) {
    if (n > total_bits_ - pos_) {
      throw std::out_of_range("BitReader: skip past end of stream");
    }
    pos_ += n;
  }

  [[nodiscard]] u64 position() const { return pos_; }
  [[nodiscard]] u64 total_bits() const { return total_bits_; }
  [[nodiscard]] u64 remaining() const { return total_bits_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= total_bits_; }

  void seek(u64 bit_pos) {
    if (bit_pos > total_bits_) {
      throw std::out_of_range("BitReader: seek past end of stream");
    }
    pos_ = bit_pos;
  }

 private:
  std::span<const word_t> words_;
  u64 total_bits_;
  u64 pos_ = 0;
};

/// Append `src_bits` bits from `src` cells onto a destination cell buffer
/// whose current length is `dst_bits`. This is the two-step batch move of
/// Fig. 2: for each source cell, the first `32 - dst_bits%32` bits fill the
/// residual of the last partial destination cell, and the remainder lands
/// left-shifted in the next cell. `dst` must have capacity for
/// words_for_bits(dst_bits + src_bits) cells, and cells at/after the write
/// frontier must be zero.
inline void append_bits(word_t* dst, u64 dst_bits, const word_t* src,
                        u64 src_bits) {
  if (src_bits == 0) return;
  const unsigned off = static_cast<unsigned>(dst_bits % kWordBits);
  std::size_t d = static_cast<std::size_t>(dst_bits / kWordBits);
  const std::size_t src_words = words_for_bits(src_bits);
  if (off == 0) {
    for (std::size_t s = 0; s < src_words; ++s) dst[d + s] = src[s];
    return;
  }
  const std::size_t end_word = words_for_bits(dst_bits + src_bits);
  for (std::size_t s = 0; s < src_words; ++s) {
    const word_t v = src[s];
    dst[d + s] |= v >> off;
    // The spill into the following cell is skipped when it would land wholly
    // beyond the final bit count — src's zero padding guarantees it is zero.
    if (d + s + 1 < end_word) {
      dst[d + s + 1] = static_cast<word_t>(static_cast<u64>(v)
                                           << (kWordBits - off));
    }
  }
}

}  // namespace parhuff
