#pragma once
// Key-value LSD radix sort — the Thrust sort-by-key substitute used to order
// the histogram ascending before GenerateCL (§IV-B1: "the histogram is
// sorted in ascending order using Thrust. This operation is low-cost, as n
// is relatively small").
//
// 8-bit digits, skipping passes whose digit is constant. Stable, so sorting
// (freq) with symbol payloads yields the deterministic (freq, symbol)
// ascending order the codebook builder relies on.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace parhuff {

/// Sorts `keys` ascending, permuting `values` alongside. O(passes * n).
template <typename V>
void radix_sort_by_key(std::vector<u64>& keys, std::vector<V>& values) {
  const std::size_t n = keys.size();
  if (n < 2) return;

  u64 all_or = 0;
  for (u64 k : keys) all_or |= k;

  std::vector<u64> kbuf(n);
  std::vector<V> vbuf(n);
  u64* kin = keys.data();
  u64* kout = kbuf.data();
  V* vin = values.data();
  V* vout = vbuf.data();
  bool swapped = false;

  for (unsigned shift = 0; shift < 64; shift += 8) {
    if (((all_or >> shift) & 0xFFu) == 0) continue;
    std::array<std::size_t, 256> bucket{};
    for (std::size_t i = 0; i < n; ++i) {
      ++bucket[(kin[i] >> shift) & 0xFFu];
    }
    if (bucket[(kin[0] >> shift) & 0xFFu] == n) continue;  // constant digit
    std::size_t run = 0;
    for (auto& b : bucket) {
      const std::size_t c = b;
      b = run;
      run += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = bucket[(kin[i] >> shift) & 0xFFu]++;
      kout[pos] = kin[i];
      vout[pos] = vin[i];
    }
    std::swap(kin, kout);
    std::swap(vin, vout);
    swapped = !swapped;
  }
  if (swapped) {
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = kin[i];
      values[i] = vin[i];
    }
  }
}

}  // namespace parhuff
