#pragma once
// Entropy estimation and the reduction-factor decision rule (§IV-C, Fig. 3).
//
// The paper sizes REDUCE-merge so the r-time-merged codeword is expected to
// land in [W/2, W) bits for the W-bit representative word:
// ⌊log β⌋ + r + 1 = log W, with β the average codeword bitwidth (obtainable
// from the histogram before encoding via the entropy, or exactly from the
// built codebook). Longer merges overflow cells (breaking points); shorter
// merges waste bandwidth moving half-empty words.

#include <span>

#include "core/canonical.hpp"
#include "util/types.hpp"

namespace parhuff {

/// Shannon entropy in bits/symbol of a frequency histogram.
[[nodiscard]] double shannon_entropy(std::span<const u64> freq);

/// Exact average codeword bitwidth for a codebook + histogram (Table V's
/// "avg. bits").
[[nodiscard]] double average_bitwidth(const Codebook& cb,
                                      std::span<const u64> freq);

/// The pure bitwidth rule: the largest r with β·2^r < word_bits, i.e. the
/// merged codeword is expected to fill at least half the cell. Returns at
/// least 1.
[[nodiscard]] u32 reduce_factor_rule(double avg_bits,
                                     unsigned word_bits = 32);

/// Operating-point decision matching the paper's evaluation: the rule,
/// capped at 3 (the paper finds M=10, r=3 empirically strongest even where
/// the rule would allow r=4 — Table II) and at magnitude-1.
[[nodiscard]] u32 decide_reduce_factor(double avg_bits, u32 magnitude = 10,
                                       unsigned word_bits = 32);

/// Expected merged bitwidth after r reduce iterations (Fig. 3's quantity).
[[nodiscard]] inline double merged_bitwidth(double avg_bits, u32 r) {
  return avg_bits * static_cast<double>(u64{1} << r);
}

}  // namespace parhuff
