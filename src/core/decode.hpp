#pragma once
// Treeless canonical decoding using the First/Entry metadata (§IV-B2).
//
// After reading L bits with accumulated value v, the code is complete iff
// first[L] <= v < first[L] + count[L]; the symbol is then
// sorted_syms[entry[L] + (v - first[L])]. No tree is touched — the three
// small arrays are the whole decoder state, which is why the paper caches
// them for decoding throughput.
//
// decode_stream understands the chunked container, decoding chunks in
// parallel and splicing overflow (breaking) groups back in at their group
// boundaries.
//
// All entry points take an optional CancelToken polled cooperatively (every
// 64 Ki symbols inside the bit walk, which also covers every chunk and
// overflow-group entry) — a decode whose deadline passes or whose request
// is cancelled abandons mid-stream by throwing, exactly like the encode
// stages (core/cancel.hpp). The no-token path costs one predictable branch
// per symbol batch.

#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "util/types.hpp"

namespace parhuff {

/// Decode exactly `count` symbols from `br`. Throws std::runtime_error on a
/// corrupt stream (code longer than max_len or stream exhaustion);
/// OperationCancelled / DeadlineExpired from a fired `cancel` poll.
template <typename Sym>
void decode_symbols(BitReader& br, const Codebook& cb, std::size_t count,
                    Sym* out, const CancelToken* cancel = nullptr);

/// Decode a full chunked stream (any encoder's output).
template <typename Sym>
[[nodiscard]] std::vector<Sym> decode_stream(const EncodedStream& s,
                                             const Codebook& cb,
                                             int threads = 0,
                                             const CancelToken* cancel =
                                                 nullptr);

/// Random access: decode only symbols [first, first + count) — the chunked
/// layout makes this touch just the covering chunks, so reading a slice of
/// a large compressed array costs O(slice + one chunk) work, not a full
/// decompress. Throws std::out_of_range when the range exceeds the stream.
template <typename Sym>
[[nodiscard]] std::vector<Sym> decode_range(const EncodedStream& s,
                                            const Codebook& cb,
                                            std::size_t first,
                                            std::size_t count,
                                            int threads = 0,
                                            const CancelToken* cancel =
                                                nullptr);

extern template void decode_symbols<u8>(BitReader&, const Codebook&,
                                        std::size_t, u8*, const CancelToken*);
extern template void decode_symbols<u16>(BitReader&, const Codebook&,
                                         std::size_t, u16*,
                                         const CancelToken*);
extern template std::vector<u8> decode_stream<u8>(const EncodedStream&,
                                                  const Codebook&, int,
                                                  const CancelToken*);
extern template std::vector<u16> decode_stream<u16>(const EncodedStream&,
                                                    const Codebook&, int,
                                                    const CancelToken*);
extern template std::vector<u8> decode_range<u8>(const EncodedStream&,
                                                 const Codebook&, std::size_t,
                                                 std::size_t, int,
                                                 const CancelToken*);
extern template std::vector<u16> decode_range<u16>(const EncodedStream&,
                                                   const Codebook&,
                                                   std::size_t, std::size_t,
                                                   int, const CancelToken*);

}  // namespace parhuff
