#pragma once
// Serial Huffman codebook construction baselines.
//
// Two builders, matching the two serial baselines the paper measures:
//  * build_lengths_pq    — the SZ-style builder: an explicit node tree grown
//    with a binary heap, lengths read off by traversal. This is the
//    "naive binary tree, inefficient GPU memory access pattern" baseline
//    that takes 144 ms for 8192 symbols when run by a single GPU thread.
//  * build_lengths_twoqueue — O(n) two-queue construction over the
//    freq-sorted histogram using flat arrays; the "internal cache-friendly
//    arrays" variant the paper credits for the 1-thread OpenMP builder
//    beating the SZ serial builder.
//
// Both return per-symbol code lengths; canonize_from_lengths() turns
// lengths into a full canonical Codebook. Both count the dependent
// operations they execute so the GPU single-thread latency model can price
// them (bench_claims).

#include <span>
#include <vector>

#include "core/canonical.hpp"
#include "util/types.hpp"

namespace parhuff {

struct SerialBuildStats {
  u64 dependent_ops = 0;  ///< heap/queue operations on the critical path
  u64 tree_nodes = 0;
};

/// Priority-queue (binary-heap) Huffman tree; lengths via iterative depth
/// propagation. freq.size() == nbins; zero-frequency symbols get length 0.
/// A single present symbol gets length 1 by convention.
[[nodiscard]] std::vector<u8> build_lengths_pq(std::span<const u64> freq,
                                               SerialBuildStats* stats = nullptr);

/// Two-queue O(n) construction (after an O(n log n) sort of the nonzero
/// frequencies).
[[nodiscard]] std::vector<u8> build_lengths_twoqueue(
    std::span<const u64> freq, SerialBuildStats* stats = nullptr);

/// Convenience: serial baseline codebook (two-queue lengths + canonize).
[[nodiscard]] Codebook build_codebook_serial(std::span<const u64> freq,
                                             SerialBuildStats* stats = nullptr);

}  // namespace parhuff
