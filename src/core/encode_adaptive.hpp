#pragma once
// Adaptive reduce-factor encoding — the paper's §VII future work ("we plan
// to further optimize the performance for low-compression-ratio data to
// handle the breaking points"), implemented as an extension of the
// reduce/shuffle scheme.
//
// The fixed-r encoder picks one reduce factor from the *global* average
// bitwidth (Fig. 3). On data whose local statistics swing — text with
// markup islands, images with tissue/background bimodality — a globally
// sound r still overflows cells wherever the local average doubles,
// producing breaking points whose backtrace + sparse storage is exactly
// the overhead §VII wants to eliminate.
//
// This encoder decides r *per chunk*: the lookup phase already touches
// every codeword, so the chunk's total bit count is a free byproduct, and
//    r_c = max { r : ceil(chunk_bits / N) · 2^r < Width }   (clamped)
// keeps each chunk's expected merged cell at least half full without
// overflowing on locally dense chunks. The per-chunk factors travel in
// EncodedStream::chunk_reduce (one byte per chunk — the "more metadata"
// cost the paper accepts for magnitude reductions already).
//
// The cell width is a template parameter: 32 reproduces the paper's
// uint32_t configuration; 64 trades double the shuffle traffic for another
// 2x merge headroom (the uint{8,16,32}_t discussion of §IV-C).

#include <array>
#include <span>

#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

struct AdaptiveConfig {
  u32 magnitude = 10;   ///< chunk = 2^magnitude symbols
  u32 min_reduce = 1;
  u32 max_reduce = 6;   ///< upper clamp for very sparse chunks
};

struct AdaptiveStats {
  u64 breaking_groups = 0;
  u64 breaking_symbols = 0;
  /// Total codeword bits across the input — the lookup phase's free
  /// byproduct, summed over chunks. total_code_bits / n_symbols is the
  /// exact achieved bits-per-symbol of this (data, codebook) pairing,
  /// which is what the service's adaptive lifecycle manager compares
  /// against the window entropy to price a stale book without a second
  /// pass over the data.
  u64 total_code_bits = 0;
  /// Histogram of chosen per-chunk reduce factors (index = r).
  std::array<u64, 16> r_histogram{};
};

template <typename Sym, unsigned Width = 32>
[[nodiscard]] EncodedStream encode_adaptive_simt(
    std::span<const Sym> data, const Codebook& cb,
    const AdaptiveConfig& cfg = {}, simt::MemTally* tally = nullptr,
    AdaptiveStats* stats = nullptr);

extern template EncodedStream encode_adaptive_simt<u8, 32>(
    std::span<const u8>, const Codebook&, const AdaptiveConfig&,
    simt::MemTally*, AdaptiveStats*);
extern template EncodedStream encode_adaptive_simt<u16, 32>(
    std::span<const u16>, const Codebook&, const AdaptiveConfig&,
    simt::MemTally*, AdaptiveStats*);
extern template EncodedStream encode_adaptive_simt<u8, 64>(
    std::span<const u8>, const Codebook&, const AdaptiveConfig&,
    simt::MemTally*, AdaptiveStats*);
extern template EncodedStream encode_adaptive_simt<u16, 64>(
    std::span<const u16>, const Codebook&, const AdaptiveConfig&,
    simt::MemTally*, AdaptiveStats*);

}  // namespace parhuff
