#pragma once
// Self-contained compressed container format (and its two sections, which
// the streaming API reuses independently).
//
// Container layout (little-endian), two live versions — see docs/format.md
// for the byte-level reference and compatibility rules:
//   v2: magic "PHF2" | u8 sym_bytes | codebook section | stream section
//   v3: magic "PHF3" | u8 sym_bytes | codebook section | stream section
//       | optional-field region
// "PHF2" is still written whenever the stream carries no optional metadata,
// so those containers stay byte-identical across versions. The v3 region:
//   u32 n_fields | { u32 tag | u64 len | u8 payload[len] | u64 fnv1a }*
// Readers verify each field's checksum and skip tags they do not know
// (forward compatibility: new optional fields never bump the magic).
// Known tags: kContainerFieldGap ("GAP1") — gap-array decode metadata,
//   payload u32 subseq_bits | u64 n | u8 gaps[n] | u16 counts[n];
// kContainerFieldRle ("RLE1") — run-length side channel extracted before
//   Huffman (the fused lossy path, src/lossy/fused.hpp), payload
//   u32 run_symbol | u64 orig_symbols | u64 n_runs | u64 pos[n_runs] |
//   u32 len[n_runs].
//
// Codebook section:
//   u8 max_len | u32 nbins | u8 lens[nbins]
//   u32 n_present | u32 sorted_syms[n_present]
// The lengths fully determine First/Entry/count (rebuilt on load); the
// reverse codebook is stored because the builder's within-level order is
// part of the code assignment.
//
// Stream section:
//   u64 n_symbols | u32 chunk_symbols | u32 reduce_factor
//   u8 per_chunk_flag | u32 n_chunks | u64 chunk_bits[n_chunks]
//   (u8 chunk_reduce[n_chunks] when per_chunk_flag)
//   u64 payload_words | word payload[...]
//   u32 n_overflow | packed OverflowEntry[...]
//   u64 overflow_words | u64 overflow_bits | word overflow_payload[...]

#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "util/types.hpp"

namespace parhuff {

/// Optional-field tag for gap-array decode metadata ("GAP1" little-endian).
inline constexpr u32 kContainerFieldGap = 0x31504147;

/// Optional-field tag for the pre-Huffman run-length side channel
/// ("RLE1" little-endian).
inline constexpr u32 kContainerFieldRle = 0x31454C52;

// --- Whole-container API. ----------------------------------------------------

template <typename Sym>
[[nodiscard]] std::vector<u8> serialize(const Compressed<Sym>& blob);

/// Throws std::runtime_error (or std::invalid_argument from codebook
/// validation) on malformed input.
template <typename Sym>
[[nodiscard]] Compressed<Sym> deserialize(std::span<const u8> bytes);

// --- Section API (used by the whole-container functions and by the
// streaming format, which ships one codebook for many stream segments). ------

[[nodiscard]] std::vector<u8> serialize_codebook(const Codebook& cb);
/// Reads a codebook section from the reader's cursor position onward;
/// `consumed` (optional) receives the section's byte length.
[[nodiscard]] Codebook deserialize_codebook(std::span<const u8> bytes,
                                            std::size_t* consumed = nullptr);

[[nodiscard]] std::vector<u8> serialize_stream(const EncodedStream& s);
[[nodiscard]] EncodedStream deserialize_stream(std::span<const u8> bytes,
                                               std::size_t* consumed = nullptr);

// --- File helpers used by the example applications. ---------------------------

void write_file(const std::string& path, std::span<const u8> bytes);
[[nodiscard]] std::vector<u8> read_file(const std::string& path);

extern template std::vector<u8> serialize<u8>(const Compressed<u8>&);
extern template std::vector<u8> serialize<u16>(const Compressed<u16>&);
extern template Compressed<u8> deserialize<u8>(std::span<const u8>);
extern template Compressed<u16> deserialize<u16>(std::span<const u8>);

}  // namespace parhuff
