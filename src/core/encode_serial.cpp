#include "core/encode_serial.hpp"

#include <cassert>
#include <stdexcept>

#include "util/parallel.hpp"

namespace parhuff {

namespace {

/// Encode chunk symbols [begin, end) into `words`, returning the bit count.
template <typename Sym>
u64 encode_chunk(std::span<const Sym> data, std::size_t begin,
                 std::size_t end, const Codebook& cb,
                 std::vector<word_t>& words) {
  BitWriter bw(words);
  for (std::size_t i = begin; i < end; ++i) {
    const Codeword c = cb.cw[static_cast<std::size_t>(data[i])];
    if (c.len == 0) throw std::runtime_error("symbol absent from codebook");
    bw.put(c.bits, c.len);
  }
  const u64 bits = bw.bits();
  bw.finish_into_sink();
  return bits;
}

template <typename Sym>
EncodedStream encode_chunked(std::span<const Sym> data, const Codebook& cb,
                             u32 chunk_symbols, int threads) {
  assert(chunk_symbols > 0);
  EncodedStream out;
  out.chunk_symbols = chunk_symbols;
  out.n_symbols = data.size();
  const std::size_t chunks =
      (data.size() + chunk_symbols - 1) / chunk_symbols;
  out.chunk_bits.assign(chunks, 0);

  std::vector<std::vector<word_t>> chunk_words(chunks);
  parallel_for(
      chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * chunk_symbols;
        const std::size_t end =
            std::min<std::size_t>(begin + chunk_symbols, data.size());
        out.chunk_bits[c] = encode_chunk(data, begin, end, cb, chunk_words[c]);
      },
      threads);

  const std::size_t total_words = layout_chunks(out);
  out.payload.assign(total_words, 0);
  parallel_for(
      chunks,
      [&](std::size_t c) {
        const auto& w = chunk_words[c];
        std::copy(w.begin(), w.end(),
                  out.payload.begin() +
                      static_cast<std::ptrdiff_t>(out.chunk_word_offset[c]));
      },
      threads);
  return out;
}

}  // namespace

template <typename Sym>
EncodedStream encode_serial(std::span<const Sym> data, const Codebook& cb,
                            u32 chunk_symbols) {
  return encode_chunked(data, cb, chunk_symbols, /*threads=*/1);
}

template <typename Sym>
EncodedStream encode_openmp(std::span<const Sym> data, const Codebook& cb,
                            u32 chunk_symbols, int threads) {
  return encode_chunked(data, cb, chunk_symbols, threads);
}

template EncodedStream encode_serial<u8>(std::span<const u8>, const Codebook&,
                                         u32);
template EncodedStream encode_serial<u16>(std::span<const u16>,
                                          const Codebook&, u32);
template EncodedStream encode_openmp<u8>(std::span<const u8>, const Codebook&,
                                         u32, int);
template EncodedStream encode_openmp<u16>(std::span<const u16>,
                                          const Codebook&, u32, int);

}  // namespace parhuff
