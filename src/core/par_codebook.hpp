#pragma once
// Two-phase parallel canonical codebook construction (Algorithm 1 of the
// paper, after Ostadzadeh et al.), written once against the executor concept
// of executor.hpp and instantiated for the SIMT simulator (GPU form,
// Table III), OpenMP (CPU form, Table IV) and sequential execution (test
// reference).
//
// GenerateCL — round-based parallel melding over the freq-sorted histogram:
//   each round melds the two globally smallest roots into a node `t`, then
//   selects every remaining root (leaf or internal) with freq < t.freq,
//   parity-trims the selection, PARMERGEs the leaf run with the internal
//   run (Merge Path), and melds adjacent pairs of the merged list in
//   parallel. Safety follows from Ostadzadeh's lemma: all roots lighter
//   than the sum of the two smallest can be combined pairwise without
//   losing optimality (property-tested against the serial builder).
//
//   Deviations from the paper's pseudocode, which has transcription
//   artifacts (negative parity index, iNodes.size double-count — see
//   DESIGN.md): (1) the selection is frequency-filtered on both the leaf
//   and internal side rather than "all internals but the last"; (2) leaf
//   codeword lengths are produced by one parent-chain depth pass at the end
//   instead of per-round leader chasing — functionally identical, and the
//   modeled GPU cost is charged per the paper's per-round structure either
//   way.
//
// GenerateCW — canonical codeword assignment by length level, emitting the
//   First/Entry decoder metadata exactly as §IV-B2 describes. The paper
//   assigns values per level in decreasing order and bit-inverts at the
//   end; we assign the equivalent increasing canonical values directly.

#include <cassert>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/merge_path.hpp"
#include "core/sort.hpp"
#include "simt/atomics.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

struct ParCodebookStats {
  u64 rounds = 0;          ///< GenerateCL meld rounds
  u64 melds = 0;           ///< internal nodes created
  u64 merged_elements = 0; ///< total elements routed through ParMerge
  u64 levels = 0;          ///< distinct codeword lengths in GenerateCW
  unsigned max_len = 0;
};

namespace detail {

/// Charge a parallel region's data movement to the simulator tally (no-op
/// when the caller isn't collecting metrics).
inline void tally_par_traffic(simt::MemTally* tally, u64 elems, u64 bytes,
                              simt::Pattern p = simt::Pattern::kCoalesced) {
  if (!tally) return;
  tally->global_read(elems, bytes, p);
  tally->ops(elems * 4);
}

}  // namespace detail

/// Phase 1: codeword lengths for an ascending-sorted, all-positive frequency
/// array. Returns CL[i] aligned with sorted_freq positions. `cancel` is
/// polled once per reduce round (core/cancel.hpp).
template <typename Exec>
std::vector<u32> generate_cl(Exec& exec, std::span<const u64> sorted_freq,
                             ParCodebookStats* stats = nullptr,
                             simt::MemTally* tally = nullptr,
                             const CancelToken* cancel = nullptr) {
  const std::size_t n = sorted_freq.size();
  std::vector<u32> cl(n, 0);
  if (n == 0) return cl;
  if (n == 1) {
    cl[0] = 1;
    return cl;
  }
#ifndef NDEBUG
  for (std::size_t i = 1; i < n; ++i) assert(sorted_freq[i - 1] <= sorted_freq[i]);
#endif

  // Node arena (SoA, as the paper stores lNodes/iNodes for coalescing).
  std::vector<u64> ifreq;     // internal node frequency
  std::vector<i32> iparent;   // parent arena index, -1 while a root
  ifreq.reserve(n);
  iparent.reserve(n);
  std::vector<i32> leaf_parent(n, -1);

  // iNodes: current internal roots in ascending freq order. `ihead` marks
  // consumed entries; new roots are appended merge-ordered.
  std::vector<u32> inodes;
  inodes.reserve(n);
  std::size_t ihead = 0;
  std::size_t c = 0;  // leaves [0, c) consumed

  // Scratch reused across rounds.
  std::vector<u32> cand_idx;      // merged candidate list: arena/leaf index
  std::vector<u8> cand_is_leaf;
  std::vector<u32> inodes_next;

  auto leaf_count = [&] { return n - c; };
  auto inode_count = [&] { return inodes.size() - ihead; };

  u64 rounds = 0;
  u64 merged_total = 0;

  while (leaf_count() + inode_count() > 1) {
    // Cooperative poll, once per reduce round (core/cancel.hpp).
    if (cancel) cancel->check();
    ++rounds;
    // --- Region A (sequential): meld the two smallest roots into t. ------
    u64 tfreq = 0;
    u32 t_index = 0;
    exec.seq(
        [&] {
          auto take_smallest = [&](u64& f) -> std::pair<bool, std::size_t> {
            const bool leaf =
                c < n && (ihead >= inodes.size() ||
                          sorted_freq[c] <= ifreq[inodes[ihead]]);
            if (leaf) {
              f = sorted_freq[c];
              return {true, c++};
            }
            f = ifreq[inodes[ihead]];
            return {false, ihead++};
          };
          u64 fa = 0, fb = 0;
          const auto a = take_smallest(fa);
          const auto b = take_smallest(fb);
          t_index = static_cast<u32>(ifreq.size());
          ifreq.push_back(fa + fb);
          iparent.push_back(-1);
          if (a.first) leaf_parent[a.second] = static_cast<i32>(t_index);
          else iparent[inodes[a.second]] = static_cast<i32>(t_index);
          if (b.first) leaf_parent[b.second] = static_cast<i32>(t_index);
          else iparent[inodes[b.second]] = static_cast<i32>(t_index);
          tfreq = fa + fb;
        },
        /*dependent_ops=*/24);

    // --- Region B (sequential bound search + parity trim). ---------------
    // k candidate leaves [c, c+k) and m candidate internals
    // inodes[ihead, ihead+m), all with freq < t.freq.
    std::size_t k = 0, m = 0;
    exec.seq(
        [&] {
          std::size_t lo = c, hi = n;
          while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (sorted_freq[mid] < tfreq) lo = mid + 1; else hi = mid;
          }
          k = lo - c;
          std::size_t ilo = ihead, ihi = inodes.size();
          while (ilo < ihi) {
            const std::size_t mid = ilo + (ihi - ilo) / 2;
            if (ifreq[inodes[mid]] < tfreq) ilo = mid + 1; else ihi = mid;
          }
          m = ilo - ihead;
          if ((k + m) % 2 != 0) {
            // Drop the largest candidate so pairs are complete; it stays a
            // root for a later round.
            if (m == 0) {
              --k;
            } else if (k == 0) {
              --m;
            } else if (sorted_freq[c + k - 1] >= ifreq[inodes[ihead + m - 1]]) {
              --k;
            } else {
              --m;
            }
          }
        },
        /*dependent_ops=*/64);

    // --- Region C: PARMERGE of the two candidate runs (Merge Path). ------
    const std::size_t total = k + m;
    if (total > 0) {
      cand_idx.resize(total);
      cand_is_leaf.resize(total);
      const std::size_t leaf_base = c;
      const std::size_t inode_base = ihead;
      merge_path(
          exec, k, m,
          [&](std::size_t i, std::size_t j) {
            return sorted_freq[leaf_base + i] <=
                   ifreq[inodes[inode_base + j]];
          },
          [&](std::size_t out, bool from_a, std::size_t src) {
            cand_is_leaf[out] = from_a ? 1 : 0;
            cand_idx[out] = from_a ? static_cast<u32>(leaf_base + src)
                                   : inodes[inode_base + src];
          },
          /*parts=*/16);
      merged_total += total;
      detail::tally_par_traffic(tally, total, 12);

      // --- Region D: meld adjacent pairs in parallel. --------------------
      const std::size_t pairs = total / 2;
      const std::size_t arena_base = ifreq.size();
      ifreq.resize(arena_base + pairs);
      iparent.resize(arena_base + pairs, -1);
      exec.par(pairs, [&](std::size_t j) {
        const u32 ia = cand_idx[2 * j];
        const u32 ib = cand_idx[2 * j + 1];
        const u64 fa = cand_is_leaf[2 * j] ? sorted_freq[ia] : ifreq[ia];
        const u64 fb = cand_is_leaf[2 * j + 1] ? sorted_freq[ib] : ifreq[ib];
        const u32 node = static_cast<u32>(arena_base + j);
        ifreq[node] = fa + fb;
        if (cand_is_leaf[2 * j]) leaf_parent[ia] = static_cast<i32>(node);
        else iparent[ia] = static_cast<i32>(node);
        if (cand_is_leaf[2 * j + 1]) leaf_parent[ib] = static_cast<i32>(node);
        else iparent[ib] = static_cast<i32>(node);
      });
      detail::tally_par_traffic(tally, pairs, 24);

      // Consume the selected candidates.
      c += k;
      ihead += m;

      // --- Region E: rebuild iNodes = insert(t, merge(old suffix, pairs)).
      // Unselected internals and pair sums are >= t.freq with one possible
      // exception: the parity-dropped candidate (freq < t.freq) still heads
      // the old suffix, so t is placed by insertion rather than prepended.
      const std::size_t old_sz = inodes.size() - ihead;
      inodes_next.clear();
      inodes_next.resize(old_sz + pairs);
      merge_path(
          exec, old_sz, pairs,
          [&](std::size_t i, std::size_t j) {
            return ifreq[inodes[ihead + i]] <= ifreq[arena_base + j];
          },
          [&](std::size_t out, bool from_a, std::size_t src) {
            inodes_next[out] = from_a ? inodes[ihead + src]
                                      : static_cast<u32>(arena_base + src);
          },
          /*parts=*/16);
      exec.seq(
          [&] {
            std::size_t pos = 0;
            while (pos < inodes_next.size() &&
                   ifreq[inodes_next[pos]] < tfreq) {
              ++pos;
            }
            inodes_next.insert(
                inodes_next.begin() + static_cast<std::ptrdiff_t>(pos),
                t_index);
          },
          /*dependent_ops=*/8);
      inodes.swap(inodes_next);
      ihead = 0;
      detail::tally_par_traffic(tally, old_sz + pairs, 8);
    } else {
      // No candidates survived the parity trim: only t joins the roots,
      // inserted after any remaining lighter root.
      exec.seq(
          [&] {
            inodes_next.assign(inodes.begin() +
                                   static_cast<std::ptrdiff_t>(ihead),
                               inodes.end());
            std::size_t pos = 0;
            while (pos < inodes_next.size() &&
                   ifreq[inodes_next[pos]] < tfreq) {
              ++pos;
            }
            inodes_next.insert(
                inodes_next.begin() + static_cast<std::ptrdiff_t>(pos),
                t_index);
            inodes.swap(inodes_next);
            ihead = 0;
          },
          /*dependent_ops=*/8);
    }
  }
  assert(c == n);

  // Final depth pass (UPDATELEAFNODE equivalent): internal depths by a
  // reverse scan (every parent has a larger arena index), then leaf lengths
  // in parallel.
  std::vector<u32> idepth(ifreq.size(), 0);
  exec.seq(
      [&] {
        for (std::size_t i = ifreq.size(); i-- > 0;) {
          if (iparent[i] >= 0) {
            idepth[i] = idepth[static_cast<std::size_t>(iparent[i])] + 1;
          }
        }
      },
      /*dependent_ops=*/static_cast<u64>(ifreq.size()));
  exec.par(n, [&](std::size_t i) {
    assert(leaf_parent[i] >= 0);
    cl[i] = idepth[static_cast<std::size_t>(leaf_parent[i])] + 1;
  });
  detail::tally_par_traffic(tally, n, 8);

  if (stats) {
    stats->rounds += rounds;
    stats->melds += ifreq.size();
    stats->merged_elements += merged_total;
  }
  return cl;
}

/// Phase 2 output: canonical codewords + decode metadata, in the order of
/// the length-ascending position array.
struct GeneratedCodewords {
  std::vector<u64> cw;        ///< canonical value per position (length asc)
  std::vector<u32> position;  ///< original sorted-histogram position
  std::vector<u64> first;     ///< First array (index = length)
  std::vector<u32> count;
  std::vector<u32> entry;     ///< Entry array
  unsigned max_len = 0;
};

/// Phase 2: canonical codeword generation from the codeword lengths
/// produced by generate_cl (positions are freq-ascending, so lengths are
/// non-increasing; PARREVERSE makes them ascending).
template <typename Exec>
GeneratedCodewords generate_cw(Exec& exec, std::span<const u32> cl,
                               ParCodebookStats* stats = nullptr,
                               simt::MemTally* tally = nullptr,
                               const CancelToken* cancel = nullptr) {
  const std::size_t n = cl.size();
  GeneratedCodewords out;
  if (n == 0) return out;
  if (cancel) cancel->check();

  // PARREVERSE: view positions in reverse so lengths ascend. If ties in the
  // underlying frequencies produced a non-monotone stretch, a counting sort
  // restores order (stable; rare path).
  out.position.resize(n);
  exec.par(n, [&](std::size_t i) {
    out.position[i] = static_cast<u32>(n - 1 - i);
  });
  detail::tally_par_traffic(tally, n, 4);

  unsigned max_len = 0;
  bool monotone = true;
  for (std::size_t i = 0; i < n; ++i) {
    const u32 l = cl[out.position[i]];
    if (l > max_len) max_len = l;
    if (i > 0 && cl[out.position[i]] < cl[out.position[i - 1]]) {
      monotone = false;
    }
  }
  if (max_len > kMaxCodeLen) {
    throw std::runtime_error("generate_cw: codeword length exceeds limit");
  }
  out.max_len = max_len;
  out.count.assign(max_len + 1, 0);
  out.first.assign(max_len + 1, 0);
  out.entry.assign(max_len + 2, 0);

  // Level histogram (the paper finds level boundaries with ATOMICMIN over
  // the sorted array; a counting pass is the same O(n) work).
  exec.par(n, [&](std::size_t i) {
    simt::atomic_add(out.count[cl[i]], u32{1});
  });
  if (tally) tally->global_atomic(n, 1.5);

  if (!monotone) {
    // Stable counting sort of positions by length (ascending).
    std::vector<u32> cursor(max_len + 1, 0);
    u32 run = 0;
    for (unsigned l = 1; l <= max_len; ++l) {
      cursor[l] = run;
      run += out.count[l];
    }
    std::vector<u32> sorted(n);
    for (std::size_t i = 0; i < n; ++i) {
      const u32 p = out.position[i];
      sorted[cursor[cl[p]]++] = p;
    }
    out.position.swap(sorted);
  }

  // Entry prefix sum + First recurrence (sequential over H levels, as in
  // lines 40–44 of Algorithm 1).
  u64 levels = 0;
  exec.seq(
      [&] {
        u32 run = 0;
        u64 next_first = 0;
        unsigned prev_l = 0;
        bool seen = false;
        for (unsigned l = 0; l <= max_len; ++l) {
          out.entry[l] = run;
          run += out.count[l];
          if (l == 0 || out.count[l] == 0) continue;
          ++levels;
          next_first = seen ? (next_first << (l - prev_l)) : 0;
          out.first[l] = next_first;
          next_first += out.count[l];
          if (next_first > (u64{1} << l)) {
            throw std::runtime_error("generate_cw: Kraft violation");
          }
          prev_l = l;
          seen = true;
        }
        out.entry[max_len + 1] = run;
      },
      /*dependent_ops=*/static_cast<u64>(max_len) * 4);

  // Codeword assignment: one thread per symbol (lines 31–39).
  out.cw.resize(n);
  exec.par(n, [&](std::size_t i) {
    const u32 l = cl[out.position[i]];
    const u32 rank = static_cast<u32>(i) - out.entry[l];
    out.cw[i] = out.first[l] + rank;
  });
  detail::tally_par_traffic(tally, n, 16);

  if (stats) {
    stats->levels += levels;
    stats->max_len = std::max(stats->max_len, max_len);
  }
  return out;
}

/// Complete parallel construction: histogram → (radix sort) → GenerateCL →
/// GenerateCW → scatter into a canonical Codebook over [0, freq.size()).
template <typename Exec>
Codebook build_codebook_parallel(Exec& exec, std::span<const u64> freq,
                                 ParCodebookStats* stats = nullptr,
                                 simt::MemTally* tally = nullptr,
                                 const CancelToken* cancel = nullptr) {
  Codebook cb;
  cb.nbins = static_cast<u32>(freq.size());
  cb.cw.assign(freq.size(), Codeword{});

  // Present symbols, sorted ascending by (freq, symbol). The symbol
  // tiebreak makes the whole construction deterministic.
  std::vector<u64> keys;
  std::vector<u32> syms;
  keys.reserve(freq.size());
  syms.reserve(freq.size());
  for (std::size_t s = 0; s < freq.size(); ++s) {
    if (freq[s] > 0) {
      keys.push_back(freq[s]);
      syms.push_back(static_cast<u32>(s));
    }
  }
  if (keys.empty()) return cb;
  radix_sort_by_key(keys, syms);
  if (tally) {
    tally->global_read(keys.size() * 2, 8, simt::Pattern::kCoalesced);
    tally->global_write(keys.size() * 2, 8, simt::Pattern::kCoalesced);
  }

  std::vector<u32> cl = generate_cl(exec, keys, stats, tally, cancel);
  GeneratedCodewords gen = generate_cw(exec, cl, stats, tally, cancel);

  const std::size_t m = keys.size();
  cb.max_len = gen.max_len;
  cb.first = std::move(gen.first);
  cb.count = std::move(gen.count);
  cb.entry = std::move(gen.entry);
  cb.sorted_syms.resize(m);
  exec.par(m, [&](std::size_t i) {
    const u32 sym = syms[gen.position[i]];
    cb.sorted_syms[i] = sym;
    cb.cw[sym] = Codeword{gen.cw[i],
                          static_cast<u8>(cl[gen.position[i]])};
  });
  detail::tally_par_traffic(tally, m, 16, simt::Pattern::kStrided);
  return cb;
}

}  // namespace parhuff
