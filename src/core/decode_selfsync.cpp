#include "core/decode_selfsync.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decode.hpp"
#include "simt/atomics.hpp"
#include "simt/block.hpp"

namespace parhuff {

namespace {

/// Decode codewords whose start bit lies in [br.position(), limit_bits),
/// discarding symbols; returns how many were consumed and leaves br at the
/// first codeword start at/after limit_bits. Tolerant by design: a
/// tentative start placed mid-codeword may hit prefixes no codeword owns —
/// the scan just stops there (the synchronization passes re-run it from a
/// corrected start; only the final emit pass may treat failure as
/// corruption).
std::size_t scan_subsequence(BitReader& br, const Codebook& cb,
                             u64 limit_bits) {
  std::size_t count = 0;
  const unsigned max_len = cb.max_len;
  while (br.position() < limit_bits && !br.exhausted()) {
    u64 v = 0;
    unsigned l = 0;
    bool matched = false;
    while (!br.exhausted() && l < max_len) {
      v = (v << 1) | br.bit();
      ++l;
      if (cb.count[l] != 0 && v >= cb.first[l] &&
          v - cb.first[l] < cb.count[l]) {
        matched = true;
        break;
      }
    }
    if (!matched) return count;  // desynchronized or exhausted: stop here
    ++count;
  }
  return count;
}

/// Decode exactly `count` symbols starting at br's position.
template <typename Sym>
void emit_symbols(BitReader& br, const Codebook& cb, std::size_t count,
                  Sym* out) {
  decode_symbols(br, cb, count, out);
}

}  // namespace

template <typename Sym>
std::vector<Sym> decode_selfsync(const EncodedStream& s, const Codebook& cb,
                                 const SelfSyncConfig& cfg,
                                 simt::MemTally* tally,
                                 SelfSyncStats* stats) {
  if (cfg.subseq_bits < 2 * (cb.max_len ? cb.max_len : 1)) {
    throw std::invalid_argument(
        "selfsync: subsequence must exceed twice the longest codeword");
  }
  std::vector<Sym> out(s.n_symbols);
  if (s.n_symbols == 0) return out;
  const std::size_t chunks = s.chunks();

  std::vector<std::size_t> ovf_begin(chunks + 1, s.overflow.size());
  {
    std::size_t e = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      ovf_begin[c] = e;
      while (e < s.overflow.size() && s.overflow[e].chunk == c) ++e;
    }
    ovf_begin[chunks] = e;
  }

  // Per-chunk stats accumulated with atomics (chunks run concurrently).
  u64 total_subseq = 0;
  u64 total_passes = 0;
  u64 max_passes = 0;
  u64 fallbacks = 0;

  simt::launch(
      static_cast<int>(chunks), 256, tally, [&](simt::BlockCtx& blk) {
        const std::size_t c = static_cast<std::size_t>(blk.block_id());
        const std::size_t begin = c * s.chunk_symbols;
        const std::size_t nc = s.chunk_size(c);
        if (nc == 0) return;
        Sym* dst = out.data() + begin;
        auto& t = blk.tally();

        // --- Fallback: overflow-bearing chunks decode sequentially. ------
        if (ovf_begin[c] != ovf_begin[c + 1]) {
          const std::size_t group_syms = s.group_symbols(c);
          BitReader br = s.chunk_reader(c);
          BitReader obr(
              std::span<const word_t>(s.overflow_payload.data(),
                                      s.overflow_payload.size()),
              static_cast<u64>(s.overflow_payload.size()) * kWordBits);
          std::size_t e = ovf_begin[c];
          std::size_t i = 0;
          while (i < nc) {
            const std::size_t group = i / group_syms;
            if (e < ovf_begin[c + 1] && s.overflow[e].group == group) {
              obr.seek(s.overflow[e].bit_offset);
              emit_symbols(obr, cb, s.overflow[e].n_symbols, dst + i);
              i += s.overflow[e].n_symbols;
              ++e;
            } else {
              const std::size_t next =
                  std::min<std::size_t>((group + 1) * group_syms, nc);
              emit_symbols(br, cb, next - i, dst + i);
              i = next;
            }
          }
          simt::atomic_add(fallbacks, u64{1});
          t.global_read(words_for_bits(s.chunk_bits[c]), sizeof(word_t),
                        simt::Pattern::kStrided);
          t.global_write(nc, sizeof(Sym), simt::Pattern::kStrided);
          return;
        }

        // --- Phase 1: tentative decode of every subsequence. -------------
        const u64 B = s.chunk_bits[c];
        const u64 S = cfg.subseq_bits;
        const std::size_t n_sub = static_cast<std::size_t>((B + S - 1) / S);
        std::vector<u64> start(n_sub), exit_bit(n_sub);
        std::vector<std::size_t> count(n_sub);
        auto scan_from = [&](std::size_t i, u64 from) {
          BitReader br = s.chunk_reader(c);
          br.seek(std::min<u64>(from, B));
          const u64 limit = std::min<u64>((i + 1) * S, B);
          count[i] = from < limit ? scan_subsequence(br, cb, limit) : 0;
          start[i] = from;
          exit_bit[i] = std::max<u64>(br.position(), from);
        };
        for (std::size_t i = 0; i < n_sub; ++i) {
          scan_from(i, i * S);  // one thread per subsequence on hardware
        }
        t.global_read((B + 7) / 8, 1, simt::Pattern::kCoalesced);
        // Bit-serial decoding is a dependent chain with heavy intra-warp
        // divergence (every lane is at a different position in its code):
        // ~32 issue slots per payload bit.
        t.ops(B * 32);
        blk.sync();

        // --- Phase 2: synchronization passes until fixpoint. --------------
        // Jacobi iteration, as the parallel kernel executes it: every pass
        // corrects each subsequence against its neighbour's exit from the
        // *previous* pass. Streams that self-synchronize (the common case)
        // reach the fixpoint in one or two passes; the pass count is the
        // measurable signature of that property (see SelfSyncStats).
        u64 passes = 0;
        std::vector<u64> prev_exit(n_sub);
        for (;;) {
          ++passes;
          std::copy(exit_bit.begin(), exit_bit.end(), prev_exit.begin());
          bool changed = false;
          u64 corrected_bits = 0;
          for (std::size_t i = 1; i < n_sub; ++i) {
            const u64 want = prev_exit[i - 1];
            if (start[i] != want) {
              scan_from(i, want);
              changed = true;
              corrected_bits += S;
            }
          }
          t.ops(corrected_bits * 32 + n_sub);
          blk.sync();
          if (!changed) break;
          if (passes > n_sub + 1) {
            throw std::runtime_error("selfsync: no fixpoint (corrupt)");
          }
        }

        // --- Phase 3: scan counts, final emit. -----------------------------
        std::size_t total = 0;
        std::vector<std::size_t> offset(n_sub);
        for (std::size_t i = 0; i < n_sub; ++i) {
          offset[i] = total;
          total += count[i];
        }
        if (total != nc) {
          throw std::runtime_error("selfsync: symbol count mismatch");
        }
        for (std::size_t i = 0; i < n_sub; ++i) {
          if (count[i] == 0) continue;
          BitReader br = s.chunk_reader(c);
          br.seek(start[i]);
          emit_symbols(br, cb, count[i], dst + offset[i]);
        }
        t.global_read((B + 7) / 8, 1, simt::Pattern::kCoalesced);
        t.global_write(nc, sizeof(Sym), simt::Pattern::kCoalesced);
        t.ops(B * 32 + nc * 2);

        simt::atomic_add(total_subseq, static_cast<u64>(n_sub));
        simt::atomic_add(total_passes, passes);
        simt::atomic_max(max_passes, passes);
      });

  if (stats) {
    stats->subsequences = total_subseq;
    stats->sync_passes = total_passes;
    stats->max_chunk_passes = max_passes;
    stats->fallback_chunks = fallbacks;
  }
  return out;
}

template std::vector<u8> decode_selfsync<u8>(const EncodedStream&,
                                             const Codebook&,
                                             const SelfSyncConfig&,
                                             simt::MemTally*, SelfSyncStats*);
template std::vector<u16> decode_selfsync<u16>(const EncodedStream&,
                                               const Codebook&,
                                               const SelfSyncConfig&,
                                               simt::MemTally*,
                                               SelfSyncStats*);

}  // namespace parhuff
