#include "core/decode_simt.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decode.hpp"
#include "simt/block.hpp"

namespace parhuff {

template <typename Sym>
std::vector<Sym> decode_simt(const EncodedStream& s, const Codebook& cb,
                             simt::MemTally* tally,
                             const CancelToken* cancel) {
  std::vector<Sym> out(s.n_symbols);
  if (s.n_symbols == 0) return out;
  const std::size_t chunks = s.chunks();

  // Chunk → overflow-entry run index (entries sorted by chunk, group).
  std::vector<std::size_t> ovf_begin(chunks + 1, s.overflow.size());
  {
    std::size_t e = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      ovf_begin[c] = e;
      while (e < s.overflow.size() && s.overflow[e].chunk == c) ++e;
    }
    ovf_begin[chunks] = e;
    if (e != s.overflow.size()) {
      throw std::runtime_error("decode_simt: overflow entries out of order");
    }
  }

  const int block_dim = 128;
  const int grid =
      static_cast<int>((chunks + static_cast<std::size_t>(block_dim) - 1) /
                       static_cast<std::size_t>(block_dim));
  // Decoder state staged once per block: First/Entry/count arrays plus the
  // reverse codebook — the cache-the-reverse-codebook strategy of §IV-B2.
  const u64 state_bytes =
      (cb.first.size() * 8 + cb.entry.size() * 4 + cb.count.size() * 4 +
       cb.sorted_syms.size() * 4);

  simt::launch(std::max(grid, 1), block_dim, tally, [&](simt::BlockCtx& blk) {
    blk.tally().global_read(state_bytes, 1, simt::Pattern::kCoalesced);
    blk.tally().shared_access(state_bytes, 1);
    blk.sync();
    blk.threads([&](int tid) {
      const std::size_t c = blk.global_id(tid);
      if (c >= chunks) return;
      // Cooperative poll per chunk, matching the encode kernels' per-block
      // cadence; decode_symbols adds a finer 64 Ki-symbol stride inside.
      if (cancel) cancel->check();
      const std::size_t begin = c * s.chunk_symbols;
      const std::size_t nc = s.chunk_size(c);
      Sym* dst = out.data() + begin;
      BitReader br = s.chunk_reader(c);

      const std::size_t e0 = ovf_begin[c];
      const std::size_t e1 = ovf_begin[c + 1];
      if (e0 == e1) {
        decode_symbols(br, cb, nc, dst, cancel);
      } else {
        const std::size_t group_syms = s.group_symbols(c);
        std::size_t e = e0;
        std::size_t i = 0;
        BitReader obr(std::span<const word_t>(s.overflow_payload.data(),
                                              s.overflow_payload.size()),
                      static_cast<u64>(s.overflow_payload.size()) * kWordBits);
        while (i < nc) {
          const std::size_t group = i / group_syms;
          if (e < e1 && s.overflow[e].group == group) {
            const OverflowEntry& entry = s.overflow[e];
            obr.seek(entry.bit_offset);
            decode_symbols(obr, cb, entry.n_symbols, dst + i, cancel);
            i += entry.n_symbols;
            ++e;
          } else {
            const std::size_t next =
                std::min<std::size_t>((group + 1) * group_syms, nc);
            decode_symbols(br, cb, next - i, dst + i, cancel);
            i = next;
          }
        }
      }
      // Per-lane sequential chunk walk: strided payload reads; output
      // writes are per-thread sequential too (strided across the warp).
      auto& t = blk.tally();
      t.global_read(words_for_bits(s.chunk_bits[c]), sizeof(word_t),
                    simt::Pattern::kStrided);
      t.global_write(nc, sizeof(Sym), simt::Pattern::kStrided);
      // Bit-serial decode: a dependent chain with full intra-warp
      // divergence — ~32 issue slots per payload bit.
      t.ops(s.chunk_bits[c] * 32 + nc * 2);
      t.shared_access(nc, 8);  // table lookups hit the staged state
    });
  });
  return out;
}

template std::vector<u8> decode_simt<u8>(const EncodedStream&,
                                         const Codebook&, simt::MemTally*,
                                         const CancelToken*);
template std::vector<u16> decode_simt<u16>(const EncodedStream&,
                                           const Codebook&, simt::MemTally*,
                                           const CancelToken*);

}  // namespace parhuff
