#pragma once
// Table-driven canonical decoding.
//
// The treeless First/Entry decoder consumes one bit per step; a k-bit
// lookup table turns that into one probe per codeword for all codes of
// length <= k (with a slow-path escape for longer ones). This is the
// standard production decoder shape — the paper's §IV-B2 canonization
// exists precisely to make the decoder state small enough to cache, and
// this table is the logical next step for decode throughput (2^k entries
// of 4 bytes: k=12 → 16 KiB, comfortably shared-memory resident).

#include <vector>

#include "core/bitstream.hpp"
#include "core/canonical.hpp"
#include "util/types.hpp"

namespace parhuff {

class DecodeTable {
 public:
  /// Builds a 2^k-entry table for `cb`. k defaults to min(12, max_len).
  explicit DecodeTable(const Codebook& cb, unsigned k = 12);

  [[nodiscard]] unsigned bits() const { return k_; }
  [[nodiscard]] std::size_t entries() const { return table_.size(); }

  /// Decode `count` symbols from `br` into `out`. Identical results to
  /// decode_symbols; throws std::runtime_error on corruption.
  template <typename Sym>
  void decode(BitReader& br, std::size_t count, Sym* out) const;

 private:
  struct Entry {
    u32 symbol;  ///< decoded symbol, or 0xFFFFFFFF for the slow path
    u8 len;      ///< bits consumed
  };
  const Codebook& cb_;
  unsigned k_;
  std::vector<Entry> table_;
};

extern template void DecodeTable::decode<u8>(BitReader&, std::size_t,
                                             u8*) const;
extern template void DecodeTable::decode<u16>(BitReader&, std::size_t,
                                              u16*) const;

}  // namespace parhuff
