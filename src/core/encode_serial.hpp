#pragma once
// Baseline encoders that walk chunks with a BitWriter:
//  * encode_serial — the SZ-style single-thread encoder.
//  * encode_openmp — the paper's multithreaded CPU encoder (Table VI):
//    chunks are distributed over OpenMP threads, each thread encodes its
//    chunks independently, and the chunk layout makes the outputs
//    order-independent.
//
// Both produce bit-identical streams (and identical to the coarse-grained
// and prefix-sum GPU baselines): per chunk, codewords concatenated MSB-first
// in symbol order.

#include <span>

#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "util/types.hpp"

namespace parhuff {

template <typename Sym>
[[nodiscard]] EncodedStream encode_serial(std::span<const Sym> data,
                                          const Codebook& cb,
                                          u32 chunk_symbols = 1024);

template <typename Sym>
[[nodiscard]] EncodedStream encode_openmp(std::span<const Sym> data,
                                          const Codebook& cb,
                                          u32 chunk_symbols = 1024,
                                          int threads = 0);

extern template EncodedStream encode_serial<u8>(std::span<const u8>,
                                                const Codebook&, u32);
extern template EncodedStream encode_serial<u16>(std::span<const u16>,
                                                 const Codebook&, u32);
extern template EncodedStream encode_openmp<u8>(std::span<const u8>,
                                                const Codebook&, u32, int);
extern template EncodedStream encode_openmp<u16>(std::span<const u16>,
                                                 const Codebook&, u32, int);

}  // namespace parhuff
