#include "core/pipeline.hpp"

#include <stdexcept>

#include "core/decode.hpp"
#include "core/decode_gaparray.hpp"
#include "core/decode_selfsync.hpp"
#include "core/decode_simt.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_serial.hpp"
#include "core/encode_simt.hpp"
#include "core/entropy.hpp"
#include "core/executor.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simt/coop.hpp"

namespace parhuff {

Codebook build_codebook(std::span<const u64> freq, const PipelineConfig& cfg,
                        PipelineReport* report, const CancelToken* cancel) {
  if (freq.empty()) {
    throw std::invalid_argument("build_codebook: empty frequency profile");
  }
  obs::TraceSpan span("pipeline.codebook", "pipeline");
  PipelineReport local;
  PipelineReport& rep = report ? *report : local;
  if (cancel) cancel->check();
  Timer t;
  Codebook cb;
  switch (cfg.codebook) {
    case CodebookKind::kSerialTree: {
      SerialBuildStats st;
      cb = build_codebook_serial(freq, &st);
      rep.codebook_tally.serial_dependent_ops += st.dependent_ops;
      break;
    }
    case CodebookKind::kParallelSimt: {
      simt::CooperativeGrid grid(
          std::min<std::size_t>(freq.size(), 64 * 1024), &rep.codebook_tally);
      cb = build_codebook_parallel(grid, freq, &rep.cb_stats, grid.tally(),
                                   cancel);
      break;
    }
    case CodebookKind::kParallelOmp: {
      OmpExec exec(cfg.cpu_threads);
      cb = build_codebook_parallel(exec, freq, &rep.cb_stats, nullptr, cancel);
      break;
    }
  }
  rep.codebook_seconds = t.seconds();
  return cb;
}

template <typename Sym>
EncodedStream encode_with_codebook(std::span<const Sym> data,
                                   const Codebook& cb,
                                   const PipelineConfig& cfg,
                                   std::span<const u64> freq,
                                   PipelineReport* report,
                                   const CancelToken* cancel) {
  obs::TraceSpan span("pipeline.encode", "pipeline");
  PipelineReport local;
  PipelineReport& rep = report ? *report : local;
  // Stage-entry check covers the encoder kinds without in-kernel polls
  // (serial / OpenMP / adaptive); the SIMT encoders below also poll per
  // chunk.
  if (cancel) cancel->check();
  // REDUCE-factor choice needs an average bitwidth; take a serial
  // histogram only when the caller didn't supply a profile and the
  // encoder actually needs one.
  std::vector<u64> own_freq;
  std::span<const u64> profile = freq;
  if (profile.empty() && !cfg.reduce_factor &&
      cfg.encoder == EncoderKind::kReduceShuffleSimt) {
    own_freq = histogram_serial(data, cb.nbins, cancel);
    profile = own_freq;
  }
  if (!profile.empty()) rep.avg_bits = average_bitwidth(cb, profile);

  EncodedStream stream;
  Timer t;
  const u32 chunk = u32{1} << cfg.magnitude;
  switch (cfg.encoder) {
    case EncoderKind::kSerial:
      stream = encode_serial(data, cb, chunk);
      break;
    case EncoderKind::kOpenMP:
      stream = encode_openmp(data, cb, chunk, cfg.cpu_threads);
      break;
    case EncoderKind::kCoarseSimt:
      stream = encode_coarse_simt(data, cb, chunk, &rep.encode_tally, cancel);
      break;
    case EncoderKind::kPrefixSumSimt:
      stream =
          encode_prefixsum_simt(data, cb, chunk, &rep.encode_tally, cancel);
      break;
    case EncoderKind::kReduceShuffleSimt: {
      ReduceShuffleConfig rs;
      rs.magnitude = cfg.magnitude;
      rs.reduce_factor =
          cfg.reduce_factor
              ? *cfg.reduce_factor
              : decide_reduce_factor(rep.avg_bits, cfg.magnitude);
      rep.reduce_factor = rs.reduce_factor;
      stream = encode_reduceshuffle_simt(data, cb, rs, &rep.encode_tally,
                                         &rep.rs, cancel);
      break;
    }
    case EncoderKind::kAdaptiveSimt: {
      AdaptiveConfig ac;
      ac.magnitude = cfg.magnitude;
      AdaptiveStats st;
      stream = encode_adaptive_simt<Sym, 32>(data, cb, ac, &rep.encode_tally,
                                             &st);
      rep.rs.breaking_groups = st.breaking_groups;
      rep.rs.breaking_symbols = st.breaking_symbols;
      break;
    }
  }
  rep.encode_seconds = t.seconds();
  return stream;
}

template <typename Sym>
Compressed<Sym> compress(std::span<const Sym> data, const PipelineConfig& cfg,
                         PipelineReport* report, const CancelToken* cancel) {
  if (cfg.nbins == 0) throw std::invalid_argument("nbins must be positive");
  obs::TraceSpan compress_span("pipeline.compress", "pipeline");
  PipelineReport local;
  PipelineReport& rep = report ? *report : local;
  rep = PipelineReport{};
  rep.input_bytes = data.size() * sizeof(Sym);

  Compressed<Sym> out;
  if (cancel) cancel->check();

  // --- Stage 1: histogram. ------------------------------------------------
  Timer t;
  std::vector<u64> freq;
  {
    obs::TraceSpan span("pipeline.histogram", "pipeline");
    switch (cfg.histogram) {
      case HistogramKind::kSerial:
        freq = histogram_serial(data, cfg.nbins, cancel);
        break;
      case HistogramKind::kOpenMP:
        freq = histogram_openmp(data, cfg.nbins, cfg.cpu_threads, cancel);
        break;
      case HistogramKind::kSimt:
        freq = histogram_simt(data, cfg.nbins, &rep.hist_tally,
                              SimtHistogramConfig{}, cancel);
        break;
    }
  }
  rep.hist_seconds = t.seconds();
  rep.entropy_bits = shannon_entropy(freq);
  if (cancel) cancel->check();

  // --- Stage 2+3: codebook construction + canonization. -------------------
  out.codebook = build_codebook(freq, cfg, &rep, cancel);
  rep.avg_bits = average_bitwidth(out.codebook, freq);
  if (cancel) cancel->check();

  // --- Stage 4: encode. ----------------------------------------------------
  out.stream =
      encode_with_codebook<Sym>(data, out.codebook, cfg, freq, &rep, cancel);

  // --- Stage 5 (optional): gap-array decode metadata. ----------------------
  if (cfg.gap_subseq_bits != 0) {
    if (cancel) cancel->check();
    obs::TraceSpan span("pipeline.gap_annotate", "pipeline");
    Timer tg;
    annotate_gaps(out.stream, out.codebook, cfg.gap_subseq_bits);
    rep.gap_seconds = tg.seconds();
  }
  rep.compressed_bytes = out.stream.stored_bytes();
  obs::publish(obs::MetricsRegistry::global(), rep);
  return out;
}

template <typename Sym>
std::vector<Sym> decode_auto(const EncodedStream& s, const Codebook& cb,
                             int threads, const CancelToken* cancel) {
  auto& reg = obs::MetricsRegistry::global();
  if (s.has_gaps()) {
    obs::TraceSpan span("pipeline.decode.gaparray", "pipeline");
    Timer t;
    GapArrayStats st;
    auto out = decode_gaparray<Sym>(s, cb, nullptr, &st, cancel);
    reg.stage_add("decode.gaparray", t.seconds());
    reg.counter_add("decode.gaparray");
    reg.counter_add("decode.symbols", out.size());
    reg.counter_add("decode.gaparray_subsequences", st.subsequences);
    if (st.fallback_chunks != 0) {
      reg.counter_add("decode.gaparray_fallback_chunks", st.fallback_chunks);
    }
    return out;
  }
  obs::TraceSpan span("pipeline.decode.host", "pipeline");
  Timer t;
  auto out = decode_stream<Sym>(s, cb, threads, cancel);
  reg.stage_add("decode.host", t.seconds());
  reg.counter_add("decode.host");
  reg.counter_add("decode.symbols", out.size());
  return out;
}

template <typename Sym>
std::vector<Sym> decompress(const Compressed<Sym>& blob, int threads) {
  obs::TraceSpan span("pipeline.decompress", "pipeline");
  return decode_auto<Sym>(blob.stream, blob.codebook, threads);
}

template <typename Sym>
std::vector<Sym> decompress_with(const Compressed<Sym>& blob,
                                 DecoderKind decoder, simt::MemTally* tally) {
  switch (decoder) {
    case DecoderKind::kSimt:
      return decode_simt<Sym>(blob.stream, blob.codebook, tally);
    case DecoderKind::kSelfSync:
      return decode_selfsync<Sym>(blob.stream, blob.codebook, {}, tally);
    case DecoderKind::kGapArray:
      return decode_gaparray<Sym>(blob.stream, blob.codebook, tally);
    case DecoderKind::kHost:
      break;
  }
  return decode_stream<Sym>(blob.stream, blob.codebook, 0);
}

template EncodedStream encode_with_codebook<u8>(std::span<const u8>,
                                                const Codebook&,
                                                const PipelineConfig&,
                                                std::span<const u64>,
                                                PipelineReport*,
                                                const CancelToken*);
template EncodedStream encode_with_codebook<u16>(std::span<const u16>,
                                                 const Codebook&,
                                                 const PipelineConfig&,
                                                 std::span<const u64>,
                                                 PipelineReport*,
                                                 const CancelToken*);
template Compressed<u8> compress<u8>(std::span<const u8>,
                                     const PipelineConfig&, PipelineReport*,
                                     const CancelToken*);
template Compressed<u16> compress<u16>(std::span<const u16>,
                                       const PipelineConfig&, PipelineReport*,
                                       const CancelToken*);
template std::vector<u8> decompress<u8>(const Compressed<u8>&, int);
template std::vector<u16> decompress<u16>(const Compressed<u16>&, int);
template std::vector<u8> decode_auto<u8>(const EncodedStream&, const Codebook&,
                                         int, const CancelToken*);
template std::vector<u16> decode_auto<u16>(const EncodedStream&,
                                           const Codebook&, int,
                                           const CancelToken*);
template std::vector<u8> decompress_with<u8>(const Compressed<u8>&,
                                             DecoderKind, simt::MemTally*);
template std::vector<u16> decompress_with<u16>(const Compressed<u16>&,
                                               DecoderKind, simt::MemTally*);

}  // namespace parhuff
