#include "core/canonical.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace parhuff {

double Codebook::average_bits(std::span<const u64> freq) const {
  u64 total = 0;
  u64 weighted = 0;
  const std::size_t n = std::min<std::size_t>(freq.size(), cw.size());
  for (std::size_t s = 0; s < n; ++s) {
    total += freq[s];
    weighted += freq[s] * cw[s].len;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(weighted) / static_cast<double>(total);
}

u64 Codebook::kraft_scaled() const {
  u64 sum = 0;
  for (const Codeword& c : cw) {
    if (c.len > 0) sum += u64{1} << (max_len - c.len);
  }
  return sum;
}

std::string Codebook::validate() const {
  if (cw.size() != nbins) return "cw size mismatch";
  if (sorted_syms.empty()) {
    for (const Codeword& c : cw)
      if (c.len != 0) return "empty reverse table but codewords present";
    return {};
  }
  if (max_len == 0 || max_len > kMaxCodeLen) return "bad max_len";
  if (first.size() != max_len + 1 || count.size() != max_len + 1 ||
      entry.size() != max_len + 2) {
    return "metadata array sizes inconsistent with max_len";
  }
  // entry must be the prefix sum of count.
  u32 run = 0;
  for (unsigned l = 0; l <= max_len; ++l) {
    if (entry[l] != run) return "entry is not the prefix sum of count";
    run += count[l];
  }
  if (entry[max_len + 1] != run) return "entry tail mismatch";
  if (run != sorted_syms.size()) return "count total != reverse table size";

  // Per-level: codewords dense ascending from first[l]; level ranges
  // prefix-free against each other (canonical ordering property).
  u64 prev_first_end = 0;  // (first[L'] + count[L']) before shifting
  unsigned prev_l = 0;
  bool seen_level = false;
  for (unsigned l = 1; l <= max_len; ++l) {
    if (count[l] == 0) continue;
    if (count[l] > (u64{1} << l)) return "level overfull";
    u64 expect_first = seen_level ? prev_first_end << (l - prev_l) : 0;
    if (first[l] != expect_first) return "first[] breaks canonical recurrence";
    if (first[l] + count[l] > (u64{1} << l)) return "level exceeds code space";
    prev_first_end = first[l] + count[l];
    prev_l = l;
    seen_level = true;
    // Reverse/forward agreement for this level.
    for (u32 i = 0; i < count[l]; ++i) {
      const u32 sym = sorted_syms[entry[l] + i];
      if (sym >= nbins) return "reverse table symbol out of range";
      if (cw[sym].len != l) return "reverse table length disagreement";
      if (cw[sym].bits != first[l] + i) return "reverse table value disagreement";
    }
  }
  // Kraft equality for a complete code (a single-symbol alphabet uses a
  // 1-bit code and is deliberately incomplete).
  if (sorted_syms.size() > 1 && kraft_scaled() != (u64{1} << max_len)) {
    return "Kraft sum != 1";
  }
  return {};
}

namespace {
thread_local u64 g_canonize_ops = 0;
}

u64 canonize_last_op_count() { return g_canonize_ops; }

Codebook canonize_from_lengths(std::span<const u8> lens) {
  u64 ops = 0;
  Codebook cb;
  cb.nbins = static_cast<u32>(lens.size());
  cb.cw.assign(lens.size(), Codeword{});

  unsigned max_len = 0;
  std::size_t present = 0;
  for (u8 l : lens) {
    ++ops;
    if (l == 0) continue;
    if (l > kMaxCodeLen) throw std::invalid_argument("codeword too long");
    max_len = std::max<unsigned>(max_len, l);
    ++present;
  }
  if (present == 0) {
    cb.max_len = 0;
    g_canonize_ops = ops;
    return cb;
  }
  cb.max_len = max_len;
  cb.first.assign(max_len + 1, 0);
  cb.count.assign(max_len + 1, 0);
  cb.entry.assign(max_len + 2, 0);

  // Pass 1: per-length population (the "linear scanning" step).
  for (u8 l : lens) {
    ++ops;
    if (l) cb.count[l] += 1;
  }
  // Entry = prefix sum; First via the canonical recurrence; Kraft check.
  u64 kraft = 0;
  {
    u64 next_first = 0;
    unsigned prev_l = 0;
    bool seen = false;
    for (unsigned l = 1; l <= max_len; ++l) {
      ops += 2;
      if (cb.count[l] == 0) continue;
      next_first = seen ? (next_first << (l - prev_l)) : 0;
      cb.first[l] = next_first;
      next_first += cb.count[l];
      if (next_first > (u64{1} << l)) {
        throw std::invalid_argument("lengths violate Kraft inequality");
      }
      kraft += cb.count[l] * (u64{1} << (max_len - l));
      prev_l = l;
      seen = true;
    }
    u32 run = 0;
    for (unsigned l = 0; l <= max_len; ++l) {
      cb.entry[l] = run;
      run += cb.count[l];
    }
    cb.entry[max_len + 1] = run;
    if (present > 1 && kraft != (u64{1} << max_len)) {
      throw std::invalid_argument("lengths do not form a complete code");
    }
  }

  // Pass 2: the "loose radix sort by bitwidth" — counting-sort symbols into
  // the reverse table in (length, symbol) order, assigning canonical values.
  cb.sorted_syms.assign(present, 0);
  std::vector<u32> cursor(max_len + 1, 0);
  for (unsigned l = 1; l <= max_len; ++l) cursor[l] = cb.entry[l];
  for (std::size_t s = 0; s < lens.size(); ++s) {
    ops += 2;
    const u8 l = lens[s];
    if (l == 0) continue;
    const u32 pos = cursor[l]++;
    cb.sorted_syms[pos] = static_cast<u32>(s);
    cb.cw[s] = Codeword{cb.first[l] + (pos - cb.entry[l]), l};
  }
  g_canonize_ops = ops;
  return cb;
}

}  // namespace parhuff
