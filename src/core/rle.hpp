#pragma once
// Pre-Huffman run-length extraction for the fused lossy path (cuSZ+-style
// sparsification, src/lossy/fused.hpp). On smooth fields the Lorenzo
// quantizer emits the perfect-prediction code for the overwhelming
// majority of elements; Huffman already prices that code at 1 bit, so the
// remaining win is to pull *long runs* of it out of the stream entirely —
// 12 bytes of (pos, len) metadata instead of min_run+ bits — and Huffman
// only the residual. The extracted runs ride the container's checksummed
// "RLE1" optional field (core/format.hpp).
//
// RleAccumulator is the streaming half: the fused quantize loop push()es
// each code as it is produced and the accumulator maintains the residual
// stream, the run table and the residual histogram in one pass — the full
// code buffer is never materialized. rle_expand() is the decode half,
// re-validating the run table against the residual before allocating the
// output (deserialization already checked it once; defense in depth for
// callers that assemble streams in memory).

#include <cstddef>
#include <span>
#include <vector>

#include "core/encoded.hpp"
#include "util/types.hpp"

namespace parhuff {

class RleAccumulator {
 public:
  /// `run_symbol` is the code whose runs are extracted; `min_run` the
  /// threshold below which a run stays inline (0 disables extraction —
  /// every code lands in the residual). `freq` (histogram over the
  /// residual stream, sized nbins) is updated in place as codes arrive.
  RleAccumulator(u16 run_symbol, u32 min_run, std::vector<u64>& freq)
      : run_symbol_(run_symbol), min_run_(min_run), freq_(freq) {}

  void push(u16 code) {
    if (min_run_ != 0 && code == run_symbol_) {
      ++pending_;
      ++n_;
      return;
    }
    flush_pending(n_ - pending_);
    residual_.push_back(code);
    ++freq_[code];
    ++n_;
  }

  /// Flush the trailing run. Guarantees a non-empty residual: a stream
  /// that was one giant run keeps its final symbol inline, so the Huffman
  /// stage always has at least one symbol (and the run-table invariant
  /// n_runs < orig_symbols holds).
  void finish() {
    if (pending_ > 0 && residual_.empty() && pending_ >= min_run_) {
      --pending_;
      flush_pending(n_ - 1 - pending_);
      residual_.push_back(run_symbol_);
      ++freq_[run_symbol_];
      return;
    }
    flush_pending(n_ - pending_);
  }

  [[nodiscard]] const std::vector<u16>& residual() const { return residual_; }
  [[nodiscard]] std::vector<u16> take_residual() { return std::move(residual_); }
  [[nodiscard]] u64 pushed() const { return n_; }
  [[nodiscard]] std::size_t runs() const { return run_pos_.size(); }
  [[nodiscard]] u64 run_symbols() const { return removed_; }

  /// Attach the finished run table to `s` (no-op when no run was
  /// extracted, keeping the container on the RLE-less layout).
  void annotate(EncodedStream& s) {
    if (run_pos_.empty()) return;
    s.rle_symbol = run_symbol_;
    s.rle_orig_symbols = n_;
    s.rle_run_pos = std::move(run_pos_);
    s.rle_run_len = std::move(run_len_);
  }

 private:
  void flush_pending(u64 start) {
    if (pending_ == 0) return;
    if (pending_ >= min_run_) {
      // A run can exceed the u32 length field; split it (adjacent runs are
      // legal — validation only requires non-overlap).
      u64 left = pending_;
      while (left > 0) {
        const u64 take = left > 0xFFFFFFFFull ? 0xFFFFFFFFull : left;
        run_pos_.push_back(start);
        run_len_.push_back(static_cast<u32>(take));
        start += take;
        left -= take;
      }
      removed_ += pending_;
    } else {
      for (u64 i = 0; i < pending_; ++i) residual_.push_back(run_symbol_);
      freq_[run_symbol_] += pending_;
    }
    pending_ = 0;
  }

  u16 run_symbol_;
  u32 min_run_;
  std::vector<u64>& freq_;
  std::vector<u16> residual_;
  std::vector<u64> run_pos_;
  std::vector<u32> run_len_;
  u64 n_ = 0;        ///< codes pushed so far (original-stream length)
  u64 pending_ = 0;  ///< current open run of run_symbol_
  u64 removed_ = 0;  ///< symbols extracted into runs
};

/// Inverse: merge the residual symbols and the stream's run table back
/// into the original code sequence. Validates the table (same invariants
/// as the container parser) and throws std::runtime_error on any
/// violation.
[[nodiscard]] std::vector<u16> rle_expand(std::span<const u16> residual,
                                          const EncodedStream& s);

}  // namespace parhuff
