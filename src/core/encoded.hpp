#pragma once
// Chunked encoded-stream representation shared by all encoders.
//
// The input is split into chunks of 2^M symbols (coarse-grained chunking,
// §III-A: chunks map to thread blocks and make decoding parallel). Each
// chunk's bitstream is stored word-aligned at chunk_word_offset[c]; the
// per-chunk bit lengths are the "blockwise code len" array whose prefix sum
// places chunks ("coalescing copy" stage).
//
// The REDUCE-merge encoder adds an overflow section: groups of 2^r symbols
// whose merged codeword exceeded the cell width ("breaking points", §IV-C)
// are re-encoded into a side bitstream and indexed sparsely.
//
// Optionally a stream carries gap-array decode metadata (Rivera et al.,
// "Optimizing Huffman Decoding for Error-Bounded Lossy Compression on
// GPUs"): each chunk's bitstream is cut into fixed S-bit subsequences and
// the encoder records, per subsequence, the bit distance from the
// subsequence boundary to the first codeword boundary at/after it (the
// "gap") plus the number of codewords starting inside it. With both, every
// subsequence's decode start AND output offset are known up front, so a
// fully parallel per-chunk decode needs no synchronization passes at all
// (core/decode_gaparray.hpp). The metadata is an optional, versioned
// container field — streams without it decode exactly as before.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/bitstream.hpp"
#include "util/types.hpp"

namespace parhuff {

struct OverflowEntry {
  u32 chunk = 0;      ///< chunk index
  u32 group = 0;      ///< reduce-group index within the chunk
  u64 bit_offset = 0; ///< start bit within overflow_payload
  u32 bit_len = 0;
  u32 n_symbols = 0;  ///< symbols in the group (2^r, partial at the tail)
};

struct EncodedStream {
  u32 chunk_symbols = 0;   ///< N = 2^M symbols per chunk (last may be short)
  std::size_t n_symbols = 0;

  std::vector<word_t> payload;
  std::vector<u64> chunk_bits;         ///< main-stream bits per chunk
  std::vector<u64> chunk_word_offset;  ///< payload word index per chunk

  /// Reduce factor r used by the reduce/shuffle encoder (0 for the
  /// baseline encoders — no grouping, no overflow possible).
  u32 reduce_factor = 0;
  /// Per-chunk reduce factors from the adaptive encoder (the paper's §VII
  /// future-work extension). Empty → uniform reduce_factor everywhere.
  std::vector<u8> chunk_reduce;
  std::vector<word_t> overflow_payload;
  u64 overflow_bits = 0;
  /// Sorted by (chunk, group).
  std::vector<OverflowEntry> overflow;

  /// Sentinel gap value: no codeword starts inside this subsequence (only
  /// possible in a short tail subsequence, or throughout overflow-bearing
  /// chunks, which the gap-array decoder skips).
  static constexpr u8 kNoGap = 0xFF;

  /// Gap-array metadata (annotate_gaps). 0 → absent. When set, `gaps` and
  /// `gap_counts` hold one entry per S-bit subsequence, concatenated in
  /// chunk order: gaps[i] is the bit distance from the subsequence boundary
  /// to the first codeword starting at/after it (kNoGap sentinel when
  /// none), gap_counts[i] the number of codewords starting inside it.
  u32 gap_subseq_bits = 0;
  std::vector<u8> gaps;
  std::vector<u16> gap_counts;

  [[nodiscard]] bool has_gaps() const { return gap_subseq_bits != 0; }

  /// RLE/sparsification side channel (cuSZ+-style, src/lossy/fused.hpp):
  /// long runs of one dominant symbol (the lossy quantizer's
  /// perfect-prediction code) are extracted *before* Huffman, so the
  /// encoded stream holds only the residual symbols. `rle_orig_symbols` is
  /// the pre-extraction symbol count (0 → no RLE, the stream is the whole
  /// payload); `rle_run_pos[k]` is the original-stream index where a run
  /// of `rle_run_len[k]` copies of `rle_symbol` was removed. Runs are
  /// ascending and non-overlapping, and sum(rle_run_len) + n_symbols ==
  /// rle_orig_symbols — enforced when the metadata is deserialized
  /// (format.cpp) and again by rle_expand (core/rle.hpp). Carried as the
  /// checksummed optional container field "RLE1" under the same evolution
  /// rules as the gap metadata above.
  u32 rle_symbol = 0;
  u64 rle_orig_symbols = 0;
  std::vector<u64> rle_run_pos;
  std::vector<u32> rle_run_len;

  [[nodiscard]] bool has_rle() const { return rle_orig_symbols != 0; }

  /// Subsequences of chunk `c` under the stream's gap granularity.
  [[nodiscard]] std::size_t gap_subsequences(std::size_t c) const {
    if (gap_subseq_bits == 0 || chunk_bits[c] == 0) return 0;
    return static_cast<std::size_t>(
        (chunk_bits[c] + gap_subseq_bits - 1) / gap_subseq_bits);
  }

  [[nodiscard]] std::size_t chunks() const { return chunk_bits.size(); }

  [[nodiscard]] u64 total_payload_bits() const {
    u64 t = 0;
    for (u64 b : chunk_bits) t += b;
    return t + overflow_bits;
  }

  /// Compressed size in bytes as stored (word-aligned chunks + overflow +
  /// per-chunk metadata).
  [[nodiscard]] std::size_t stored_bytes() const {
    return payload.size() * sizeof(word_t) +
           overflow_payload.size() * sizeof(word_t) +
           chunk_bits.size() * sizeof(u64) +
           overflow.size() * sizeof(OverflowEntry) + gaps.size() * sizeof(u8) +
           gap_counts.size() * sizeof(u16) + rle_run_pos.size() * sizeof(u64) +
           rle_run_len.size() * sizeof(u32);
  }

  /// Fraction of symbols living in breaking groups.
  [[nodiscard]] double breaking_fraction() const {
    if (n_symbols == 0) return 0.0;
    u64 broken = 0;
    for (const auto& e : overflow) broken += e.n_symbols;
    return static_cast<double>(broken) / static_cast<double>(n_symbols);
  }

  /// Reduce-group size (symbols) in chunk `c`; 0 when no grouping is used.
  [[nodiscard]] std::size_t group_symbols(std::size_t c) const {
    const u32 r =
        c < chunk_reduce.size() ? chunk_reduce[c] : reduce_factor;
    return r > 0 ? (std::size_t{1} << r) : 0;
  }

  /// Number of symbols in chunk `c`.
  [[nodiscard]] std::size_t chunk_size(std::size_t c) const {
    const std::size_t begin = c * chunk_symbols;
    const std::size_t end = begin + chunk_symbols;
    return (end <= n_symbols ? end : n_symbols) - begin;
  }

  /// Bit reader over chunk `c`'s main stream. Throws std::out_of_range
  /// when the chunk's claimed extent does not fit inside payload — a
  /// deserialized stream is untrusted until every chunk passes this (and
  /// words_for_bits() alone cannot be trusted: near-2^64 bit counts wrap
  /// it to 0 words, which is why the check is against the bit count).
  [[nodiscard]] BitReader chunk_reader(std::size_t c) const {
    if (c >= chunk_bits.size() || c >= chunk_word_offset.size()) {
      throw std::out_of_range("EncodedStream: chunk index out of range");
    }
    const std::size_t w0 = static_cast<std::size_t>(chunk_word_offset[c]);
    const u64 bits = chunk_bits[c];
    if (w0 > payload.size() ||
        bits > static_cast<u64>(payload.size() - w0) * kWordBits) {
      throw std::out_of_range(
          "EncodedStream: chunk extent exceeds payload");
    }
    return BitReader(
        std::span<const word_t>(payload.data() + w0, words_for_bits(bits)),
        bits);
  }
};

/// Lay out per-chunk word offsets from chunk bit lengths (exclusive prefix
/// sum of word counts) and return the total words.
[[nodiscard]] std::size_t layout_chunks(EncodedStream& s);

}  // namespace parhuff
