#include "core/decode.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"

namespace parhuff {

template <typename Sym>
void decode_symbols(BitReader& br, const Codebook& cb, std::size_t count,
                    Sym* out, const CancelToken* cancel) {
  const unsigned max_len = cb.max_len;
  for (std::size_t k = 0; k < count; ++k) {
    // Cooperative poll, every 64 Ki symbols and at entry (k == 0) — the
    // same stride as histogram_serial (core/cancel.hpp).
    if (cancel && (k & 0xFFFFu) == 0) cancel->check();
    u64 v = 0;
    unsigned l = 0;
    for (;;) {
      if (br.exhausted() || l >= max_len + 1) {
        throw std::runtime_error("decode: corrupt stream");
      }
      v = (v << 1) | br.bit();
      ++l;
      if (l <= max_len && cb.count[l] != 0 && v >= cb.first[l] &&
          v - cb.first[l] < cb.count[l]) {
        const u32 sym =
            cb.sorted_syms[cb.entry[l] + static_cast<u32>(v - cb.first[l])];
        out[k] = static_cast<Sym>(sym);
        break;
      }
    }
  }
}

namespace {

/// Chunk → overflow-entry run boundaries (entries sorted by chunk, group).
std::vector<std::size_t> overflow_runs(const EncodedStream& s) {
  const std::size_t chunks = s.chunks();
  std::vector<std::size_t> ovf_begin(chunks + 1, s.overflow.size());
  std::size_t e = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    ovf_begin[c] = e;
    while (e < s.overflow.size() && s.overflow[e].chunk == c) ++e;
  }
  ovf_begin[chunks] = e;
  if (e != s.overflow.size()) {
    throw std::runtime_error("decode: overflow entries out of order");
  }
  return ovf_begin;
}

/// Decode all of chunk `c` into `dst` (which must hold chunk_size(c)
/// symbols), splicing overflow groups from the side stream.
template <typename Sym>
void decode_chunk(const EncodedStream& s, const Codebook& cb,
                  const std::vector<std::size_t>& ovf_begin, std::size_t c,
                  Sym* dst, const CancelToken* cancel) {
  const std::size_t nc = s.chunk_size(c);
  BitReader br = s.chunk_reader(c);
  const std::size_t e0 = ovf_begin[c];
  const std::size_t e1 = ovf_begin[c + 1];
  if (e0 == e1) {
    decode_symbols(br, cb, nc, dst, cancel);
    return;
  }
  const std::size_t group_syms = s.group_symbols(c);
  BitReader obr(std::span<const word_t>(s.overflow_payload.data(),
                                        s.overflow_payload.size()),
                static_cast<u64>(s.overflow_payload.size()) * kWordBits);
  std::size_t e = e0;
  std::size_t i = 0;
  while (i < nc) {
    const std::size_t group = i / group_syms;
    if (e < e1 && s.overflow[e].group == group) {
      const OverflowEntry& entry = s.overflow[e];
      obr.seek(entry.bit_offset);
      decode_symbols(obr, cb, entry.n_symbols, dst + i, cancel);
      i += entry.n_symbols;
      ++e;
    } else {
      const std::size_t next =
          std::min<std::size_t>((group + 1) * group_syms, nc);
      decode_symbols(br, cb, next - i, dst + i, cancel);
      i = next;
    }
  }
  if (e != e1) {
    throw std::runtime_error("decode: unconsumed overflow entries");
  }
}

}  // namespace

template <typename Sym>
std::vector<Sym> decode_stream(const EncodedStream& s, const Codebook& cb,
                               int threads, const CancelToken* cancel) {
  std::vector<Sym> out(s.n_symbols);
  if (s.n_symbols == 0) return out;
  const std::vector<std::size_t> ovf_begin = overflow_runs(s);
  parallel_for(
      s.chunks(),
      [&](std::size_t c) {
        decode_chunk(s, cb, ovf_begin, c, out.data() + c * s.chunk_symbols,
                     cancel);
      },
      threads);
  return out;
}

template <typename Sym>
std::vector<Sym> decode_range(const EncodedStream& s, const Codebook& cb,
                              std::size_t first, std::size_t count,
                              int threads, const CancelToken* cancel) {
  if (first + count < first || first + count > s.n_symbols) {
    throw std::out_of_range("decode_range: range exceeds stream");
  }
  std::vector<Sym> out(count);
  if (count == 0) return out;
  const std::vector<std::size_t> ovf_begin = overflow_runs(s);

  const std::size_t c0 = first / s.chunk_symbols;
  const std::size_t c1 = (first + count - 1) / s.chunk_symbols;
  parallel_for(
      c1 - c0 + 1,
      [&](std::size_t k) {
        const std::size_t c = c0 + k;
        const std::size_t chunk_begin = c * s.chunk_symbols;
        const std::size_t nc = s.chunk_size(c);
        // Intersection of the chunk with the requested range.
        const std::size_t lo = std::max(first, chunk_begin);
        const std::size_t hi =
            std::min(first + count, chunk_begin + nc);
        if (lo >= hi) return;
        if (lo == chunk_begin && hi == chunk_begin + nc) {
          decode_chunk(s, cb, ovf_begin, c, out.data() + (lo - first),
                       cancel);
          return;
        }
        // Partial chunk: decode it into scratch, copy the slice. (Huffman
        // streams have no sub-chunk entry points.)
        std::vector<Sym> scratch(nc);
        decode_chunk(s, cb, ovf_begin, c, scratch.data(), cancel);
        std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lo -
                                                                chunk_begin),
                  scratch.begin() + static_cast<std::ptrdiff_t>(hi -
                                                                chunk_begin),
                  out.begin() + static_cast<std::ptrdiff_t>(lo - first));
      },
      threads);
  return out;
}

template void decode_symbols<u8>(BitReader&, const Codebook&, std::size_t,
                                 u8*, const CancelToken*);
template void decode_symbols<u16>(BitReader&, const Codebook&, std::size_t,
                                  u16*, const CancelToken*);
template std::vector<u8> decode_stream<u8>(const EncodedStream&,
                                           const Codebook&, int,
                                           const CancelToken*);
template std::vector<u16> decode_stream<u16>(const EncodedStream&,
                                             const Codebook&, int,
                                             const CancelToken*);
template std::vector<u8> decode_range<u8>(const EncodedStream&,
                                          const Codebook&, std::size_t,
                                          std::size_t, int,
                                          const CancelToken*);
template std::vector<u16> decode_range<u16>(const EncodedStream&,
                                            const Codebook&, std::size_t,
                                            std::size_t, int,
                                            const CancelToken*);

}  // namespace parhuff
