#pragma once
// Little-endian byte-buffer writer/reader shared by the container format
// and the streaming framing. The reader is bounds-checked and throws
// std::runtime_error on truncation — every deserializer builds on that.

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace parhuff {

class ByteWriter {
 public:
  template <typename T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(buf_.data() + at, &v, sizeof(T));
  }

  template <typename T>
  void put_array(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (v.empty()) return;
    const std::size_t at = buf_.size();
    buf_.resize(at + v.size() * sizeof(T));
    std::memcpy(buf_.data() + at, v.data(), v.size() * sizeof(T));
  }

  void put_bytes(std::span<const u8> v) { put_array(v); }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  std::vector<u8> take() { return std::move(buf_); }

 private:
  std::vector<u8> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    need(sizeof(T));
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> get_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    need(n * sizeof(T));
    std::vector<T> v(n);
    std::memcpy(v.data(), bytes_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  /// View of the next n bytes without copying; advances the cursor.
  std::span<const u8> get_view(std::size_t n) {
    need(n);
    auto v = bytes_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) {
    if (n > bytes_.size() - pos_) {
      throw std::runtime_error("parhuff container: truncated input");
    }
    // (pos_ <= size always; n > remaining covers overflow-safe check)
  }
  std::span<const u8> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace parhuff
