#pragma once
// Cooperative cancellation + deadline token for the pipeline stages.
//
// A CancelToken is shared between a controller (the service layer, or a
// test) and the thread(s) running pipeline work. The kernels poll it at
// natural cooperative boundaries — once per chunk in the encoders, once
// per block partition in the histogram, once per reduce round in the
// parallel codebook builder — and abandon the stage by throwing. The
// no-cancel/no-deadline hot path is a single relaxed atomic load per poll.
//
// Two ways a token fires:
//  * request()                — explicit cancellation; polls throw
//                               OperationCancelled.
//  * arm_deadline(at, clock)  — deadline; a poll that observes
//                               clock.now() >= at latches the expiry and
//                               throws DeadlineExpired. The clock is
//                               injectable (util::Clock) so tests can
//                               expire a deadline mid-kernel without
//                               sleeping (util::VirtualClock).
//
// Thread-safety: request()/check()/requested() may race freely. The one
// ordering contract is that arm_deadline() must happen-before the token is
// shared with the worker threads (the service arms at submit time, before
// the request is published through the queue mutex).
//
// Inside simt::launch / util::parallel_for regions a thrown poll is
// captured by the first-error slot and rethrown after the region — blocks
// already past their poll point finish their slice, which matches the GPU
// reality that a kernel in flight can only stop at cooperative boundaries.

#include <atomic>
#include <stdexcept>

#include "util/clock.hpp"

namespace parhuff {

/// Work was abandoned at a poll point because CancelToken::request() was
/// called (explicit cancellation).
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled()
      : std::runtime_error("parhuff: pipeline operation cancelled") {}
};

/// Work was abandoned at a poll point because the token's armed deadline
/// passed. The service layer translates this to svc::DeadlineExceeded.
class DeadlineExpired : public std::runtime_error {
 public:
  DeadlineExpired()
      : std::runtime_error("parhuff: stage deadline expired mid-kernel") {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request explicit cancellation. Idempotent; an already-expired token
  /// stays expired (both abandon work — only the reported type differs).
  void request() {
    int s = state_.load(std::memory_order_relaxed);
    do {
      if (s == kCancelled || s == kExpired) return;
    } while (!state_.compare_exchange_weak(s, kCancelled,
                                           std::memory_order_release,
                                           std::memory_order_relaxed));
  }

  /// Arm a deadline read against `clock`. Call before sharing the token;
  /// a no-op if the token was already cancelled. `clock` must outlive the
  /// token's last poll.
  void arm_deadline(util::Clock::time_point at, const util::Clock& clock) {
    at_ = at;
    clock_ = &clock;
    int expect = kIdle;
    state_.compare_exchange_strong(expect, kArmed, std::memory_order_release,
                                   std::memory_order_relaxed);
  }

  /// True once the token would throw: cancelled, expired, or armed with a
  /// deadline that has passed.
  [[nodiscard]] bool requested() const {
    const int s = state_.load(std::memory_order_relaxed);
    if (s == kIdle) return false;
    if (s == kArmed) return expired_now();
    return true;  // kCancelled / kExpired
  }

  /// The poll point. Hot path (idle token) is one relaxed load. Throws
  /// OperationCancelled or DeadlineExpired.
  void check() const {
    const int s = state_.load(std::memory_order_relaxed);
    if (s == kIdle) return;
    slow_check(s);
  }

 private:
  enum : int { kIdle = 0, kArmed = 1, kCancelled = 2, kExpired = 3 };

  /// Evaluates an armed deadline and latches kExpired so later polls skip
  /// the clock read.
  [[nodiscard]] bool expired_now() const {
    if (clock_->now() < at_) return false;
    int expect = kArmed;
    state_.compare_exchange_strong(expect, kExpired, std::memory_order_relaxed,
                                   std::memory_order_relaxed);
    return true;
  }

  [[noreturn]] static void throw_for(int s) {
    if (s == kCancelled) throw OperationCancelled{};
    throw DeadlineExpired{};
  }

  void slow_check(int s) const {
    if (s == kArmed) {
      if (!expired_now()) return;
      s = state_.load(std::memory_order_relaxed);  // kExpired, or a racing
                                                   // kCancelled — honor it
    }
    throw_for(s);
  }

  mutable std::atomic<int> state_{kIdle};
  util::Clock::time_point at_{};
  const util::Clock* clock_ = nullptr;
};

}  // namespace parhuff
