#include "core/rle.hpp"

#include <stdexcept>

namespace parhuff {

std::vector<u16> rle_expand(std::span<const u16> residual,
                            const EncodedStream& s) {
  if (!s.has_rle()) {
    return std::vector<u16>(residual.begin(), residual.end());
  }
  const u64 orig = s.rle_orig_symbols;
  if (s.rle_run_pos.size() != s.rle_run_len.size()) {
    throw std::runtime_error("rle_expand: run table size mismatch");
  }
  u64 removed = 0;
  u64 next_free = 0;
  for (std::size_t k = 0; k < s.rle_run_pos.size(); ++k) {
    const u64 pos = s.rle_run_pos[k];
    const u64 len = s.rle_run_len[k];
    if (len == 0 || pos < next_free || pos > orig || len > orig - pos) {
      throw std::runtime_error("rle_expand: run out of range");
    }
    next_free = pos + len;
    removed += len;
  }
  if (removed + static_cast<u64>(residual.size()) != orig) {
    throw std::runtime_error("rle_expand: symbol-count mismatch");
  }

  std::vector<u16> out(static_cast<std::size_t>(orig));
  std::size_t r = 0;    // next residual symbol
  std::size_t at = 0;   // next output index
  for (std::size_t k = 0; k < s.rle_run_pos.size(); ++k) {
    const std::size_t pos = static_cast<std::size_t>(s.rle_run_pos[k]);
    while (at < pos) out[at++] = residual[r++];
    const std::size_t end = at + s.rle_run_len[k];
    while (at < end) out[at++] = static_cast<u16>(s.rle_symbol);
  }
  while (at < out.size()) out[at++] = residual[r++];
  return out;
}

}  // namespace parhuff
