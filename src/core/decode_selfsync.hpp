#pragma once
// Self-synchronizing fine-grained parallel decoder, after Weißenberger &
// Schmidt's CUHD ("Massively Parallel Huffman Decoding on GPUs", ICPP'18)
// — the decode-side counterpart the paper cites in §VI.
//
// Chunk-level decoding (decode_simt) is limited to one thread per chunk.
// CUHD's observation: Huffman streams self-synchronize — a decoder started
// at an arbitrary bit offset usually locks onto the true codeword
// boundaries within a few codewords. The kernel exploits it per chunk:
//
//   1. The chunk's bitstream is cut into fixed S-bit subsequences; one
//      thread per subsequence decodes from its tentative start (bit i·S)
//      and records where it crossed into subsequence i+1 and how many
//      symbols it produced.
//   2. Synchronization passes: thread i+1's true start is thread i's
//      recorded exit. Each pass re-decodes every subsequence whose start
//      was corrected; passes repeat until a fixpoint (typically 1-3
//      passes — measured in SelfSyncStats::sync_passes).
//   3. An exclusive scan over per-subsequence symbol counts gives every
//      subsequence's output position; the final pass writes symbols.
//
// The functional result is bit-exact with the sequential decoder (tested
// against it); the win on hardware is 2^s-way parallelism inside every
// chunk. Chunks containing overflow (breaking) groups fall back to the
// sequential per-chunk path — the side stream interrupts the main
// bitstream, which breaks the self-synchronization argument.

#include <span>
#include <vector>

#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

struct SelfSyncConfig {
  /// Subsequence size in bits. Must comfortably exceed the longest
  /// codeword; 4x the paper's typical bitwidths works well.
  u32 subseq_bits = 256;
};

struct SelfSyncStats {
  u64 subsequences = 0;
  u64 sync_passes = 0;       ///< total correction passes across chunks
  u64 max_chunk_passes = 0;  ///< worst chunk
  u64 fallback_chunks = 0;   ///< chunks decoded sequentially (overflow)
};

template <typename Sym>
[[nodiscard]] std::vector<Sym> decode_selfsync(
    const EncodedStream& s, const Codebook& cb,
    const SelfSyncConfig& cfg = {}, simt::MemTally* tally = nullptr,
    SelfSyncStats* stats = nullptr);

extern template std::vector<u8> decode_selfsync<u8>(const EncodedStream&,
                                                    const Codebook&,
                                                    const SelfSyncConfig&,
                                                    simt::MemTally*,
                                                    SelfSyncStats*);
extern template std::vector<u16> decode_selfsync<u16>(const EncodedStream&,
                                                      const Codebook&,
                                                      const SelfSyncConfig&,
                                                      simt::MemTally*,
                                                      SelfSyncStats*);

}  // namespace parhuff
