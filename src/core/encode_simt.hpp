#pragma once
// The two prior-work GPU encoding baselines (§III-B), run on the SIMT
// simulator:
//
//  * encode_coarse_simt — the cuSZ encoder: one thread per chunk, each
//    thread serially concatenating its chunk's codewords. Embarrassingly
//    parallel but memory-hostile: the lanes of a warp write into chunk-sized
//    strides, so nearly every useful byte costs a full 32 B sector (the
//    reason cuSZ measures only ~30 GB/s on a 900 GB/s part).
//
//  * encode_prefixsum_simt — the Rahmani et al. encoder: per-symbol
//    codeword lengths, a parallel prefix sum for bit offsets, then a
//    concurrent scatter of each codeword to its bit position. Fine-grained,
//    but each 1–2-bit codeword write still occupies its own transaction, so
//    bandwidth utilization collapses exactly when compression is good (the
//    paper's 37 GB/s at 1.03 avg bits).
//
// Both produce streams bit-identical to encode_serial.

#include <span>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

// `cancel` is polled once per chunk inside the fill kernels (and once per
// block in the sizing kernel) — see core/cancel.hpp.

template <typename Sym>
[[nodiscard]] EncodedStream encode_coarse_simt(std::span<const Sym> data,
                                               const Codebook& cb,
                                               u32 chunk_symbols = 1024,
                                               simt::MemTally* tally = nullptr,
                                               const CancelToken* cancel =
                                                   nullptr);

template <typename Sym>
[[nodiscard]] EncodedStream encode_prefixsum_simt(
    std::span<const Sym> data, const Codebook& cb, u32 chunk_symbols = 1024,
    simt::MemTally* tally = nullptr, const CancelToken* cancel = nullptr);

extern template EncodedStream encode_coarse_simt<u8>(std::span<const u8>,
                                                     const Codebook&, u32,
                                                     simt::MemTally*,
                                                     const CancelToken*);
extern template EncodedStream encode_coarse_simt<u16>(std::span<const u16>,
                                                      const Codebook&, u32,
                                                      simt::MemTally*,
                                                      const CancelToken*);
extern template EncodedStream encode_prefixsum_simt<u8>(std::span<const u8>,
                                                        const Codebook&, u32,
                                                        simt::MemTally*,
                                                        const CancelToken*);
extern template EncodedStream encode_prefixsum_simt<u16>(std::span<const u16>,
                                                         const Codebook&, u32,
                                                         simt::MemTally*,
                                                         const CancelToken*);

}  // namespace parhuff
