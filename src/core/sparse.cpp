#include "core/sparse.hpp"

#include "util/parallel.hpp"

namespace parhuff {

std::vector<u32> dense_to_sparse(std::span<const u8> mask,
                                 simt::MemTally* tally) {
  const std::size_t n = mask.size();
  // Pass 1: per-piece counts; pass 2: scan; pass 3: scatter. Piece count is
  // fixed so the scan stays tiny.
  constexpr std::size_t kPieces = 64;
  std::vector<std::size_t> counts(kPieces, 0);
  const std::size_t per = (n + kPieces - 1) / kPieces;
  parallel_for(kPieces, [&](std::size_t p) {
    const std::size_t begin = p * per;
    const std::size_t end = begin + per < n ? begin + per : n;
    std::size_t c = 0;
    for (std::size_t i = begin; i < end; ++i) c += mask[i] ? 1 : 0;
    counts[p] = c;
  });
  std::size_t total = 0;
  for (auto& c : counts) {
    const std::size_t v = c;
    c = total;
    total += v;
  }
  std::vector<u32> out(total);
  parallel_for(kPieces, [&](std::size_t p) {
    const std::size_t begin = p * per;
    const std::size_t end = begin + per < n ? begin + per : n;
    std::size_t cursor = counts[p];
    for (std::size_t i = begin; i < end; ++i) {
      if (mask[i]) out[cursor++] = static_cast<u32>(i);
    }
  });
  if (tally) {
    tally->kernel_launches += 2;
    tally->global_read(2 * n, 1, simt::Pattern::kCoalesced);
    tally->global_write(total, 4, simt::Pattern::kCoalesced);
    tally->ops(2 * n);
  }
  return out;
}

}  // namespace parhuff
