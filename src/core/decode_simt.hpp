#pragma once
// GPU-style chunk-parallel decoder.
//
// The paper's coarse-grained chunking exists partly "because it will
// facilitate the reverse process, decoding" (§III-A): each chunk's
// bitstream is self-contained, so decoding is embarrassingly parallel at
// chunk granularity. This kernel maps one thread to one chunk (as cuSZ
// decodes), stages the treeless decoder state — First/Entry/count plus the
// reverse codebook — in shared memory per block, and walks each chunk's
// bits sequentially. The tally records the access profile (strided payload
// reads, coalesced-but-thread-owned output writes), which is what bounds
// decode throughput on real hardware.

#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

/// `cancel` is polled cooperatively at every chunk entry (one poll per
/// simulated thread) and every 64 Ki symbols inside the bit walk; a fired
/// token aborts the launch by throwing OperationCancelled/DeadlineExpired.
template <typename Sym>
[[nodiscard]] std::vector<Sym> decode_simt(const EncodedStream& s,
                                           const Codebook& cb,
                                           simt::MemTally* tally = nullptr,
                                           const CancelToken* cancel =
                                               nullptr);

extern template std::vector<u8> decode_simt<u8>(const EncodedStream&,
                                                const Codebook&,
                                                simt::MemTally*,
                                                const CancelToken*);
extern template std::vector<u16> decode_simt<u16>(const EncodedStream&,
                                                  const Codebook&,
                                                  simt::MemTally*,
                                                  const CancelToken*);

}  // namespace parhuff
