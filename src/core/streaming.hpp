#pragma once
// Bounded-memory, multi-segment compression — the shape HPC integrations
// actually use (the paper's §I motivation: compress simulation output *as
// it streams*, timestep by timestep, without holding the run in memory).
//
// Two-pass protocol with one shared codebook:
//
//   StreamingCompressor<u16> sc(cfg);
//   for (auto seg : segments) sc.observe(seg);     // pass 1: histogram only
//   sc.freeze();                                   // build the codebook
//   sink(sc.header());                             // magic + codebook, once
//   for (auto seg : segments) sink(sc.encode_segment(seg));  // pass 2
//
//   StreamingDecompressor<u16> sd(header_bytes);
//   for (...) out += sd.decode_segment(frame);
//
// Segments are independent framed stream sections (u32 frame magic +
// u64 length + stream section), so a reader can skip, parallelize across,
// or re-order segments; the codebook travels once. observe/encode may also
// be interleaved per timestep when the caller pre-trains the histogram on
// representative data and calls freeze() early — encode_segment only
// requires frozen state.
//
// Compressor state machine (two states, transitions throw std::logic_error
// when taken from the wrong state):
//
//   OBSERVING  — the initial state. Valid: observe(), smooth(), reset(),
//                freeze() (requires at least one observed symbol).
//   FROZEN     — after freeze(). Valid: codebook(), header(),
//                encode_segment(), reset().
//
//   OBSERVING --freeze()--> FROZEN --reset()--> OBSERVING
//
// reset() returns the compressor to OBSERVING with a cleared histogram and
// no codebook, keeping the config: one compressor object can be reused for
// stream after stream (the service layer reuses per-session compressors
// this way) without reconstructing.

#include <span>
#include <vector>

#include "core/canonical.hpp"
#include "core/pipeline.hpp"
#include "util/types.hpp"

namespace parhuff {

template <typename Sym>
class StreamingCompressor {
 public:
  explicit StreamingCompressor(PipelineConfig cfg);

  /// Pass 1: accumulate the histogram. Invalid after freeze().
  void observe(std::span<const Sym> segment);

  /// Add-one (Laplace) smoothing: every zero-frequency bin gets a count
  /// of 1 before the codebook is built, so any symbol of the alphabet
  /// stays encodable at worst-case code length even if later segments
  /// drift beyond the training data. Call before freeze().
  void smooth();

  /// Build the codebook from everything observed. Throws if nothing was
  /// observed or if already frozen.
  void freeze();

  /// Return to the OBSERVING state for a new stream: clears the
  /// accumulated histogram and drops the codebook while keeping the
  /// config. Valid in any state.
  void reset();

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] const Codebook& codebook() const;

  /// The once-per-stream header: magic + symbol width + codebook section.
  [[nodiscard]] std::vector<u8> header() const;

  /// Pass 2: one framed segment. Symbols absent from the observed
  /// histogram throw (the codebook cannot encode them).
  [[nodiscard]] std::vector<u8> encode_segment(std::span<const Sym> segment);

 private:
  PipelineConfig cfg_;
  std::vector<u64> freq_;
  Codebook cb_;
  bool frozen_ = false;
};

template <typename Sym>
class StreamingDecompressor {
 public:
  /// Parses a header produced by StreamingCompressor::header().
  explicit StreamingDecompressor(std::span<const u8> header);

  [[nodiscard]] const Codebook& codebook() const { return cb_; }

  /// Decodes one framed segment (a frame produced by encode_segment).
  /// Const and touches only the immutable codebook, so segments of one
  /// stream can be decoded from many threads concurrently (tested in
  /// test_streaming).
  [[nodiscard]] std::vector<Sym> decode_segment(
      std::span<const u8> frame) const;

  /// Splits a concatenation of frames into individual frames (views into
  /// the input).
  [[nodiscard]] static std::vector<std::span<const u8>> split_frames(
      std::span<const u8> bytes);

 private:
  Codebook cb_;
};

extern template class StreamingCompressor<u8>;
extern template class StreamingCompressor<u16>;
extern template class StreamingDecompressor<u8>;
extern template class StreamingDecompressor<u16>;

}  // namespace parhuff
