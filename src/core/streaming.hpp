#pragma once
// Bounded-memory, multi-segment compression — the shape HPC integrations
// actually use (the paper's §I motivation: compress simulation output *as
// it streams*, timestep by timestep, without holding the run in memory).
//
// Two-pass protocol with one shared codebook:
//
//   StreamingCompressor<u16> sc(cfg);
//   for (auto seg : segments) sc.observe(seg);     // pass 1: histogram only
//   sc.freeze();                                   // build the codebook
//   sink(sc.header());                             // magic + codebook, once
//   for (auto seg : segments) sink(sc.encode_segment(seg));  // pass 2
//
//   StreamingDecompressor<u16> sd(header_bytes);
//   for (...) out += sd.decode_segment(frame);
//
// Segments are independent framed stream sections (u32 frame magic +
// u64 length + stream section), so a reader can skip, parallelize across,
// or re-order segments; the codebook travels once. observe/encode may also
// be interleaved per timestep when the caller pre-trains the histogram on
// representative data and calls freeze() early — encode_segment only
// requires frozen state.
//
// Compressor state machine (two states, transitions throw std::logic_error
// when taken from the wrong state):
//
//   OBSERVING  — the initial state. Valid: observe(), smooth(), reset(),
//                freeze() (requires at least one observed symbol).
//   FROZEN     — after freeze(). Valid: codebook(), header(),
//                encode_segment(), reset().
//
//   OBSERVING --freeze()--> FROZEN --reset()--> OBSERVING
//
// reset() returns the compressor to OBSERVING with a cleared histogram and
// no codebook, keeping the config: one compressor object can be reused for
// stream after stream (the service layer reuses per-session compressors
// this way) without reconstructing.

#include <span>
#include <vector>

#include "core/canonical.hpp"
#include "core/pipeline.hpp"
#include "util/types.hpp"

namespace parhuff {

/// First four bytes of a StreamingCompressor header ("PHS2") — public so
/// callers (the RPC streaming verbs, the client's container sniffing) can
/// recognize a streamed container without parsing it.
inline constexpr char kStreamHeaderMagic[4] = {'P', 'H', 'S', '2'};

template <typename Sym>
class StreamingCompressor {
 public:
  explicit StreamingCompressor(PipelineConfig cfg);

  /// Pass 1: accumulate the histogram. Invalid after freeze().
  void observe(std::span<const Sym> segment);

  /// Add-one (Laplace) smoothing: every zero-frequency bin gets a count
  /// of 1 before the codebook is built, so any symbol of the alphabet
  /// stays encodable at worst-case code length even if later segments
  /// drift beyond the training data. Call before freeze().
  void smooth();

  /// Build the codebook from everything observed. Throws if nothing was
  /// observed or if already frozen.
  void freeze();

  /// Return to the OBSERVING state for a new stream: clears the
  /// accumulated histogram and drops the codebook while keeping the
  /// config. Valid in any state.
  void reset();

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] const Codebook& codebook() const;

  /// The once-per-stream header: magic + symbol width + codebook section.
  [[nodiscard]] std::vector<u8> header() const;

  /// Pass 2: one framed segment. Symbols absent from the observed
  /// histogram throw (the codebook cannot encode them). `cancel` follows
  /// the encode-side contract (checked at stage entry, polled per chunk
  /// inside the SIMT encoders) — the RPC streaming verbs thread the
  /// per-stream token through here.
  [[nodiscard]] std::vector<u8> encode_segment(
      std::span<const Sym> segment, const CancelToken* cancel = nullptr);

 private:
  PipelineConfig cfg_;
  std::vector<u64> freq_;
  Codebook cb_;
  bool frozen_ = false;
};

template <typename Sym>
class StreamingDecompressor {
 public:
  /// Parses a header produced by StreamingCompressor::header().
  explicit StreamingDecompressor(std::span<const u8> header);

  [[nodiscard]] const Codebook& codebook() const { return cb_; }

  /// Decodes one framed segment (a frame produced by encode_segment).
  /// Const and touches only the immutable codebook, so segments of one
  /// stream can be decoded from many threads concurrently (tested in
  /// test_streaming). `cancel` is polled per the decode-side contract
  /// (at least every 64 Ki symbols).
  [[nodiscard]] std::vector<Sym> decode_segment(
      std::span<const u8> frame, const CancelToken* cancel = nullptr) const;

  /// Splits a concatenation of frames into individual frames (views into
  /// the input).
  [[nodiscard]] static std::vector<std::span<const u8>> split_frames(
      std::span<const u8> bytes);

  /// Length in bytes of the stream header (magic + width + codebook) at
  /// the front of `bytes`. Throws std::runtime_error when the prefix is
  /// not a parsable header for this symbol width — including the
  /// truncated case, so incremental readers treat a throw as "need more
  /// bytes" until their own buffering bound says otherwise. This is what
  /// lets the RPC streaming verbs find the header/segment boundary in a
  /// chunked byte stream without a copy.
  [[nodiscard]] static std::size_t header_length(std::span<const u8> bytes);

  /// Incremental frame scan: `bytes` starts at a frame boundary. Returns
  /// false when fewer than the frame-preamble bytes are available (need
  /// more data); otherwise validates the frame magic (throwing
  /// std::runtime_error on a mismatch) and sets `*total` to the whole
  /// frame's byte length (preamble + body). The caller decides whether
  /// `*total` is within its buffering bound and whether that many bytes
  /// have arrived yet.
  [[nodiscard]] static bool frame_length(std::span<const u8> bytes,
                                         std::size_t* total);

 private:
  Codebook cb_;
};

extern template class StreamingCompressor<u8>;
extern template class StreamingCompressor<u16>;
extern template class StreamingDecompressor<u8>;
extern template class StreamingDecompressor<u16>;

}  // namespace parhuff
