#include "core/encode_reduceshuffle.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/codeword.hpp"
#include "core/sparse.hpp"
#include "simt/block.hpp"

namespace parhuff {

namespace {

struct ChunkOverflow {
  std::vector<word_t> words;
  u64 bits = 0;
  std::vector<OverflowEntry> entries;  // bit_offset local to this chunk
};

}  // namespace

template <typename Sym>
EncodedStream encode_reduceshuffle_simt(std::span<const Sym> data,
                                        const Codebook& cb,
                                        const ReduceShuffleConfig& cfg,
                                        simt::MemTally* tally,
                                        ReduceShuffleStats* stats,
                                        const CancelToken* cancel) {
  // 2^12 x 16-byte merge cells fill 64 KiB of the 96 KiB shared-memory
  // budget; the paper's sweep tops out at magnitude 12 for the same reason.
  if (cfg.magnitude < 1 || cfg.magnitude > 12) {
    throw std::invalid_argument("magnitude must be in [1, 12]");
  }
  if (cfg.reduce_factor < 1 || cfg.reduce_factor > cfg.magnitude) {
    throw std::invalid_argument("reduce factor must be in [1, magnitude]");
  }
  const u32 M = cfg.magnitude;
  const u32 r = cfg.reduce_factor;
  const u32 s = M - r;
  const std::size_t N = std::size_t{1} << M;       // symbols per chunk
  const std::size_t group_syms = std::size_t{1} << r;
  const std::size_t n_cells = std::size_t{1} << s;  // cells after reduce

  EncodedStream out;
  out.chunk_symbols = static_cast<u32>(N);
  out.n_symbols = data.size();
  out.reduce_factor = r;
  const std::size_t chunks = (data.size() + N - 1) / N;
  out.chunk_bits.assign(chunks, 0);
  if (chunks == 0) return out;

  // Workspace: every chunk's dense bitstream fits in 2^s cells (§IV-C),
  // plus one slack cell for the batch move's spill write.
  std::vector<word_t> work(chunks * (n_cells + 1), 0);
  std::vector<ChunkOverflow> chunk_ovf(chunks);

  // Codebook resident in cache: one coalesced pull per launch.
  if (tally) {
    tally->global_read(cb.cw.size(), sizeof(Codeword),
                       simt::Pattern::kCoalesced);
  }

  simt::launch(
      static_cast<int>(chunks),
      static_cast<int>(std::clamp<std::size_t>(n_cells, 32, 1024)), tally,
      [&](simt::BlockCtx& blk) {
        const std::size_t c = static_cast<std::size_t>(blk.block_id());
        // Cooperative poll, once per chunk (= one block; core/cancel.hpp).
        if (cancel) cancel->check();
        const std::size_t begin = c * N;
        const std::size_t end = std::min(begin + N, data.size());
        const std::size_t nc = end - begin;

        auto cells = blk.shared_array<MergedCell<kWordBits>>(N);
        auto& t = blk.tally();

        // --- Lookup: codeword per slot (one thread per symbol). ----------
        for (std::size_t i = 0; i < N; ++i) {
          if (i < nc) {
            const Codeword cw =
                cb.cw[static_cast<std::size_t>(data[begin + i])];
            if (cw.len == 0) throw std::runtime_error("symbol absent");
            cells[i] = MergedCell<kWordBits>{
                cw.bits, static_cast<u16>(cw.len), cw.len > kWordBits};
          } else {
            cells[i] = MergedCell<kWordBits>{};
          }
        }
        t.global_read(nc, sizeof(Sym), simt::Pattern::kCoalesced);
        t.shared_access(N, 12);  // codebook lookups + cell writes
        t.ops(N * 8);
        blk.sync();

        // --- REDUCE-merge: r in-place pairwise iterations (Fig. 1). ------
        for (u32 it = 1; it <= r; ++it) {
          const std::size_t active = N >> it;
          for (std::size_t k = 0; k < active; ++k) {
            MergedCell<kWordBits> m = cells[2 * k];
            m.append(cells[2 * k + 1]);
            cells[k] = m;
          }
          t.shared_access(active * 3, 12);
          // Active threads halve each iteration, but retired lanes still
          // occupy their warps' issue slots until whole warps drain — the
          // "waste of parallelism" §IV-C describes — and later iterations
          // shift/or progressively wider accumulated operands. Charged as a
          // superlinear per-iteration slot cost (calibrated against
          // Table II's measured r-ordering; see DESIGN.md).
          t.ops(N * 3 * static_cast<u64>(it) * it / 2);
          blk.sync();
        }

        // --- Breaking points: mask, dense→sparse, backtrace. -------------
        std::vector<u8> mask(n_cells, 0);
        [[maybe_unused]] const std::size_t groups_in_chunk = (nc + group_syms - 1) / group_syms;
        for (std::size_t g = 0; g < n_cells; ++g) {
          mask[g] = cells[g].breaking ? 1 : 0;
        }
        const std::vector<u32> broken = dense_to_sparse(mask, nullptr);
        if (!broken.empty()) {
          auto& ovf = chunk_ovf[c];
          BitWriter bw(ovf.words);
          for (const u32 g : broken) {
            assert(g < groups_in_chunk);
            const std::size_t gb = begin + g * group_syms;
            const std::size_t ge = std::min(gb + group_syms, end);
            OverflowEntry e;
            e.chunk = static_cast<u32>(c);
            e.group = g;
            e.bit_offset = bw.bits();
            e.n_symbols = static_cast<u32>(ge - gb);
            for (std::size_t i = gb; i < ge; ++i) {
              const Codeword cw =
                  cb.cw[static_cast<std::size_t>(data[i])];
              bw.put(cw.bits, cw.len);
            }
            e.bit_len = static_cast<u32>(bw.bits() - e.bit_offset);
            ovf.entries.push_back(e);
            cells[g] = MergedCell<kWordBits>{};  // zero bits in main stream
            // Backtrace reduction: re-read the group's source symbols.
            t.global_read(ge - gb, sizeof(Sym), simt::Pattern::kStrided);
            t.global_write((e.bit_len + 7) / 8, 1, simt::Pattern::kStrided);
          }
          ovf.bits = bw.bits();
          bw.finish_into_sink();
        }
        blk.sync();

        // --- SHUFFLE-merge: s batch-move iterations (Fig. 2). ------------
        word_t* buf = work.data() + c * (n_cells + 1);
        std::vector<u64> glen(n_cells, 0);
        for (std::size_t j = 0; j < n_cells; ++j) {
          const auto& cell = cells[j];
          glen[j] = cell.breaking ? 0 : cell.len;
          buf[j] = cell.len == 0
                       ? 0
                       : static_cast<word_t>(cell.bits
                                             << (kWordBits - cell.len));
        }
        t.shared_access(n_cells * 2, 8);
        std::vector<word_t> scratch((n_cells / 2) + 1, 0);
        for (u32 it = 1; it <= s; ++it) {
          const std::size_t half = std::size_t{1} << (it - 1);
          const std::size_t stride = half * 2;
          const std::size_t pairs = n_cells >> it;
          u64 moved_cells = 0;
          for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t base = p * stride;
            const u64 llen = glen[base];
            const u64 rlen = glen[base + half];
            if (rlen > 0) {
              const std::size_t rwords =
                  static_cast<std::size_t>(words_for_bits(rlen));
              // Two-step batch move via scratch: lift the right group out,
              // zero its cells (the left group's frontier grows into them),
              // then append at the left group's bit end.
              std::copy_n(buf + base + half, rwords, scratch.data());
              std::fill_n(buf + base + half, rwords, word_t{0});
              append_bits(buf + base, llen, scratch.data(), rlen);
              moved_cells += rwords;
            }
            glen[base] = llen + rlen;
          }
          // One thread per *cell slot*: a lane whose cell holds only a few
          // useful bits still executes the full two-step batch move, and
          // left/right groups diverge by a factor of two (§IV-C). This slot
          // cost — not the useful bits moved — is what makes an undersized
          // reduce factor expensive (Table II's r=2 column).
          t.shared_access(moved_cells * 3, sizeof(word_t));
          t.ops(n_cells * 32);
          t.divergent_branches += pairs;
          blk.sync();
        }
        out.chunk_bits[c] = glen[0];
      });

  // --- Coalescing copy: prefix-sum layout + contiguous chunk copy. -------
  out.payload.assign(layout_chunks(out), 0);
  simt::launch(static_cast<int>(chunks), 256, tally,
               [&](simt::BlockCtx& blk) {
                 const std::size_t c =
                     static_cast<std::size_t>(blk.block_id());
                 const std::size_t words = words_for_bits(out.chunk_bits[c]);
                 std::copy_n(work.data() + c * (n_cells + 1), words,
                             out.payload.data() + out.chunk_word_offset[c]);
                 blk.tally().global_read(words, sizeof(word_t),
                                         simt::Pattern::kCoalesced);
                 blk.tally().global_write(words, sizeof(word_t),
                                          simt::Pattern::kCoalesced);
               });

  // Merge per-chunk overflow sections (ascending chunk order).
  u64 ovf_bits = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto& ovf = chunk_ovf[c];
    if (ovf.entries.empty()) continue;
    // Word-align each chunk's overflow section so the concatenation stays a
    // simple copy; entries get the global bit base added.
    const u64 base_bits = ovf_bits;
    for (OverflowEntry e : ovf.entries) {
      e.bit_offset += base_bits;
      out.overflow.push_back(e);
      if (stats) {
        stats->breaking_groups += 1;
        stats->breaking_symbols += e.n_symbols;
      }
    }
    out.overflow_payload.insert(out.overflow_payload.end(), ovf.words.begin(),
                                ovf.words.end());
    ovf_bits += static_cast<u64>(ovf.words.size()) * kWordBits;
  }
  out.overflow_bits = ovf_bits;
  if (stats) {
    stats->reduce_iterations = r;
    stats->shuffle_iterations = s;
  }
  return out;
}

template EncodedStream encode_reduceshuffle_simt<u8>(std::span<const u8>,
                                                     const Codebook&,
                                                     const ReduceShuffleConfig&,
                                                     simt::MemTally*,
                                                     ReduceShuffleStats*,
                                                     const CancelToken*);
template EncodedStream encode_reduceshuffle_simt<u16>(
    std::span<const u16>, const Codebook&, const ReduceShuffleConfig&,
    simt::MemTally*, ReduceShuffleStats*, const CancelToken*);

}  // namespace parhuff
