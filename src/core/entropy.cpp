#include "core/entropy.hpp"

#include <algorithm>
#include <cmath>

namespace parhuff {

double shannon_entropy(std::span<const u64> freq) {
  u64 total = 0;
  for (u64 f : freq) total += f;
  if (total == 0) return 0.0;
  double h = 0.0;
  const double dt = static_cast<double>(total);
  for (u64 f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / dt;
    h -= p * std::log2(p);
  }
  return h;
}

double average_bitwidth(const Codebook& cb, std::span<const u64> freq) {
  return cb.average_bits(freq);
}

u32 reduce_factor_rule(double avg_bits, unsigned word_bits) {
  if (avg_bits <= 0) return 1;
  u32 r = 1;
  while (avg_bits * static_cast<double>(u64{1} << (r + 1)) <
         static_cast<double>(word_bits)) {
    ++r;
  }
  return r;
}

u32 decide_reduce_factor(double avg_bits, u32 magnitude, unsigned word_bits) {
  // Operating-point deviation from the pure rule: keep a ~15% margin below
  // the cell width. Data sitting exactly on the boundary (merged width
  // within a bit of W) otherwise breaks on every slightly-dense group,
  // and the overflow metadata dwarfs the payload. The paper's own
  // operating points are unaffected (all its datasets clear the margin).
  const double budget = static_cast<double>(word_bits) * 0.85;
  u32 rule = 1;
  while (avg_bits > 0 &&
         avg_bits * static_cast<double>(u64{1} << (rule + 1)) < budget) {
    ++rule;
  }
  const u32 cap = std::min<u32>(3, magnitude > 1 ? magnitude - 1 : 1);
  return std::min(rule, cap);
}

}  // namespace parhuff
