#pragma once
// Codeword value type and the MERGE operation from §IV-C.

#include <cassert>

#include "util/types.hpp"

namespace parhuff {

/// A Huffman codeword: right-aligned numeric value + bit length.
/// len == 0 means "symbol absent from the codebook".
struct Codeword {
  u64 bits = 0;
  u8 len = 0;

  friend bool operator==(const Codeword&, const Codeword&) = default;
};

/// MERGE((a,l)_2k, (a,l)_2k+1) = (a_2k ⊕ a_2k+1, l_2k + l_2k+1): concatenate
/// the right codeword's bits after the left's. Non-commutative; `ok` is
/// false when the result would not fit the 64-bit register, which is the
/// in-register analogue of a breaking point.
struct MergeResult {
  Codeword cw;
  bool ok;
};

[[nodiscard]] inline MergeResult merge(Codeword left, Codeword right) {
  const unsigned total = static_cast<unsigned>(left.len) + right.len;
  if (total > 64) return {Codeword{}, false};
  // (left.bits << right.len) needs care when right.len == 64 (left must be
  // empty then, and the shift would be UB).
  const u64 merged =
      right.len == 64 ? right.bits : (left.bits << right.len) | right.bits;
  return {Codeword{merged, static_cast<u8>(total)}, true};
}

/// A merged run of codewords held in a fixed-width cell, as used by the
/// REDUCE-merge kernel. `width` is the cell width in bits (32 in the paper's
/// configuration); a run whose length exceeds the width is *breaking*.
template <unsigned Width>
struct MergedCell {
  static_assert(Width <= 64);
  u64 bits = 0;
  u16 len = 0;       ///< total bits; valid only when !breaking
  bool breaking = false;

  /// Append another cell's contents; marks breaking on overflow or if
  /// either side is already breaking.
  void append(const MergedCell& right) {
    if (breaking || right.breaking ||
        static_cast<unsigned>(len) + right.len > Width) {
      breaking = true;
      return;
    }
    bits = (right.len == 64) ? right.bits : (bits << right.len) | right.bits;
    len = static_cast<u16>(len + right.len);
  }
};

}  // namespace parhuff
