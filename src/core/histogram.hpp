#pragma once
// Histogramming (stage 1 of the pipeline, §IV-A).
//
// Three implementations:
//  * histogram_serial — reference.
//  * histogram_openmp — coarse-grained: per-thread private histograms over
//    contiguous chunks, tree-reduced. This is the multithreaded CPU
//    histogram of Table VI.
//  * histogram_simt   — the Gómez-Luna et al. GPU algorithm the paper uses:
//    each thread block keeps R replicated sub-histograms in shared memory
//    (R chosen from the shared-memory budget) to spread atomic conflicts;
//    threads stride the block's input partition, update replica
//    (tid mod R) with shared atomics, and finally the replicas are reduced
//    and flushed to the global histogram with global atomics. The paper's
//    footnote 3 notes 8192 symbols as the practical shared-memory limit —
//    above that the kernel degrades to direct global atomics, which the
//    tally makes visible.
//
// All three take an optional CancelToken polled cooperatively (serial:
// every 64Ki symbols; openmp: once per thread chunk; simt: once per block
// partition and per multipass round) — see core/cancel.hpp.

#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

template <typename Sym>
[[nodiscard]] std::vector<u64> histogram_serial(
    std::span<const Sym> data, std::size_t nbins,
    const CancelToken* cancel = nullptr);

template <typename Sym>
[[nodiscard]] std::vector<u64> histogram_openmp(
    std::span<const Sym> data, std::size_t nbins, int threads = 0,
    const CancelToken* cancel = nullptr);

struct SimtHistogramConfig {
  int grid_dim = 160;     ///< 2 blocks per SM on the V100
  int block_dim = 256;
  std::size_t shared_budget_bytes = 48 * 1024;  ///< shared memory per block
  /// Alphabets too large for one shared-memory copy (the paper's footnote-3
  /// 8192-symbol limit) are histogrammed in bin-range passes: pass p counts
  /// only bins [p·P, (p+1)·P) in shared memory and re-reads the input.
  /// Trades extra coalesced reads for conflict-free shared atomics; set
  /// false to fall back to direct global atomics instead.
  bool allow_multipass = true;
};

template <typename Sym>
[[nodiscard]] std::vector<u64> histogram_simt(
    std::span<const Sym> data, std::size_t nbins,
    simt::MemTally* tally = nullptr,
    const SimtHistogramConfig& cfg = SimtHistogramConfig{},
    const CancelToken* cancel = nullptr);

extern template std::vector<u64> histogram_serial<u8>(std::span<const u8>,
                                                      std::size_t,
                                                      const CancelToken*);
extern template std::vector<u64> histogram_serial<u16>(std::span<const u16>,
                                                       std::size_t,
                                                       const CancelToken*);
extern template std::vector<u64> histogram_openmp<u8>(std::span<const u8>,
                                                      std::size_t, int,
                                                      const CancelToken*);
extern template std::vector<u64> histogram_openmp<u16>(std::span<const u16>,
                                                       std::size_t, int,
                                                       const CancelToken*);
extern template std::vector<u64> histogram_simt<u8>(std::span<const u8>,
                                                    std::size_t,
                                                    simt::MemTally*,
                                                    const SimtHistogramConfig&,
                                                    const CancelToken*);
extern template std::vector<u64> histogram_simt<u16>(std::span<const u16>,
                                                     std::size_t,
                                                     simt::MemTally*,
                                                     const SimtHistogramConfig&,
                                                     const CancelToken*);

}  // namespace parhuff
