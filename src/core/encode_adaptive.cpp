#include "core/encode_adaptive.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/codeword.hpp"
#include "core/sparse.hpp"
#include "simt/block.hpp"

namespace parhuff {

namespace {

struct ChunkOverflow {
  std::vector<word_t> words;
  std::vector<OverflowEntry> entries;
};

/// Largest r in [min_r, max_r] whose expected merged cell stays under
/// `Width` bits for a chunk averaging `avg_bits` per codeword.
u32 pick_chunk_reduce(double avg_bits, unsigned width, u32 min_r, u32 max_r) {
  // A 25% headroom below the cell width absorbs within-chunk variance:
  // a chunk whose average admits r exactly would break on every group
  // that runs slightly dense (mixed calm/burst chunks).
  const double budget = static_cast<double>(width) * 0.75;
  u32 r = min_r;
  while (r < max_r &&
         avg_bits * static_cast<double>(u64{1} << (r + 1)) < budget) {
    ++r;
  }
  return r;
}

}  // namespace

template <typename Sym, unsigned Width>
EncodedStream encode_adaptive_simt(std::span<const Sym> data,
                                   const Codebook& cb,
                                   const AdaptiveConfig& cfg,
                                   simt::MemTally* tally,
                                   AdaptiveStats* stats) {
  static_assert(Width == 32 || Width == 64,
                "cells are stored in 32-bit payload words");
  if (cfg.magnitude < 1 || cfg.magnitude > 12) {
    throw std::invalid_argument("magnitude must be in [1, 12]");
  }
  if (cfg.min_reduce < 1 || cfg.min_reduce > cfg.max_reduce ||
      cfg.max_reduce >= cfg.magnitude) {
    throw std::invalid_argument("need 1 <= min_reduce <= max_reduce < magnitude");
  }
  constexpr std::size_t kCellsPerSlot = Width / kWordBits;
  const u32 M = cfg.magnitude;
  const std::size_t N = std::size_t{1} << M;

  EncodedStream out;
  out.chunk_symbols = static_cast<u32>(N);
  out.n_symbols = data.size();
  out.reduce_factor = cfg.min_reduce;  // fallback for chunks beyond the array
  const std::size_t chunks = (data.size() + N - 1) / N;
  out.chunk_bits.assign(chunks, 0);
  out.chunk_reduce.assign(chunks, static_cast<u8>(cfg.min_reduce));
  if (chunks == 0) return out;

  // Worst-case workspace per chunk: the fewest-merged configuration
  // (r = min_reduce) needs (N >> min_reduce) * cells-per-slot cells.
  const std::size_t ws_stride =
      ((N >> cfg.min_reduce) * kCellsPerSlot) + 1;
  std::vector<word_t> work(chunks * ws_stride, 0);
  std::vector<ChunkOverflow> chunk_ovf(chunks);
  // Per-chunk lookup-phase bit totals (each block writes its own slot).
  std::vector<u64> chunk_lookup_bits(chunks, 0);

  if (tally) {
    tally->global_read(cb.cw.size(), sizeof(Codeword),
                       simt::Pattern::kCoalesced);
  }

  simt::launch(
      static_cast<int>(chunks),
      static_cast<int>(std::clamp<std::size_t>(N >> cfg.max_reduce, 32, 1024)),
      tally, [&](simt::BlockCtx& blk) {
        const std::size_t c = static_cast<std::size_t>(blk.block_id());
        const std::size_t begin = c * N;
        const std::size_t end = std::min(begin + N, data.size());
        const std::size_t nc = end - begin;

        auto cells = blk.shared_array<MergedCell<Width>>(N);
        auto& t = blk.tally();

        // --- Lookup + chunk bit count (free byproduct of the lookup). ----
        u64 chunk_code_bits = 0;
        for (std::size_t i = 0; i < N; ++i) {
          if (i < nc) {
            const Codeword cw =
                cb.cw[static_cast<std::size_t>(data[begin + i])];
            if (cw.len == 0) throw std::runtime_error("symbol absent");
            cells[i] = MergedCell<Width>{cw.bits, static_cast<u16>(cw.len),
                                         cw.len > Width};
            chunk_code_bits += cw.len;
          } else {
            cells[i] = MergedCell<Width>{};
          }
        }
        t.global_read(nc, sizeof(Sym), simt::Pattern::kCoalesced);
        t.shared_access(N, 12);
        t.ops(N * 8);
        chunk_lookup_bits[c] = chunk_code_bits;
        blk.sync();

        // --- Per-chunk reduce decision (a block-local reduction on GPU). -
        const double avg =
            nc > 0 ? static_cast<double>(chunk_code_bits) /
                         static_cast<double>(nc)
                   : 1.0;
        const u32 r =
            pick_chunk_reduce(avg, Width, cfg.min_reduce, cfg.max_reduce);
        out.chunk_reduce[c] = static_cast<u8>(r);
        const std::size_t group_syms = std::size_t{1} << r;
        const std::size_t n_slots = N >> r;
        t.ops(N);  // tree reduction for the bit count

        // --- REDUCE-merge. -----------------------------------------------
        for (u32 it = 1; it <= r; ++it) {
          const std::size_t active = N >> it;
          for (std::size_t k = 0; k < active; ++k) {
            MergedCell<Width> m = cells[2 * k];
            m.append(cells[2 * k + 1]);
            cells[k] = m;
          }
          t.shared_access(active * 3, 12);
          t.ops(N * 3 * static_cast<u64>(it) * it / 2);
          blk.sync();
        }

        // --- Breaking points (rarer by construction, same handling). -----
        std::vector<u8> mask(n_slots, 0);
        for (std::size_t g = 0; g < n_slots; ++g) {
          mask[g] = cells[g].breaking ? 1 : 0;
        }
        const std::vector<u32> broken = dense_to_sparse(mask, nullptr);
        if (!broken.empty()) {
          auto& ovf = chunk_ovf[c];
          BitWriter bw(ovf.words);
          for (const u32 g : broken) {
            const std::size_t gb = begin + g * group_syms;
            const std::size_t ge = std::min(gb + group_syms, end);
            OverflowEntry e;
            e.chunk = static_cast<u32>(c);
            e.group = g;
            e.bit_offset = bw.bits();
            e.n_symbols = static_cast<u32>(ge - gb);
            for (std::size_t i = gb; i < ge; ++i) {
              const Codeword cw = cb.cw[static_cast<std::size_t>(data[i])];
              bw.put(cw.bits, cw.len);
            }
            e.bit_len = static_cast<u32>(bw.bits() - e.bit_offset);
            ovf.entries.push_back(e);
            cells[g] = MergedCell<Width>{};
            t.global_read(ge - gb, sizeof(Sym), simt::Pattern::kStrided);
            t.global_write((e.bit_len + 7) / 8, 1, simt::Pattern::kStrided);
          }
          bw.finish_into_sink();
        }
        blk.sync();

        // --- SHUFFLE-merge over Width-bit slots. --------------------------
        word_t* buf = work.data() + c * ws_stride;
        const std::size_t slot_cells = kCellsPerSlot;
        std::vector<u64> glen(n_slots, 0);
        for (std::size_t j = 0; j < n_slots; ++j) {
          const auto& cell = cells[j];
          const unsigned len = cell.breaking ? 0 : cell.len;
          glen[j] = len;
          const u64 aligned =
              len == 0 ? 0
                       : (Width == 64 && len == 64
                              ? cell.bits
                              : cell.bits << (Width - len));
          if constexpr (Width == 64) {
            buf[j * slot_cells] = static_cast<word_t>(aligned >> 32);
            buf[j * slot_cells + 1] = static_cast<word_t>(aligned);
          } else {
            buf[j * slot_cells] = static_cast<word_t>(aligned);
          }
        }
        t.shared_access(n_slots * slot_cells * 2, sizeof(word_t));

        std::vector<word_t> scratch(n_slots * slot_cells / 2 + 1, 0);
        const u32 s = M - r;
        for (u32 it = 1; it <= s; ++it) {
          const std::size_t pairs = n_slots >> it;
          u64 moved_cells = 0;
          for (std::size_t p = 0; p < pairs; ++p) {
            const std::size_t left_slot = p << it;
            const std::size_t right_slot =
                left_slot + (std::size_t{1} << (it - 1));
            word_t* left_cells = buf + left_slot * slot_cells;
            word_t* right_cells = buf + right_slot * slot_cells;
            const u64 llen = glen[left_slot];
            const u64 rlen = glen[right_slot];
            if (rlen > 0) {
              const std::size_t rwords =
                  static_cast<std::size_t>(words_for_bits(rlen));
              std::copy_n(right_cells, rwords, scratch.data());
              std::fill_n(right_cells, rwords, word_t{0});
              append_bits(left_cells, llen, scratch.data(), rlen);
              moved_cells += rwords;
            }
            glen[left_slot] = llen + rlen;
          }
          t.shared_access(moved_cells * 3, sizeof(word_t));
          t.ops(n_slots * slot_cells * 32);
          t.divergent_branches += pairs;
          blk.sync();
        }
        out.chunk_bits[c] = glen[0];
      });

  out.payload.assign(layout_chunks(out), 0);
  simt::launch(static_cast<int>(chunks), 256, tally,
               [&](simt::BlockCtx& blk) {
                 const std::size_t c =
                     static_cast<std::size_t>(blk.block_id());
                 const std::size_t words = words_for_bits(out.chunk_bits[c]);
                 std::copy_n(work.data() + c * ws_stride, words,
                             out.payload.data() + out.chunk_word_offset[c]);
                 blk.tally().global_read(words, sizeof(word_t),
                                         simt::Pattern::kCoalesced);
                 blk.tally().global_write(words, sizeof(word_t),
                                          simt::Pattern::kCoalesced);
               });
  // Per-chunk factors travel with the stream: one strided byte per chunk.
  if (tally) {
    tally->global_write(chunks, 1, simt::Pattern::kCoalesced);
  }

  u64 ovf_bits = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    auto& ovf = chunk_ovf[c];
    if (ovf.entries.empty()) continue;
    for (OverflowEntry e : ovf.entries) {
      e.bit_offset += ovf_bits;
      out.overflow.push_back(e);
      if (stats) {
        stats->breaking_groups += 1;
        stats->breaking_symbols += e.n_symbols;
      }
    }
    out.overflow_payload.insert(out.overflow_payload.end(), ovf.words.begin(),
                                ovf.words.end());
    ovf_bits += static_cast<u64>(ovf.words.size()) * kWordBits;
  }
  out.overflow_bits = ovf_bits;
  if (stats) {
    for (std::size_t c = 0; c < chunks; ++c) {
      stats->r_histogram[out.chunk_reduce[c]] += 1;
      stats->total_code_bits += chunk_lookup_bits[c];
    }
  }
  return out;
}

template EncodedStream encode_adaptive_simt<u8, 32>(std::span<const u8>,
                                                    const Codebook&,
                                                    const AdaptiveConfig&,
                                                    simt::MemTally*,
                                                    AdaptiveStats*);
template EncodedStream encode_adaptive_simt<u16, 32>(std::span<const u16>,
                                                     const Codebook&,
                                                     const AdaptiveConfig&,
                                                     simt::MemTally*,
                                                     AdaptiveStats*);
template EncodedStream encode_adaptive_simt<u8, 64>(std::span<const u8>,
                                                    const Codebook&,
                                                    const AdaptiveConfig&,
                                                    simt::MemTally*,
                                                    AdaptiveStats*);
template EncodedStream encode_adaptive_simt<u16, 64>(std::span<const u16>,
                                                     const Codebook&,
                                                     const AdaptiveConfig&,
                                                     simt::MemTally*,
                                                     AdaptiveStats*);

}  // namespace parhuff
