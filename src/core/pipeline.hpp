#pragma once
// End-to-end Huffman encoder pipeline (§IV): histogram → codebook →
// encode, with per-stage timing and simulator tallies. This is the object
// the examples and benches drive; Table V's breakdown columns map 1:1 onto
// PipelineReport.

#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encoded.hpp"
#include "core/par_codebook.hpp"
#include "simt/mem_model.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace parhuff {

enum class HistogramKind {
  kSerial,
  kOpenMP,
  kSimt,  ///< Gómez-Luna privatized kernel (default)
};

enum class CodebookKind {
  kSerialTree,    ///< two-queue serial baseline (SZ-style)
  kParallelSimt,  ///< Algorithm 1 on the cooperative grid (default)
  kParallelOmp,   ///< Algorithm 1 via OpenMP (the Table IV builder)
};

enum class EncoderKind {
  kSerial,             ///< single-thread reference
  kOpenMP,             ///< multithreaded CPU encoder (Table VI)
  kCoarseSimt,         ///< cuSZ-style chunk-per-thread baseline
  kPrefixSumSimt,      ///< Rahmani-style prefix-sum baseline
  kReduceShuffleSimt,  ///< the paper's encoder (default)
  kAdaptiveSimt,       ///< §VII extension: per-chunk reduce factors
};

struct PipelineConfig {
  std::size_t nbins = 256;
  HistogramKind histogram = HistogramKind::kSimt;
  CodebookKind codebook = CodebookKind::kParallelSimt;
  EncoderKind encoder = EncoderKind::kReduceShuffleSimt;
  u32 magnitude = 10;  ///< chunk = 2^magnitude symbols
  /// REDUCE-merge factor; unset → decided from the measured avg bitwidth
  /// (decide_reduce_factor).
  std::optional<u32> reduce_factor;
  int cpu_threads = 0;  ///< for the OpenMP stages (0 = library default)
  /// When nonzero, annotate the encoded stream with gap-array decode
  /// metadata at this subsequence granularity (core/decode_gaparray.hpp):
  /// decoders then skip the self-sync passes entirely. Stored as a
  /// versioned optional container field; 0 (default) keeps the container
  /// byte-identical to the previous format version.
  u32 gap_subseq_bits = 0;

  /// Memberwise equality — the service layer's request batcher coalesces
  /// requests whose configs compare equal.
  friend bool operator==(const PipelineConfig&,
                         const PipelineConfig&) = default;
};

struct PipelineReport {
  double hist_seconds = 0;
  double codebook_seconds = 0;
  double encode_seconds = 0;
  double gap_seconds = 0;  ///< gap-array annotation (0 unless enabled)
  simt::MemTally hist_tally;
  simt::MemTally codebook_tally;
  simt::MemTally encode_tally;
  double entropy_bits = 0;
  double avg_bits = 0;
  u32 reduce_factor = 0;
  ReduceShuffleStats rs;
  ParCodebookStats cb_stats;
  std::size_t input_bytes = 0;
  std::size_t compressed_bytes = 0;

  [[nodiscard]] double compression_ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(input_bytes) /
                     static_cast<double>(compressed_bytes);
  }
  [[nodiscard]] double total_seconds() const {
    return hist_seconds + codebook_seconds + encode_seconds + gap_seconds;
  }
};

/// A compressed buffer: the canonical codebook plus the chunked stream.
template <typename Sym>
struct Compressed {
  Codebook codebook;
  EncodedStream stream;
};

// CancelToken / OperationCancelled / DeadlineExpired live in
// core/cancel.hpp (included above). Tokens are polled both between stages
// and *inside* the stage kernels (per chunk / per reduce group), so a
// cancelled or deadline-expired request abandons work mid-stage.

/// Runs the configured pipeline. `Sym` is u8 for generic byte data or u16
/// for multi-byte symbols (quantization codes, k-mer ids). When `cancel`
/// is given, it is polled between stages and at the kernels' cooperative
/// poll points; a fired token aborts with OperationCancelled /
/// DeadlineExpired (already-finished stage work is discarded).
template <typename Sym>
[[nodiscard]] Compressed<Sym> compress(std::span<const Sym> data,
                                       const PipelineConfig& cfg,
                                       PipelineReport* report = nullptr,
                                       const CancelToken* cancel = nullptr);

// --- Stage entry points (what compress() composes). -------------------------
//
// The service layer (src/svc/) drives these directly: its batcher builds
// one codebook per batch and encodes every member request against it, and
// its cache hands the same frozen Codebook instance to many requests at
// once. Neither function mutates the codebook, so a `const Codebook`
// (typically behind a shared_ptr) is safely shareable across threads.

/// Stages 2+3 standalone: build a canonical codebook for the frequency
/// profile `freq` (one slot per symbol; freq.size() is the alphabet size)
/// under cfg's codebook policy. When `report` is given, fills
/// codebook_seconds, codebook_tally and cb_stats only. `cancel` is polled
/// per reduce round in the parallel builders.
[[nodiscard]] Codebook build_codebook(std::span<const u64> freq,
                                      const PipelineConfig& cfg,
                                      PipelineReport* report = nullptr,
                                      const CancelToken* cancel = nullptr);

/// Stage 4 standalone: encode `data` against an existing codebook, which
/// is never mutated. `freq` (optional) is the frequency profile used to
/// pick the REDUCE factor when cfg.reduce_factor is unset; when empty and
/// the encoder needs one, a serial histogram of `data` is taken. Symbols
/// without a codeword (length 0) throw std::runtime_error from the
/// encoders — callers reusing a foreign codebook must guarantee coverage
/// (the service cache's correctness guard). When `report` is given, fills
/// encode_seconds, encode_tally, reduce_factor, rs and avg_bits only.
/// `cancel` is checked at stage entry and polled once per chunk inside the
/// SIMT encoders.
template <typename Sym>
[[nodiscard]] EncodedStream encode_with_codebook(
    std::span<const Sym> data, const Codebook& cb, const PipelineConfig& cfg,
    std::span<const u64> freq = {}, PipelineReport* report = nullptr,
    const CancelToken* cancel = nullptr);

/// Inverse of compress (any encoder kind). Routes through decode_auto, so
/// streams carrying gap metadata take the gap-array tier.
template <typename Sym>
[[nodiscard]] std::vector<Sym> decompress(const Compressed<Sym>& blob,
                                          int threads = 0);

enum class DecoderKind {
  kHost,      ///< chunk-parallel host decoding (default)
  kSimt,      ///< thread-per-chunk simulated kernel (tallied)
  kSelfSync,  ///< CUHD-style self-synchronizing kernel (tallied)
  kGapArray,  ///< gap-array kernel; requires annotated metadata (tallied)
};

/// Tier selection for the read path (docs/decode.md): gap-array when the
/// stream carries metadata (per-chunk overflow fallback included), the
/// chunk-parallel host decoder otherwise. Emits `decode.*` counters and
/// stage timings to the global metrics registry — this is what the service
/// and RPC decompress paths call. `cancel` follows the decode-side
/// contract (polled at least once per 64 Ki symbols).
template <typename Sym>
[[nodiscard]] std::vector<Sym> decode_auto(const EncodedStream& s,
                                           const Codebook& cb,
                                           int threads = 0,
                                           const CancelToken* cancel = nullptr);

/// Decoder-selectable variant; `tally` collects transaction counts for the
/// SIMT decoders (ignored for kHost).
template <typename Sym>
[[nodiscard]] std::vector<Sym> decompress_with(const Compressed<Sym>& blob,
                                               DecoderKind decoder,
                                               simt::MemTally* tally = nullptr);

extern template EncodedStream encode_with_codebook<u8>(std::span<const u8>,
                                                       const Codebook&,
                                                       const PipelineConfig&,
                                                       std::span<const u64>,
                                                       PipelineReport*,
                                                       const CancelToken*);
extern template EncodedStream encode_with_codebook<u16>(std::span<const u16>,
                                                        const Codebook&,
                                                        const PipelineConfig&,
                                                        std::span<const u64>,
                                                        PipelineReport*,
                                                        const CancelToken*);
extern template Compressed<u8> compress<u8>(std::span<const u8>,
                                            const PipelineConfig&,
                                            PipelineReport*,
                                            const CancelToken*);
extern template Compressed<u16> compress<u16>(std::span<const u16>,
                                              const PipelineConfig&,
                                              PipelineReport*,
                                              const CancelToken*);
extern template std::vector<u8> decompress<u8>(const Compressed<u8>&, int);
extern template std::vector<u16> decompress<u16>(const Compressed<u16>&, int);
extern template std::vector<u8> decode_auto<u8>(const EncodedStream&,
                                                const Codebook&, int,
                                                const CancelToken*);
extern template std::vector<u16> decode_auto<u16>(const EncodedStream&,
                                                  const Codebook&, int,
                                                  const CancelToken*);
extern template std::vector<u8> decompress_with<u8>(const Compressed<u8>&,
                                                    DecoderKind,
                                                    simt::MemTally*);
extern template std::vector<u16> decompress_with<u16>(const Compressed<u16>&,
                                                      DecoderKind,
                                                      simt::MemTally*);

}  // namespace parhuff
