#pragma once
// Execution-policy shims for the parallel codebook algorithms.
//
// GenerateCL/GenerateCW (Algorithm 1) are written once against a minimal
// executor concept and instantiated three ways:
//   * simt::CooperativeGrid — the GPU form: regions are grid-synced
//     cooperative-kernel phases, with transaction tallying (Table III);
//   * OmpExec  — the multithreaded CPU form (Table IV), where each `par`
//     region is an OpenMP parallel-for whose fork/join overhead is exactly
//     the effect the paper measures;
//   * SeqExec  — plain sequential execution, used as the reference in tests.
//
// Executor concept:
//   void par(std::size_t n, Fn fn);          // fn(i), barrier after
//   void seq(Fn fn, u64 dependent_ops = 0);  // single-thread region
//   void sync();                             // explicit barrier

#include <cstddef>

#include "util/parallel.hpp"
#include "util/types.hpp"

namespace parhuff {

struct SeqExec {
  template <typename Fn>
  void par(std::size_t n, Fn&& fn) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
  template <typename Fn>
  void seq(Fn&& fn, u64 /*dependent_ops*/ = 0) {
    fn();
  }
  void sync() {}
};

struct OmpExec {
  explicit OmpExec(int threads_) : threads(threads_) {}
  int threads;

  template <typename Fn>
  void par(std::size_t n, Fn&& fn) {
    parallel_for(n, fn, threads);
  }
  template <typename Fn>
  void seq(Fn&& fn, u64 /*dependent_ops*/ = 0) {
    fn();
  }
  void sync() {}
};

}  // namespace parhuff
