#include "core/decode_gaparray.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/decode.hpp"
#include "simt/atomics.hpp"
#include "simt/block.hpp"
#include "util/parallel.hpp"

namespace parhuff {

namespace {

constexpr u32 kMinSubseqBits = 64;
constexpr u32 kMaxSubseqBits = 32768;

/// Chunk → overflow-entry run boundaries (entries sorted by chunk, group).
std::vector<std::size_t> overflow_runs(const EncodedStream& s) {
  const std::size_t chunks = s.chunks();
  std::vector<std::size_t> ovf_begin(chunks + 1, s.overflow.size());
  std::size_t e = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    ovf_begin[c] = e;
    while (e < s.overflow.size() && s.overflow[e].chunk == c) ++e;
  }
  ovf_begin[chunks] = e;
  return ovf_begin;
}

/// Advance br past exactly one codeword. Unlike the self-sync tentative
/// scan this is encode-side (or emit-side) ground truth: failure to match
/// is corruption, not a desynchronized guess.
void skip_codeword(BitReader& br, const Codebook& cb) {
  u64 v = 0;
  unsigned l = 0;
  while (!br.exhausted() && l < cb.max_len) {
    v = (v << 1) | br.bit();
    ++l;
    if (cb.count[l] != 0 && v >= cb.first[l] && v - cb.first[l] < cb.count[l]) {
      return;
    }
  }
  throw std::runtime_error("gaparray: stream does not decode under codebook");
}

}  // namespace

void annotate_gaps(EncodedStream& s, const Codebook& cb, u32 subseq_bits) {
  const u32 max_len = cb.max_len ? cb.max_len : 1;
  if (subseq_bits < kMinSubseqBits || subseq_bits > kMaxSubseqBits ||
      subseq_bits < 2 * max_len) {
    throw std::invalid_argument(
        "gaparray: subsequence bits must lie in [64, 32768] and exceed "
        "twice the longest codeword");
  }
  s.gap_subseq_bits = subseq_bits;
  const std::size_t chunks = s.chunks();
  std::vector<std::size_t> base(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    base[c + 1] = base[c] + s.gap_subsequences(c);
  }
  // Sentinel-initialized: overflow chunks and post-final-codeword tail
  // subsequences keep kNoGap / 0 and are skipped by the decoder.
  s.gaps.assign(base[chunks], EncodedStream::kNoGap);
  s.gap_counts.assign(base[chunks], 0);

  const std::vector<std::size_t> ovf_begin = overflow_runs(s);
  parallel_for(chunks, [&](std::size_t c) {
    if (ovf_begin[c] != ovf_begin[c + 1]) return;  // fallback chunk
    const std::size_t nc = s.chunk_size(c);
    if (nc == 0) return;
    const u64 S = subseq_bits;
    const std::size_t n_sub = s.gap_subsequences(c);
    u8* g = s.gaps.data() + base[c];
    u16* cnt = s.gap_counts.data() + base[c];
    BitReader br = s.chunk_reader(c);
    std::size_t sub = 0;
    for (std::size_t k = 0; k < nc; ++k) {
      const u64 p = br.position();
      // A codeword is at most max_len ≤ S/2 bits, so each one crosses at
      // most one boundary and every gap fits in [0, max_len) ⊂ u8.
      while (sub < n_sub && static_cast<u64>(sub) * S <= p) {
        g[sub] = static_cast<u8>(p - static_cast<u64>(sub) * S);
        ++sub;
      }
      skip_codeword(br, cb);
      ++cnt[sub - 1];
    }
    if (br.position() != s.chunk_bits[c]) {
      throw std::runtime_error(
          "gaparray: chunk bit length mismatch during annotation");
    }
  });
}

template <typename Sym>
std::vector<Sym> decode_gaparray(const EncodedStream& s, const Codebook& cb,
                                 simt::MemTally* tally, GapArrayStats* stats,
                                 const CancelToken* cancel) {
  if (!s.has_gaps()) {
    throw std::invalid_argument("gaparray: stream carries no gap metadata");
  }
  // Everything below treats the metadata as untrusted (it may come off the
  // wire): sizes, sentinels, counts, and chain positions are all checked
  // before or while they steer a read.
  const u32 max_len = cb.max_len ? cb.max_len : 1;
  const u64 S = s.gap_subseq_bits;
  if (S < kMinSubseqBits || S > kMaxSubseqBits || S < 2 * max_len) {
    throw std::runtime_error("gaparray: invalid subsequence size");
  }
  const std::size_t chunks = s.chunks();
  std::vector<std::size_t> base(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    base[c + 1] = base[c] + s.gap_subsequences(c);
  }
  if (s.gaps.size() != base[chunks] || s.gap_counts.size() != base[chunks]) {
    throw std::runtime_error("gaparray: metadata size mismatch");
  }
  std::vector<Sym> out(s.n_symbols);
  if (s.n_symbols == 0) {
    if (stats) *stats = {};
    return out;
  }
  const std::vector<std::size_t> ovf_begin = overflow_runs(s);

  u64 total_subseq = 0;
  u64 fallbacks = 0;

  simt::launch(
      static_cast<int>(chunks), 256, tally, [&](simt::BlockCtx& blk) {
        const std::size_t c = static_cast<std::size_t>(blk.block_id());
        if (cancel) cancel->check();
        const std::size_t nc = s.chunk_size(c);
        if (nc == 0) return;
        Sym* dst = out.data() + c * s.chunk_symbols;
        auto& t = blk.tally();

        // --- Fallback: overflow-bearing chunks decode sequentially; the
        // side stream splices into the main one, so per-subsequence
        // metadata does not apply (entries are all-sentinel).
        if (ovf_begin[c] != ovf_begin[c + 1]) {
          const std::size_t group_syms = s.group_symbols(c);
          BitReader br = s.chunk_reader(c);
          BitReader obr(
              std::span<const word_t>(s.overflow_payload.data(),
                                      s.overflow_payload.size()),
              static_cast<u64>(s.overflow_payload.size()) * kWordBits);
          std::size_t e = ovf_begin[c];
          std::size_t i = 0;
          while (i < nc) {
            const std::size_t group = i / group_syms;
            if (e < ovf_begin[c + 1] && s.overflow[e].group == group) {
              obr.seek(s.overflow[e].bit_offset);
              decode_symbols(obr, cb, s.overflow[e].n_symbols, dst + i,
                             cancel);
              i += s.overflow[e].n_symbols;
              ++e;
            } else {
              const std::size_t next =
                  std::min<std::size_t>((group + 1) * group_syms, nc);
              decode_symbols(br, cb, next - i, dst + i, cancel);
              i = next;
            }
          }
          simt::atomic_add(fallbacks, u64{1});
          t.global_read(words_for_bits(s.chunk_bits[c]), sizeof(word_t),
                        simt::Pattern::kStrided);
          t.global_write(nc, sizeof(Sym), simt::Pattern::kStrided);
          return;
        }

        // --- Validate + exclusive scan: one cheap metadata pass gives
        // every subsequence its decode start AND output offset, so there
        // is no tentative walk and no synchronization loop at all.
        const u64 B = s.chunk_bits[c];
        const std::size_t n_sub = s.gap_subsequences(c);
        const u8* g = s.gaps.data() + base[c];
        const u16* cnt = s.gap_counts.data() + base[c];
        if (n_sub == 0 || g[0] != 0) {
          throw std::runtime_error("gaparray: chunk must start on a codeword");
        }
        std::vector<u64> start(n_sub);
        std::vector<std::size_t> offset(n_sub);
        std::size_t total = 0;
        for (std::size_t i = 0; i < n_sub; ++i) {
          offset[i] = total;
          if (g[i] == EncodedStream::kNoGap) {
            if (cnt[i] != 0) {
              throw std::runtime_error(
                  "gaparray: count on codeword-free subsequence");
            }
            start[i] = B;
            continue;
          }
          start[i] = static_cast<u64>(i) * S + g[i];
          if (g[i] >= max_len || start[i] >= B || cnt[i] == 0) {
            throw std::runtime_error("gaparray: corrupt gap entry");
          }
          total += cnt[i];
        }
        if (total != nc) {
          throw std::runtime_error("gaparray: symbol count mismatch");
        }
        // Each populated subsequence must decode up to exactly the next
        // populated one's start (or the chunk's end): the chain check that
        // catches forged gaps/counts whose sums still balance.
        std::vector<u64> expect(n_sub, B);
        {
          u64 nxt = B;
          for (std::size_t i = n_sub; i-- > 0;) {
            expect[i] = nxt;
            if (g[i] != EncodedStream::kNoGap) nxt = start[i];
          }
        }

        // --- Emit: the single payload walk (one thread per subsequence
        // on hardware; no inter-thread traffic).
        for (std::size_t i = 0; i < n_sub; ++i) {
          if (cnt[i] == 0) continue;
          BitReader br = s.chunk_reader(c);
          br.seek(start[i]);
          decode_symbols(br, cb, cnt[i], dst + offset[i], cancel);
          if (br.position() != expect[i]) {
            throw std::runtime_error(
                "gaparray: subsequence does not chain to its successor");
          }
        }
        t.global_read(n_sub * 3, 1, simt::Pattern::kCoalesced);  // gap+count
        t.global_read((B + 7) / 8, 1, simt::Pattern::kCoalesced);
        t.global_write(nc, sizeof(Sym), simt::Pattern::kCoalesced);
        // One bit-serial walk over the payload plus the metadata scan —
        // versus the self-sync decoder's tentative + correction + emit
        // walks (≳3·B·32 ops on the same chunk).
        t.ops(B * 32 + nc * 2 + n_sub);

        simt::atomic_add(total_subseq, static_cast<u64>(n_sub));
      });

  if (stats) {
    stats->subsequences = total_subseq;
    stats->fallback_chunks = fallbacks;
  }
  return out;
}

template std::vector<u8> decode_gaparray<u8>(const EncodedStream&,
                                             const Codebook&, simt::MemTally*,
                                             GapArrayStats*,
                                             const CancelToken*);
template std::vector<u16> decode_gaparray<u16>(const EncodedStream&,
                                               const Codebook&,
                                               simt::MemTally*, GapArrayStats*,
                                               const CancelToken*);

}  // namespace parhuff
