#pragma once
// The paper's contribution: reduction-based encoding (§IV-C).
//
// Per chunk of N = 2^M symbols, mapped to one thread block:
//
//  1. REDUCE-merge (Fig. 1): the chunk's codewords are merged pairwise for
//     r iterations inside fixed-width cells (uint32_t, as in the paper), so
//     each surviving cell carries ~2^r codewords and is at least half full
//     when r is chosen by the bitwidth rule (Fig. 3). Active threads halve
//     each iteration — the reason r is bounded — and the merged payload is
//     moved word-at-a-time from then on.
//
//  2. Breaking points: a group whose 2^r codewords exceed the 32-bit cell
//     is "breaking". The kernel backtraces it (a second reduction without
//     bit operations), re-encodes the group's source symbols into an
//     overflow bitstream, and records it via dense→sparse conversion. The
//     group contributes zero bits to the main stream.
//
//  3. SHUFFLE-merge (Fig. 2): s = M − r iterations merge adjacent
//     variable-length cell groups with the two-step batch move (residual
//     fill + shifted copy), producing a dense chunk bitstream within 2^s
//     cells.
//
//  4. Coalescing copy: per-chunk bit lengths go through a prefix sum and
//     every chunk's cells are copied contiguously into the final payload.
//
// The decoded output is identical to the baseline encoders'; when no group
// breaks, the chunk payload is bit-identical too.

#include <span>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "simt/mem_model.hpp"
#include "util/types.hpp"

namespace parhuff {

struct ReduceShuffleConfig {
  u32 magnitude = 10;     ///< M: chunk holds 2^M symbols
  u32 reduce_factor = 3;  ///< r: REDUCE-merge iterations (1..magnitude)
};

/// Per-run statistics surfaced by the benches.
struct ReduceShuffleStats {
  u64 breaking_groups = 0;
  u64 breaking_symbols = 0;
  u64 reduce_iterations = 0;
  u64 shuffle_iterations = 0;
};

/// `cancel` is polled once per chunk (= one thread block) at the top of
/// the merge kernel — see core/cancel.hpp.
template <typename Sym>
[[nodiscard]] EncodedStream encode_reduceshuffle_simt(
    std::span<const Sym> data, const Codebook& cb,
    const ReduceShuffleConfig& cfg = {}, simt::MemTally* tally = nullptr,
    ReduceShuffleStats* stats = nullptr, const CancelToken* cancel = nullptr);

extern template EncodedStream encode_reduceshuffle_simt<u8>(
    std::span<const u8>, const Codebook&, const ReduceShuffleConfig&,
    simt::MemTally*, ReduceShuffleStats*, const CancelToken*);
extern template EncodedStream encode_reduceshuffle_simt<u16>(
    std::span<const u16>, const Codebook&, const ReduceShuffleConfig&,
    simt::MemTally*, ReduceShuffleStats*, const CancelToken*);

}  // namespace parhuff
