#include "core/encode_simt.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "simt/block.hpp"

namespace parhuff {

namespace {

/// Per-chunk bit lengths ("get blockwise code len" kernel), one thread per
/// chunk, then the word layout via prefix sum.
template <typename Sym>
EncodedStream size_chunks(std::span<const Sym> data, const Codebook& cb,
                          u32 chunk_symbols, simt::MemTally* tally,
                          simt::Pattern read_pattern,
                          const CancelToken* cancel) {
  EncodedStream out;
  out.chunk_symbols = chunk_symbols;
  out.n_symbols = data.size();
  const std::size_t chunks =
      (data.size() + chunk_symbols - 1) / chunk_symbols;
  out.chunk_bits.assign(chunks, 0);

  const int block_dim = 256;
  const int grid =
      static_cast<int>((chunks + static_cast<std::size_t>(block_dim) - 1) /
                       static_cast<std::size_t>(block_dim));
  simt::launch(std::max(grid, 1), block_dim, tally, [&](simt::BlockCtx& blk) {
    if (cancel) cancel->check();
    blk.threads([&](int tid) {
      const std::size_t c = blk.global_id(tid);
      if (c >= chunks) return;
      const std::size_t begin = c * chunk_symbols;
      const std::size_t end =
          std::min<std::size_t>(begin + chunk_symbols, data.size());
      u64 bits = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const Codeword cw = cb.cw[static_cast<std::size_t>(data[i])];
        if (cw.len == 0) throw std::runtime_error("symbol absent");
        bits += cw.len;
      }
      out.chunk_bits[c] = bits;
      // Coarse encoders walk chunks serially per lane (strided); the
      // prefix-sum encoder sizes with one thread per symbol (coalesced).
      blk.tally().global_read(end - begin, sizeof(Sym), read_pattern);
      // Codebook lookups hit the cached table.
      blk.tally().shared_access(end - begin, sizeof(Codeword));
      blk.tally().ops((end - begin) * 2);
    });
  });
  out.payload.assign(layout_chunks(out), 0);
  return out;
}

/// Serially concatenate codewords of [begin, end) into `dst` (pre-zeroed).
template <typename Sym>
void write_codes(std::span<const Sym> data, std::size_t begin,
                 std::size_t end, const Codebook& cb, word_t* dst) {
  u64 bitpos = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Codeword c = cb.cw[static_cast<std::size_t>(data[i])];
    u64 v = c.bits;
    unsigned remaining = c.len;
    while (remaining > 0) {
      const std::size_t w = static_cast<std::size_t>(bitpos / kWordBits);
      const unsigned off = static_cast<unsigned>(bitpos % kWordBits);
      const unsigned room = kWordBits - off;
      const unsigned take = remaining < room ? remaining : room;
      const u64 piece = (v >> (remaining - take)) & ((u64{1} << take) - 1);
      dst[w] |= static_cast<word_t>(piece << (room - take));
      bitpos += take;
      remaining -= take;
    }
  }
}

}  // namespace

template <typename Sym>
EncodedStream encode_coarse_simt(std::span<const Sym> data, const Codebook& cb,
                                 u32 chunk_symbols, simt::MemTally* tally,
                                 const CancelToken* cancel) {
  EncodedStream out = size_chunks(data, cb, chunk_symbols, tally,
                                  simt::Pattern::kStrided, cancel);
  const std::size_t chunks = out.chunks();
  if (chunks == 0) return out;

  // cuSZ-style fill: one thread per chunk, walking its chunk serially. With
  // 32 lanes each owning a chunk, every element read and every word written
  // is chunk-strided — one sector per useful access.
  const int block_dim = 256;
  const int grid =
      static_cast<int>((chunks + static_cast<std::size_t>(block_dim) - 1) /
                       static_cast<std::size_t>(block_dim));
  simt::launch(std::max(grid, 1), block_dim, tally, [&](simt::BlockCtx& blk) {
    blk.threads([&](int tid) {
      const std::size_t c = blk.global_id(tid);
      if (c >= chunks) return;
      // Cooperative poll, once per chunk (core/cancel.hpp).
      if (cancel) cancel->check();
      const std::size_t begin = c * chunk_symbols;
      const std::size_t end =
          std::min<std::size_t>(begin + chunk_symbols, data.size());
      write_codes(data, begin, end, cb,
                  out.payload.data() + out.chunk_word_offset[c]);
      const u64 n = end - begin;
      blk.tally().global_read(n, sizeof(Sym), simt::Pattern::kStrided);
      blk.tally().shared_access(n, sizeof(Codeword));  // cached codebook
      blk.tally().global_write(words_for_bits(out.chunk_bits[c]),
                               sizeof(word_t), simt::Pattern::kStrided);
      blk.tally().ops(n * 6);
    });
  });
  return out;
}

template <typename Sym>
EncodedStream encode_prefixsum_simt(std::span<const Sym> data,
                                    const Codebook& cb, u32 chunk_symbols,
                                    simt::MemTally* tally,
                                    const CancelToken* cancel) {
  EncodedStream out = size_chunks(data, cb, chunk_symbols, tally,
                                  simt::Pattern::kCoalesced, cancel);
  const std::size_t chunks = out.chunks();
  if (chunks == 0) return out;

  // Rahmani-style fill: one block per chunk; per-symbol codeword lengths,
  // a block-level exclusive scan for bit offsets, then a concurrent scatter
  // of every codeword to its bit position.
  const int block_dim = 256;
  simt::launch(
      static_cast<int>(chunks), block_dim, tally, [&](simt::BlockCtx& blk) {
        const std::size_t c = static_cast<std::size_t>(blk.block_id());
        // Cooperative poll, once per chunk (= one block; core/cancel.hpp).
        if (cancel) cancel->check();
        const std::size_t begin = c * chunk_symbols;
        const std::size_t end =
            std::min<std::size_t>(begin + chunk_symbols, data.size());
        const std::size_t n = end - begin;
        auto offsets = blk.shared_array<u64>(n + 1);

        // Phase 1: lengths (data-thread one-to-one over a grid stride).
        blk.threads([&](int tid) {
          for (std::size_t i = static_cast<std::size_t>(tid); i < n;
               i += static_cast<std::size_t>(blk.block_dim())) {
            const Codeword cw =
                cb.cw[static_cast<std::size_t>(data[begin + i])];
            offsets[i] = cw.len;
          }
        });
        blk.tally().global_read(n, sizeof(Sym), simt::Pattern::kCoalesced);
        blk.tally().shared_access(n, sizeof(Codeword));  // cached codebook
        blk.sync();

        // Phase 2: exclusive scan (classic work-efficient block scan;
        // log2(n) sweeps charged to the tally).
        u64 run = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const u64 len = offsets[i];
          offsets[i] = run;
          run += len;
        }
        offsets[n] = run;
        {
          u64 lg = 1;
          for (std::size_t s = n; s > 1; s >>= 1) ++lg;
          blk.tally().ops(2 * n * lg);
          blk.tally().shared_access(2 * n, sizeof(u64));
        }
        blk.sync();

        // Phase 3: concurrent scatter. Each codeword is OR-ed into its bit
        // position; on hardware this is an atomic RMW per touched word and
        // the addresses are effectively random at warp granularity.
        word_t* dst = out.payload.data() + out.chunk_word_offset[c];
        blk.threads([&](int tid) {
          for (std::size_t i = static_cast<std::size_t>(tid); i < n;
               i += static_cast<std::size_t>(blk.block_dim())) {
            const Codeword cw =
                cb.cw[static_cast<std::size_t>(data[begin + i])];
            u64 bitpos = offsets[i];
            u64 v = cw.bits;
            unsigned remaining = cw.len;
            while (remaining > 0) {
              const std::size_t w = static_cast<std::size_t>(bitpos / kWordBits);
              const unsigned off = static_cast<unsigned>(bitpos % kWordBits);
              const unsigned room = kWordBits - off;
              const unsigned take = remaining < room ? remaining : room;
              const u64 piece =
                  (v >> (remaining - take)) & ((u64{1} << take) - 1);
              dst[w] |= static_cast<word_t>(piece << (room - take));
              bitpos += take;
              remaining -= take;
            }
          }
        });
        blk.tally().global_atomic(n, 1.5);
        blk.tally().global_write(n, sizeof(word_t), simt::Pattern::kRandom);
      });
  return out;
}

template EncodedStream encode_coarse_simt<u8>(std::span<const u8>,
                                              const Codebook&, u32,
                                              simt::MemTally*,
                                              const CancelToken*);
template EncodedStream encode_coarse_simt<u16>(std::span<const u16>,
                                               const Codebook&, u32,
                                               simt::MemTally*,
                                               const CancelToken*);
template EncodedStream encode_prefixsum_simt<u8>(std::span<const u8>,
                                                 const Codebook&, u32,
                                                 simt::MemTally*,
                                                 const CancelToken*);
template EncodedStream encode_prefixsum_simt<u16>(std::span<const u16>,
                                                  const Codebook&, u32,
                                                  simt::MemTally*,
                                                  const CancelToken*);

}  // namespace parhuff
