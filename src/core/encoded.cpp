#include "core/encoded.hpp"

namespace parhuff {

std::size_t layout_chunks(EncodedStream& s) {
  s.chunk_word_offset.resize(s.chunk_bits.size());
  std::size_t words = 0;
  for (std::size_t c = 0; c < s.chunk_bits.size(); ++c) {
    s.chunk_word_offset[c] = words;
    words += words_for_bits(s.chunk_bits[c]);
  }
  return words;
}

}  // namespace parhuff
