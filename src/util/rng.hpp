#pragma once
// Deterministic, fast PRNG for dataset generators and property tests.
//
// We deliberately avoid std::mt19937 for generator hot loops: xoshiro256**
// is ~4x faster and the generators produce hundreds of MB of synthetic data
// in the benches. Determinism across platforms matters more than
// cryptographic quality, and seeding is explicit everywhere.

#include <array>
#include <cmath>
#include <cstdint>

namespace parhuff {

/// SplitMix64 — used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Unbiased enough for data synthesis (Lemire-style
  /// multiply-shift; the tiny modulo bias of the fallback is irrelevant here).
  std::uint64_t below(std::uint64_t n) {
    // 128-bit multiply keeps the range mapping branch-free.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (no cached second value; generators that
  /// need bulk normals draw pairs themselves).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Geometric-ish "run length" helper: number of failures before success
  /// with success probability p (p in (0,1]).
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace parhuff
