#pragma once
// Work-stealing thread-pool executor backing the service layer's worker
// pool (svc/service.hpp). Each worker owns a deque: it pops its own work
// LIFO (hot caches for nested submissions) and steals FIFO from victims
// when empty (oldest work first, the classic Blumofe/Leiserson discipline),
// so an uneven batch mix still keeps every worker busy.
//
// This is deliberately the mutex-per-deque formulation, not a lock-free
// Chase-Lev deque: parhuff tasks are whole compression batches (hundreds of
// microseconds and up), so queue-op overhead is noise, and the simple
// locking survives ThreadSanitizer without annotations. The contract is
// what matters: submit() never blocks on task execution, tasks may submit
// further tasks, and wait_idle() is a barrier for everything accepted so
// far.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.hpp"
#include "util/types.hpp"

namespace parhuff {

class WorkStealExecutor {
 public:
  /// `threads` = 0 → std::thread::hardware_concurrency() (min 1).
  /// `clock` routes the workers' idle park (a bounded timed wait per park
  /// quantum, re-armed until work arrives) so executor interaction tests
  /// can run on util::VirtualClock; nullptr → the process steady clock.
  explicit WorkStealExecutor(int threads = 0,
                             const util::Clock* clock = nullptr);
  /// Drains every queued task, then joins the workers.
  ~WorkStealExecutor();
  WorkStealExecutor(const WorkStealExecutor&) = delete;
  WorkStealExecutor& operator=(const WorkStealExecutor&) = delete;

  /// Enqueue a task. From a worker thread the task lands on that worker's
  /// own deque (LIFO pop keeps it hot); external submitters round-robin
  /// across deques. Throws std::logic_error after shutdown began.
  void submit(std::function<void()> task);

  /// Block until every task accepted before this call has finished
  /// (including tasks they spawned in the meantime).
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return queues_.size(); }

  struct Stats {
    u64 executed = 0;  ///< tasks run to completion
    u64 stolen = 0;    ///< tasks that ran on a deque they weren't pushed to
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  /// Own deque LIFO, then victims FIFO starting after `self`. Sets
  /// `stolen` when the task came from another worker's deque.
  bool take(std::size_t self, std::function<void()>& out, bool& stolen);

  const util::Clock* clock_;  // never null after construction
  std::vector<std::unique_ptr<Deque>> queues_;
  std::vector<std::thread> workers_;

  std::mutex cv_mu_;                 // guards the two CVs' wait predicates
  std::condition_variable work_cv_;  // workers sleep here
  std::condition_variable idle_cv_;  // wait_idle sleeps here
  bool stopping_ = false;            // under cv_mu_

  std::atomic<std::size_t> inflight_{0};  // queued + running tasks
  std::atomic<std::size_t> queued_{0};    // queued, not yet taken
  std::atomic<std::size_t> rr_{0};        // external submit round-robin
  std::atomic<u64> executed_{0};
  std::atomic<u64> stolen_{0};
};

}  // namespace parhuff
