#pragma once
// Thin OpenMP helpers shared by the host-parallel code paths (the
// multithreaded CPU encoder/codebook builder and the SIMT simulator's block
// scheduler). Kept header-only so loop bodies inline.

#include <atomic>
#include <cstddef>
#include <exception>
#include <vector>

#include <omp.h>

namespace parhuff {

/// Number of OpenMP threads the next parallel region will use.
[[nodiscard]] inline int max_threads() { return omp_get_max_threads(); }

/// Run `fn(i)` for i in [0, n) across `threads` OpenMP threads
/// (0 = library default). Static schedule: all our loops are regular.
///
/// Exceptions thrown by `fn` are captured and rethrown after the region
/// (an exception escaping an OpenMP construct is otherwise fatal); when
/// several iterations throw, the first to claim the error slot wins. The
/// slot is claimed with a single atomic exchange, so a mass-throwing
/// kernel (every iteration of a decoder hitting corruption) never
/// serializes on a lock — losers drop their exception and move on.
/// Iterations are not cancelled — kernels that throw must leave shared
/// state merely unspecified, never invalid.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, int threads = 0) {
  if (threads == 1 || n == 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::exception_ptr first_error;
  std::atomic<bool> error_claimed{false};
  std::atomic<bool> error_ready{false};
#pragma omp parallel for schedule(static) num_threads(threads > 0 ? threads : omp_get_max_threads())
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    try {
      fn(static_cast<std::size_t>(i));
    } catch (...) {
      if (!error_claimed.exchange(true, std::memory_order_relaxed)) {
        // Sole writer: the exchange admits exactly one thread. The
        // release store below (paired with the acquire load after the
        // region) publishes first_error without leaning on the OMP
        // barrier, keeping the handoff visible to TSan.
        first_error = std::current_exception();
        error_ready.store(true, std::memory_order_release);
      }
    }
  }
  if (error_ready.load(std::memory_order_acquire)) {
    std::rethrow_exception(first_error);
  }
}

/// Chunked variant: splits [0, n) into `pieces` contiguous ranges and runs
/// `fn(piece_index, begin, end)` in parallel. Used by the coarse-grained
/// (chunk-per-thread) baselines.
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t pieces, Fn&& fn,
                     int threads = 0) {
  if (pieces == 0) return;
  const std::size_t per = (n + pieces - 1) / pieces;
  parallel_for(
      pieces,
      [&](std::size_t p) {
        const std::size_t begin = p * per;
        const std::size_t end = begin + per < n ? begin + per : n;
        if (begin < end) fn(p, begin, end);
      },
      threads);
}

/// Exclusive prefix sum over `v`, returning the total. Sequential below a
/// size threshold, two-pass blocked scan above it. The Rahmani-style encoder
/// and the chunk-placement stage both depend on this.
template <typename T>
T exclusive_scan(std::vector<T>& v, int threads = 0) {
  const std::size_t n = v.size();
  if (n == 0) return T{0};
  const int p = threads > 0 ? threads : omp_get_max_threads();
  if (n < 4096 || p <= 1) {
    T run{0};
    for (std::size_t i = 0; i < n; ++i) {
      T x = v[i];
      v[i] = run;
      run += x;
    }
    return run;
  }
  const std::size_t pieces = static_cast<std::size_t>(p);
  const std::size_t per = (n + pieces - 1) / pieces;
  std::vector<T> piece_total(pieces, T{0});
  parallel_for(
      pieces,
      [&](std::size_t b) {
        const std::size_t begin = b * per;
        const std::size_t end = begin + per < n ? begin + per : n;
        T run{0};
        for (std::size_t i = begin; i < end; ++i) {
          T x = v[i];
          v[i] = run;
          run += x;
        }
        piece_total[b] = run;
      },
      p);
  T total{0};
  for (std::size_t b = 0; b < pieces; ++b) {
    T x = piece_total[b];
    piece_total[b] = total;
    total += x;
  }
  parallel_for(
      pieces,
      [&](std::size_t b) {
        const std::size_t begin = b * per;
        const std::size_t end = begin + per < n ? begin + per : n;
        const T offset = piece_total[b];
        for (std::size_t i = begin; i < end; ++i) v[i] += offset;
      },
      p);
  return total;
}

}  // namespace parhuff
