#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace parhuff {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_.push_back({body.substr(0, eq), body.substr(eq + 1)});
      continue;
    }
    // `--name value` when the next token is not itself a flag; else a
    // boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).substr(0, 2) != "--") {
      flags_.push_back({body, std::string(argv[i + 1])});
      ++i;
    } else {
      flags_.push_back({body, std::nullopt});
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return std::any_of(flags_.begin(), flags_.end(),
                     [&](const Flag& f) { return f.name == name; });
}

std::optional<std::string> CliArgs::value_of(const std::string& name) const {
  for (auto it = flags_.rbegin(); it != flags_.rend(); ++it) {
    if (it->name == name) return it->value;
  }
  return std::nullopt;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  if (!has(name)) return fallback;
  const auto v = value_of(name);
  if (!v.has_value()) {
    throw std::invalid_argument("--" + name + " requires a value");
  }
  return *v;
}

long CliArgs::get_int(const std::string& name, long fallback) const {
  if (!has(name)) return fallback;
  const auto v = value_of(name);
  if (!v.has_value()) {
    throw std::invalid_argument("--" + name + " requires a value");
  }
  char* end = nullptr;
  const long x = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": not an integer: " + *v);
  }
  return x;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  if (!has(name)) return fallback;
  const auto v = value_of(name);
  if (!v.has_value()) {
    throw std::invalid_argument("--" + name + " requires a value");
  }
  char* end = nullptr;
  const double x = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": not a number: " + *v);
  }
  return x;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  if (!has(name)) return fallback;
  const auto v = value_of(name);
  if (!v.has_value()) return true;  // bare --flag
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw std::invalid_argument("--" + name + ": not a boolean: " + *v);
}

std::vector<std::string> CliArgs::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const Flag& f : flags_) {
    if (std::find(known.begin(), known.end(), f.name) == known.end()) {
      out.push_back(f.name);
    }
  }
  return out;
}

}  // namespace parhuff
