#include "util/fault_inject.hpp"

#include <cstdlib>

namespace parhuff::util {

void FaultInjector::arm(const std::string& site, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = sites_[site];
  const bool was_armed = s.probability > 0;
  s.probability = probability;
  const bool now_armed = s.probability > 0;
  if (!was_armed && now_armed) {
    armed_sites_.fetch_add(1, std::memory_order_relaxed);
  } else if (was_armed && !now_armed) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm(const std::string& site) { arm(site, 0.0); }

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : sites_) s.probability = 0;
  armed_sites_.store(0, std::memory_order_relaxed);
}

void FaultInjector::seed(u64 s) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_ = Xoshiro256(s);
}

std::size_t FaultInjector::arm_from_spec(std::string_view spec) {
  std::size_t armed = 0;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    const std::string site(entry.substr(0, eq));
    const std::string prob_str(entry.substr(eq + 1));
    char* parse_end = nullptr;
    const double p = std::strtod(prob_str.c_str(), &parse_end);
    if (parse_end == prob_str.c_str()) continue;
    arm(site, p);
    if (p > 0) ++armed;
  }
  return armed;
}

bool FaultInjector::should_fail(std::string_view site) {
  if (armed_sites_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(std::string(site));
  if (it == sites_.end() || it->second.probability <= 0) return false;
  Site& s = it->second;
  ++s.evaluations;
  const bool fire = rng_.uniform() < s.probability;
  if (fire) {
    ++s.fired;
    total_fired_.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

FaultInjector::SiteStats FaultInjector::stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return {};
  return SiteStats{it->second.evaluations, it->second.fired};
}

u64 FaultInjector::total_fired() const {
  return total_fired_.load(std::memory_order_relaxed);
}

FaultInjector& FaultInjector::global() {
  static FaultInjector inj;
  static const bool init = [] {
    if (const char* seed_env = std::getenv("PARHUFF_FAULT_SEED")) {
      inj.seed(std::strtoull(seed_env, nullptr, 10));
    }
    if (const char* spec = std::getenv("PARHUFF_FAULTS")) {
      inj.arm_from_spec(spec);
    }
    return true;
  }();
  (void)init;
  return inj;
}

}  // namespace parhuff::util
