#pragma once
// Common integral typedefs and project-wide constants.
//
// parhuff uses explicit fixed-width types throughout: symbols coming out of
// quantizers or k-mer packers can be wider than a byte (the paper's central
// motivation), so the symbol type is a template parameter in most APIs and
// these aliases just name the common instantiations.

#include <cstddef>
#include <cstdint>

namespace parhuff {

using u8  = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8  = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Symbol type used by the multi-byte pipelines (SZ quantization codes,
/// k-mer ids). 16 bits covers the paper's largest alphabet (65536 bins).
using sym16_t = u16;
/// Symbol type used by the generic single-byte pipelines.
using sym8_t = u8;

/// Index type for positions within an input buffer.
using index_t = std::size_t;

/// One kibi/mebi/gibi in bytes, for size arithmetic in benches and tests.
inline constexpr std::size_t KiB = std::size_t{1} << 10;
inline constexpr std::size_t MiB = std::size_t{1} << 20;
inline constexpr std::size_t GiB = std::size_t{1} << 30;

/// Maximum supported codeword length in bits. Canonical Huffman codes over
/// realistic frequency profiles stay far below this; the format reserves a
/// u64 per packed codeword so 58 bits (64 minus 6 length bits in the packed
/// representation) is the hard ceiling enforced at codebook build time.
inline constexpr unsigned kMaxCodeLen = 58;

}  // namespace parhuff
