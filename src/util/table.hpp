#pragma once
// Plain-text table formatter used by every bench binary so the reproduced
// tables render in a consistent, diffable layout.

#include <string>
#include <vector>

namespace parhuff {

/// Column-aligned ASCII table. Add a header row, then data rows; `str()`
/// renders with right-aligned numeric-looking cells and a rule under the
/// header.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  /// A horizontal rule between row groups.
  void rule();

  [[nodiscard]] std::string str() const;
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector encodes a rule
};

/// Fixed-precision float formatting (the tables mix 2dp and 3dp cells).
[[nodiscard]] std::string fmt(double v, int precision = 2);
/// Percentage with given precision, e.g. fmt_pct(0.0012, 4) -> "0.1200%".
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 4);
/// Human-readable byte size, e.g. "256 MB", "1.4 GB" (decimal units,
/// matching the paper's dataset-size column).
[[nodiscard]] std::string fmt_bytes(std::size_t bytes);

}  // namespace parhuff
