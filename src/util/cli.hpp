#pragma once
// Minimal command-line flag parser for the example binaries and bench
// drivers: `--name value`, `--name=value`, boolean `--flag`, positional
// arguments, typed getters with defaults, and unknown-flag detection.

#include <optional>
#include <string>
#include <vector>

namespace parhuff {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Positional arguments in order (argv[0] excluded).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const;
  /// Raw value of the last occurrence of --name; nullopt when absent or
  /// passed as a bare boolean flag.
  [[nodiscard]] std::optional<std::string> value_of(
      const std::string& name) const;

  /// Typed getters; throw std::invalid_argument on malformed values.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Names that were passed but never queried by any getter — call after
  /// parsing to reject typos.
  [[nodiscard]] std::vector<std::string> unknown(
      const std::vector<std::string>& known) const;

 private:
  struct Flag {
    std::string name;
    std::optional<std::string> value;
  };
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace parhuff
