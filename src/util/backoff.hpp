#pragma once
// Exponential backoff with full jitter for the service layer's retry
// path. Delay for attempt k (0-based) is
//
//   base = min(initial * multiplier^k, max)
//   delay = base * (1 - jitter) + base * jitter * U[0,1)
//
// i.e. `jitter` is the fraction of the delay that is randomized. Full
// randomization (jitter = 1) is the classic thundering-herd spreader;
// the default 0.5 keeps the expected delay schedule recognizable in
// traces while still decorrelating concurrent retries.

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace parhuff::util {

struct BackoffPolicy {
  double initial_seconds = 200e-6;
  double multiplier = 2.0;
  double max_seconds = 20e-3;
  double jitter = 0.5;  ///< randomized fraction of each delay, in [0, 1]

  friend bool operator==(const BackoffPolicy&,
                         const BackoffPolicy&) = default;
};

/// Delay before retry `attempt` (0-based). `rng` supplies the jitter draw.
[[nodiscard]] inline double backoff_delay_seconds(const BackoffPolicy& p,
                                                  int attempt,
                                                  Xoshiro256& rng) {
  double base = p.initial_seconds;
  for (int i = 0; i < attempt && base < p.max_seconds; ++i) {
    base *= p.multiplier;
  }
  base = std::min(base, p.max_seconds);
  const double jitter = std::clamp(p.jitter, 0.0, 1.0);
  return base * (1.0 - jitter) + base * jitter * rng.uniform();
}

/// Sleep for the attempt's delay; returns the seconds slept.
inline double backoff_sleep(const BackoffPolicy& p, int attempt,
                            Xoshiro256& rng) {
  const double s = backoff_delay_seconds(p, attempt, rng);
  if (s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
  }
  return s;
}

/// Clock-injected variant: sleeps on `clock`, so a VirtualClock turns the
/// delay into an instant advance (util/clock.hpp).
inline double backoff_sleep(const BackoffPolicy& p, int attempt,
                            Xoshiro256& rng, const Clock& clock) {
  const double s = backoff_delay_seconds(p, attempt, rng);
  if (s > 0) clock.sleep_for(Clock::dur(s));
  return s;
}

}  // namespace parhuff::util
