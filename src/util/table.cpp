#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace parhuff {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::rule() { rows_.emplace_back(); }

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'x' && c != ',' && c != '~') {
      return false;
    }
  }
  return digit;
}

}  // namespace

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::size_t total = cols ? 3 * (cols - 1) : 0;
  for (auto w : width) total += w;

  std::ostringstream os;
  if (!title_.empty()) {
    os << title_ << '\n' << std::string(std::max(total, title_.size()), '=')
       << '\n';
  }
  auto emit = [&](const std::vector<std::string>& r, bool align_numeric) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      const bool right = align_numeric && looks_numeric(cell);
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      if (c + 1 < cols) os << " | ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_, false);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) {
    if (r.empty()) os << std::string(total, '-') << '\n';
    else emit(r, true);
  }
  return os.str();
}

void TextTable::print() const {
  const std::string s = str();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_bytes(std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  char buf[64];
  if (b >= 1e9) std::snprintf(buf, sizeof buf, "%.1f GB", b / 1e9);
  else if (b >= 1e6) std::snprintf(buf, sizeof buf, "%.0f MB", b / 1e6);
  else if (b >= 1e3) std::snprintf(buf, sizeof buf, "%.0f KB", b / 1e3);
  else std::snprintf(buf, sizeof buf, "%zu B", bytes);
  return buf;
}

}  // namespace parhuff
