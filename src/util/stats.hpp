#pragma once
// Small statistics helpers: benches repeat runs and report medians; the
// entropy module reports distribution summaries.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace parhuff {

struct Summary {
  double min = 0, max = 0, mean = 0, median = 0, stddev = 0;
  std::size_t n = 0;
};

/// Summary statistics of a sample (sorts a copy; fine for bench-sized n).
[[nodiscard]] inline Summary summarize(std::vector<double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.median = xs.size() % 2 ? xs[xs.size() / 2]
                           : 0.5 * (xs[xs.size() / 2 - 1] + xs[xs.size() / 2]);
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

/// Repeat a timed body `reps` times and return the per-rep seconds, with one
/// untimed warmup. `body` must be idempotent.
template <typename Body>
[[nodiscard]] std::vector<double> time_reps(int reps, Body&& body) {
  body();  // warmup
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) out.push_back(body());
  return out;
}

}  // namespace parhuff
