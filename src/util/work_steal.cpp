#include "util/work_steal.hpp"

#include <stdexcept>
#include <utility>

#include "util/fault_inject.hpp"

namespace parhuff {

namespace {
// Which executor's worker (if any) the current thread is, so nested
// submissions can target their own deque.
thread_local const WorkStealExecutor* tl_owner = nullptr;
thread_local std::size_t tl_index = 0;
}  // namespace

WorkStealExecutor::WorkStealExecutor(int threads, const util::Clock* clock)
    : clock_(clock ? clock : &util::Clock::real()) {
  std::size_t n = threads > 0 ? static_cast<std::size_t>(threads)
                              : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealExecutor::~WorkStealExecutor() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealExecutor::submit(std::function<void()> task) {
  // Fault-injection site: models a transient admission failure (e.g. a
  // saturated remote pool). Callers that retry see InjectedFault, which
  // is a TransientError.
  util::FaultInjector::global().maybe_throw("executor.submit");
  std::size_t target;
  if (tl_owner == this) {
    target = tl_index;
  } else {
    target = rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> qlock(queues_[target]->mu);
    {
      std::lock_guard<std::mutex> lock(cv_mu_);
      if (stopping_) {
        throw std::logic_error("WorkStealExecutor: submit() after shutdown");
      }
      inflight_.fetch_add(1, std::memory_order_relaxed);
      queued_.fetch_add(1, std::memory_order_release);
    }
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool WorkStealExecutor::take(std::size_t self, std::function<void()>& out,
                             bool& stolen) {
  {
    Deque& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      stolen = false;
      return true;
    }
  }
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Deque& victim = *queues_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      stolen = true;
      return true;
    }
  }
  return false;
}

void WorkStealExecutor::worker_loop(std::size_t self) {
  tl_owner = this;
  tl_index = self;
  std::function<void()> task;
  bool stolen = false;
  for (;;) {
    if (take(self, task, stolen)) {
      task();
      task = nullptr;
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (stolen) stolen_.fetch_add(1, std::memory_order_relaxed);
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(cv_mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(cv_mu_);
    // Re-check under cv_mu_: a submitter increments queued_ under this
    // mutex before notifying, so the predicate cannot miss a push that
    // happened between the failed take() and this wait. The park itself is
    // a clock-routed timed wait per quantum (not an unbounded cv wait), so
    // an injected VirtualClock governs idle time in tests; a notify still
    // wakes the worker immediately, the timeout is only a backstop.
    while (!(stopping_ || queued_.load(std::memory_order_acquire) > 0)) {
      clock_->wait_until(work_cv_, lock,
                         clock_->now() + std::chrono::milliseconds(50));
    }
    if (stopping_ && queued_.load(std::memory_order_acquire) == 0) return;
  }
}

void WorkStealExecutor::wait_idle() {
  std::unique_lock<std::mutex> lock(cv_mu_);
  idle_cv_.wait(lock, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

WorkStealExecutor::Stats WorkStealExecutor::stats() const {
  return Stats{executed_.load(std::memory_order_relaxed),
               stolen_.load(std::memory_order_relaxed)};
}

}  // namespace parhuff
