#pragma once
// Wall-clock timing utilities used by benches and the pipeline's per-stage
// instrumentation.

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

namespace parhuff {

/// Simple monotonic stopwatch. Construction starts it.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named stage durations; the pipeline uses one of these to
/// report the hist/codebook/encode breakdown the paper's Table V shows.
class StageTimes {
 public:
  void add(const std::string& stage, double seconds) { acc_[stage] += seconds; }

  [[nodiscard]] double seconds(const std::string& stage) const {
    auto it = acc_.find(stage);
    return it == acc_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] double total_seconds() const {
    double t = 0;
    for (const auto& [k, v] : acc_) t += v;
    return t;
  }
  [[nodiscard]] const std::map<std::string, double>& all() const { return acc_; }
  void clear() { acc_.clear(); }

 private:
  std::map<std::string, double> acc_;
};

/// Throughput in GB/s (decimal GB, matching the paper's units) for `bytes`
/// processed in `seconds`.
[[nodiscard]] inline double gbps(std::size_t bytes, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e9 / seconds;
}

}  // namespace parhuff
