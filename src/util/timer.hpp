#pragma once
// Wall-clock timing utilities used by benches and the pipeline's per-stage
// instrumentation.

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

namespace parhuff {

/// Simple monotonic stopwatch. Construction starts it.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named stage durations and how often each stage ran; the
/// pipeline uses one of these to report the hist/codebook/encode breakdown
/// the paper's Table V shows, and the obs layer reports mean-per-call from
/// the invocation counts.
class StageTimes {
 public:
  struct Entry {
    double seconds = 0;
    std::size_t count = 0;
  };

  void add(const std::string& stage, double seconds) {
    Entry& e = acc_[stage];
    e.seconds += seconds;
    e.count += 1;
  }

  [[nodiscard]] double seconds(const std::string& stage) const {
    auto it = acc_.find(stage);
    return it == acc_.end() ? 0.0 : it->second.seconds;
  }
  /// Number of add() calls recorded against `stage`.
  [[nodiscard]] std::size_t count(const std::string& stage) const {
    auto it = acc_.find(stage);
    return it == acc_.end() ? 0 : it->second.count;
  }
  /// seconds(stage) / count(stage); 0 when the stage never ran.
  [[nodiscard]] double mean_seconds(const std::string& stage) const {
    auto it = acc_.find(stage);
    return it == acc_.end() || it->second.count == 0
               ? 0.0
               : it->second.seconds / static_cast<double>(it->second.count);
  }
  [[nodiscard]] double total_seconds() const {
    double t = 0;
    for (const auto& [k, v] : acc_) t += v.seconds;
    return t;
  }
  [[nodiscard]] const std::map<std::string, Entry>& all() const {
    return acc_;
  }
  void clear() { acc_.clear(); }

 private:
  std::map<std::string, Entry> acc_;
};

/// Throughput in GB/s (decimal GB, matching the paper's units) for `bytes`
/// processed in `seconds`.
[[nodiscard]] inline double gbps(std::size_t bytes, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(bytes) / 1e9 / seconds;
}

}  // namespace parhuff
