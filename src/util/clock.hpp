#pragma once
// Injectable time source for everything in the service stack that reads
// the clock or sleeps: deadline expiry (svc/deadline.hpp, core/cancel.hpp),
// retry backoff (util/backoff.hpp) and the scheduler's batch-window sweep.
//
// Two implementations:
//  * Clock::real()  — the process steady clock; the default everywhere, so
//    production behavior is unchanged when nothing is injected.
//  * VirtualClock   — a test-controlled clock. Time moves only when the
//    test advances it: advance() moves it explicitly, sleep_for() advances
//    instead of blocking (a virtual sleep returns immediately), and
//    auto_advance_every(n, step) advances `step` on every n-th now() query,
//    which lets a test expire a deadline deterministically *mid-stage* —
//    after a chosen number of kernel poll points — with no real sleeping
//    and no thread races.
//
// Both share std::chrono::steady_clock's time_point/duration types, so a
// virtual clock slots in wherever a steady-clock instant is stored (e.g.
// svc::Deadline) without conversion.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/types.hpp"

namespace parhuff::util {

class Clock {
 public:
  using underlying = std::chrono::steady_clock;
  using time_point = underlying::time_point;
  using duration = underlying::duration;

  virtual ~Clock() = default;

  [[nodiscard]] virtual time_point now() const = 0;

  /// Block (real clock) or advance (virtual clock) for `d`.
  virtual void sleep_for(duration d) const = 0;

  /// Wait on `cv` until notified or until this clock reaches `tp`.
  /// Returns timeout iff `tp` has been reached *on this clock* — for the
  /// virtual clock that means a bounded real wait per call, re-evaluated
  /// against virtual time, so callers must loop exactly as they would
  /// around a spurious wakeup (every caller in this codebase already does).
  virtual std::cv_status wait_until(std::condition_variable& cv,
                                    std::unique_lock<std::mutex>& lk,
                                    time_point tp) const = 0;

  /// Seconds → this clock's duration (saturating on overflow is not
  /// needed: callers pass bounded backoff/window values).
  [[nodiscard]] static duration dur(double seconds) {
    return std::chrono::duration_cast<duration>(
        std::chrono::duration<double>(seconds));
  }

  /// The process steady clock.
  [[nodiscard]] static const Clock& real();
};

namespace detail {

class RealClock final : public Clock {
 public:
  [[nodiscard]] time_point now() const override { return underlying::now(); }
  void sleep_for(duration d) const override {
    if (d > duration::zero()) std::this_thread::sleep_for(d);
  }
  std::cv_status wait_until(std::condition_variable& cv,
                            std::unique_lock<std::mutex>& lk,
                            time_point tp) const override {
    return cv.wait_until(lk, tp);
  }
};

}  // namespace detail

inline const Clock& Clock::real() {
  static const detail::RealClock instance;
  return instance;
}

/// Deterministic test clock (see file comment). Thread-safe: the service's
/// scheduler, its workers and the test thread may all query concurrently.
class VirtualClock final : public Clock {
 public:
  /// Starts one virtual hour in, so tests can move deadlines both ways.
  explicit VirtualClock(time_point start = time_point{} +
                                           std::chrono::hours(1))
      : now_(start) {}

  [[nodiscard]] time_point now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_;
    if (every_ > 0 && queries_ % every_ == 0) now_ += step_;
    return now_;
  }

  /// A virtual sleep: advances the clock by `d` and returns immediately.
  void sleep_for(duration d) const override {
    std::lock_guard<std::mutex> lock(mu_);
    if (d > duration::zero()) now_ += d;
  }

  std::cv_status wait_until(std::condition_variable& cv,
                            std::unique_lock<std::mutex>& lk,
                            time_point tp) const override {
    if (peek() >= tp) return std::cv_status::timeout;
    // Bounded real nap so a notify or a concurrent advance() is observed
    // promptly; the caller's wait loop re-evaluates its predicate either
    // way, exactly as for a spurious wakeup.
    cv.wait_for(lk, std::chrono::microseconds(200));
    return peek() >= tp ? std::cv_status::timeout : std::cv_status::no_timeout;
  }

  /// Move time forward (a controller/test-thread action).
  void advance(duration d) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += d;
  }
  void advance_seconds(double s) { advance(dur(s)); }

  /// Every `queries`-th now() call advances the clock by `step`
  /// (0 disables). This ties the passage of time to *observed activity*
  /// (each deadline poll point queries the clock once), which is what
  /// makes "the deadline expires after ~K poll points" a deterministic,
  /// sleep-free test condition.
  void auto_advance_every(u64 queries, duration step) {
    std::lock_guard<std::mutex> lock(mu_);
    every_ = queries;
    step_ = step;
  }

  /// now() without counting a query (test assertions).
  [[nodiscard]] time_point peek() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }
  [[nodiscard]] u64 queries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queries_;
  }

 private:
  mutable std::mutex mu_;
  mutable time_point now_;
  mutable u64 queries_ = 0;
  u64 every_ = 0;
  duration step_{};
};

}  // namespace parhuff::util
