#pragma once
// FNV-1a 64-bit hash — the integrity checksum appended to every stream
// section of the container formats. Not cryptographic; it exists to catch
// bit rot and truncation, like the CRCs in gzip/zstd frames.

#include <cstddef>
#include <span>

#include "util/types.hpp"

namespace parhuff {

[[nodiscard]] constexpr u64 fnv1a(std::span<const u8> bytes,
                                  u64 seed = 0xcbf29ce484222325ull) {
  u64 h = seed;
  for (const u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace parhuff
