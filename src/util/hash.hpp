#pragma once
// FNV-1a 64-bit hash — the integrity checksum appended to every stream
// section of the container formats. Not cryptographic; it exists to catch
// bit rot and truncation, like the CRCs in gzip/zstd frames.

#include <cstddef>
#include <cstring>
#include <span>

#include "util/types.hpp"

namespace parhuff {

/// FNV-1a offset basis — the seed an incremental hash starts from. Feeding
/// a previous result back as `seed` chains the hash across buffers without
/// ever holding the whole input (the v3 RPC stream checksum chains
/// stream_checksum() over chunk payloads this way).
inline constexpr u64 kFnv1aSeed = 0xcbf29ce484222325ull;

[[nodiscard]] constexpr u64 fnv1a(std::span<const u8> bytes,
                                  u64 seed = kFnv1aSeed) {
  u64 h = seed;
  for (const u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Wide-lane variant for the v3 RPC stream checksum: FNV-1a mixing over
/// 8-byte little-endian lanes (one multiply per 8 input bytes instead of
/// per byte — ~6x the throughput, which matters when the hash sits on the
/// streamed-chunk hot path on both ends of the wire) with a byte-wise
/// tail. Chains across chunks through `seed` exactly like fnv1a(), but it
/// is a DIFFERENT function — sender and receiver must both use it
/// (docs/rpc.md pins the choice as part of the v3 wire contract).
[[nodiscard]] inline u64 stream_checksum(std::span<const u8> bytes,
                                         u64 seed = kFnv1aSeed) {
  u64 h = seed;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    u64 lane;
    std::memcpy(&lane, bytes.data() + i, 8);  // LE, like the frame header
    h = (h ^ lane) * 0x100000001b3ull;
  }
  for (; i < bytes.size(); ++i) {
    h = (h ^ bytes[i]) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace parhuff
