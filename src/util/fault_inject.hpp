#pragma once
// Site-keyed probabilistic fault injection for resilience testing.
//
// Production code marks its failure-prone points with
// `FaultInjector::global().maybe_throw("svc.codebook")`; a disarmed
// injector reduces that to one relaxed atomic load, so the hooks are free
// on the no-fault path. Tests (and operators chasing a bug in a staging
// deployment) arm sites with a firing probability, either
// programmatically or through the environment:
//
//   PARHUFF_FAULTS="svc.encode=0.1,svc.cache.find=0.05"   site=prob list
//   PARHUFF_FAULT_SEED=42                                 deterministic draws
//
// Injected failures are *transient* by contract: they model overload,
// allocation pressure and lost work — conditions a retry may outlive —
// and therefore derive from TransientError, the type the service layer's
// retry policy keys on. Per-site evaluation/fired counts are kept so a
// soak test can prove every site actually exercised its failure path.

#include <atomic>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include <mutex>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace parhuff::util {

/// Base class for failures that a retry may outlive (overload, injected
/// faults). The service layer retries these; everything else is treated
/// as deterministic and fails fast.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by FaultInjector::maybe_throw at an armed site.
class InjectedFault : public TransientError {
 public:
  explicit InjectedFault(std::string_view site)
      : TransientError("injected fault at site: " + std::string(site)),
        site_(site) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FaultInjector {
 public:
  struct SiteStats {
    u64 evaluations = 0;  ///< should_fail() calls while the site was armed
    u64 fired = 0;        ///< evaluations that injected
  };

  FaultInjector() = default;

  /// Arm `site` to fire with `probability` in [0, 1]. probability <= 0
  /// disarms the site.
  void arm(const std::string& site, double probability);
  void disarm(const std::string& site);
  void disarm_all();

  /// Reseed the draw stream (draws are deterministic given the seed and
  /// the evaluation order).
  void seed(u64 s);

  /// Parse `spec` ("site=prob,site=prob"); returns how many sites were
  /// armed. Malformed entries are skipped.
  std::size_t arm_from_spec(std::string_view spec);

  /// Draw for `site`. False immediately (one relaxed load, no lock) when
  /// nothing is armed.
  [[nodiscard]] bool should_fail(std::string_view site);

  /// should_fail() that throws InjectedFault{site} when it fires.
  void maybe_throw(std::string_view site) {
    if (should_fail(site)) throw InjectedFault(site);
  }

  [[nodiscard]] bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] SiteStats stats(const std::string& site) const;
  [[nodiscard]] u64 total_fired() const;

  /// Process-wide instance the library's injection points consult. Armed
  /// from PARHUFF_FAULTS / PARHUFF_FAULT_SEED on first use.
  static FaultInjector& global();

 private:
  struct Site {
    double probability = 0;
    u64 evaluations = 0;
    u64 fired = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;  // armed + historical
  Xoshiro256 rng_{0x9e3779b9u};
  /// Sites with probability > 0; the fast-path gate.
  std::atomic<std::size_t> armed_sites_{0};
  std::atomic<u64> total_fired_{0};
};

/// RAII helper for tests: arms sites on construction, restores the
/// injector to fully-disarmed on destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(FaultInjector& inj) : inj_(inj) {}
  ~ScopedFaults() { inj_.disarm_all(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

  ScopedFaults& arm(const std::string& site, double probability) {
    inj_.arm(site, probability);
    return *this;
  }

 private:
  FaultInjector& inj_;
};

}  // namespace parhuff::util
