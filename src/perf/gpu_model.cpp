#include "perf/gpu_model.hpp"

namespace parhuff::perf {

GpuTimeBreakdown model_time(const simt::MemTally& t,
                            const simt::DeviceSpec& spec) {
  GpuTimeBreakdown b;
  b.launch_s = static_cast<double>(t.kernel_launches) *
               spec.kernel_launch_us * 1e-6;
  // Block syncs overlap across the resident blocks of all SMs; grid syncs
  // are genuinely device-wide.
  const double block_sync_parallelism =
      static_cast<double>(spec.sm_count) * 16.0;
  b.sync_s = static_cast<double>(t.grid_syncs) * spec.grid_sync_us * 1e-6 +
             static_cast<double>(t.block_syncs) * spec.block_sync_ns * 1e-9 /
                 block_sync_parallelism;

  const double sectors = static_cast<double>(t.global_read_sectors +
                                             t.global_write_sectors);
  b.dram_s = sectors * static_cast<double>(simt::kSectorBytes) /
             spec.mem_bytes_per_sec();

  b.shared_s = static_cast<double>(t.shared_bytes) /
               (spec.shared_bandwidth_gbps * 1e9);

  b.compute_s = static_cast<double>(t.scalar_ops) / spec.bulk_ops_per_sec();

  // Atomic throughput: ~4 shared-atomic lanes per SM per cycle; global
  // atomics resolve in L2 with device-wide throughput bounded by a handful
  // per cycle. Conflict depth is already folded into the counters.
  const double shared_atomic_rate = static_cast<double>(spec.sm_count) * 4.0 *
                                    spec.clock_ghz * 1e9;
  // L2 atomics resolve across all slices: ~2 per clock per slice.
  const double global_atomic_rate = 128.0 * spec.clock_ghz * 1e9;
  b.atomic_s =
      static_cast<double>(t.shared_atomic_conflicts) / shared_atomic_rate +
      static_cast<double>(t.global_atomic_conflicts) / global_atomic_rate;

  b.serial_s = static_cast<double>(t.serial_dependent_ops) *
               spec.serial_thread_op_ns * 1e-9;
  return b;
}

double modeled_ms(const simt::MemTally& tally, const simt::DeviceSpec& spec) {
  return model_time(tally, spec).total() * 1e3;
}

double modeled_gbps(std::size_t input_bytes, const simt::MemTally& tally,
                    const simt::DeviceSpec& spec) {
  const double t = model_time(tally, spec).total();
  if (t <= 0) return 0;
  return static_cast<double>(input_bytes) / 1e9 / t;
}

GpuTimeBreakdown model_time_scaled(const simt::MemTally& tally,
                                   const simt::DeviceSpec& spec,
                                   double factor) {
  GpuTimeBreakdown b = model_time(tally, spec);
  b.dram_s *= factor;
  b.shared_s *= factor;
  b.compute_s *= factor;
  b.atomic_s *= factor;
  b.serial_s *= factor;
  // Grid syncs track algorithm rounds, block syncs track data volume: keep
  // the former fixed, scale the latter. sync_s holds both; recompute.
  const double block_sync_parallelism =
      static_cast<double>(spec.sm_count) * 16.0;
  b.sync_s = static_cast<double>(tally.grid_syncs) * spec.grid_sync_us * 1e-6 +
             static_cast<double>(tally.block_syncs) * spec.block_sync_ns *
                 1e-9 / block_sync_parallelism * factor;
  return b;
}

double modeled_gbps_at(std::size_t input_bytes, std::size_t paper_bytes,
                       const simt::MemTally& tally,
                       const simt::DeviceSpec& spec) {
  if (input_bytes == 0) return 0;
  const double factor = static_cast<double>(paper_bytes) /
                        static_cast<double>(input_bytes);
  const double t = model_time_scaled(tally, spec, factor).total();
  if (t <= 0) return 0;
  return static_cast<double>(paper_bytes) / 1e9 / t;
}

}  // namespace parhuff::perf
