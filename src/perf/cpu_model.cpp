#include "perf/cpu_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace parhuff::perf {

double scaled_throughput_gbps(double single_thread_gbps, int threads,
                              const CpuSpec& spec) {
  if (threads <= 0) return 0;
  const int physical = std::min(threads, spec.cores);

  // Efficiency: 1.0 within one socket, decaying linearly past it.
  const int beyond = std::max(0, physical - spec.cores_per_socket);
  double eff = 1.0 - spec.cross_socket_decay * static_cast<double>(beyond);
  eff = std::max(eff, 0.2);

  double gbps = single_thread_gbps * static_cast<double>(physical) * eff;

  // Bandwidth roofline: sockets engaged scale the cap.
  const int sockets =
      (physical + spec.cores_per_socket - 1) / spec.cores_per_socket;
  const double cap = spec.per_socket_bw_gbps * static_cast<double>(sockets);
  gbps = std::min(gbps, cap);

  if (threads > spec.cores) {
    gbps *= spec.oversubscribe_penalty;
  }
  return gbps;
}

double parallel_efficiency(double single_thread_gbps, int threads,
                           const CpuSpec& spec) {
  if (threads <= 0 || single_thread_gbps <= 0) return 0;
  return scaled_throughput_gbps(single_thread_gbps, threads, spec) /
         (single_thread_gbps * static_cast<double>(threads));
}

double region_task_seconds(double serial_seconds, std::size_t regions,
                           int threads, const CpuSpec& spec) {
  if (threads <= 0) return serial_seconds;
  const int physical = std::min(threads, spec.cores);
  const double work = serial_seconds / static_cast<double>(physical);
  // Fork/join cost grows with team size (barrier latency).
  const double overhead = static_cast<double>(regions) *
                          spec.fork_join_us_per_thread * 1e-6 *
                          std::log2(static_cast<double>(threads) + 1.0);
  return work + overhead;
}

}  // namespace parhuff::perf
