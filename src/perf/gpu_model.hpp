#pragma once
// Analytic GPU timing model: converts a kernel's MemTally (measured
// transaction counts from the functional simulation) into modeled time on a
// DeviceSpec. See DESIGN.md §1 for why this substitution preserves the
// paper's results: the evaluated effects are bandwidth-utilization effects,
// and the tally captures exactly the sector traffic each encoding scheme
// generates.
//
// Model:
//   t = launches·t_launch + grid_syncs·t_gsync + block_syncs·t_bsync/ILP
//     + max(dram_time, compute_time) + shared_time + atomic_time
//     + serial_dependent_ops·t_serial_op
// where dram time prices 32 B sectors against sustainable bandwidth,
// shared/atomic terms price against per-SM throughputs, and the serial term
// models a single GPU thread paying full dependent latency (the
// "serial tree construction takes 144 ms on the GPU" effect).

#include "simt/mem_model.hpp"
#include "simt/spec.hpp"

namespace parhuff::perf {

struct GpuTimeBreakdown {
  double launch_s = 0;
  double sync_s = 0;
  double dram_s = 0;
  double shared_s = 0;
  double compute_s = 0;
  double atomic_s = 0;
  double serial_s = 0;

  [[nodiscard]] double total() const {
    // DRAM, shared-memory traffic and instruction issue all overlap on the
    // device — whichever pipe saturates first bounds the kernel; launches,
    // barriers, serialized atomics and lone-thread sections add on top.
    double overlapped = dram_s;
    if (shared_s > overlapped) overlapped = shared_s;
    if (compute_s > overlapped) overlapped = compute_s;
    return launch_s + sync_s + overlapped + atomic_s + serial_s;
  }
};

[[nodiscard]] GpuTimeBreakdown model_time(const simt::MemTally& tally,
                                          const simt::DeviceSpec& spec);

/// Modeled throughput in GB/s for `input_bytes` of payload work.
[[nodiscard]] double modeled_gbps(std::size_t input_bytes,
                                  const simt::MemTally& tally,
                                  const simt::DeviceSpec& spec);

/// Modeled milliseconds.
[[nodiscard]] double modeled_ms(const simt::MemTally& tally,
                                const simt::DeviceSpec& spec);

/// Modeled time with the data-proportional terms (traffic, ops, atomics,
/// block syncs) scaled by `factor`, and the launch/grid-sync fixed costs
/// unscaled. Benches run the functional simulation on scaled-down inputs
/// and use this to report throughput at the paper's dataset sizes, where
/// the fixed costs amortize as they did on the authors' testbed.
[[nodiscard]] GpuTimeBreakdown model_time_scaled(const simt::MemTally& tally,
                                                 const simt::DeviceSpec& spec,
                                                 double factor);

/// Throughput at the paper's size: `input_bytes` measured on the run,
/// extrapolated to `paper_bytes`.
[[nodiscard]] double modeled_gbps_at(std::size_t input_bytes,
                                     std::size_t paper_bytes,
                                     const simt::MemTally& tally,
                                     const simt::DeviceSpec& spec);

}  // namespace parhuff::perf
