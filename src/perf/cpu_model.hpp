#pragma once
// Roofline-style CPU scaling model for the paper's dual-socket 28-core
// Xeon Platinum 8280 testbed (Tables IV and VI).
//
// The host this reproduction runs on has a handful of cores, so per-thread
// throughput for the memory-bound stages is *measured* on the host and then
// scaled through this model, which captures the three mechanisms visible in
// the paper's CPU tables:
//   1. near-linear scaling while a single socket's bandwidth is unsaturated;
//   2. efficiency decay once the working set spans sockets (their measured
//      parallel efficiency: 0.97 @32, 0.81 @56);
//   3. collapse past the physical core count (0.37 @64 on 56 cores).
// Plus, for Table IV, a fixed per-parallel-region fork/join overhead that
// explains why OpenMP codebook construction loses below ~32768 symbols.

#include <string>

namespace parhuff::perf {

struct CpuSpec {
  std::string name = "2x Xeon Platinum 8280";
  int cores = 56;                    ///< physical cores total
  int cores_per_socket = 28;
  double per_socket_bw_gbps = 105.0; ///< sustainable DRAM bandwidth
  /// Efficiency decay per extra core beyond one socket (calibrated to the
  /// paper's 0.81 parallel efficiency at 56 cores).
  double cross_socket_decay = 0.0068;
  /// Throughput multiplier when threads exceed physical cores (their
  /// 64-thread point: 29.33/55.71 on top of lost efficiency).
  double oversubscribe_penalty = 0.45;
  /// OpenMP fork/join cost per parallel region (Table IV's small-codebook
  /// overhead), seconds per region per extra thread.
  double fork_join_us_per_thread = 1.6;
};

/// Modeled multi-thread throughput (GB/s) for a memory-bound streaming
/// stage, from measured single-thread throughput.
[[nodiscard]] double scaled_throughput_gbps(double single_thread_gbps,
                                            int threads, const CpuSpec& spec);

/// Parallel efficiency implied by the model: scaled / (p * single).
[[nodiscard]] double parallel_efficiency(double single_thread_gbps,
                                         int threads, const CpuSpec& spec);

/// Modeled wall time (seconds) of a parallel-region-heavy task (the OpenMP
/// codebook builder): `serial_seconds` of total work split over p threads
/// plus fork/join overhead for `regions` parallel regions.
[[nodiscard]] double region_task_seconds(double serial_seconds,
                                         std::size_t regions, int threads,
                                         const CpuSpec& spec);

}  // namespace parhuff::perf
