#pragma once
// Sharded router front-end: one listener fanning the frame protocol out
// across N backend RpcServer shards (docs/router.md).
//
//   clients ──► ShardRouter ──► shard 0 (RpcServer + CompressionService)
//                        ├────► shard 1
//                        └────► shard 2 ...
//
// The router speaks the same wire protocol on both sides: clients connect
// with an unmodified RpcClient, and each shard is dialed through an
// embedded RpcClient (inheriting its lazy connect, backoff+redial and
// generation-swept reconnect). Per client connection the router mirrors
// RpcServer's threading — a reader that parses/validates/routes and a
// writer that resolves one response slot per request strictly in request
// order — so a client cannot tell a router from a single server.
//
// Routing is rendezvous hashing (router/hash.hpp) on a scale-invariant
// request key: compress requests hash the payload's histogram shape with
// svc::fingerprint_histogram — the same shape key the shards' codebook
// caches use — so config-equal traffic keeps landing on the shard whose
// cache is already warm. Decompress requests hash the container prefix
// (codebook bytes), which is equally distribution-stable.
//
// Failover and load shed: a shard that is unhealthy or saturated
// (router/health.hpp; fed by in-band kHealth probes and by passive
// forward-path outcomes) is routed around; a transport failure or
// kQueueFull answer mid-request falls through to the key's next hash
// candidate (compress/decompress are idempotent, so a duplicate execution
// is safe). When every candidate is exhausted the request is *shed* with
// a typed kQueueFull response — never a silent stall. Terminal accounting
// is exact: router.routed == router.forwarded + router.failed_over +
// router.shed after quiesce.
//
// Streams (protocol v3): a Begin frame pins the whole stream to one shard
// — failover candidates are only tried at Begin (the frame carries no
// payload, so placement is a uniform spread, not histogram affinity). The
// router assigns its own client-facing stream id and translates to the
// shard's id on every forwarded Chunk/End (ids from different shards may
// collide, so pass-through would be ambiguous). Chunk payloads are lent
// to the backend send as views into the reader's buffer — the proxy hop
// never copies a chunk. Mid-stream shard loss is *terminal* for the
// stream (chunks already consumed by the dead shard cannot be replayed):
// the client gets a typed error and restarts the stream, and
// router.streams_opened == router.streams_completed +
// router.streams_aborted stays exact after quiesce.
//
// Fault sites (util::FaultInjector): router.route (key/candidate
// computation), router.proxy.write (the forward to a shard),
// router.health.probe (the background probe) — armed by the router
// fault-storm soak to prove the resolve-always invariant survives.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "router/hash.hpp"
#include "router/health.hpp"
#include "rpc/client.hpp"
#include "rpc/transport.hpp"
#include "util/clock.hpp"
#include "util/work_steal.hpp"

namespace parhuff::router {

/// One backend shard: a display name (metric/gauge labels) plus the
/// connector its embedded RpcClient dials with.
struct ShardEndpoint {
  std::string name;
  rpc::RpcClient::Connector connect;
};

struct RouterConfig {
  /// Rendezvous seed: routers sharing a seed (and shard order) route
  /// identically, which is what keeps shard caches warm across router
  /// restarts. Change it to reshuffle the key space deliberately.
  u64 hash_seed = 0x7073686172647221ull;
  std::size_t max_connections = 8;
  /// Bound on a single client request frame's payload.
  u32 max_payload_bytes = rpc::kMaxPayloadBytes;
  /// io pool size; 0 → 1 + 2 * max_connections (accept + a reader and a
  /// writer per client connection).
  int io_threads = 0;
  /// Distinct shards tried per request before shedding; 0 = every shard
  /// once (hash order).
  std::size_t max_route_attempts = 0;
  HealthPolicy health;
  /// Start the background prober thread (probe cadence in `health`).
  /// Tests that want deterministic probing disable it and call
  /// probe_now() themselves.
  bool start_prober = true;
  /// Config for the per-shard backend RpcClients (backoff, connect
  /// attempts, payload bound). The clock below is injected into it.
  rpc::ClientConfig client;
  /// Time source for probing and backend backoff. nullptr = real clock.
  const util::Clock* clock = nullptr;
};

class ShardRouter {
 public:
  /// Takes ownership of the client-facing listener, dials nothing yet
  /// (backend clients connect lazily on first use), starts accepting
  /// immediately. Throws std::invalid_argument on an empty shard list.
  ShardRouter(std::unique_ptr<rpc::Listener> listener,
              std::vector<ShardEndpoint> shards, RouterConfig cfg = {});
  /// stop(), then joins everything.
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Stop accepting, shut every client connection down, join the prober,
  /// drain the io pool. Idempotent. In-flight proxied requests still
  /// resolve against their shards; responses are written when the client
  /// connection survives long enough, dropped otherwise.
  void stop();

  /// One synchronous probe sweep over every shard (also what the
  /// background prober runs). Safe to call concurrently with traffic.
  void probe_now();

  [[nodiscard]] std::size_t connection_count() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool shard_healthy(std::size_t i) const;
  [[nodiscard]] bool shard_available(std::size_t i) const;
  /// Terminal responses served by shard `i` (success or typed error) —
  /// the per-shard half of the routed == forwarded + failed_over + shed
  /// balance.
  [[nodiscard]] u64 shard_served(std::size_t i) const;

  /// The routing key the router derives for a request payload — exposed
  /// so tests and benches can predict placement without a wire hop.
  [[nodiscard]] static u64 route_key(rpc::Op op, u8 sym_width,
                                     std::span<const u8> payload);

 private:
  struct Shard;
  struct ConnState;

  void accept_loop();
  void reader_loop(std::shared_ptr<ConnState> cs);
  void writer_loop(std::shared_ptr<ConnState> cs);
  /// Frame-level dispatch; returns false when the connection must drop.
  bool handle_frame(const std::shared_ptr<ConnState>& cs,
                    const rpc::Header& h, std::vector<u8> payload);
  void handle_proxy(const std::shared_ptr<ConnState>& cs,
                    const rpc::Header& h, std::vector<u8> payload);
  /// Open a stream: pick a shard (Begin-time failover), run the backend
  /// Begin to completion, bind client id → (shard, backend id).
  void handle_stream_begin(const std::shared_ptr<ConnState>& cs,
                           const rpc::Header& h);
  /// Forward one Chunk/End on a pinned stream; any failure is terminal
  /// for the stream.
  void handle_stream_frame(const std::shared_ptr<ConnState>& cs,
                           const rpc::Header& h, std::vector<u8> payload);
  /// Candidate order for a key: available shards first (hash order),
  /// then the rest (fail-open last resorts), truncated to the attempt
  /// budget.
  [[nodiscard]] std::vector<u32> candidates(u64 key) const;
  /// Forward one request to shard `idx`; throws on the injected
  /// router.proxy.write fault. The returned call's future carries the
  /// shard's answer (or its transport failure).
  [[nodiscard]] rpc::RpcCall forward(u32 idx, const rpc::Header& h,
                                     const std::vector<u8>& payload);
  void probe_shard(Shard& sh);
  void prober_loop();

  RouterConfig cfg_;
  const util::Clock* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<rpc::Listener> listener_;

  mutable std::mutex conns_mu_;
  std::vector<std::weak_ptr<ConnState>> conns_;
  bool stopping_ = false;  // under conns_mu_

  /// Spreads stream placement (Begin frames carry no payload to hash).
  std::atomic<u64> stream_nonce_{0};

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;  // under prober_mu_
  std::thread prober_;

  /// Declared last: destroyed first, joining the accept/reader/writer
  /// tasks while the shards they proxy to are still alive.
  std::unique_ptr<WorkStealExecutor> io_;
};

}  // namespace parhuff::router
