#pragma once
// Rendezvous (highest-random-weight) hashing for the shard router
// (docs/router.md).
//
// Every (key, shard) pair gets an independent pseudo-random score; a key's
// candidate order is the shards sorted by score. Two properties make this
// the right shape for codebook-affinity routing:
//
//   * Determinism — the order depends only on (key, shard index, seed), so
//     every router instance with the same seed routes the same traffic to
//     the same shards, and a restarted router re-derives the same map
//     (warm shard caches stay warm across router restarts).
//   * Minimal disruption — removing a shard only remaps the keys whose
//     top-ranked candidate *was* that shard (they fall through to their
//     second choice); every other key keeps its shard and its warm cache.
//     A consistent-hash ring gives the same guarantee with more machinery;
//     for a handful of shards rendezvous is simpler and exactly as good.
//
// The score mixer is splitmix64's finalizer — full-avalanche in 64 bits,
// so nearby keys and nearby shard indices decorrelate completely.

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "util/types.hpp"

namespace parhuff::router {

/// splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
[[nodiscard]] constexpr u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The rendezvous score of `shard` for `key` under `seed`.
[[nodiscard]] constexpr u64 rendezvous_score(u64 key, u32 shard, u64 seed) {
  return mix64(mix64(key ^ seed) ^ (0x9e3779b97f4a7c15ull * (shard + 1)));
}

/// All `n` shard indices ordered by descending score for `key`: index 0 is
/// the key's home shard, the rest are its failover candidates in
/// preference order. Ties (vanishingly rare in 64 bits) break toward the
/// lower index so the order is total and reproducible.
[[nodiscard]] inline std::vector<u32> rendezvous_order(u64 key,
                                                       std::size_t n,
                                                       u64 seed) {
  std::vector<u32> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
    const u64 sa = rendezvous_score(key, a, seed);
    const u64 sb = rendezvous_score(key, b, seed);
    return sa != sb ? sa > sb : a < b;
  });
  return order;
}

}  // namespace parhuff::router
