#pragma once
// Per-shard health state for the router (docs/router.md "Health model").
//
// Two signal sources feed one tiny state machine:
//
//   * passive — every proxied request is a health sample: a transport
//     failure on the forward path counts a failure, a served response
//     counts a success;
//   * active — the router's prober sends the in-band kHealth verb
//     (rpc/protocol.hpp) on an interval and feeds the returned HealthInfo
//     in. A probe also *clears* failure state on success, which is what
//     lets a restarted shard rejoin without waiting for risky live
//     traffic.
//
// `healthy` trips after `unhealthy_after` consecutive failures and resets
// on the first success. `saturated` mirrors the last probe's queue
// occupancy against `saturation_fraction` — a saturated shard is routed
// around like an unhealthy one, but sheds load instead of losing it, so
// the two states are tracked separately for observability.
//
// Everything is atomic: the reader threads, the writer threads (failover
// path) and the prober all touch the same state lock-free.

#include <atomic>

#include "rpc/protocol.hpp"
#include "util/types.hpp"

namespace parhuff::router {

struct HealthPolicy {
  /// Consecutive failures (passive or probe) before a shard is routed
  /// around.
  int unhealthy_after = 2;
  /// Background probe cadence on the router's clock.
  double probe_interval_seconds = 0.25;
  /// Probe-reported queue_depth / queue_capacity at or above this marks
  /// the shard saturated (capacity 0 = never saturated).
  double saturation_fraction = 1.0;
};

class ShardHealth {
 public:
  void note_success() {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    healthy_.store(true, std::memory_order_relaxed);
  }

  void note_failure(const HealthPolicy& policy) {
    const int fails =
        consecutive_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fails >= policy.unhealthy_after) {
      healthy_.store(false, std::memory_order_relaxed);
    }
  }

  /// Fold a probe's HealthInfo in. A shard that answered but is draining
  /// (accepting == false) is as unroutable as a dead one.
  void note_probe(const rpc::HealthInfo& info, const HealthPolicy& policy) {
    if (!info.accepting) {
      note_failure(policy);
      return;
    }
    note_success();
    const bool sat =
        info.queue_capacity > 0 &&
        static_cast<double>(info.queue_depth) >=
            policy.saturation_fraction *
                static_cast<double>(info.queue_capacity);
    saturated_.store(sat, std::memory_order_relaxed);
  }

  /// A live kQueueFull answer: the shard is up but shedding. Stickier
  /// than the probe-derived flag — the next successful probe (queue
  /// drained below the saturation line) clears it.
  void note_queue_full() {
    saturated_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool healthy() const {
    return healthy_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool saturated() const {
    return saturated_.load(std::memory_order_relaxed);
  }
  /// Preferred for routing: up and not shedding.
  [[nodiscard]] bool available() const { return healthy() && !saturated(); }
  [[nodiscard]] int consecutive_failures() const {
    return consecutive_failures_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> consecutive_failures_{0};
  std::atomic<bool> healthy_{true};
  std::atomic<bool> saturated_{false};
};

}  // namespace parhuff::router
