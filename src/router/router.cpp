#include "router/router.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "svc/deadline.hpp"
#include "svc/fingerprint.hpp"
#include "util/fault_inject.hpp"
#include "util/hash.hpp"

namespace parhuff::router {

using rpc::Frame;
using rpc::Header;
using rpc::Kind;
using rpc::Op;
using rpc::Status;

namespace {

[[nodiscard]] Frame error_frame(const Header& req, Status status,
                                const std::string& message) {
  Frame f;
  f.h.kind = Kind::kResponse;
  f.h.op = req.op;
  f.h.sym_width = req.sym_width;
  f.h.request_id = req.request_id;
  f.h.status = status;
  f.payload.assign(message.begin(), message.end());
  return f;
}

[[nodiscard]] svc::Priority to_priority(u8 p) {
  if (p >= static_cast<u8>(svc::Priority::kHigh)) return svc::Priority::kHigh;
  return static_cast<svc::Priority>(p);
}

}  // namespace

/// One backend shard: endpoint, its long-lived RpcClient (lazy connect,
/// backoff+redial, generation-swept reconnect — the failover machinery
/// the router builds on) and its health state.
struct ShardRouter::Shard {
  ShardEndpoint ep;
  std::unique_ptr<rpc::RpcClient> client;
  ShardHealth health;
  std::atomic<u64> served{0};
};

/// Everything one client connection's reader and writer share — the same
/// in-order response-slot design as RpcServer::ConnState, plus the
/// client-id → (shard, backend-id) bindings a cancel frame needs to chase
/// its target across the proxy hop.
struct ShardRouter::ConnState {
  std::shared_ptr<rpc::Connection> conn;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<Frame()>> slots;  // FIFO response order
  bool reader_done = false;

  struct Binding {
    u32 shard = 0;
    u64 backend_id = 0;
  };
  std::unordered_map<u64, Binding> routes;  // client request id → binding

  void enqueue(std::function<Frame()> slot) {
    {
      std::lock_guard<std::mutex> lock(mu);
      slots.push_back(std::move(slot));
    }
    cv.notify_all();
  }

  void enqueue_ready(Frame f) {
    auto boxed = std::make_shared<Frame>(std::move(f));
    enqueue([boxed]() { return std::move(*boxed); });
  }

  void reader_finished() {
    {
      std::lock_guard<std::mutex> lock(mu);
      reader_done = true;
    }
    cv.notify_all();
  }

  void bind(u64 client_id, u32 shard, u64 backend_id) {
    std::lock_guard<std::mutex> lock(mu);
    routes[client_id] = Binding{shard, backend_id};
  }

  void unbind(u64 client_id) {
    std::lock_guard<std::mutex> lock(mu);
    routes.erase(client_id);
  }

  /// One pinned stream: client-facing id → the shard it lives on, the
  /// shard's own stream id (ids from different shards may collide, so the
  /// router always translates) and the backend Begin call id (the handle
  /// a teardown cancel chases).
  struct StreamRoute {
    u32 shard = 0;
    u64 backend_sid = 0;
    u64 backend_begin_id = 0;
    /// The family's End op — teardown forces the shard's half of an
    /// orphaned stream closed with a poisoned End.
    Op end_op = Op::kCompressStreamEnd;
  };
  u64 next_stream_id = 0;                             // under mu
  std::unordered_map<u64, StreamRoute> stream_routes;  // under mu

  u64 bind_stream(StreamRoute r) {
    std::lock_guard<std::mutex> lock(mu);
    const u64 sid = ++next_stream_id;
    stream_routes.emplace(sid, r);
    return sid;
  }

  [[nodiscard]] bool find_stream(u64 sid, StreamRoute* out) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = stream_routes.find(sid);
    if (it == stream_routes.end()) return false;
    *out = it->second;
    return true;
  }

  /// Returns whether the id was still bound — abort and complete race
  /// (a slot aborting while the reader forwards the next chunk), and
  /// only the actor that wins the erase may count the terminal.
  [[nodiscard]] bool unbind_stream(u64 sid) {
    std::lock_guard<std::mutex> lock(mu);
    return stream_routes.erase(sid) > 0;
  }
};

ShardRouter::ShardRouter(std::unique_ptr<rpc::Listener> listener,
                         std::vector<ShardEndpoint> shards, RouterConfig cfg)
    : cfg_(cfg),
      clock_(cfg.clock ? cfg.clock : &util::Clock::real()),
      listener_(std::move(listener)) {
  if (!listener_) {
    throw std::invalid_argument("ShardRouter: listener must not be null");
  }
  if (shards.empty()) {
    throw std::invalid_argument("ShardRouter: at least one shard required");
  }
  if (cfg_.max_connections == 0) {
    throw std::invalid_argument("ShardRouter: max_connections must be > 0");
  }
  rpc::ClientConfig cc = cfg_.client;
  cc.clock = clock_;
  for (auto& ep : shards) {
    auto sh = std::make_unique<Shard>();
    sh->ep = std::move(ep);
    if (!sh->ep.connect) {
      throw std::invalid_argument("ShardRouter: shard '" + sh->ep.name +
                                  "' has no connector");
    }
    sh->client = std::make_unique<rpc::RpcClient>(sh->ep.connect, cc);
    shards_.push_back(std::move(sh));
  }

  const int io = cfg_.io_threads > 0
                     ? cfg_.io_threads
                     : static_cast<int>(1 + 2 * cfg_.max_connections);
  io_ = std::make_unique<WorkStealExecutor>(io, clock_);
  io_->submit([this] { accept_loop(); });
  if (cfg_.start_prober) {
    prober_ = std::thread([this] { prober_loop(); });
  }
}

ShardRouter::~ShardRouter() {
  stop();
  io_.reset();  // joins accept/reader/writer tasks
  // Backend clients (and their pending-future sweeps) tear down after the
  // io tasks that wait on them (member order).
}

void ShardRouter::stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    stopping_ = true;
  }
  listener_->close();
  {
    std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& w : conns_) {
      if (std::shared_ptr<ConnState> cs = w.lock()) cs->conn->shutdown();
    }
  }
  io_->wait_idle();
}

std::size_t ShardRouter::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t live = 0;
  for (const auto& w : conns_) {
    if (!w.expired()) ++live;
  }
  return live;
}

bool ShardRouter::shard_healthy(std::size_t i) const {
  return shards_.at(i)->health.healthy();
}

bool ShardRouter::shard_available(std::size_t i) const {
  return shards_.at(i)->health.available();
}

u64 ShardRouter::shard_served(std::size_t i) const {
  return shards_.at(i)->served.load(std::memory_order_relaxed);
}

u64 ShardRouter::route_key(Op op, u8 sym_width,
                           std::span<const u8> payload) {
  if (op == Op::kCompress && (sym_width == 1 || sym_width == 2)) {
    // The same scale-invariant shape key the shards' codebook caches use
    // (svc/fingerprint.hpp): config-equal traffic lands on the shard
    // whose cache already holds its codebook.
    if (sym_width == 1) {
      std::vector<u64> freq(256, 0);
      for (const u8 b : payload) ++freq[b];
      return svc::fingerprint_histogram(freq, sym_width).hash;
    }
    std::vector<u64> freq(64 * 1024, 0);
    const std::size_t n = payload.size() / 2;
    for (std::size_t i = 0; i < n; ++i) {
      const u16 s = static_cast<u16>(payload[2 * i] |
                                     (payload[2 * i + 1] << 8));
      ++freq[s];
    }
    return svc::fingerprint_histogram(freq, sym_width).hash;
  }
  if (op == Op::kLossyCompress) {
    // Config affinity: the 48-byte LossyRequestHeader (shape + quantizer)
    // is the key, not the samples. Fields of one simulation variable share
    // shape and error bound across timesteps, and their residual
    // histograms are near-identical — landing them on one shard keeps its
    // codebook cache hot even as the data drifts.
    const std::size_t n = std::min<std::size_t>(
        payload.size(), rpc::kLossyRequestHeaderBytes);
    return fnv1a(payload.subspan(0, n));
  }
  // Decompress — lossless or lossy — (and anything else): the container
  // prefix holds the codebook / quantizer header, which is exactly as
  // distribution-stable as the histogram shape — same book, same shard.
  const std::size_t n = std::min<std::size_t>(payload.size(), 4096);
  return fnv1a(payload.subspan(0, n));
}

std::vector<u32> ShardRouter::candidates(u64 key) const {
  std::vector<u32> order =
      rendezvous_order(key, shards_.size(), cfg_.hash_seed);
  // Available shards keep their hash order at the front; unhealthy or
  // saturated ones sink to the back as fail-open last resorts (routing
  // around a wrongly-suspected shard must not turn into shedding).
  std::stable_partition(order.begin(), order.end(), [&](u32 i) {
    return shards_[i]->health.available();
  });
  const std::size_t cap = cfg_.max_route_attempts > 0
                              ? std::min(cfg_.max_route_attempts, order.size())
                              : order.size();
  order.resize(cap);
  return order;
}

rpc::RpcCall ShardRouter::forward(u32 idx, const Header& h,
                                  const std::vector<u8>& payload) {
  // Fault site: the forward write to the shard fails (connection died
  // under the frame, shard-side kernel buffer gone...).
  util::FaultInjector::global().maybe_throw("router.proxy.write");
  rpc::RpcOptions opts;
  opts.priority = to_priority(h.priority);
  // The wire deadline is a relative budget; the proxy hop forwards it
  // unchanged (the shard re-anchors on its own clock — router queueing
  // time is deliberately inside the budget the shard sees, matching what
  // a direct client would experience).
  opts.deadline_seconds =
      static_cast<double>(h.deadline_micros) * 1e-6;
  Shard& sh = *shards_[idx];
  if (h.op == Op::kCompress) {
    return sh.client->compress(std::span<const u8>(payload), h.sym_width,
                               opts);
  }
  if (h.op == Op::kLossyCompress) {
    // Pass-through: the payload is already LossyRequestHeader + f32s; the
    // shard re-validates it, so the proxy hop never parses float data.
    return sh.client->lossy_compress_raw(std::span<const u8>(payload),
                                         h.sym_width, opts);
  }
  if (h.op == Op::kLossyDecompress) {
    return sh.client->lossy_decompress(std::span<const u8>(payload), opts);
  }
  return sh.client->decompress(std::span<const u8>(payload), h.sym_width,
                               opts);
}

void ShardRouter::accept_loop() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (;;) {
    std::unique_ptr<rpc::Connection> c;
    try {
      c = listener_->accept();
    } catch (...) {
      break;  // listener failed: router keeps serving live connections
    }
    if (!c) break;  // closed

    std::shared_ptr<ConnState> cs;
    bool reject = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      std::erase_if(conns_, [](const std::weak_ptr<ConnState>& w) {
        return w.expired();
      });
      if (stopping_ || conns_.size() >= cfg_.max_connections) reject = true;
      if (!reject) {
        cs = std::make_shared<ConnState>();
        cs->conn = std::shared_ptr<rpc::Connection>(std::move(c));
        conns_.push_back(cs);
      }
    }
    if (reject) {
      if (c) c->shutdown();
      reg.counter_add("router.connections_rejected");
      continue;
    }
    reg.counter_add("router.connections_accepted");

    bool writer_up = false;
    try {
      io_->submit([this, cs] { writer_loop(cs); });
      writer_up = true;
      io_->submit([this, cs] { reader_loop(cs); });
    } catch (...) {
      cs->conn->shutdown();
      if (writer_up) cs->reader_finished();
      reg.counter_add("router.connections_rejected");
    }
  }
}

void ShardRouter::reader_loop(std::shared_ptr<ConnState> cs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (;;) {
    std::array<u8, rpc::kHeaderBytes> hb;
    try {
      if (!cs->conn->read_exact(hb.data(), rpc::kHeaderBytes)) break;
    } catch (...) {
      break;
    }

    Header h;
    try {
      h = rpc::decode_header(std::span<const u8, rpc::kHeaderBytes>(hb),
                             cfg_.max_payload_bytes);
    } catch (const rpc::ProtocolError& e) {
      reg.counter_add("router.protocol_errors");
      if (!e.can_respond()) break;
      u32 raw_len = 0;
      std::memcpy(&raw_len, hb.data() + 20, sizeof(raw_len));
      const bool resync = raw_len <= cfg_.max_payload_bytes;
      if (resync && raw_len > 0) {
        std::vector<u8> skip(raw_len);
        try {
          if (!cs->conn->read_exact(skip.data(), skip.size())) break;
        } catch (...) {
          break;
        }
      }
      reg.counter_add("router.protocol_error_responses");
      cs->enqueue_ready(
          error_frame(Header{.op = Op::kCompress,
                             .request_id = e.request_id()},
                      e.status(), e.what()));
      if (!resync) break;
      continue;
    }

    std::vector<u8> payload(h.payload_len);
    try {
      if (!cs->conn->read_exact(payload.data(), payload.size())) break;
    } catch (...) {
      break;
    }

    reg.counter_add("router.requests_received");
    if (!handle_frame(cs, h, std::move(payload))) break;
  }
  cs->reader_finished();
}

bool ShardRouter::handle_frame(const std::shared_ptr<ConnState>& cs,
                               const Header& h, std::vector<u8> payload) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (h.kind != Kind::kRequest) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "response frame sent to a router"));
    return true;
  }
  switch (h.op) {
    case Op::kCompress:
    case Op::kDecompress:
    case Op::kLossyCompress:
    case Op::kLossyDecompress:
      handle_proxy(cs, h, std::move(payload));
      return true;
    case Op::kCompressStreamBegin:
    case Op::kDecompressStreamBegin:
      handle_stream_begin(cs, h);
      return true;
    case Op::kCompressStreamChunk:
    case Op::kCompressStreamEnd:
    case Op::kDecompressStreamChunk:
    case Op::kDecompressStreamEnd:
      handle_stream_frame(cs, h, std::move(payload));
      return true;
    case Op::kCancel: {
      if (payload.size() != sizeof(u64)) {
        cs->enqueue_ready(error_frame(
            h, Status::kBadRequest, "cancel payload must be a u64 id"));
        return true;
      }
      u64 target = 0;
      std::memcpy(&target, payload.data(), sizeof(target));
      reg.counter_add("router.cancels_received");
      // Chase the target across the proxy hop immediately (a cancel must
      // not wait behind the response stream it is trying to shorten);
      // only the ack rides the ordered stream.
      ConnState::Binding b;
      bool bound = false;
      {
        std::lock_guard<std::mutex> lock(cs->mu);
        if (auto it = cs->routes.find(target); it != cs->routes.end()) {
          b = it->second;
          bound = true;
        }
      }
      Frame ack;
      ack.h.kind = Kind::kResponse;
      ack.h.op = Op::kCancel;
      ack.h.request_id = h.request_id;
      ack.h.status = Status::kOk;
      if (!bound) {
        // Already resolved, shed, or never existed — idempotent
        // best-effort either way, same as RpcServer.
        cs->enqueue_ready(std::move(ack));
        return true;
      }
      auto fut = std::make_shared<std::future<void>>(
          shards_[b.shard]->client->cancel(b.backend_id));
      auto boxed = std::make_shared<Frame>(std::move(ack));
      cs->enqueue([fut, boxed]() {
        try {
          fut->get();  // ack after the shard acked (ordering contract)
        } catch (...) {
          // The shard died around the cancel; the target's own future
          // resolves through failover or TransportError regardless.
        }
        return std::move(*boxed);
      });
      return true;
    }
    case Op::kStats: {
      cs->enqueue([id = h.request_id]() {
        Frame f;
        f.h.kind = Kind::kResponse;
        f.h.op = Op::kStats;
        f.h.request_id = id;
        f.h.status = Status::kOk;
        obs::Json j = obs::Json::object();
        j.set("schema", obs::kMetricsSchema);
        j.set("name", "router-stats");
        j.set("metrics", obs::MetricsRegistry::global().to_json());
        const std::string text = j.dump();
        f.payload.assign(text.begin(), text.end());
        return f;
      });
      return true;
    }
    case Op::kHealth: {
      rpc::HealthInfo info;
      info.connections = connection_count();
      info.max_connections = cfg_.max_connections;
      u64 up = 0;
      for (const auto& sh : shards_) {
        if (sh->health.available()) ++up;
      }
      // Shards stand in for queue slots: depth = unavailable shards,
      // capacity = all shards, so occupancy reads as "fraction of the
      // fleet that cannot take traffic".
      info.queue_depth = static_cast<u64>(shards_.size()) - up;
      info.queue_capacity = shards_.size();
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        info.accepting = !stopping_;
      }
      Frame f;
      f.h.kind = Kind::kResponse;
      f.h.op = Op::kHealth;
      f.h.request_id = h.request_id;
      f.h.status = Status::kOk;
      f.payload = rpc::encode_health_info(info);
      cs->enqueue_ready(std::move(f));
      return true;
    }
  }
  return true;  // unreachable: decode_header validated the op
}

void ShardRouter::handle_proxy(const std::shared_ptr<ConnState>& cs,
                               const Header& h, std::vector<u8> payload) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  util::FaultInjector& faults = util::FaultInjector::global();
  reg.counter_add("router.routed");
  const double start_us = rec.now_us();

  // Route lookup: the key and the candidate list. A failure here (the
  // router.route fault site) sheds the request — exactly one terminal
  // counter per routed request, always.
  std::vector<u32> order;
  try {
    faults.maybe_throw("router.route");
    const u64 key =
        route_key(h.op, h.sym_width, std::span<const u8>(payload));
    order = candidates(key);
    const double route_us = rec.now_us();
    reg.stage_add("router.route", (route_us - start_us) / 1e6);
  } catch (...) {
    reg.counter_add("router.shed");
    cs->enqueue_ready(
        error_frame(h, Status::kInternal, "router: route lookup failed"));
    return;
  }

  // First forward happens in the reader so the shard starts working
  // before the writer reaches this request's slot. Later attempts (the
  // failover path) run in the slot itself — they only happen after the
  // first shard's answer came back bad, which the slot is the first to
  // see.
  auto body = std::make_shared<std::vector<u8>>(std::move(payload));
  auto call = std::make_shared<rpc::RpcCall>();
  std::size_t attempt = 0;
  bool in_flight = false;
  for (; attempt < order.size(); ++attempt) {
    try {
      *call = forward(order[attempt], h, *body);
      cs->bind(h.request_id, order[attempt], call->id);
      in_flight = true;
      break;
    } catch (...) {
      shards_[order[attempt]]->health.note_failure(cfg_.health);
    }
  }
  if (!in_flight) {
    reg.counter_add("router.shed");
    cs->enqueue_ready(error_frame(h, Status::kQueueFull,
                                  "router: no shard accepted the request"));
    return;
  }

  ConnState* raw = cs.get();  // the writer keeps *cs alive past this slot
  cs->enqueue([this, raw, body, call, hdr = h, order,
               first = attempt, start_us]() {
    obs::MetricsRegistry& mreg = obs::MetricsRegistry::global();
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = hdr.op;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;

    std::size_t attempts_done = 0;  // terminal answers obtained
    std::size_t idx = first;        // current candidate index
    bool terminal = false;
    for (;;) {
      const u32 shard = order[idx];
      try {
        f.payload = call->result.get();
        f.h.status = Status::kOk;
        shards_[shard]->health.note_success();
        terminal = true;
      } catch (const svc::DeadlineExceeded& e) {
        // The shard answered: alive, just out of budget. Terminal — a
        // second shard cannot beat a deadline the first already missed.
        f.h.status = Status::kDeadlineExceeded;
        f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
        shards_[shard]->health.note_success();
        terminal = true;
      } catch (const svc::CancelledError& e) {
        f.h.status = Status::kCancelled;
        f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
        shards_[shard]->health.note_success();
        terminal = true;
      } catch (const rpc::RpcError& e) {
        if (e.status() == Status::kQueueFull ||
            e.status() == Status::kShuttingDown) {
          // The shard is alive but shedding/draining: route around it.
          shards_[shard]->health.note_queue_full();
        } else {
          f.h.status = e.status();
          f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
          shards_[shard]->health.note_success();
          terminal = true;
        }
      } catch (const rpc::TransportError&) {
        shards_[shard]->health.note_failure(cfg_.health);
      } catch (const std::exception& e) {
        f.h.status = Status::kInternal;
        f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
        terminal = true;
      }
      ++attempts_done;
      if (terminal) {
        shards_[shard]->served.fetch_add(1, std::memory_order_relaxed);
        mreg.counter_add("router.shard." + shards_[shard]->ep.name +
                         ".served");
        break;
      }
      // Failover: the next candidate, re-forwarded from the slot.
      // Compress and decompress are idempotent, so re-execution after an
      // ambiguous transport death is safe (same contract as a direct
      // RpcClient caller resubmitting).
      std::size_t next = idx + 1;
      bool reforwarded = false;
      for (; next < order.size(); ++next) {
        try {
          *call = forward(order[next], hdr, *body);
          raw->bind(hdr.request_id, order[next], call->id);
          reforwarded = true;
          break;
        } catch (...) {
          shards_[order[next]]->health.note_failure(cfg_.health);
        }
      }
      if (!reforwarded) {
        f.h.status = Status::kQueueFull;
        const std::string msg = "router: all shards unavailable";
        f.payload.assign(msg.begin(), msg.end());
        break;
      }
      idx = next;
    }

    if (terminal) {
      // A request that needed anything beyond its first forward attempt —
      // a reader-side forward failure (first > 0) or a retried answer —
      // counts as failed over, even though it still resolved.
      const bool clean = first == 0 && attempts_done <= 1;
      mreg.counter_add(clean ? "router.forwarded" : "router.failed_over");
    } else {
      mreg.counter_add("router.shed");
    }
    raw->unbind(hdr.request_id);
    obs::TraceRecorder& mrec = obs::TraceRecorder::global();
    const double done_us = mrec.now_us();
    mreg.histo_record("router.request_seconds", (done_us - start_us) / 1e6);
    mrec.complete("router.request", "router", start_us, done_us - start_us);
    return f;
  });
}

void ShardRouter::handle_stream_begin(const std::shared_ptr<ConnState>& cs,
                                      const Header& h) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  util::FaultInjector& faults = util::FaultInjector::global();

  // Begin frames carry no payload to hash, so placement is a uniform
  // nonce spread over the candidate order rather than histogram affinity
  // (the stream's chunks aren't known yet when the pin is chosen).
  std::vector<u32> order;
  try {
    faults.maybe_throw("router.route");
    u8 key_bytes[8];
    const u64 nonce = stream_nonce_.fetch_add(1, std::memory_order_relaxed);
    std::memcpy(key_bytes, &nonce, sizeof(nonce));
    order = candidates(fnv1a(std::span<const u8>(key_bytes, 8)));
  } catch (...) {
    cs->enqueue_ready(
        error_frame(h, Status::kInternal, "router: route lookup failed"));
    return;
  }

  rpc::RpcOptions opts;
  opts.priority = to_priority(h.priority);
  opts.deadline_seconds = static_cast<double>(h.deadline_micros) * 1e-6;
  const Op end_op = h.op == Op::kCompressStreamBegin
                        ? Op::kCompressStreamEnd
                        : Op::kDecompressStreamEnd;

  // Begin-time failover — the only point a stream may move between
  // shards. It runs to completion here in the reader (one shard round
  // trip) so every later chunk finds the binding already pinned; chunks
  // the client pipelines behind Begin just wait in the socket meanwhile.
  for (const u32 idx : order) {
    Shard& sh = *shards_[idx];
    try {
      faults.maybe_throw("router.proxy.write");
      rpc::RpcCall begin = sh.client->stream_begin(h.op, h.sym_width, opts);
      const std::vector<u8> sid_bytes = begin.result.get();
      if (sid_bytes.size() < 8) {
        throw rpc::RpcError(Status::kInternal,
                            "router: short stream id from shard");
      }
      u64 backend_sid = 0;
      std::memcpy(&backend_sid, sid_bytes.data(), 8);  // LE, like bytesio
      sh.health.note_success();
      const u64 client_sid = cs->bind_stream(
          ConnState::StreamRoute{idx, backend_sid, begin.id, end_op});
      reg.counter_add("router.streams_opened");
      Frame f;
      f.h.kind = Kind::kResponse;
      f.h.op = h.op;
      f.h.sym_width = h.sym_width;
      f.h.request_id = h.request_id;
      f.h.status = Status::kOk;
      f.payload.resize(8);
      std::memcpy(f.payload.data(), &client_sid, 8);
      cs->enqueue_ready(std::move(f));
      return;
    } catch (const svc::DeadlineExceeded& e) {
      // The shard answered: alive, just out of budget. Terminal.
      sh.health.note_success();
      cs->enqueue_ready(error_frame(h, Status::kDeadlineExceeded, e.what()));
      return;
    } catch (const svc::CancelledError& e) {
      sh.health.note_success();
      cs->enqueue_ready(error_frame(h, Status::kCancelled, e.what()));
      return;
    } catch (const rpc::RpcError& e) {
      if (e.status() == Status::kQueueFull ||
          e.status() == Status::kShuttingDown) {
        sh.health.note_queue_full();  // alive but shedding: next candidate
        continue;
      }
      // Any other typed answer (bad width, stream cap...) is terminal —
      // the next shard would reject the same Begin the same way.
      sh.health.note_success();
      cs->enqueue_ready(error_frame(h, e.status(), e.what()));
      return;
    } catch (...) {
      sh.health.note_failure(cfg_.health);
    }
  }
  cs->enqueue_ready(error_frame(h, Status::kQueueFull,
                                "router: no shard accepted the stream"));
}

void ShardRouter::handle_stream_frame(const std::shared_ptr<ConnState>& cs,
                                      const Header& h,
                                      std::vector<u8> payload) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  ConnState::StreamRoute route;
  if (!cs->find_stream(h.stream_id, &route)) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest,
        "router: unknown stream id (never opened or already terminal)"));
    return;
  }

  Shard& sh = *shards_[route.shard];
  rpc::RpcCall call;
  try {
    util::FaultInjector::global().maybe_throw("router.proxy.write");
    // Zero-copy proxy hop: the span is a view into this reader's payload
    // buffer, written to the shard synchronously inside stream_frame —
    // the chunk is never copied into an owned backend frame.
    call = sh.client->stream_frame(h.op, route.backend_sid,
                                   std::span<const u8>(payload));
  } catch (...) {
    sh.health.note_failure(cfg_.health);
    if (cs->unbind_stream(h.stream_id)) {
      reg.counter_add("router.streams_aborted");
    }
    cs->enqueue_ready(error_frame(
        h, Status::kInternal,
        "router: stream forward failed (mid-stream failover is terminal: "
        "chunks the shard already consumed cannot be replayed)"));
    return;
  }

  ConnState* raw = cs.get();  // the writer keeps *cs alive past this slot
  auto fut = std::make_shared<std::future<std::vector<u8>>>(
      std::move(call.result));
  const bool is_end =
      h.op == Op::kCompressStreamEnd || h.op == Op::kDecompressStreamEnd;
  cs->enqueue([this, raw, fut, hdr = h, shard = route.shard, is_end]() {
    obs::MetricsRegistry& mreg = obs::MetricsRegistry::global();
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = hdr.op;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    f.h.stream_id = hdr.stream_id;
    bool ok = false;
    try {
      f.payload = fut->get();
      f.h.status = Status::kOk;
      shards_[shard]->health.note_success();
      ok = true;
    } catch (const svc::DeadlineExceeded& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
      shards_[shard]->health.note_success();
    } catch (const svc::CancelledError& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
      shards_[shard]->health.note_success();
    } catch (const rpc::RpcError& e) {
      f.h.status = e.status();
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
      shards_[shard]->health.note_success();
    } catch (const rpc::TransportError&) {
      f.h.status = Status::kInternal;
      const std::string msg =
          "router: shard connection lost mid-stream (terminal)";
      f.payload.assign(msg.begin(), msg.end());
      shards_[shard]->health.note_failure(cfg_.health);
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    if (ok && !is_end) return f;  // mid-stream ack, stream stays pinned
    // Terminal: End acked, or any failure at all (mid-stream failover is
    // terminal — a second shard never saw the earlier chunks). The erase
    // winner counts it: a slot aborting can race the reader forwarding
    // the next chunk of the same stream, which then answers "unknown
    // stream id" without re-counting.
    if (raw->unbind_stream(hdr.stream_id)) {
      mreg.counter_add(ok ? "router.streams_completed"
                          : "router.streams_aborted");
    }
    return f;
  });
}

void ShardRouter::writer_loop(std::shared_ptr<ConnState> cs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  bool conn_ok = true;
  for (;;) {
    std::function<Frame()> slot;
    {
      std::unique_lock<std::mutex> lock(cs->mu);
      cs->cv.wait(lock,
                  [&] { return !cs->slots.empty() || cs->reader_done; });
      if (cs->slots.empty()) break;  // reader done and everything drained
      slot = std::move(cs->slots.front());
      cs->slots.pop_front();
    }
    // Resolving a slot never throws (each slot catches internally) but
    // may block on a backend future — which always resolves (RpcClient's
    // contract), so every slot drains even after the client died.
    Frame f = slot();
    if (!conn_ok) {
      reg.counter_add("router.responses_dropped");
      continue;
    }
    try {
      const u32 bound = rpc::response_payload_bound(cfg_.max_payload_bytes);
      try {
        rpc::write_frame(*cs->conn, f, bound);
      } catch (const std::length_error&) {
        rpc::write_frame(*cs->conn,
                         error_frame(f.h, Status::kInternal,
                                     "response exceeds the frame bound"),
                         bound);
      }
      reg.counter_add("router.responses_written");
    } catch (...) {
      conn_ok = false;
      cs->conn->shutdown();  // unblocks the reader too
      reg.counter_add("router.responses_dropped");
    }
  }
  cs->conn->shutdown();

  // Streams still bound when the client connection dies never reach their
  // End: abort them here (all slots drained, so nothing can race the
  // sweep) and force the shard's half closed too — cancel() interrupts an
  // in-flight encode (the cancel frame is sent synchronously; the
  // deferred ack future may be dropped), and a poisoned End (a byte total
  // no real stream can reach) makes the shard erase its state with a
  // typed abort instead of leaking toward its per-connection stream cap.
  std::vector<ConnState::StreamRoute> orphaned;
  {
    std::lock_guard<std::mutex> lock(cs->mu);
    for (const auto& [sid, route] : cs->stream_routes) {
      orphaned.push_back(route);
    }
    cs->stream_routes.clear();
  }
  for (const ConnState::StreamRoute& route : orphaned) {
    reg.counter_add("router.streams_aborted");
    rpc::RpcClient& backend = *shards_[route.shard]->client;
    try {
      (void)backend.cancel(route.backend_begin_id);
      (void)backend.stream_end(route.end_op, route.backend_sid,
                               ~0ull, 0);
    } catch (...) {
      // Backend gone too — its connection teardown reaps the stream.
    }
  }
}

void ShardRouter::probe_shard(Shard& sh) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  try {
    // Fault site: the probe itself dies (connection refused, probe frame
    // lost) — must count as evidence against the shard, never hang.
    util::FaultInjector::global().maybe_throw("router.health.probe");
    const rpc::HealthInfo info = sh.client->health().get();
    sh.health.note_probe(info, cfg_.health);
    reg.counter_add("router.probes");
  } catch (const rpc::RpcError&) {
    // A typed answer proves liveness even when the peer doesn't speak the
    // health verb (legacy v1 server): healthy, load unknown.
    sh.health.note_success();
    reg.counter_add("router.probes");
  } catch (...) {
    sh.health.note_failure(cfg_.health);
    reg.counter_add("router.probe_failures");
  }
  reg.gauge_set("router.shard." + sh.ep.name + ".healthy",
                sh.health.healthy() ? 1.0 : 0.0);
  reg.gauge_set("router.shard." + sh.ep.name + ".saturated",
                sh.health.saturated() ? 1.0 : 0.0);
}

void ShardRouter::probe_now() {
  for (auto& sh : shards_) probe_shard(*sh);
}

void ShardRouter::prober_loop() {
  const auto interval = util::Clock::dur(
      cfg_.health.probe_interval_seconds > 0
          ? cfg_.health.probe_interval_seconds
          : 0.25);
  std::unique_lock<std::mutex> lock(prober_mu_);
  while (!prober_stop_) {
    const auto wake = clock_->now() + interval;
    while (!prober_stop_ &&
           clock_->wait_until(prober_cv_, lock, wake) !=
               std::cv_status::timeout) {
    }
    if (prober_stop_) break;
    lock.unlock();
    probe_now();
    lock.lock();
  }
}

}  // namespace parhuff::router
