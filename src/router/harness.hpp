#pragma once
// In-process shard fleet for router tests and benches: N RpcServer shards,
// each behind its own LoopbackHub, plus the endpoint list a ShardRouter
// dials them with. kill()/restart() model a shard crashing and coming
// back: kill closes the shard's hub *before* tearing the server down, so
// the router's redials fail fast with TransportError instead of parking on
// a listener that will never accept — the same observable order a real
// process death gives (connection refused first, in-flight frames dead).
//
// The harness owns only backend machinery; the client-facing listener the
// router itself accepts on is the caller's to provide (tests usually use
// one more LoopbackHub, bench_router too).

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "router/router.hpp"
#include "rpc/server.hpp"
#include "rpc/transport_inmem.hpp"

namespace parhuff::router {

class ShardHarness {
 public:
  /// Spin up `n` shards, each its own RpcServer on a fresh LoopbackHub.
  /// `cfg` is cloned per shard (workers, queue capacity, clock...).
  explicit ShardHarness(std::size_t n, rpc::ServerConfig cfg = {});
  ~ShardHarness();
  ShardHarness(const ShardHarness&) = delete;
  ShardHarness& operator=(const ShardHarness&) = delete;

  /// Endpoints for ShardRouter: shard `i` is named "shard<i>" and its
  /// connector dials shard `i`'s *current* hub — after restart(i) new
  /// dials reach the new incarnation, so the router's generation-swept
  /// RpcClients recover without reconfiguration.
  [[nodiscard]] std::vector<ShardEndpoint> endpoints();

  /// Crash shard `i`: close its hub (future dials fail fast), then stop
  /// the server (in-flight frames die). Idempotent.
  void kill(std::size_t i);

  /// Bring shard `i` back on a fresh hub + server. No-op when alive.
  void restart(std::size_t i);

  [[nodiscard]] std::size_t size() const { return shards_.size(); }
  [[nodiscard]] bool alive(std::size_t i) const;
  /// The live RpcServer (throws when killed) — for per-shard service
  /// introspection in tests.
  [[nodiscard]] rpc::RpcServer& server(std::size_t i);
  /// Dial shard `i` directly, bypassing the router (baseline benches).
  [[nodiscard]] std::unique_ptr<rpc::Connection> connect(std::size_t i);

 private:
  struct Slot {
    std::shared_ptr<rpc::LoopbackHub> hub;   // swapped atomically-ish
    std::unique_ptr<rpc::RpcServer> server;  // under mu
  };

  rpc::ServerConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Slot> shards_;
};

}  // namespace parhuff::router
