#include "router/harness.hpp"

#include <stdexcept>
#include <utility>

namespace parhuff::router {

ShardHarness::ShardHarness(std::size_t n, rpc::ServerConfig cfg)
    : cfg_(std::move(cfg)) {
  if (n == 0) {
    throw std::invalid_argument("ShardHarness: at least one shard");
  }
  shards_.resize(n);
  for (auto& s : shards_) {
    s.hub = std::make_shared<rpc::LoopbackHub>();
    s.server = std::make_unique<rpc::RpcServer>(s.hub->listener(), cfg_);
  }
}

ShardHarness::~ShardHarness() {
  for (std::size_t i = 0; i < shards_.size(); ++i) kill(i);
}

std::vector<ShardEndpoint> ShardHarness::endpoints() {
  std::vector<ShardEndpoint> eps;
  eps.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    eps.push_back(ShardEndpoint{
        "shard" + std::to_string(i),
        // Capture the harness, not the hub: each dial reads the slot's
        // *current* hub so a restarted shard is reachable through the
        // same endpoint.
        [this, i]() { return connect(i); }});
  }
  return eps;
}

void ShardHarness::kill(std::size_t i) {
  std::shared_ptr<rpc::LoopbackHub> hub;
  std::unique_ptr<rpc::RpcServer> server;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slot& s = shards_.at(i);
    hub = std::move(s.hub);
    server = std::move(s.server);
  }
  // Hub first: dials racing the kill get TransportError immediately
  // instead of reaching a server mid-teardown.
  if (hub) hub->close();
  server.reset();  // stop() + join; in-flight connections die here
}

void ShardHarness::restart(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = shards_.at(i);
  if (s.server) return;
  s.hub = std::make_shared<rpc::LoopbackHub>();
  s.server = std::make_unique<rpc::RpcServer>(s.hub->listener(), cfg_);
}

bool ShardHarness::alive(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.at(i).server != nullptr;
}

rpc::RpcServer& ShardHarness::server(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& s = shards_.at(i);
  if (!s.server) {
    throw std::logic_error("ShardHarness: shard is down");
  }
  return *s.server;
}

std::unique_ptr<rpc::Connection> ShardHarness::connect(std::size_t i) {
  std::shared_ptr<rpc::LoopbackHub> hub;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hub = shards_.at(i).hub;
  }
  if (!hub) {
    throw rpc::TransportError("shard harness: shard " + std::to_string(i) +
                              " is down");
  }
  return hub->connect();  // throws TransportError once closed
}

}  // namespace parhuff::router
