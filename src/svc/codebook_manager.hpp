#pragma once
// Adaptive codebook lifecycle under drifting traffic (ROADMAP: PivCo-style
// continuous rebuilds, PAPERS.md #4; the soft-miss gap cuSZ+ observes,
// PAPERS.md #5).
//
// The sharded-LRU codebook cache (svc/codebook_cache.hpp) assumes traffic
// distributions *recur*: its fingerprint buckets each bin's share of the
// histogram to a log2 band, so nearby distributions collide into one entry
// on purpose. That coarseness is also a blind spot. When a tenant's
// distribution drifts *within* the fingerprint's bands, find() keeps
// hitting, covers() keeps passing (support is unchanged — support
// differences always change the fingerprint), and every batch silently
// pays up to ~1 bit/symbol of ratio against the stale book. The covers()
// guard only ever detects the hard miss; this manager detects the soft
// one.
//
// Mechanism, per fingerprint bucket:
//
//   * Recent-window histogram — observe() folds each batch's pooled
//     histogram (which run_batch already computed; nothing extra is
//     scanned) into an exponentially-decayed window, so the estimate
//     tracks "traffic lately", not "traffic ever".
//   * Divergence estimate — the incremental ratio-loss of keeping the
//     cached book: expected bits/symbol of the cached code under the
//     window histogram, minus the window's Shannon entropy, minus the
//     book's *native* redundancy on the histogram it was built from
//     (recorded at swap/build time). A fresh book therefore scores ~0
//     even for codes with high Huffman redundancy; only genuine drift
//     raises the score. A window symbol the book cannot encode at all
//     scores +inf (that request would also trip covers()).
//   * Trigger with hysteresis — a rebuild is triggered when the estimate
//     crosses divergence_high_bits while the bucket is armed; triggering
//     disarms the bucket, and it re-arms only after the estimate falls
//     back below divergence_low_bits (normally: after the swap). A bucket
//     oscillating inside the dead band can never thrash.
//   * Rebuild-rate budget — a token bucket on the injected util::Clock
//     (max_rebuilds_per_period tokens per budget_period_seconds) bounds
//     fleet-wide rebuild work no matter how many buckets drift at once.
//     A deferred trigger stays armed and re-fires on a later observe().
//   * Asynchronous rebuild — the build runs on the service's
//     WorkStealExecutor, off the request path: a snapshot of the window
//     histogram feeds the ordinary build_codebook(), and the finished
//     book hot-swaps in through the existing CodebookCache::insert()
//     path, so the *next* batch's find() simply gets the fresher book.
//     Requests in flight keep their shared_ptr — a swap never invalidates
//     a book mid-encode.
//
// Lifecycle accounting is exact: after quiesce(),
//   rebuilds_started == applied + superseded + cancelled + failed.
// A rebuild is superseded when the bucket's generation moved while it was
// in flight (a covers() hard miss rebuilt the bucket first, or the bucket
// was retired), cancelled when the manager began stopping before the swap,
// failed when the build or the cache insert threw (fault site
// svc.adaptive.rebuild). Estimate-path failures (fault site
// svc.adaptive.estimate) never touch the request: observe() swallows
// them and counts svc.adaptive.estimate_failures.
//
// Everything time-dependent reads the injected util::Clock, so the drift
// tests (tests/test_adaptive_drift.cpp) drive rebuild timing, hysteresis
// and swap points deterministically on util::VirtualClock with zero real
// sleeps; quiesce() is the deterministic swap barrier.

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include <condition_variable>

#include "core/cancel.hpp"
#include "core/pipeline.hpp"
#include "svc/codebook_cache.hpp"
#include "util/clock.hpp"
#include "util/work_steal.hpp"

namespace parhuff::svc {

/// Tuning knobs for the adaptive codebook lifecycle
/// (ServiceConfig::adaptive). Defaults are conservative: enabled=false
/// leaves every existing deployment byte-for-byte unchanged.
struct AdaptivePolicy {
  bool enabled = false;
  /// Recent-window decay: window = decay * window + batch_histogram.
  /// 0 tracks only the latest batch; 0.5 weights the last ~2 batches.
  double window_decay = 0.5;
  /// Estimates are skipped (and never trigger) until the window holds at
  /// least this much mass — a bucket warmed by one tiny batch should not
  /// rebuild on noise.
  double min_window_symbols = 1024;
  /// Trigger threshold: estimated ratio loss (bits/symbol) at which an
  /// armed bucket starts an asynchronous rebuild.
  double divergence_high_bits = 0.25;
  /// Re-arm threshold: the bucket re-arms only when the estimate falls
  /// below this (hysteresis; must be <= divergence_high_bits).
  double divergence_low_bits = 0.10;
  /// Token-bucket rebuild budget: at most this many rebuilds per
  /// budget_period_seconds across all buckets (thrash bound).
  int max_rebuilds_per_period = 8;
  double budget_period_seconds = 1.0;
  /// Bound on tracked fingerprint buckets; least-recently-observed
  /// buckets (never one with a rebuild in flight) are retired beyond it.
  std::size_t max_buckets = 256;
};

class CodebookManager {
 public:
  /// Internal lifecycle totals, mirrored into svc.adaptive.* counters.
  /// After quiesce(): started == applied + superseded + cancelled +
  /// failed.
  struct Counters {
    u64 observations = 0;
    u64 estimates = 0;
    u64 estimate_failures = 0;
    u64 rebuilds_started = 0;
    u64 rebuilds_applied = 0;
    u64 rebuilds_superseded = 0;
    u64 rebuilds_cancelled = 0;
    u64 rebuilds_failed = 0;
    u64 budget_deferred = 0;
    u64 hysteresis_held = 0;
    u64 buckets_retired = 0;
  };

  /// `cache`, `pool` and `clock` must outlive the manager. The manager
  /// never owns books: it only reads/writes `cache` through the same
  /// find/insert path the batcher uses.
  CodebookManager(const AdaptivePolicy& policy, CodebookCache& cache,
                  WorkStealExecutor& pool, const util::Clock& clock);
  /// stop() + quiesce(): no rebuild task references the manager after
  /// destruction returns.
  ~CodebookManager();
  CodebookManager(const CodebookManager&) = delete;
  CodebookManager& operator=(const CodebookManager&) = delete;

  /// Feed one batch's shared-phase outcome: the fingerprint the cache was
  /// consulted under, the pooled histogram, the book the batch encoded
  /// against, and whether that book came from the cache (false = the
  /// batch built fresh — a hard miss or a covers() guard reject — which
  /// resyncs the bucket: generation bump, window reset, redundancy
  /// re-baseline). Never throws and never fails the request; the
  /// estimate's fault site (svc.adaptive.estimate) is absorbed here.
  void observe(const Fingerprint& fp, std::span<const u64> freq,
               const std::shared_ptr<const Codebook>& book,
               const PipelineConfig& cfg, bool cache_hit) noexcept;

  /// Begin shutdown: rebuilds not yet applied resolve as cancelled, and
  /// the in-flight build's CancelToken is requested so a mid-build task
  /// abandons at its next poll point. Idempotent.
  void stop();

  /// Block until no rebuild is in flight. With the service drained this
  /// is the deterministic swap barrier the drift tests sequence batches
  /// around (no real sleeps — rebuilds run on the executor, not a timer).
  void quiesce();

  [[nodiscard]] Counters counters() const;
  /// Last divergence estimate for `fp` (0 when untracked) — test
  /// introspection.
  [[nodiscard]] double divergence(const Fingerprint& fp) const;
  /// Rebuilds currently in flight (test introspection).
  [[nodiscard]] std::size_t inflight() const;

  [[nodiscard]] const AdaptivePolicy& policy() const { return policy_; }

 private:
  struct Bucket {
    Fingerprint fp;
    PipelineConfig cfg;
    std::vector<double> window;  ///< decayed recent-traffic histogram
    double window_total = 0;
    /// Native redundancy of the current book on the histogram it was
    /// built/swapped from: expected_bits - entropy at that instant.
    double base_excess = 0;
    /// Bumped every time a new book lands for this bucket (fresh build
    /// observed, or a rebuild applied). An in-flight rebuild that comes
    /// home to a different generation is superseded.
    u64 generation = 0;
    bool rebuild_inflight = false;
    bool armed = true;  ///< hysteresis state
    double last_divergence = 0;
    u64 last_used = 0;  ///< LRU tick for max_buckets retirement
  };

  /// One scheduled rebuild, snapshotted so the task touches no live
  /// bucket state.
  struct RebuildJob {
    Fingerprint fp;
    PipelineConfig cfg;
    std::vector<u64> snapshot;  ///< rounded window histogram
    double snapshot_entropy = 0;
    u64 generation = 0;  ///< bucket generation at launch
  };

  void run_rebuild(const RebuildJob& job);
  /// Token-bucket draw (caller holds mu_).
  bool take_rebuild_token();
  /// Retire least-recently-observed buckets beyond max_buckets (caller
  /// holds mu_; in-flight buckets are never retired).
  void retire_excess_buckets();

  const AdaptivePolicy policy_;
  CodebookCache& cache_;
  WorkStealExecutor& pool_;
  const util::Clock& clock_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  // quiesce() sleeps here
  std::unordered_map<u64, Bucket> buckets_;  // by fp.hash
  Counters counters_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;
  u64 tick_ = 0;
  // Token bucket (under mu_): tokens_ replenishes continuously on clock_.
  double tokens_ = 0;
  util::Clock::time_point tokens_at_{};
  bool tokens_init_ = false;
  /// Requested at stop(): the in-flight build_codebook abandons at its
  /// next poll point instead of finishing a doomed swap.
  CancelToken stop_token_;
};

}  // namespace parhuff::svc
