#pragma once
// In-process compression service: the front door a long-running producer
// (simulation I/O layer, ingest daemon) uses instead of calling compress()
// inline. Callers submit() symbol buffers and get back futures; behind the
// door sit three mechanisms that make heavy small-request traffic cheap:
//
//   1. Admission control — a bound on *outstanding* requests (admitted but
//      not yet completed), so a burst can't queue unbounded memory. At the
//      bound, submit() either blocks until capacity frees (kBlock) or
//      throws QueueFullError (kReject), the caller's choice.
//   2. Request batching — a scheduler thread picks the oldest
//      highest-priority request as batch leader, then lingers up to
//      batch_window_seconds coalescing other small requests with an equal
//      PipelineConfig into one batch. The batch pools one histogram and
//      builds one codebook; each member is then encoded individually, so
//      the dominant fixed cost of small requests (the codebook build) is
//      paid once per batch instead of once per request.
//   3. Codebook caching — the pooled histogram is fingerprinted
//      (svc/fingerprint.hpp) and looked up in a sharded LRU cache; a hit
//      that passes the covers() correctness guard skips the build
//      entirely. See svc/codebook_cache.hpp for the correctness model.
//
// Batches execute on a work-stealing worker pool (util/work_steal.hpp).
// Requests too large to batch (over batch_eligible_symbols) dispatch solo
// and immediately — they already amortize their own codebook build.
//
// Observability (docs/service.md, docs/observability.md): svc.* counters
// (requests, batches, cache hits/misses/guard rejects, rejections,
// backpressure events), the svc.queue_depth gauge, svc.histogram/
// codebook/encode stage timers, svc.request_seconds and
// svc.queue_wait_seconds latency histograms (p50/p95/p99 in the
// parhuff-metrics-v1 document), and per-request lifecycle trace spans.
//
// Error model: histogram/codebook/cache failures fail every request of the
// batch; an encode failure fails only that request. Failures surface on
// the request's future; the service itself keeps running.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "core/pipeline.hpp"
#include "svc/codebook_cache.hpp"
#include "util/types.hpp"
#include "util/work_steal.hpp"

namespace parhuff::svc {

enum class Priority : u8 {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,  ///< picked as batch leader before lower priorities
};

enum class OverflowPolicy {
  kBlock,   ///< submit() blocks until an outstanding request completes
  kReject,  ///< submit() throws QueueFullError immediately
};

/// Thrown by submit() under OverflowPolicy::kReject when the outstanding
/// bound is reached.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError()
      : std::runtime_error(
            "CompressionService: outstanding-request bound reached") {}
};

struct ServiceConfig {
  int workers = 0;  ///< worker pool size; 0 = hardware concurrency
  /// Bound on outstanding (admitted, not yet completed) requests.
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// How long the scheduler lingers collecting batch members after it has
  /// a leader. 0 disables batching (every request dispatches solo).
  double batch_window_seconds = 500e-6;
  std::size_t batch_max_requests = 32;
  /// Cap on the batch's pooled symbol total.
  std::size_t batch_max_symbols = std::size_t{1} << 20;
  /// Requests larger than this never batch: they dispatch solo,
  /// immediately, because they amortize their own codebook build.
  std::size_t batch_eligible_symbols = 64 * 1024;
  bool enable_cache = true;
  CodebookCache::Config cache;
};

template <typename Sym>
struct CompressResult {
  /// The codebook the stream was encoded against. Shared: batch members
  /// and cache hits all point at one frozen instance.
  std::shared_ptr<const Codebook> codebook;
  EncodedStream stream;
  bool cache_hit = false;
  /// How many requests shared this codebook build (the batch size).
  std::size_t batch_requests = 1;
  double queue_seconds = 0;   ///< admission → batch start
  double encode_seconds = 0;  ///< this request's encode stage alone
};

/// Decode a service result back to symbols (convenience inverse).
template <typename Sym>
[[nodiscard]] std::vector<Sym> decompress(const CompressResult<Sym>& r,
                                          int threads = 0);

/// The fingerprint seed for a config: folds the fields that change which
/// codebook gets built (alphabet size, builder kind), so configs that
/// would build different books never share a cache entry. Exposed so
/// tests can plant cache entries under the exact key the service computes.
[[nodiscard]] u64 cache_seed(const PipelineConfig& cfg);

template <typename Sym>
class CompressionService {
 public:
  explicit CompressionService(ServiceConfig cfg = {});
  /// Drains every admitted request, then stops the scheduler and workers.
  ~CompressionService();
  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Submit `data` for compression under `pipeline`. The symbols are
  /// copied — the caller's buffer may be reused immediately. Applies the
  /// admission policy (see OverflowPolicy); throws std::logic_error after
  /// shutdown began.
  [[nodiscard]] std::future<CompressResult<Sym>> submit(
      std::span<const Sym> data, const PipelineConfig& pipeline,
      Priority priority = Priority::kNormal);

  /// Block until every request admitted before this call has completed.
  void drain();

  /// Outstanding (admitted, not yet completed) requests right now.
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] CodebookCache& cache() { return cache_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }

 private:
  struct Request {
    std::vector<Sym> data;
    PipelineConfig pipeline;
    Priority priority = Priority::kNormal;
    std::promise<CompressResult<Sym>> promise;
    double enqueue_us = 0;  ///< trace-recorder clock at admission
  };

  void scheduler_loop();
  /// Move config-equal, batch-eligible pending requests into `batch`
  /// (caller holds mu_).
  void sweep_batch(std::vector<Request>& batch, std::size_t& total_syms);
  void dispatch(std::vector<Request> batch);
  void run_batch(std::vector<Request> batch);
  /// Mark one outstanding request finished; wakes blocked submitters and
  /// drain().
  void finish_one();

  ServiceConfig cfg_;
  CodebookCache cache_;
  std::unique_ptr<WorkStealExecutor> pool_;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;  // scheduler sleeps here
  std::condition_variable space_cv_;  // blocked submitters sleep here
  std::condition_variable drain_cv_;  // drain() sleeps here
  std::deque<Request> pending_;       // admitted, not yet batched
  std::size_t outstanding_ = 0;       // admitted, not yet completed
  bool stopping_ = false;

  std::thread scheduler_;  // started last in the ctor
};

extern template struct CompressResult<u8>;
extern template struct CompressResult<u16>;
extern template class CompressionService<u8>;
extern template class CompressionService<u16>;
extern template std::vector<u8> decompress<u8>(const CompressResult<u8>&,
                                               int);
extern template std::vector<u16> decompress<u16>(const CompressResult<u16>&,
                                                 int);

}  // namespace parhuff::svc
