#pragma once
// In-process compression service: the front door a long-running producer
// (simulation I/O layer, ingest daemon) uses instead of calling compress()
// inline. Callers submit() symbol buffers and get back futures; behind the
// door sit three mechanisms that make heavy small-request traffic cheap:
//
//   1. Admission control — a bound on *outstanding* requests (admitted but
//      not yet completed), so a burst can't queue unbounded memory. At the
//      bound, submit() either blocks until capacity frees (kBlock) or
//      throws QueueFullError (kReject), the caller's choice.
//   2. Request batching — a scheduler thread picks the oldest
//      highest-priority request as batch leader, then lingers up to
//      batch_window_seconds coalescing other small requests with an equal
//      PipelineConfig into one batch. The batch pools one histogram and
//      builds one codebook; each member is then encoded individually, so
//      the dominant fixed cost of small requests (the codebook build) is
//      paid once per batch instead of once per request.
//   3. Codebook caching — the pooled histogram is fingerprinted
//      (svc/fingerprint.hpp) and looked up in a sharded LRU cache; a hit
//      that passes the covers() correctness guard skips the build
//      entirely. See svc/codebook_cache.hpp for the correctness model.
//
// Batches execute on a work-stealing worker pool (util/work_steal.hpp).
// Requests too large to batch (over batch_eligible_symbols) dispatch solo
// and immediately — they already amortize their own codebook build.
//
// Fault tolerance (docs/service.md "Error model"): every submitted future
// resolves — with a value or a typed exception — no matter what fails
// underneath. The mechanisms, in the order they engage:
//
//   * Deadlines — submit() takes an optional absolute Deadline
//     (svc/deadline.hpp). Expired requests are failed with
//     DeadlineExceeded wherever they wait (a blocked submit() stops
//     waiting at the deadline, the scheduler prunes expired pending
//     requests before batching, and a batch re-checks members when it
//     starts), *and* mid-stage: submit() arms the request's CancelToken
//     with the deadline and the stage kernels poll it per chunk / per
//     reduce round, abandoning work whose deadline has passed
//     (svc.cancelled_midstage counts these). Batch admission additionally
//     triages members whose remaining budget is below the expected
//     service time — the svc.request_seconds histogram's quantile — and
//     fails them up front (svc.triage_skipped).
//   * Cancellation — submit() returns a RequestHandle. cancel() wins
//     outright while the request is pending; after dispatch it signals
//     the in-flight token and the stages abandon at their next poll
//     point. Either way the future fails with CancelledError.
//   * Retry — failures classified transient (util::TransientError, which
//     injected faults and overload errors derive from) are retried with
//     exponential backoff + full jitter (util/backoff.hpp) against a
//     per-request total budget of ServiceConfig::retry.max_attempts
//     shared across all stages (shared phase + encode), bounding
//     worst-case added latency per request rather than per stage.
//   * Graceful degradation — when the batched path exhausts its retry
//     budget, each member request falls back to a solo serial pipeline
//     (serial histogram → serial tree codebook → serial encode), which
//     shares no batch machinery. Only if that also fails does the future
//     carry the error. CompressResult::degraded marks rescued requests.
//   * Fault injection — the histogram/codebook/encode stages, the
//     codebook cache and the executor all carry util::FaultInjector
//     sites, so tests can prove the resolve-always invariant under any
//     failure mix (tests/test_fault.cpp).
//
// Observability (docs/service.md, docs/observability.md): svc.* counters
// (requests, batches, cache hits/misses/guard rejects, rejections,
// backpressure events, deadline_exceeded, cancelled_requests,
// cancelled_midstage, triage_skipped, cache_insert_dropped, retries,
// degraded, inline_dispatches), the svc.queue_depth gauge, svc.histogram/
// codebook/encode stage timers, svc.request_seconds and
// svc.queue_wait_seconds latency histograms (p50/p95/p99 in the
// parhuff-metrics-v1 document), and per-request lifecycle trace spans.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/canonical.hpp"
#include "core/encoded.hpp"
#include "core/pipeline.hpp"
#include "lossy/fused.hpp"
#include "svc/codebook_cache.hpp"
#include "svc/codebook_manager.hpp"
#include "svc/deadline.hpp"
#include "util/backoff.hpp"
#include "util/types.hpp"
#include "util/work_steal.hpp"

namespace parhuff::svc {

enum class Priority : u8 {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,  ///< picked as batch leader before lower priorities
};

enum class OverflowPolicy {
  kBlock,   ///< submit() blocks until an outstanding request completes
  kReject,  ///< submit() throws QueueFullError immediately
};

/// Thrown by submit() under OverflowPolicy::kReject when the outstanding
/// bound is reached.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError()
      : std::runtime_error(
            "CompressionService: outstanding-request bound reached") {}
};

/// How transient failures are retried before the degraded fallback (see
/// the fault-tolerance model above).
struct RetryPolicy {
  /// Per-request total retry budget (beyond first attempts), shared
  /// across all stages: a shared-phase retry and an encode retry draw
  /// from the same budget, so a request never retries more than this
  /// many times end to end. (The executor-handoff retry in dispatch() is
  /// a per-batch bound reusing this value — it happens before any stage
  /// runs.)
  int max_attempts = 2;
  util::BackoffPolicy backoff;
};

/// Deadline-aware batch admission: members whose remaining deadline
/// budget is below the expected service time are failed up front
/// (DeadlineExceeded, counted in svc.triage_skipped) instead of wasting
/// batch work that cannot finish in time.
struct TriagePolicy {
  bool enabled = true;
  /// Samples the svc.request_seconds histogram must hold before its
  /// estimate is trusted (cold services never triage).
  u64 min_samples = 64;
  /// Which quantile of svc.request_seconds is "the expected service
  /// time".
  double quantile = 0.5;
};

struct ServiceConfig {
  int workers = 0;  ///< worker pool size; 0 = hardware concurrency
  /// Bound on outstanding (admitted, not yet completed) requests.
  std::size_t queue_capacity = 256;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// How long the scheduler lingers collecting batch members after it has
  /// a leader. 0 disables batching (every request dispatches solo).
  double batch_window_seconds = 500e-6;
  std::size_t batch_max_requests = 32;
  /// Cap on the batch's pooled symbol total.
  std::size_t batch_max_symbols = std::size_t{1} << 20;
  /// Requests larger than this never batch: they dispatch solo,
  /// immediately, because they amortize their own codebook build.
  std::size_t batch_eligible_symbols = 64 * 1024;
  bool enable_cache = true;
  CodebookCache::Config cache;
  /// Adaptive codebook lifecycle under drifting traffic
  /// (svc/codebook_manager.hpp): tracks the divergence between each
  /// cached book and live traffic, rebuilds asynchronously past a
  /// threshold, hot-swaps between batches. Requires enable_cache; off by
  /// default. New fault sites: svc.adaptive.estimate,
  /// svc.adaptive.rebuild.
  AdaptivePolicy adaptive;
  RetryPolicy retry;
  TriagePolicy triage;
  /// Fall back to the solo serial pipeline when the batched path fails
  /// (after retries). Off: the batched path's error fails the future.
  bool degraded_fallback = true;
  /// Time source for deadlines, backoff sleeps and the scheduler's batch
  /// window. nullptr = the real steady clock; tests inject a
  /// util::VirtualClock to drive every time-dependent path
  /// deterministically. Must outlive the service.
  const util::Clock* clock = nullptr;
};

/// Per-request submit() parameters beyond the payload and pipeline config.
struct SubmitOptions {
  Priority priority = Priority::kNormal;
  Deadline deadline = Deadline::none();
};

template <typename Sym>
struct CompressResult {
  /// The codebook the stream was encoded against. Shared: batch members
  /// and cache hits all point at one frozen instance.
  std::shared_ptr<const Codebook> codebook;
  EncodedStream stream;
  bool cache_hit = false;
  /// Served by the solo serial fallback after the batched path failed.
  bool degraded = false;
  /// How many requests shared this codebook build (the batch size).
  std::size_t batch_requests = 1;
  double queue_seconds = 0;   ///< admission → batch start
  double encode_seconds = 0;  ///< this request's encode stage alone
};

/// What submit() hands back: the result future plus the best-effort
/// cancellation handle.
template <typename Sym>
struct Submission {
  std::future<CompressResult<Sym>> result;
  RequestHandle handle;
};

/// Result of a fused lossy request (submit_lossy): the self-contained
/// PHL2 container plus the fused-path report. Lossy requests dispatch
/// solo (a float field amortizes its own codebook build) but share the
/// service's admission bound, worker pool, deadline/cancel machinery and
/// — through the residual-histogram fingerprint — its codebook cache.
struct LossyResult {
  std::vector<u8> container;
  lossy::FusedReport report;
  bool cache_hit = false;    ///< codebook came from the sharded-LRU cache
  double queue_seconds = 0;  ///< admission → fused pass start
};

struct LossySubmission {
  std::future<LossyResult> result;
  RequestHandle handle;
};

/// Decode a service result back to symbols (convenience inverse).
/// `cancel` is polled cooperatively inside the decode walk, so a caller
/// with a deadline (e.g. the RPC server's decompress op) can abandon a
/// decode mid-stream.
template <typename Sym>
[[nodiscard]] std::vector<Sym> decompress(const CompressResult<Sym>& r,
                                          int threads = 0,
                                          const CancelToken* cancel = nullptr);

/// The fingerprint seed for a config: folds the fields that change which
/// codebook gets built (alphabet size, builder kind), so configs that
/// would build different books never share a cache entry. Exposed so
/// tests can plant cache entries under the exact key the service computes.
[[nodiscard]] u64 cache_seed(const PipelineConfig& cfg);

template <typename Sym>
class CompressionService {
 public:
  explicit CompressionService(ServiceConfig cfg = {});
  /// Drains every admitted request, then stops the scheduler and workers.
  /// Submitters blocked at the capacity bound are woken and receive
  /// std::logic_error before teardown proceeds.
  ~CompressionService();
  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Submit `data` for compression under `pipeline`. The symbols are
  /// copied — the caller's buffer may be reused immediately. Applies the
  /// admission policy (see OverflowPolicy); throws std::logic_error after
  /// shutdown began. With a deadline set, a blocked submit() gives up at
  /// the deadline and the returned future fails with DeadlineExceeded
  /// instead of the caller blocking past it.
  [[nodiscard]] Submission<Sym> submit(std::span<const Sym> data,
                                       const PipelineConfig& pipeline,
                                       const SubmitOptions& opts);

  /// Ownership-transfer overload: moves `data` into the request instead
  /// of copying it. For callers whose buffer has no further use — the RPC
  /// server's hot path, where the payload was just read off the wire.
  [[nodiscard]] Submission<Sym> submit(std::vector<Sym>&& data,
                                       const PipelineConfig& pipeline,
                                       const SubmitOptions& opts);

  /// Deadline-less convenience overload (the PR-2 API shape).
  [[nodiscard]] std::future<CompressResult<Sym>> submit(
      std::span<const Sym> data, const PipelineConfig& pipeline,
      Priority priority = Priority::kNormal);

  /// Submit a float field for fused error-bounded lossy compression
  /// (lossy/fused.hpp). The field is moved in; the request takes the solo
  /// dispatch path under the same admission bound, deadline and
  /// cancellation semantics as submit(). The quantizer width must match
  /// this service's symbol width: cfg.nbins <= 256 on the u8 instance,
  /// larger alphabets on the u16 instance (std::invalid_argument
  /// otherwise — the RPC server routes by nbins). Codebooks are looked up
  /// in / inserted into cache() under the residual quant-code histogram's
  /// fingerprint; there is no retry/degraded tier (the fused pass has no
  /// batch machinery to fall back from), so a failure reaches the future
  /// after at most one attempt. Counters: lossy.requests ==
  /// lossy.completed + lossy.failed (rejected submissions throw before
  /// counting as requests).
  [[nodiscard]] LossySubmission submit_lossy(std::vector<float>&& field,
                                             data::Dims dims,
                                             const lossy::FusedConfig& cfg,
                                             const SubmitOptions& opts = {});

  /// Block until every request admitted before this call has completed.
  void drain();

  /// Outstanding (admitted, not yet completed) requests right now.
  [[nodiscard]] std::size_t queue_depth() const;

  [[nodiscard]] CodebookCache& cache() { return cache_; }
  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  /// The adaptive lifecycle manager, or nullptr when
  /// ServiceConfig::adaptive.enabled is false (or the cache is off).
  [[nodiscard]] CodebookManager* adaptive() { return adaptive_.get(); }

 private:
  struct Request {
    std::vector<Sym> data;
    PipelineConfig pipeline;
    Priority priority = Priority::kNormal;
    Deadline deadline;
    std::shared_ptr<detail::HandleState> handle;
    std::promise<CompressResult<Sym>> promise;
    double enqueue_us = 0;  ///< trace-recorder clock at admission
    /// Remaining per-request retry budget, shared across stages
    /// (initialized from RetryPolicy::max_attempts at submit).
    int retry_budget = 0;
  };

  struct LossyJob {
    std::vector<float> field;
    data::Dims dims;
    lossy::FusedConfig cfg;
    Deadline deadline;
    std::shared_ptr<detail::HandleState> handle;
    std::promise<LossyResult> promise;
    double enqueue_us = 0;
  };

  void scheduler_loop();
  /// Execute one fused lossy request on a pool worker (or inline when the
  /// executor handoff fails — the resolve-always invariant).
  void run_lossy(LossyJob& job);
  /// Move cancelled / deadline-expired pending requests into the doom
  /// lists (caller holds mu_; resolution happens unlocked later).
  void prune_pending(std::vector<Request>& expired,
                     std::vector<Request>& cancelled);
  /// Move config-equal, batch-eligible pending requests into `batch`
  /// (caller holds mu_). Unclaimable requests land in the doom lists.
  void sweep_batch(std::vector<Request>& batch, std::size_t& total_syms,
                   std::vector<Request>& expired,
                   std::vector<Request>& cancelled);
  /// Fail doomed requests (DeadlineExceeded / CancelledError). No lock.
  void resolve_doomed(std::vector<Request>& expired,
                      std::vector<Request>& cancelled);
  /// Hand the batch to the pool; on persistent executor failure, runs it
  /// inline on the scheduler thread so the futures still resolve.
  void dispatch(std::vector<Request> batch);
  void run_batch(std::vector<Request> batch);
  /// Solo serial pipeline for one request after the batched path failed.
  void run_degraded(Request& r, double batch_start_us);
  void fail_request(Request& r, std::exception_ptr err, const char* counter);
  /// Mark one outstanding request finished; wakes blocked submitters and
  /// drain().
  void finish_one();
  /// Triage estimate: the configured quantile of svc.request_seconds, or
  /// 0 while disabled / too few samples (see TriagePolicy).
  [[nodiscard]] double expected_service_seconds() const;

  ServiceConfig cfg_;
  const util::Clock* clock_ = nullptr;  // resolved from cfg_.clock
  CodebookCache cache_;
  std::unique_ptr<WorkStealExecutor> pool_;
  /// Created after pool_ (rebuilds run on it) and stopped before pool_
  /// teardown in the dtor; null unless cfg_.adaptive.enabled.
  std::unique_ptr<CodebookManager> adaptive_;

  mutable std::mutex mu_;
  std::condition_variable sched_cv_;  // scheduler sleeps here
  std::condition_variable space_cv_;  // blocked submitters sleep here
  std::condition_variable drain_cv_;  // drain() and the dtor sleep here
  std::deque<Request> pending_;       // admitted, not yet batched
  std::size_t outstanding_ = 0;       // admitted, not yet completed
  std::size_t waiting_submitters_ = 0;  // blocked in submit() under kBlock
  bool stopping_ = false;

  std::atomic<u64> rng_salt_{0x5eedu};  // per-batch backoff jitter streams

  std::thread scheduler_;  // started last in the ctor
};

extern template struct CompressResult<u8>;
extern template struct CompressResult<u16>;
extern template class CompressionService<u8>;
extern template class CompressionService<u16>;
extern template std::vector<u8> decompress<u8>(const CompressResult<u8>&,
                                               int, const CancelToken*);
extern template std::vector<u16> decompress<u16>(const CompressResult<u16>&,
                                                 int, const CancelToken*);

}  // namespace parhuff::svc
