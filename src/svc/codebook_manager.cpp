#include "svc/codebook_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/fault_inject.hpp"

namespace parhuff::svc {

namespace {

/// Shannon entropy (bits/symbol) of a real-weighted histogram — the
/// decayed window is fractional, so the integer core/entropy.hpp helpers
/// don't apply.
double weighted_entropy(const std::vector<double>& w, double total) {
  if (total <= 0) return 0;
  double h = 0;
  for (const double wi : w) {
    if (wi <= 0) continue;
    const double p = wi / total;
    h -= p * std::log2(p);
  }
  return h;
}

/// Expected bits/symbol of encoding the window's traffic with `cb`.
/// +inf when the window holds mass on a symbol without a codeword: that
/// traffic cannot be encoded by this book at all (the same condition the
/// covers() guard rejects on the request path).
double weighted_expected_bits(const Codebook& cb, const std::vector<double>& w,
                              double total) {
  if (total <= 0) return 0;
  double bits = 0;
  const std::size_t n = std::min<std::size_t>(w.size(), cb.cw.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (w[i] <= 0) continue;
    if (cb.cw[i].len == 0) return std::numeric_limits<double>::infinity();
    bits += w[i] * static_cast<double>(cb.cw[i].len);
  }
  for (std::size_t i = n; i < w.size(); ++i)
    if (w[i] > 0) return std::numeric_limits<double>::infinity();
  return bits / total;
}

/// The book's excess over the optimum for this traffic: expected bits
/// minus entropy. Huffman redundancy plus (for a stale book) drift loss.
double weighted_excess(const Codebook& cb, const std::vector<double>& w,
                       double total) {
  return weighted_expected_bits(cb, w, total) - weighted_entropy(w, total);
}

/// Round the decayed window back to an integer histogram for
/// build_codebook. Any bin with positive mass keeps at least count 1, so
/// the rebuilt book covers exactly the window's support; a window that is
/// an exact integer histogram (decay fully aged out, or first fold)
/// rounds back to itself — which is what makes a rebuilt book
/// byte-identical to a cold build from the same histogram.
std::vector<u64> round_window(const std::vector<double>& w) {
  std::vector<u64> counts(w.size(), 0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] > 0)
      counts[i] = std::max<u64>(1, static_cast<u64>(std::llround(w[i])));
  }
  return counts;
}

}  // namespace

CodebookManager::CodebookManager(const AdaptivePolicy& policy,
                                 CodebookCache& cache, WorkStealExecutor& pool,
                                 const util::Clock& clock)
    : policy_(policy), cache_(cache), pool_(pool), clock_(clock) {}

CodebookManager::~CodebookManager() {
  stop();
  quiesce();
}

void CodebookManager::observe(const Fingerprint& fp, std::span<const u64> freq,
                              const std::shared_ptr<const Codebook>& book,
                              const PipelineConfig& cfg,
                              bool cache_hit) noexcept try {
  if (!book) return;
  auto& reg = obs::MetricsRegistry::global();

  std::optional<RebuildJob> job;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (stopping_) return;
    ++counters_.observations;
    reg.counter_add("svc.adaptive.observations");

    auto [it, created] = buckets_.try_emplace(fp.hash);
    Bucket& b = it->second;
    b.last_used = ++tick_;
    if (created) {
      b.fp = fp;
      b.cfg = cfg;
      b.window.assign(freq.size(), 0);
    }
    if (b.window.size() != freq.size()) {
      // Alphabet size changed under the same hash (fingerprint collision
      // across nbins); resync as if fresh.
      b.window.assign(freq.size(), 0);
      cache_hit = false;
    }
    b.cfg = cfg;

    if (!cache_hit) {
      // The batch built (or rebuilt) this bucket's book itself — a cold
      // bucket, a hard miss, or a covers() reject. Resync: the book IS
      // current traffic, so the window restarts from this batch and the
      // redundancy baseline is re-measured.
      for (std::size_t i = 0; i < freq.size(); ++i)
        b.window[i] = static_cast<double>(freq[i]);
      ++b.generation;
      b.armed = true;
      b.last_divergence = 0;
    } else {
      const double d = policy_.window_decay;
      for (std::size_t i = 0; i < freq.size(); ++i)
        b.window[i] = d * b.window[i] + static_cast<double>(freq[i]);
    }
    b.window_total = 0;
    for (const double wi : b.window) b.window_total += wi;

    // Divergence estimate (fault site svc.adaptive.estimate). A failure
    // here is absorbed: the request already encoded fine, the estimate
    // just goes stale for one batch.
    try {
      obs::ScopedStageTimer timer(reg, "svc.adaptive.estimate");
      util::FaultInjector::global().maybe_throw("svc.adaptive.estimate");
      const double excess = weighted_excess(*book, b.window, b.window_total);
      if (!cache_hit) {
        // Baseline the book's native redundancy at swap time so a
        // stationary-but-redundant distribution estimates ~0 forever.
        b.base_excess = std::isfinite(excess) ? excess : 0;
      }
      ++counters_.estimates;
      if (b.window_total >= policy_.min_window_symbols) {
        b.last_divergence = std::max(0.0, excess - b.base_excess);
        reg.gauge_set("svc.adaptive.divergence_bits", b.last_divergence);
        if (b.last_divergence <= policy_.divergence_low_bits) b.armed = true;
      }
    } catch (...) {
      ++counters_.estimate_failures;
      reg.counter_add("svc.adaptive.estimate_failures");
    }

    // Trigger decision: armed, over threshold, nothing already in flight
    // for this bucket, and a budget token available.
    if (b.last_divergence >= policy_.divergence_high_bits &&
        !b.rebuild_inflight) {
      if (!b.armed) {
        ++counters_.hysteresis_held;
        reg.counter_add("svc.adaptive.hysteresis_held");
      } else if (!take_rebuild_token()) {
        ++counters_.budget_deferred;
        reg.counter_add("svc.adaptive.budget_deferred");
      } else {
        b.armed = false;  // re-arms below divergence_low_bits
        b.rebuild_inflight = true;
        ++inflight_;
        ++counters_.rebuilds_started;
        reg.counter_add("svc.adaptive.rebuilds_started");
        job.emplace(RebuildJob{b.fp, b.cfg, round_window(b.window),
                               weighted_entropy(b.window, b.window_total),
                               b.generation});
      }
    }

    retire_excess_buckets();
    reg.gauge_set("svc.adaptive.tracked_buckets",
                  static_cast<double>(buckets_.size()));
  }

  if (job) {
    // Submit outside mu_: the task may start (and want the lock)
    // immediately. A rejected submit (executor shutting down, or the
    // svc.executor.submit fault site) falls back to running inline on
    // this thread — the rebuild was already accounted as started, so
    // dropping it would leak the lifecycle balance.
    try {
      pool_.submit([this, j = std::move(*job)] { run_rebuild(j); });
    } catch (...) {
      run_rebuild(*job);
    }
  }
} catch (...) {
  // observe() is advisory: never let bookkeeping failure (allocation
  // pressure included) propagate into the batch worker.
}

void CodebookManager::run_rebuild(const RebuildJob& job) {
  auto& reg = obs::MetricsRegistry::global();
  obs::ScopedStageTimer timer(reg, "svc.adaptive.rebuild");

  enum class Outcome { kApplied, kSuperseded, kCancelled, kFailed };
  std::shared_ptr<const Codebook> built;
  bool cancelled = false;
  bool failed = false;
  if (stop_token_.requested()) {
    cancelled = true;
  } else {
    try {
      util::FaultInjector::global().maybe_throw("svc.adaptive.rebuild");
      built = std::make_shared<const Codebook>(
          build_codebook(job.snapshot, job.cfg, nullptr, &stop_token_));
    } catch (const OperationCancelled&) {
      cancelled = true;
    } catch (...) {
      failed = true;
    }
  }

  Outcome outcome = Outcome::kApplied;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = buckets_.find(job.fp.hash);
    if (cancelled || stopping_) {
      outcome = Outcome::kCancelled;
    } else if (failed) {
      outcome = Outcome::kFailed;
    } else if (it == buckets_.end() ||
               it->second.generation != job.generation) {
      // The bucket was retired, or a hard-miss fresh build landed while
      // we were building: our snapshot describes older traffic than what
      // is already installed. Keep theirs.
      outcome = Outcome::kSuperseded;
    } else {
      try {
        // Hot swap through the ordinary cache insert path; the next
        // batch's find() picks it up. The swap is also a fault point
        // (same site as the build — both resolve the rebuild as failed).
        util::FaultInjector::global().maybe_throw("svc.adaptive.rebuild");
        cache_.insert(job.fp, built);
        Bucket& b = it->second;
        ++b.generation;
        const std::vector<double> snap(job.snapshot.begin(),
                                       job.snapshot.end());
        double snap_total = 0;
        for (const double c : snap) snap_total += c;
        b.base_excess = weighted_expected_bits(*built, snap, snap_total) -
                        job.snapshot_entropy;
        if (!std::isfinite(b.base_excess)) b.base_excess = 0;
        b.armed = true;
        b.last_divergence = 0;
        outcome = Outcome::kApplied;
      } catch (...) {
        outcome = Outcome::kFailed;
      }
    }
    if (it != buckets_.end()) it->second.rebuild_inflight = false;
    switch (outcome) {
      case Outcome::kApplied:
        ++counters_.rebuilds_applied;
        reg.counter_add("svc.adaptive.rebuilds_applied");
        break;
      case Outcome::kSuperseded:
        ++counters_.rebuilds_superseded;
        reg.counter_add("svc.adaptive.rebuilds_superseded");
        break;
      case Outcome::kCancelled:
        ++counters_.rebuilds_cancelled;
        reg.counter_add("svc.adaptive.rebuilds_cancelled");
        break;
      case Outcome::kFailed:
        ++counters_.rebuilds_failed;
        reg.counter_add("svc.adaptive.rebuilds_failed");
        break;
    }
    --inflight_;
  }
  idle_cv_.notify_all();
}

bool CodebookManager::take_rebuild_token() {
  if (policy_.max_rebuilds_per_period <= 0 ||
      policy_.budget_period_seconds <= 0)
    return true;  // budget disabled
  const double cap = static_cast<double>(policy_.max_rebuilds_per_period);
  const double rate = cap / policy_.budget_period_seconds;
  const auto now = clock_.now();
  if (!tokens_init_) {
    tokens_ = cap;
    tokens_at_ = now;
    tokens_init_ = true;
  } else if (now > tokens_at_) {
    const double elapsed =
        std::chrono::duration<double>(now - tokens_at_).count();
    tokens_ = std::min(cap, tokens_ + elapsed * rate);
    tokens_at_ = now;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

void CodebookManager::retire_excess_buckets() {
  auto& reg = obs::MetricsRegistry::global();
  while (buckets_.size() > policy_.max_buckets) {
    auto victim = buckets_.end();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (it->second.rebuild_inflight) continue;  // never orphan a rebuild
      if (victim == buckets_.end() ||
          it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == buckets_.end()) break;  // everything in flight
    buckets_.erase(victim);
    ++counters_.buckets_retired;
    reg.counter_add("svc.adaptive.buckets_retired");
  }
}

void CodebookManager::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  stop_token_.request();
}

void CodebookManager::quiesce() {
  std::unique_lock<std::mutex> lk(mu_);
  // The notify arrives from a real thread finishing run_rebuild, so a
  // plain predicate wait is deterministic under both clocks (no polling,
  // no sleeps).
  idle_cv_.wait(lk, [&] { return inflight_ == 0; });
}

CodebookManager::Counters CodebookManager::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

double CodebookManager::divergence(const Fingerprint& fp) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = buckets_.find(fp.hash);
  return it == buckets_.end() ? 0.0 : it->second.last_divergence;
}

std::size_t CodebookManager::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_;
}

}  // namespace parhuff::svc
