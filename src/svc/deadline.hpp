#pragma once
// Deadline, cancellation and failure vocabulary for the compression
// service (svc/service.hpp).
//
// A Deadline is an absolute steady-clock instant attached to a request at
// submit(). It is enforced everywhere the request spends time:
//
//   * where it waits — a blocked submit() gives up at the deadline, the
//     scheduler prunes expired pending requests before batching, batch
//     admission triages members whose remaining budget is below the
//     expected service time, and a batch re-checks each member when it
//     finally starts;
//   * and *inside the stage kernels* — submit() arms the request's
//     core::CancelToken with the deadline, and the histogram, codebook and
//     encode kernels poll it cooperatively (per chunk / per reduce round),
//     so a request whose deadline passes mid-stage abandons the kernel and
//     fails with DeadlineExceeded instead of completing uselessly.
//
// A RequestHandle cancels a request. While the request is still pending,
// cancel() wins outright (returns true; the future fails with
// CancelledError). Once dispatched, cancel() returns false but still
// signals the in-flight token — the stages abandon work at their next poll
// point and the future fails with CancelledError; if the work already
// passed its last poll point it completes normally. Both deadline expiry
// and cancellation resolve the request's future with a typed exception —
// every submitted future resolves, always.
//
// The RPC v3 streaming verbs stretch the same two primitives over a
// multi-frame request: a stream's CancelToken is armed from the wire
// budget once, at the Begin frame (chunk frames carry the stream id where
// a deadline would ride), registered under the Begin request id so a
// kCancel naming it aborts the whole stream, and polled by every chunk's
// encode/decode exactly like a single-frame request's kernels. One
// request, one token, one deadline — however many frames it spans.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/cancel.hpp"
#include "util/clock.hpp"

namespace parhuff::svc {

/// The request's deadline passed — before dispatch, or mid-stage at a
/// kernel poll point. Carried by the request's future.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded()
      : std::runtime_error("CompressionService: deadline exceeded") {}
};

/// The request was cancelled via its RequestHandle.
class CancelledError : public std::runtime_error {
 public:
  CancelledError()
      : std::runtime_error("CompressionService: request cancelled") {}
};

/// Absolute deadline on the steady clock. Default-constructed: none.
struct Deadline {
  using clock = std::chrono::steady_clock;
  clock::time_point at = clock::time_point::max();

  [[nodiscard]] static Deadline none() { return {}; }
  /// `seconds` from now. Non-positive values produce an already-expired
  /// deadline (useful for load-shedding probes).
  [[nodiscard]] static Deadline in(double seconds) {
    return in(seconds, util::Clock::real());
  }
  /// `seconds` from now on an injected clock (util::VirtualClock in
  /// tests). util::Clock shares steady_clock's time_point type, so the
  /// result composes with any clock-consistent caller.
  [[nodiscard]] static Deadline in(double seconds, const util::Clock& clk) {
    return Deadline{clk.now() + util::Clock::dur(seconds)};
  }
  [[nodiscard]] static Deadline at_time(clock::time_point tp) {
    return Deadline{tp};
  }

  [[nodiscard]] bool unlimited() const {
    return at == clock::time_point::max();
  }
  [[nodiscard]] bool expired(clock::time_point now = clock::now()) const {
    return !unlimited() && now >= at;
  }
  /// Remaining budget in seconds (+inf when unlimited, negative when
  /// expired).
  [[nodiscard]] double remaining_seconds(clock::time_point now) const {
    if (unlimited()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at - now).count();
  }
};

namespace detail {

/// Request lifecycle the handle and scheduler race over. Exactly one
/// transition out of kPending wins: cancel() moves to kCancelled, the
/// scheduler moves to kDispatched (or kResolved when it fails the
/// request while still pending, e.g. deadline expiry).
enum class ReqPhase : int {
  kPending = 0,
  kDispatched = 1,
  kCancelled = 2,
  kResolved = 3,
};

struct HandleState {
  std::atomic<int> phase{static_cast<int>(ReqPhase::kPending)};
  /// Polled by the stage kernels while the request runs. submit() arms it
  /// with the request's deadline; a post-dispatch cancel() requests it.
  CancelToken token;

  bool try_transition(ReqPhase from, ReqPhase to) {
    int expect = static_cast<int>(from);
    return phase.compare_exchange_strong(expect, static_cast<int>(to),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }
  [[nodiscard]] ReqPhase load() const {
    return static_cast<ReqPhase>(phase.load(std::memory_order_acquire));
  }
};

}  // namespace detail

/// Cancellation token returned by submit(). Copyable; all copies refer to
/// the same request.
class RequestHandle {
 public:
  RequestHandle() = default;

  /// Try to cancel. True iff the request had not yet been dispatched —
  /// its future will then fail with CancelledError without any work
  /// starting. False once dispatch won the race or on a detached
  /// (default-constructed) handle; in the dispatched case the in-flight
  /// work is still signalled and abandons at its next kernel poll point
  /// (the future then fails with CancelledError), so false means "already
  /// started", not "will complete".
  bool cancel() {
    if (!st_) return false;
    if (st_->try_transition(detail::ReqPhase::kPending,
                            detail::ReqPhase::kCancelled)) {
      return true;
    }
    if (st_->load() == detail::ReqPhase::kDispatched) st_->token.request();
    return false;
  }

  /// True iff a cancel() on this request won while it was pending.
  [[nodiscard]] bool cancelled() const {
    return st_ && st_->load() == detail::ReqPhase::kCancelled;
  }

 private:
  template <typename Sym>
  friend class CompressionService;

  explicit RequestHandle(std::shared_ptr<detail::HandleState> st)
      : st_(std::move(st)) {}

  std::shared_ptr<detail::HandleState> st_;
};

}  // namespace parhuff::svc
