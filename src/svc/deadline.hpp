#pragma once
// Deadline, cancellation and failure vocabulary for the compression
// service (svc/service.hpp).
//
// A Deadline is an absolute steady-clock instant attached to a request at
// submit(). It is enforced at the points where a request *waits* — in the
// pending deque and in the worker pool's queue — because that is where a
// saturated service actually loses time: the scheduler fails expired
// requests before batching them, and a batch re-checks each member when
// it finally starts. A request that already began encoding is never
// abandoned (partial pipeline work is not interruptible mid-kernel; see
// ROADMAP for per-stage timeout propagation).
//
// A RequestHandle allows best-effort cancellation of a request that has
// not yet been dispatched into a batch. Once dispatched, cancel() returns
// false and the request completes normally. Both deadline expiry and
// cancellation resolve the request's future with a typed exception —
// every submitted future resolves, always.

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace parhuff::svc {

/// The request's deadline passed before the service started (or could
/// finish admitting) its work. Carried by the request's future.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded()
      : std::runtime_error(
            "CompressionService: deadline exceeded before dispatch") {}
};

/// The request was cancelled via its RequestHandle before dispatch.
class CancelledError : public std::runtime_error {
 public:
  CancelledError()
      : std::runtime_error("CompressionService: request cancelled") {}
};

/// Absolute deadline on the steady clock. Default-constructed: none.
struct Deadline {
  using clock = std::chrono::steady_clock;
  clock::time_point at = clock::time_point::max();

  [[nodiscard]] static Deadline none() { return {}; }
  /// `seconds` from now. Non-positive values produce an already-expired
  /// deadline (useful for load-shedding probes).
  [[nodiscard]] static Deadline in(double seconds) {
    return Deadline{clock::now() +
                    std::chrono::duration_cast<clock::duration>(
                        std::chrono::duration<double>(seconds))};
  }
  [[nodiscard]] static Deadline at_time(clock::time_point tp) {
    return Deadline{tp};
  }

  [[nodiscard]] bool unlimited() const {
    return at == clock::time_point::max();
  }
  [[nodiscard]] bool expired(clock::time_point now = clock::now()) const {
    return !unlimited() && now >= at;
  }
};

namespace detail {

/// Request lifecycle the handle and scheduler race over. Exactly one
/// transition out of kPending wins: cancel() moves to kCancelled, the
/// scheduler moves to kDispatched (or kResolved when it fails the
/// request while still pending, e.g. deadline expiry).
enum class ReqPhase : int {
  kPending = 0,
  kDispatched = 1,
  kCancelled = 2,
  kResolved = 3,
};

struct HandleState {
  std::atomic<int> phase{static_cast<int>(ReqPhase::kPending)};

  bool try_transition(ReqPhase from, ReqPhase to) {
    int expect = static_cast<int>(from);
    return phase.compare_exchange_strong(expect, static_cast<int>(to),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }
  [[nodiscard]] ReqPhase load() const {
    return static_cast<ReqPhase>(phase.load(std::memory_order_acquire));
  }
};

}  // namespace detail

/// Best-effort cancellation token returned by submit(). Copyable; all
/// copies refer to the same request.
class RequestHandle {
 public:
  RequestHandle() = default;

  /// Try to cancel. True iff the request had not yet been dispatched —
  /// its future will then fail with CancelledError. False once dispatch
  /// won the race (the request completes normally) or on a detached
  /// (default-constructed) handle.
  bool cancel() {
    return st_ && st_->try_transition(detail::ReqPhase::kPending,
                                      detail::ReqPhase::kCancelled);
  }

  /// True iff a cancel() on this request won.
  [[nodiscard]] bool cancelled() const {
    return st_ && st_->load() == detail::ReqPhase::kCancelled;
  }

 private:
  template <typename Sym>
  friend class CompressionService;

  explicit RequestHandle(std::shared_ptr<detail::HandleState> st)
      : st_(std::move(st)) {}

  std::shared_ptr<detail::HandleState> st_;
};

}  // namespace parhuff::svc
