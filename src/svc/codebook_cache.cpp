#include "svc/codebook_cache.hpp"

#include <utility>

#include "util/fault_inject.hpp"

namespace parhuff::svc {

CodebookCache::CodebookCache(Config cfg)
    : cap_(cfg.capacity_per_shard == 0 ? 1 : cfg.capacity_per_shard) {
  const std::size_t n = cfg.shards == 0 ? 1 : cfg.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const Codebook> CodebookCache::find(const Fingerprint& fp) {
  // Fault-injection site: a transient lookup failure (the service treats
  // it like a miss-with-error and retries / degrades; see docs/service.md).
  util::FaultInjector::global().maybe_throw("svc.cache.find");
  Shard& s = shard_for(fp);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.index.find(fp.hash);
  // A hash-table hit with a mismatched fingerprint (hash collision across
  // alphabet sizes) is a miss: the slot belongs to the other distribution.
  if (it == s.index.end() || it->second->fp != fp) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // touch: move to MRU
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->cb;
}

void CodebookCache::insert(const Fingerprint& fp,
                           std::shared_ptr<const Codebook> cb) {
  // Fault-injection site, paired with "svc.cache.find" above.
  util::FaultInjector::global().maybe_throw("svc.cache.insert");
  Shard& s = shard_for(fp);
  std::lock_guard<std::mutex> lock(s.mu);
  if (const auto it = s.index.find(fp.hash); it != s.index.end()) {
    it->second->fp = fp;
    it->second->cb = std::move(cb);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (s.lru.size() >= cap_) {
    s.index.erase(s.lru.back().fp.hash);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  s.lru.push_front(Entry{fp, std::move(cb)});
  s.index[fp.hash] = s.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool CodebookCache::covers(const Codebook& cb, std::span<const u64> freq) {
  if (freq.size() > cb.cw.size()) {
    for (std::size_t b = cb.cw.size(); b < freq.size(); ++b) {
      if (freq[b] > 0) return false;
    }
  }
  const std::size_t n = std::min(freq.size(), cb.cw.size());
  for (std::size_t b = 0; b < n; ++b) {
    if (freq[b] > 0 && cb.cw[b].len == 0) return false;
  }
  return true;
}

CodebookCache::Stats CodebookCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed),
               insertions_.load(std::memory_order_relaxed),
               evictions_.load(std::memory_order_relaxed)};
}

std::size_t CodebookCache::size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->lru.size();
  }
  return n;
}

void CodebookCache::clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->lru.clear();
    s->index.clear();
  }
}

}  // namespace parhuff::svc
