#include "svc/service.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "core/decode.hpp"
#include "core/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace parhuff::svc {

namespace {

/// The batch's pooled histogram under the request config's histogram
/// policy. Per-request histograms accumulate into `freq` so the codebook
/// covers every member.
template <typename Sym>
void accumulate_histogram(std::span<const Sym> data,
                          const PipelineConfig& cfg, std::vector<u64>& freq) {
  std::vector<u64> h;
  switch (cfg.histogram) {
    case HistogramKind::kSerial:
      h = histogram_serial(data, cfg.nbins);
      break;
    case HistogramKind::kOpenMP:
      h = histogram_openmp(data, cfg.nbins, cfg.cpu_threads);
      break;
    case HistogramKind::kSimt:
      h = histogram_simt(data, cfg.nbins);
      break;
  }
  for (std::size_t b = 0; b < freq.size(); ++b) freq[b] += h[b];
}

}  // namespace

u64 cache_seed(const PipelineConfig& cfg) {
  u64 seed = 0x9e3779b97f4a7c15ull;
  seed ^= static_cast<u64>(cfg.codebook);
  seed *= 0x100000001b3ull;
  seed ^= static_cast<u64>(cfg.nbins);
  seed *= 0x100000001b3ull;
  return seed;
}

template <typename Sym>
std::vector<Sym> decompress(const CompressResult<Sym>& r, int threads) {
  return decode_stream<Sym>(r.stream, *r.codebook, threads);
}

template <typename Sym>
CompressionService<Sym>::CompressionService(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(cfg.cache),
      pool_(std::make_unique<WorkStealExecutor>(cfg.workers)) {
  if (cfg_.queue_capacity == 0) {
    throw std::invalid_argument(
        "CompressionService: queue_capacity must be positive");
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

template <typename Sym>
CompressionService<Sym>::~CompressionService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  sched_cv_.notify_all();
  space_cv_.notify_all();
  scheduler_.join();  // flushes pending_ into the pool without lingering
  pool_.reset();      // drains dispatched batches, joins workers
}

template <typename Sym>
std::future<CompressResult<Sym>> CompressionService<Sym>::submit(
    std::span<const Sym> data, const PipelineConfig& pipeline,
    Priority priority) {
  if (pipeline.nbins == 0) {
    throw std::invalid_argument("CompressionService: nbins must be positive");
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  Request r;
  r.data.assign(data.begin(), data.end());  // copy: async lifetime safety
  r.pipeline = pipeline;
  r.priority = priority;
  std::future<CompressResult<Sym>> fut = r.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::logic_error("CompressionService: submit() after shutdown");
    }
    if (outstanding_ >= cfg_.queue_capacity) {
      if (cfg_.overflow == OverflowPolicy::kReject) {
        reg.counter_add("svc.rejected_requests");
        throw QueueFullError();
      }
      reg.counter_add("svc.backpressure_events");
      space_cv_.wait(lock, [&] {
        return stopping_ || outstanding_ < cfg_.queue_capacity;
      });
      if (stopping_) {
        throw std::logic_error("CompressionService: submit() after shutdown");
      }
    }
    ++outstanding_;
    r.enqueue_us = obs::TraceRecorder::global().now_us();
    pending_.push_back(std::move(r));
    reg.gauge_set("svc.queue_depth", static_cast<double>(outstanding_));
  }
  reg.counter_add("svc.requests_submitted");
  obs::TraceRecorder::global().instant("svc.enqueue", "svc");
  sched_cv_.notify_one();
  return fut;
}

template <typename Sym>
void CompressionService<Sym>::sweep_batch(std::vector<Request>& batch,
                                          std::size_t& total_syms) {
  // By value: push_back below may reallocate `batch` and a reference into
  // it would dangle.
  const PipelineConfig want = batch.front().pipeline;
  for (auto it = pending_.begin();
       it != pending_.end() && batch.size() < cfg_.batch_max_requests;) {
    if (it->pipeline == want &&
        it->data.size() <= cfg_.batch_eligible_symbols &&
        total_syms + it->data.size() <= cfg_.batch_max_symbols) {
      total_syms += it->data.size();
      batch.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

template <typename Sym>
void CompressionService<Sym>::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    sched_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Leader: oldest request of the highest priority present.
    auto lead = pending_.begin();
    for (auto it = std::next(lead); it != pending_.end(); ++it) {
      if (static_cast<int>(it->priority) > static_cast<int>(lead->priority)) {
        lead = it;
      }
    }
    std::vector<Request> batch;
    batch.push_back(std::move(*lead));
    pending_.erase(lead);
    std::size_t total_syms = batch.front().data.size();

    const bool batchable = total_syms <= cfg_.batch_eligible_symbols &&
                           cfg_.batch_max_requests > 1 &&
                           cfg_.batch_window_seconds > 0;
    if (batchable) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(cfg_.batch_window_seconds));
      for (;;) {
        sweep_batch(batch, total_syms);
        if (batch.size() >= cfg_.batch_max_requests) break;
        if (stopping_) {  // shutdown: flush without lingering
          sweep_batch(batch, total_syms);
          break;
        }
        if (sched_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
          sweep_batch(batch, total_syms);
          break;
        }
      }
    }
    lock.unlock();
    dispatch(std::move(batch));
    lock.lock();
  }
}

template <typename Sym>
void CompressionService<Sym>::dispatch(std::vector<Request> batch) {
  // std::function needs a copyable callable; promises are move-only, so
  // the batch rides behind a shared_ptr.
  auto boxed = std::make_shared<std::vector<Request>>(std::move(batch));
  pool_->submit([this, boxed] { run_batch(std::move(*boxed)); });
}

template <typename Sym>
void CompressionService<Sym>::run_batch(std::vector<Request> batch) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  obs::TraceSpan batch_span("svc.batch", "svc");
  const PipelineConfig& cfg = batch.front().pipeline;
  const double batch_start_us = rec.now_us();

  reg.counter_add("svc.batches");
  if (batch.size() > 1) reg.counter_add("svc.coalesced_requests", batch.size());
  for (const Request& r : batch) {
    reg.histo_record("svc.queue_wait_seconds",
                     (batch_start_us - r.enqueue_us) / 1e6);
  }

  // Shared stages: histogram pooling, cache lookup, codebook build. A
  // failure here fails every member of the batch.
  std::shared_ptr<const Codebook> cb;
  std::vector<u64> freq;
  bool cache_hit = false;
  try {
    Timer t;
    freq.assign(cfg.nbins, 0);
    for (const Request& r : batch) {
      accumulate_histogram<Sym>(r.data, cfg, freq);
    }
    reg.stage_add("svc.histogram", t.seconds());

    t.reset();
    if (cfg_.enable_cache) {
      const Fingerprint fp = fingerprint_histogram(freq, cache_seed(cfg));
      if (std::shared_ptr<const Codebook> hit = cache_.find(fp)) {
        if (CodebookCache::covers(*hit, freq)) {
          cb = std::move(hit);
          cache_hit = true;
          reg.counter_add("svc.cache_hits");
        } else {
          // Fingerprint aliased onto a codebook missing some of this
          // batch's symbols — rebuild; the fresh book replaces the entry.
          reg.counter_add("svc.cache_guard_rejects");
        }
      } else {
        reg.counter_add("svc.cache_misses");
      }
      if (!cb) {
        cb = std::make_shared<const Codebook>(build_codebook(freq, cfg));
        cache_.insert(fp, cb);
      }
    } else {
      cb = std::make_shared<const Codebook>(build_codebook(freq, cfg));
    }
    reg.stage_add("svc.codebook", t.seconds());
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Request& r : batch) {
      r.promise.set_exception(err);
      reg.counter_add("svc.requests_failed");
      finish_one();
    }
    return;
  }

  // Per-request encode: a failure fails only that request.
  for (Request& r : batch) {
    try {
      Timer t;
      CompressResult<Sym> res;
      res.codebook = cb;
      res.stream = encode_with_codebook<Sym>(std::span<const Sym>(r.data),
                                             *cb, cfg, freq);
      res.cache_hit = cache_hit;
      res.batch_requests = batch.size();
      res.encode_seconds = t.seconds();
      res.queue_seconds = (batch_start_us - r.enqueue_us) / 1e6;
      reg.stage_add("svc.encode", res.encode_seconds);
      reg.counter_add("svc.requests_completed");
      reg.counter_add("svc.input_bytes", r.data.size() * sizeof(Sym));
      reg.counter_add("svc.output_bytes", res.stream.stored_bytes());
      const double done_us = rec.now_us();
      reg.histo_record("svc.request_seconds",
                       (done_us - r.enqueue_us) / 1e6);
      // Lifecycle span: admission → completion, anchored at the enqueue
      // timestamp (crosses threads, so TraceSpan's RAII doesn't fit).
      rec.complete("svc.request", "svc", r.enqueue_us,
                   done_us - r.enqueue_us);
      r.promise.set_value(std::move(res));
    } catch (...) {
      r.promise.set_exception(std::current_exception());
      reg.counter_add("svc.requests_failed");
    }
    finish_one();
  }
}

template <typename Sym>
void CompressionService<Sym>::finish_one() {
  std::size_t now_outstanding;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    now_outstanding = outstanding_;
  }
  obs::MetricsRegistry::global().gauge_set(
      "svc.queue_depth", static_cast<double>(now_outstanding));
  space_cv_.notify_one();
  if (now_outstanding == 0) drain_cv_.notify_all();
}

template <typename Sym>
void CompressionService<Sym>::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

template <typename Sym>
std::size_t CompressionService<Sym>::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

template struct CompressResult<u8>;
template struct CompressResult<u16>;
template class CompressionService<u8>;
template class CompressionService<u16>;
template std::vector<u8> decompress<u8>(const CompressResult<u8>&, int);
template std::vector<u16> decompress<u16>(const CompressResult<u16>&, int);

}  // namespace parhuff::svc
