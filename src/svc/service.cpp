#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "core/decode.hpp"
#include "core/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace parhuff::svc {

namespace {

using detail::ReqPhase;

/// The batch's pooled histogram under the request config's histogram
/// policy. Per-request histograms accumulate into `freq` so the codebook
/// covers every member. `cancel` is the batch-scope token the kernels
/// poll (see run_batch for how it is chosen).
template <typename Sym>
void accumulate_histogram(std::span<const Sym> data,
                          const PipelineConfig& cfg, std::vector<u64>& freq,
                          const CancelToken* cancel) {
  util::FaultInjector::global().maybe_throw("svc.histogram");
  std::vector<u64> h;
  switch (cfg.histogram) {
    case HistogramKind::kSerial:
      h = histogram_serial(data, cfg.nbins, cancel);
      break;
    case HistogramKind::kOpenMP:
      h = histogram_openmp(data, cfg.nbins, cfg.cpu_threads, cancel);
      break;
    case HistogramKind::kSimt:
      h = histogram_simt(data, cfg.nbins, nullptr, SimtHistogramConfig{},
                         cancel);
      break;
  }
  // Hard invariant, not an assert: every member of a batch was admitted
  // with an operator==-equal config, so the widths must agree. If a
  // future config change ever breaks that, fail the batch cleanly
  // instead of silently truncating the accumulation.
  if (h.size() != freq.size()) {
    throw std::logic_error(
        "CompressionService: histogram width mismatch inside a batch (" +
        std::to_string(h.size()) + " vs " + std::to_string(freq.size()) +
        " bins)");
  }
  for (std::size_t b = 0; b < freq.size(); ++b) freq[b] += h[b];
}

[[nodiscard]] bool is_transient(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const util::TransientError&) {
    return true;
  } catch (...) {
    return false;
  }
}

/// Why a stage abandoned work at a poll point — these outrank transient
/// classification: no retry, no degraded fallback, straight to the typed
/// failure.
enum class AbandonKind { kNone, kCancelled, kDeadline };

[[nodiscard]] AbandonKind abandon_kind(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const OperationCancelled&) {
    return AbandonKind::kCancelled;
  } catch (const DeadlineExpired&) {
    return AbandonKind::kDeadline;
  } catch (...) {
    return AbandonKind::kNone;
  }
}

}  // namespace

u64 cache_seed(const PipelineConfig& cfg) {
  u64 seed = 0x9e3779b97f4a7c15ull;
  seed ^= static_cast<u64>(cfg.codebook);
  seed *= 0x100000001b3ull;
  seed ^= static_cast<u64>(cfg.nbins);
  seed *= 0x100000001b3ull;
  return seed;
}

template <typename Sym>
std::vector<Sym> decompress(const CompressResult<Sym>& r, int threads,
                            const CancelToken* cancel) {
  // Tier selection lives in decode_auto: streams the pipeline annotated
  // with gap metadata take the fully parallel gap-array kernel, everything
  // else the chunk-parallel host decoder.
  return decode_auto<Sym>(r.stream, *r.codebook, threads, cancel);
}

template <typename Sym>
CompressionService<Sym>::CompressionService(ServiceConfig cfg)
    : cfg_(cfg),
      clock_(cfg.clock ? cfg.clock : &util::Clock::real()),
      cache_(cfg.cache),
      pool_(std::make_unique<WorkStealExecutor>(cfg.workers, clock_)) {
  if (cfg_.queue_capacity == 0) {
    throw std::invalid_argument(
        "CompressionService: queue_capacity must be positive");
  }
  if (cfg_.retry.max_attempts < 0) {
    throw std::invalid_argument(
        "CompressionService: retry.max_attempts must be >= 0");
  }
  if (cfg_.triage.quantile < 0.0 || cfg_.triage.quantile > 1.0) {
    throw std::invalid_argument(
        "CompressionService: triage.quantile must be in [0, 1]");
  }
  if (cfg_.adaptive.enabled) {
    if (cfg_.adaptive.window_decay < 0.0 || cfg_.adaptive.window_decay >= 1.0) {
      throw std::invalid_argument(
          "CompressionService: adaptive.window_decay must be in [0, 1)");
    }
    if (cfg_.adaptive.divergence_low_bits > cfg_.adaptive.divergence_high_bits) {
      throw std::invalid_argument(
          "CompressionService: adaptive.divergence_low_bits must not exceed "
          "divergence_high_bits");
    }
    // The manager watches cache-served books; without the cache there is
    // no book to watch and no insert path to swap through.
    if (cfg_.enable_cache) {
      adaptive_ = std::make_unique<CodebookManager>(cfg_.adaptive, cache_,
                                                    *pool_, *clock_);
    }
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

template <typename Sym>
CompressionService<Sym>::~CompressionService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    // Wake submitters blocked at the capacity bound and wait for every
    // one of them to leave submit() (they observe stopping_ and throw)
    // before members start being torn down underneath them.
    space_cv_.notify_all();
    drain_cv_.wait(lock, [&] { return waiting_submitters_ == 0; });
  }
  sched_cv_.notify_all();
  scheduler_.join();  // flushes pending_ into the pool without lingering
  // Stop the adaptive manager before draining the pool: queued rebuilds
  // then resolve as cancelled instead of building books nobody will read.
  // pool_.reset() runs every queued rebuild task while the manager is
  // still alive, so its later member destruction quiesces trivially.
  if (adaptive_) adaptive_->stop();
  pool_.reset();  // drains dispatched batches, joins workers
}

template <typename Sym>
Submission<Sym> CompressionService<Sym>::submit(std::span<const Sym> data,
                                                const PipelineConfig& pipeline,
                                                const SubmitOptions& opts) {
  // Copy: async lifetime safety — the caller's buffer may be reused
  // immediately. The rvalue overload below skips this for owned buffers.
  return submit(std::vector<Sym>(data.begin(), data.end()), pipeline, opts);
}

template <typename Sym>
Submission<Sym> CompressionService<Sym>::submit(std::vector<Sym>&& data,
                                                const PipelineConfig& pipeline,
                                                const SubmitOptions& opts) {
  if (pipeline.nbins == 0) {
    throw std::invalid_argument("CompressionService: nbins must be positive");
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  Request r;
  r.data = std::move(data);
  r.pipeline = pipeline;
  r.priority = opts.priority;
  r.deadline = opts.deadline;
  r.retry_budget = cfg_.retry.max_attempts;
  r.handle = std::make_shared<detail::HandleState>();
  // Arm the in-flight token before the request is shared: the stage
  // kernels poll it per chunk, so the deadline keeps biting even after
  // encode begins (core/cancel.hpp).
  if (!opts.deadline.unlimited()) {
    r.handle->token.arm_deadline(opts.deadline.at, *clock_);
  }
  RequestHandle handle(r.handle);
  std::future<CompressResult<Sym>> fut = r.promise.get_future();

  // Dead on arrival: resolve without touching the queue.
  if (opts.deadline.expired(clock_->now())) {
    r.handle->try_transition(ReqPhase::kPending, ReqPhase::kResolved);
    r.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
    reg.counter_add("svc.requests_submitted");
    reg.counter_add("svc.deadline_exceeded");
    return Submission<Sym>{std::move(fut), std::move(handle)};
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::logic_error("CompressionService: submit() after shutdown");
    }
    if (outstanding_ >= cfg_.queue_capacity) {
      if (cfg_.overflow == OverflowPolicy::kReject) {
        reg.counter_add("svc.rejected_requests");
        throw QueueFullError();
      }
      reg.counter_add("svc.backpressure_events");
      const auto has_space = [&] {
        return stopping_ || outstanding_ < cfg_.queue_capacity;
      };
      ++waiting_submitters_;
      bool admitted = true;
      if (r.deadline.unlimited()) {
        space_cv_.wait(lock, has_space);
      } else {
        // Predicate loop over the injected clock's wait primitive —
        // equivalent to cv.wait_until(pred) on the real clock, and
        // virtual-clock-driven in tests.
        while (!has_space()) {
          if (clock_->wait_until(space_cv_, lock, r.deadline.at) ==
                  std::cv_status::timeout &&
              !has_space()) {
            admitted = false;
            break;
          }
        }
      }
      --waiting_submitters_;
      if (stopping_) {
        drain_cv_.notify_all();  // the destructor waits for us to leave
        throw std::logic_error("CompressionService: submit() after shutdown");
      }
      if (!admitted) {
        // Deadline passed while blocked at admission: the future fails
        // instead of the caller blocking past its budget.
        lock.unlock();
        r.handle->try_transition(ReqPhase::kPending, ReqPhase::kResolved);
        r.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
        reg.counter_add("svc.requests_submitted");
        reg.counter_add("svc.deadline_exceeded");
        return Submission<Sym>{std::move(fut), std::move(handle)};
      }
    }
    ++outstanding_;
    r.enqueue_us = obs::TraceRecorder::global().now_us();
    pending_.push_back(std::move(r));
    reg.gauge_set("svc.queue_depth", static_cast<double>(outstanding_));
  }
  reg.counter_add("svc.requests_submitted");
  obs::TraceRecorder::global().instant("svc.enqueue", "svc");
  sched_cv_.notify_one();
  return Submission<Sym>{std::move(fut), std::move(handle)};
}

template <typename Sym>
std::future<CompressResult<Sym>> CompressionService<Sym>::submit(
    std::span<const Sym> data, const PipelineConfig& pipeline,
    Priority priority) {
  SubmitOptions opts;
  opts.priority = priority;
  return submit(data, pipeline, opts).result;
}

template <typename Sym>
LossySubmission CompressionService<Sym>::submit_lossy(
    std::vector<float>&& field, data::Dims dims, const lossy::FusedConfig& cfg,
    const SubmitOptions& opts) {
  // The quantizer alphabet must match this instance's symbol width — the
  // fused path Huffman-codes the residual over Sym, so a u8 service can
  // only serve nbins <= 256 and a u16 service only wider alphabets. The
  // RPC front end routes on exactly this predicate.
  if ((cfg.nbins <= 256) != (sizeof(Sym) == 1)) {
    throw std::invalid_argument(
        "CompressionService: lossy nbins does not match this service's "
        "symbol width (nbins <= 256 belongs on the u8 instance)");
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  LossyJob j;
  j.field = std::move(field);
  j.dims = dims;
  j.cfg = cfg;
  j.deadline = opts.deadline;
  j.handle = std::make_shared<detail::HandleState>();
  if (!opts.deadline.unlimited()) {
    j.handle->token.arm_deadline(opts.deadline.at, *clock_);
  }
  RequestHandle handle(j.handle);
  std::future<LossyResult> fut = j.promise.get_future();

  // Dead on arrival: resolve without touching the queue. Counts as a
  // request AND a failure so lossy.requests == completed + failed holds.
  if (opts.deadline.expired(clock_->now())) {
    j.handle->try_transition(ReqPhase::kPending, ReqPhase::kResolved);
    j.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
    reg.counter_add("lossy.requests");
    reg.counter_add("lossy.failed");
    reg.counter_add("svc.deadline_exceeded");
    return LossySubmission{std::move(fut), std::move(handle)};
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::logic_error("CompressionService: submit() after shutdown");
    }
    if (outstanding_ >= cfg_.queue_capacity) {
      if (cfg_.overflow == OverflowPolicy::kReject) {
        // Rejected before admission: svc.rejected_requests only — never a
        // lossy.requests tick (the caller's throw IS the resolution).
        reg.counter_add("svc.rejected_requests");
        throw QueueFullError();
      }
      reg.counter_add("svc.backpressure_events");
      const auto has_space = [&] {
        return stopping_ || outstanding_ < cfg_.queue_capacity;
      };
      ++waiting_submitters_;
      bool admitted = true;
      if (j.deadline.unlimited()) {
        space_cv_.wait(lock, has_space);
      } else {
        while (!has_space()) {
          if (clock_->wait_until(space_cv_, lock, j.deadline.at) ==
                  std::cv_status::timeout &&
              !has_space()) {
            admitted = false;
            break;
          }
        }
      }
      --waiting_submitters_;
      if (stopping_) {
        drain_cv_.notify_all();  // the destructor waits for us to leave
        throw std::logic_error("CompressionService: submit() after shutdown");
      }
      if (!admitted) {
        lock.unlock();
        j.handle->try_transition(ReqPhase::kPending, ReqPhase::kResolved);
        j.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
        reg.counter_add("lossy.requests");
        reg.counter_add("lossy.failed");
        reg.counter_add("svc.deadline_exceeded");
        return LossySubmission{std::move(fut), std::move(handle)};
      }
    }
    ++outstanding_;
    j.enqueue_us = obs::TraceRecorder::global().now_us();
    reg.gauge_set("svc.queue_depth", static_cast<double>(outstanding_));
  }
  reg.counter_add("lossy.requests");
  obs::TraceRecorder::global().instant("svc.lossy_enqueue", "svc");

  // Solo dispatch, straight to the pool — a float field amortizes its own
  // codebook build, so the batching scheduler has nothing to add. The
  // shared_ptr box gives std::function the copyable callable it needs; the
  // inline fallback preserves the resolve-always invariant when the
  // executor refuses the handoff (matching dispatch()'s last resort).
  auto boxed = std::make_shared<LossyJob>(std::move(j));
  try {
    pool_->submit([this, boxed] { run_lossy(*boxed); });
  } catch (...) {
    reg.counter_add("svc.inline_dispatches");
    run_lossy(*boxed);
  }
  return LossySubmission{std::move(fut), std::move(handle)};
}

template <typename Sym>
void CompressionService<Sym>::prune_pending(std::vector<Request>& expired,
                                            std::vector<Request>& cancelled) {
  const auto now = clock_->now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->handle->load() == ReqPhase::kCancelled) {
      cancelled.push_back(std::move(*it));
      it = pending_.erase(it);
    } else if (it->deadline.expired(now) &&
               it->handle->try_transition(ReqPhase::kPending,
                                          ReqPhase::kResolved)) {
      expired.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

template <typename Sym>
void CompressionService<Sym>::sweep_batch(std::vector<Request>& batch,
                                          std::size_t& total_syms,
                                          std::vector<Request>& expired,
                                          std::vector<Request>& cancelled) {
  // By value: push_back below may reallocate `batch` and a reference into
  // it would dangle.
  const PipelineConfig want = batch.front().pipeline;
  const auto now = clock_->now();
  // Deadline-aware admission: a member whose remaining budget is below
  // the expected service time cannot finish — fail it now instead of
  // spending batch work on it (svc.triage_skipped).
  const double expected = expected_service_seconds();
  for (auto it = pending_.begin();
       it != pending_.end() && batch.size() < cfg_.batch_max_requests;) {
    if (it->handle->load() == ReqPhase::kCancelled) {
      cancelled.push_back(std::move(*it));
      it = pending_.erase(it);
      continue;
    }
    if (!(it->pipeline == want) ||
        it->data.size() > cfg_.batch_eligible_symbols ||
        total_syms + it->data.size() > cfg_.batch_max_symbols) {
      ++it;
      continue;
    }
    if (it->deadline.expired(now) ||
        it->deadline.remaining_seconds(now) < expected) {
      if (it->handle->try_transition(ReqPhase::kPending, ReqPhase::kResolved)) {
        if (!it->deadline.expired(now)) {
          obs::MetricsRegistry::global().counter_add("svc.triage_skipped");
        }
        expired.push_back(std::move(*it));
      } else {
        cancelled.push_back(std::move(*it));
      }
      it = pending_.erase(it);
      continue;
    }
    if (!it->handle->try_transition(ReqPhase::kPending,
                                    ReqPhase::kDispatched)) {
      cancelled.push_back(std::move(*it));  // cancel() won the race
      it = pending_.erase(it);
      continue;
    }
    total_syms += it->data.size();
    batch.push_back(std::move(*it));
    it = pending_.erase(it);
  }
}

template <typename Sym>
void CompressionService<Sym>::resolve_doomed(std::vector<Request>& expired,
                                             std::vector<Request>& cancelled) {
  for (Request& r : expired) {
    fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                 "svc.deadline_exceeded");
  }
  expired.clear();
  for (Request& r : cancelled) {
    fail_request(r, std::make_exception_ptr(CancelledError{}),
                 "svc.cancelled_requests");
  }
  cancelled.clear();
}

template <typename Sym>
void CompressionService<Sym>::fail_request(Request& r, std::exception_ptr err,
                                           const char* counter) {
  r.promise.set_exception(std::move(err));
  obs::MetricsRegistry::global().counter_add(counter);
  finish_one();
}

template <typename Sym>
void CompressionService<Sym>::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<Request> expired, cancelled;
  for (;;) {
    sched_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
    prune_pending(expired, cancelled);

    // Leader: oldest request of the highest priority present that the
    // scheduler can still claim (cancel() may win the race).
    std::vector<Request> batch;
    std::size_t total_syms = 0;
    while (!pending_.empty()) {
      auto lead = pending_.begin();
      for (auto it = std::next(lead); it != pending_.end(); ++it) {
        if (static_cast<int>(it->priority) >
            static_cast<int>(lead->priority)) {
          lead = it;
        }
      }
      if (lead->handle->try_transition(ReqPhase::kPending,
                                       ReqPhase::kDispatched)) {
        total_syms = lead->data.size();
        batch.push_back(std::move(*lead));
        pending_.erase(lead);
        break;
      }
      cancelled.push_back(std::move(*lead));
      pending_.erase(lead);
    }

    if (batch.empty()) {
      if (!expired.empty() || !cancelled.empty()) {
        lock.unlock();
        resolve_doomed(expired, cancelled);
        lock.lock();
        continue;
      }
      if (stopping_) return;
      continue;
    }

    const bool batchable = total_syms <= cfg_.batch_eligible_symbols &&
                           cfg_.batch_max_requests > 1 &&
                           cfg_.batch_window_seconds > 0;
    if (batchable) {
      const auto window_end =
          clock_->now() + util::Clock::dur(cfg_.batch_window_seconds);
      for (;;) {
        sweep_batch(batch, total_syms, expired, cancelled);
        if (batch.size() >= cfg_.batch_max_requests) break;
        if (stopping_) {  // shutdown: flush without lingering
          sweep_batch(batch, total_syms, expired, cancelled);
          break;
        }
        if (clock_->wait_until(sched_cv_, lock, window_end) ==
            std::cv_status::timeout) {
          sweep_batch(batch, total_syms, expired, cancelled);
          break;
        }
      }
    }
    lock.unlock();
    resolve_doomed(expired, cancelled);
    dispatch(std::move(batch));
    lock.lock();
  }
}

template <typename Sym>
void CompressionService<Sym>::dispatch(std::vector<Request> batch) {
  // std::function needs a copyable callable; promises are move-only, so
  // the batch rides behind a shared_ptr.
  auto boxed = std::make_shared<std::vector<Request>>(std::move(batch));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  Xoshiro256 rng(rng_salt_.fetch_add(1, std::memory_order_relaxed) *
                     0x9e3779b97f4a7c15ull +
                 1);
  for (int attempt = 0;; ++attempt) {
    try {
      pool_->submit([this, boxed] { run_batch(std::move(*boxed)); });
      return;
    } catch (...) {
      if (!is_transient(std::current_exception()) ||
          attempt >= cfg_.retry.max_attempts) {
        break;
      }
      // Executor handoff happens before any member's stage work starts, so
      // this bound is per batch, not drawn from the members' budgets.
      reg.counter_add("svc.retries");
      util::backoff_sleep(cfg_.retry.backoff, attempt, rng, *clock_);
    }
  }
  // Executor unavailable even after retries: run the batch inline on the
  // scheduler thread. Throughput degrades but every future resolves.
  reg.counter_add("svc.inline_dispatches");
  run_batch(std::move(*boxed));
}

template <typename Sym>
void CompressionService<Sym>::run_batch(std::vector<Request> batch) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  obs::TraceSpan batch_span("svc.batch", "svc");
  util::FaultInjector& faults = util::FaultInjector::global();
  const double batch_start_us = rec.now_us();
  Xoshiro256 rng(rng_salt_.fetch_add(1, std::memory_order_relaxed) *
                     0xbf58476d1ce4e5b9ull +
                 1);

  // Members whose deadline passed while the batch waited for a worker are
  // failed before any work is spent on them.
  {
    const auto now = clock_->now();
    std::vector<Request> live;
    live.reserve(batch.size());
    for (Request& r : batch) {
      if (r.deadline.expired(now)) {
        fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                     "svc.deadline_exceeded");
      } else {
        live.push_back(std::move(r));
      }
    }
    batch = std::move(live);
  }
  if (batch.empty()) return;

  // Cancel scope for the shared stages. A solo batch polls its member's
  // own token, so a post-dispatch cancel() or the member's deadline aborts
  // the histogram/codebook mid-kernel. A multi-member batch arms a
  // batch-local token with the *latest* member deadline (the shared work
  // serves everyone; earlier expiries are caught at the per-member encode
  // boundary below). `solo_state` pins the handle so the token outlives
  // any member failed during the retry sweep.
  CancelToken batch_token;
  std::shared_ptr<detail::HandleState> solo_state;
  const CancelToken* shared_cancel = &batch_token;
  if (batch.size() == 1) {
    solo_state = batch.front().handle;
    shared_cancel = &solo_state->token;
  } else {
    auto latest = Deadline::clock::time_point::min();
    bool all_limited = true;
    for (const Request& r : batch) {
      if (r.deadline.unlimited()) {
        all_limited = false;
        break;
      }
      latest = std::max(latest, r.deadline.at);
    }
    if (all_limited) batch_token.arm_deadline(latest, *clock_);
  }

  // By value: the deadline triage in the retry loop reassigns `batch`, and
  // a reference into the old vector would dangle (the same trap the
  // scheduler's sweep_batch documents).
  const PipelineConfig cfg = batch.front().pipeline;
  reg.counter_add("svc.batches");
  if (batch.size() > 1) reg.counter_add("svc.coalesced_requests", batch.size());
  for (const Request& r : batch) {
    reg.histo_record("svc.queue_wait_seconds",
                     (batch_start_us - r.enqueue_us) / 1e6);
  }

  // Shared stages: histogram pooling, cache lookup, codebook build. A
  // transient failure here retries the whole shared phase (with backoff);
  // exhaustion falls through to the per-request degraded path.
  std::shared_ptr<const Codebook> cb;
  std::vector<u64> freq;
  bool cache_hit = false;
  std::exception_ptr shared_err;
  for (int attempt = 0;; ++attempt) {
    try {
      Timer t;
      freq.assign(cfg.nbins, 0);
      for (const Request& r : batch) {
        accumulate_histogram<Sym>(r.data, cfg, freq, shared_cancel);
      }
      reg.stage_add("svc.histogram", t.seconds());

      t.reset();
      cb = nullptr;
      cache_hit = false;
      Fingerprint fp{};
      if (cfg_.enable_cache) {
        fp = fingerprint_histogram(freq, cache_seed(cfg));
        if (std::shared_ptr<const Codebook> hit = cache_.find(fp)) {
          if (CodebookCache::covers(*hit, freq)) {
            cb = std::move(hit);
            cache_hit = true;
            reg.counter_add("svc.cache_hits");
          } else {
            // Fingerprint aliased onto a codebook missing some of this
            // batch's symbols — rebuild; the fresh book replaces the entry.
            reg.counter_add("svc.cache_guard_rejects");
          }
        } else {
          reg.counter_add("svc.cache_misses");
        }
        if (!cb) {
          faults.maybe_throw("svc.codebook");
          cb = std::make_shared<const Codebook>(
              build_codebook(freq, cfg, nullptr, shared_cancel));
          try {
            cache_.insert(fp, cb);
          } catch (...) {
            // An insert failure loses only the cache write, never the
            // batch: keep the freshly built codebook, don't retry, don't
            // degrade — future batches just miss and rebuild.
            reg.counter_add("svc.cache_insert_dropped");
          }
        }
      } else {
        faults.maybe_throw("svc.codebook");
        cb = std::make_shared<const Codebook>(
            build_codebook(freq, cfg, nullptr, shared_cancel));
      }
      reg.stage_add("svc.codebook", t.seconds());
      // Feed the adaptive lifecycle manager (never throws, never fails
      // the batch). The degraded per-request fallback below deliberately
      // does not observe: its serial books are built outside the cache's
      // fingerprint discipline.
      if (adaptive_ && cfg_.enable_cache) {
        adaptive_->observe(fp, freq, cb, cfg, cache_hit);
      }
      shared_err = nullptr;
      break;
    } catch (...) {
      shared_err = std::current_exception();
      // A poll-point abort outranks transient classification: no retry.
      if (abandon_kind(shared_err) != AbandonKind::kNone) break;
      // The retry budget is per request, pooled across the shared phase:
      // retry while any live member still has budget, and charge every
      // live member for the round (they all consume the repeated work).
      int budget = 0;
      for (const Request& r : batch) {
        budget = std::max(budget, r.retry_budget);
      }
      if (!is_transient(shared_err) || budget <= 0) break;
      for (Request& r : batch) {
        if (r.retry_budget > 0) --r.retry_budget;
      }
      reg.counter_add("svc.retries");
      rec.instant("svc.retry", "svc");
      util::backoff_sleep(cfg_.retry.backoff, attempt, rng, *clock_);
      // Deadlines keep ticking while we back off.
      const auto now = clock_->now();
      std::vector<Request> live;
      live.reserve(batch.size());
      for (Request& r : batch) {
        if (r.deadline.expired(now)) {
          fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                       "svc.deadline_exceeded");
        } else {
          live.push_back(std::move(r));
        }
      }
      batch = std::move(live);
      if (batch.empty()) return;
    }
  }

  if (shared_err) {
    const AbandonKind kind = abandon_kind(shared_err);
    if (kind != AbandonKind::kNone) {
      // A stage kernel abandoned the shared work at a poll point. Fail
      // every member with the typed error — no retry, no degraded
      // fallback: the request asked to stop (or ran out of time), and
      // more work is exactly what it doesn't want.
      for (Request& r : batch) {
        reg.counter_add("svc.cancelled_midstage");
        if (kind == AbandonKind::kCancelled) {
          fail_request(r, std::make_exception_ptr(CancelledError{}),
                       "svc.cancelled_requests");
        } else {
          fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                       "svc.deadline_exceeded");
        }
      }
      return;
    }
    // Batched path is down for this batch: rescue each member through the
    // solo serial pipeline, or fail it with the shared error.
    for (Request& r : batch) {
      if (cfg_.degraded_fallback) {
        run_degraded(r, batch_start_us);
      } else {
        fail_request(r, shared_err, "svc.requests_failed");
      }
    }
    return;
  }

  // Per-request encode: a transient failure retries while the request's
  // remaining budget allows, then degrades; a poll-point abort fails the
  // future with the typed error immediately.
  for (Request& r : batch) {
    // Boundary re-check: a member whose own (earlier) deadline passed
    // during the shared phase fails here, before its encode starts — it
    // never reached a kernel, so it doesn't count as a mid-stage abort.
    if (r.deadline.expired(clock_->now())) {
      fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                   "svc.deadline_exceeded");
      continue;
    }
    CompressResult<Sym> res;
    std::exception_ptr err;
    for (int attempt = 0;; ++attempt) {
      try {
        Timer t;
        faults.maybe_throw("svc.encode");
        res.codebook = cb;
        res.stream =
            encode_with_codebook<Sym>(std::span<const Sym>(r.data), *cb, cfg,
                                      freq, nullptr, &r.handle->token);
        res.cache_hit = cache_hit;
        res.batch_requests = batch.size();
        res.encode_seconds = t.seconds();
        res.queue_seconds = (batch_start_us - r.enqueue_us) / 1e6;
        err = nullptr;
        break;
      } catch (...) {
        err = std::current_exception();
        if (abandon_kind(err) != AbandonKind::kNone) break;
        if (!is_transient(err) || r.retry_budget <= 0) break;
        --r.retry_budget;
        reg.counter_add("svc.retries");
        rec.instant("svc.retry", "svc");
        util::backoff_sleep(cfg_.retry.backoff, attempt, rng, *clock_);
      }
    }
    if (err) {
      const AbandonKind kind = abandon_kind(err);
      if (kind != AbandonKind::kNone) {
        reg.counter_add("svc.cancelled_midstage");
        if (kind == AbandonKind::kCancelled) {
          fail_request(r, std::make_exception_ptr(CancelledError{}),
                       "svc.cancelled_requests");
        } else {
          fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                       "svc.deadline_exceeded");
        }
        continue;
      }
      if (cfg_.degraded_fallback) {
        run_degraded(r, batch_start_us);
      } else {
        fail_request(r, err, "svc.requests_failed");
      }
      continue;
    }
    reg.stage_add("svc.encode", res.encode_seconds);
    reg.counter_add("svc.requests_completed");
    reg.counter_add("svc.input_bytes", r.data.size() * sizeof(Sym));
    reg.counter_add("svc.output_bytes", res.stream.stored_bytes());
    const double done_us = rec.now_us();
    reg.histo_record("svc.request_seconds", (done_us - r.enqueue_us) / 1e6);
    // Lifecycle span: admission → completion, anchored at the enqueue
    // timestamp (crosses threads, so TraceSpan's RAII doesn't fit).
    rec.complete("svc.request", "svc", r.enqueue_us, done_us - r.enqueue_us);
    r.promise.set_value(std::move(res));
    finish_one();
  }
}

template <typename Sym>
void CompressionService<Sym>::run_degraded(Request& r,
                                           double batch_start_us) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  obs::TraceSpan span("svc.degraded", "svc");
  reg.counter_add("svc.degraded");
  // The rescue inherits the request's remaining budget: a member whose
  // deadline already passed (or that was cancelled) while the batched path
  // failed gets no solo work at all, and the solo stages below poll the
  // member's own token so a rescue cannot overshoot mid-stage either.
  if (r.deadline.expired(clock_->now())) {
    fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                 "svc.deadline_exceeded");
    return;
  }
  try {
    // The solo serial path shares nothing with the batched machinery: its
    // own histogram, a serial-tree codebook, the serial encoder — and no
    // fault-injection sites, making it a true last resort.
    PipelineConfig solo = r.pipeline;
    solo.histogram = HistogramKind::kSerial;
    solo.codebook = CodebookKind::kSerialTree;
    solo.encoder = EncoderKind::kSerial;
    const CancelToken* token = &r.handle->token;
    Timer t;
    const std::vector<u64> freq =
        histogram_serial<Sym>(r.data, solo.nbins, token);
    auto cb = std::make_shared<const Codebook>(
        build_codebook(freq, solo, nullptr, token));
    CompressResult<Sym> res;
    res.codebook = cb;
    res.stream = encode_with_codebook<Sym>(std::span<const Sym>(r.data), *cb,
                                           solo, freq, nullptr, token);
    res.degraded = true;
    res.encode_seconds = t.seconds();
    res.queue_seconds = (batch_start_us - r.enqueue_us) / 1e6;
    reg.counter_add("svc.requests_completed");
    reg.counter_add("svc.input_bytes", r.data.size() * sizeof(Sym));
    reg.counter_add("svc.output_bytes", res.stream.stored_bytes());
    const double done_us = rec.now_us();
    reg.histo_record("svc.request_seconds", (done_us - r.enqueue_us) / 1e6);
    rec.complete("svc.request", "svc", r.enqueue_us, done_us - r.enqueue_us);
    r.promise.set_value(std::move(res));
    finish_one();
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    const AbandonKind kind = abandon_kind(err);
    if (kind == AbandonKind::kCancelled) {
      reg.counter_add("svc.cancelled_midstage");
      fail_request(r, std::make_exception_ptr(CancelledError{}),
                   "svc.cancelled_requests");
    } else if (kind == AbandonKind::kDeadline) {
      reg.counter_add("svc.cancelled_midstage");
      fail_request(r, std::make_exception_ptr(DeadlineExceeded{}),
                   "svc.deadline_exceeded");
    } else {
      fail_request(r, err, "svc.requests_failed");
    }
  }
}

template <typename Sym>
void CompressionService<Sym>::run_lossy(LossyJob& job) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  obs::TraceSpan span("svc.lossy", "svc");
  const double start_us = rec.now_us();
  reg.histo_record("svc.queue_wait_seconds",
                   (start_us - job.enqueue_us) / 1e6);

  // cancel() wins outright while the job waited for a worker.
  if (!job.handle->try_transition(ReqPhase::kPending, ReqPhase::kDispatched)) {
    job.promise.set_exception(std::make_exception_ptr(CancelledError{}));
    reg.counter_add("lossy.failed");
    reg.counter_add("svc.cancelled_requests");
    finish_one();
    return;
  }
  // Deadline boundary re-check before any quantization work is spent.
  if (job.deadline.expired(clock_->now())) {
    job.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
    reg.counter_add("lossy.failed");
    reg.counter_add("svc.deadline_exceeded");
    finish_one();
    return;
  }

  // Splice the service's sharded-LRU cache into the fused path. The hooks
  // run synchronously inside compress_field_fused, so capturing locals by
  // reference is safe. Keying mirrors run_batch: the residual histogram's
  // fingerprint under cache_seed(pc), guarded by covers() so an aliased
  // hit can never drop symbols.
  bool cache_hit = false;
  lossy::CodebookSource books;
  if (cfg_.enable_cache) {
    books.find = [this, &reg, &cache_hit](std::span<const u64> freq,
                                          const PipelineConfig& pc)
        -> std::shared_ptr<const Codebook> {
      const Fingerprint fp = fingerprint_histogram(freq, cache_seed(pc));
      if (std::shared_ptr<const Codebook> hit = cache_.find(fp)) {
        if (CodebookCache::covers(*hit, freq)) {
          cache_hit = true;
          reg.counter_add("lossy.cache_hits");
          return hit;
        }
        reg.counter_add("svc.cache_guard_rejects");
      }
      reg.counter_add("lossy.cache_misses");
      return nullptr;
    };
    books.store = [this, &reg](std::span<const u64> freq,
                               const PipelineConfig& pc,
                               const std::shared_ptr<const Codebook>& cb) {
      try {
        cache_.insert(fingerprint_histogram(freq, cache_seed(pc)), cb);
      } catch (...) {
        reg.counter_add("svc.cache_insert_dropped");
      }
    };
  }

  // One attempt, no retry tier: the fused pass has no batch machinery to
  // fall back from, and re-running a whole-field quantization on a
  // transient blip costs more than letting the caller decide.
  try {
    LossyResult res;
    res.container = lossy::compress_field_fused(
        job.field, job.dims, job.cfg, &res.report,
        cfg_.enable_cache ? &books : nullptr, &job.handle->token);
    res.cache_hit = cache_hit;
    res.queue_seconds = (start_us - job.enqueue_us) / 1e6;
    reg.counter_add("lossy.completed");
    reg.counter_add("svc.input_bytes", job.field.size() * sizeof(float));
    reg.counter_add("svc.output_bytes", res.container.size());
    const double done_us = rec.now_us();
    reg.histo_record("svc.request_seconds", (done_us - job.enqueue_us) / 1e6);
    rec.complete("svc.request", "svc", job.enqueue_us,
                 done_us - job.enqueue_us);
    job.promise.set_value(std::move(res));
    finish_one();
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    const AbandonKind kind = abandon_kind(err);
    reg.counter_add("lossy.failed");
    if (kind == AbandonKind::kCancelled) {
      reg.counter_add("svc.cancelled_midstage");
      job.promise.set_exception(std::make_exception_ptr(CancelledError{}));
      reg.counter_add("svc.cancelled_requests");
    } else if (kind == AbandonKind::kDeadline) {
      reg.counter_add("svc.cancelled_midstage");
      job.promise.set_exception(std::make_exception_ptr(DeadlineExceeded{}));
      reg.counter_add("svc.deadline_exceeded");
    } else {
      job.promise.set_exception(err);
      reg.counter_add("svc.requests_failed");
    }
    finish_one();
  }
}

template <typename Sym>
double CompressionService<Sym>::expected_service_seconds() const {
  // Triage estimate: a quantile of the observed end-to-end latency
  // (svc.request_seconds). Until enough samples accumulate the estimate
  // is 0, which disables triage — a cold service never sheds load on a
  // guess.
  if (!cfg_.triage.enabled) return 0.0;
  const obs::HistoStat stat =
      obs::MetricsRegistry::global().histo("svc.request_seconds");
  if (stat.count < cfg_.triage.min_samples) return 0.0;
  return stat.quantile(cfg_.triage.quantile);
}

template <typename Sym>
void CompressionService<Sym>::finish_one() {
  std::size_t now_outstanding;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
    now_outstanding = outstanding_;
  }
  obs::MetricsRegistry::global().gauge_set(
      "svc.queue_depth", static_cast<double>(now_outstanding));
  space_cv_.notify_one();
  if (now_outstanding == 0) drain_cv_.notify_all();
}

template <typename Sym>
void CompressionService<Sym>::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

template <typename Sym>
std::size_t CompressionService<Sym>::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

template struct CompressResult<u8>;
template struct CompressResult<u16>;
template class CompressionService<u8>;
template class CompressionService<u16>;
template std::vector<u8> decompress<u8>(const CompressResult<u8>&, int,
                                        const CancelToken*);
template std::vector<u16> decompress<u16>(const CompressResult<u16>&, int,
                                          const CancelToken*);

}  // namespace parhuff::svc
