#pragma once
// Sharded LRU cache of frozen canonical codebooks, keyed by histogram
// fingerprint (svc/fingerprint.hpp). Repeated small-request traffic over
// the same dataset pays the codebook build (the pipeline's most
// latency-sensitive stage for small inputs) once instead of per request.
//
// Correctness model: the fingerprint is deliberately coarse, so a hit only
// proves the distributions are *similar*. Before a cached codebook is used
// to encode, callers must check covers() — every symbol the request
// actually contains must have a codeword (len > 0). A codebook that fails
// the guard is unusable for that request (the encoders throw on absent
// symbols) and the caller rebuilds; the entry stays cached for requests it
// does cover. A covering codebook is always *correct* (prefix codes decode
// exactly), merely possibly suboptimal in ratio — that is the trade the
// cache makes.
//
// Concurrency: shards partition the key space by fingerprint hash; each
// shard is an independently locked LRU list + index, so concurrent batch
// workers rarely contend. Values are shared_ptr<const Codebook>: eviction
// never invalidates a codebook a worker is still encoding against.

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/canonical.hpp"
#include "svc/fingerprint.hpp"
#include "util/types.hpp"

namespace parhuff::svc {

// Namespace-scope (not nested) so it is complete where the constructor's
// default argument needs it; CodebookCache::Config aliases it.
struct CacheConfig {
  std::size_t shards = 8;
  std::size_t capacity_per_shard = 32;
};

class CodebookCache {
 public:
  using Config = CacheConfig;

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
  };

  explicit CodebookCache(Config cfg = {});

  /// Lookup; a hit moves the entry to MRU. Returns nullptr on miss.
  [[nodiscard]] std::shared_ptr<const Codebook> find(const Fingerprint& fp);

  /// Insert (or replace) the entry for `fp`, evicting the shard's LRU
  /// entry when at capacity.
  void insert(const Fingerprint& fp, std::shared_ptr<const Codebook> cb);

  /// The correctness guard: true iff every symbol with freq > 0 has a
  /// codeword in `cb`. Requires freq.size() <= cb.nbins slots of coverage.
  [[nodiscard]] static bool covers(const Codebook& cb,
                                   std::span<const u64> freq);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    Fingerprint fp;
    std::shared_ptr<const Codebook> cb;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = MRU
    std::unordered_map<u64, std::list<Entry>::iterator> index;  // by fp.hash
  };

  Shard& shard_for(const Fingerprint& fp) {
    return *shards_[fp.hash % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t cap_;
  std::atomic<u64> hits_{0};
  std::atomic<u64> misses_{0};
  std::atomic<u64> insertions_{0};
  std::atomic<u64> evictions_{0};
};

}  // namespace parhuff::svc
