#pragma once
// Histogram fingerprinting for the codebook cache (svc/codebook_cache.hpp).
//
// Two requests whose symbol distributions have the *same shape* compress
// equally well under one codebook, even when the raw counts differ (a 4 KiB
// slice and a 64 KiB slice of the same dataset). The fingerprint therefore
// hashes the histogram's normalized shape, not its counts: each bin's share
// of the total is bucketed to its log2 magnitude, and the bucket sequence
// is FNV-1a hashed. Coarse on purpose — nearby distributions collide into
// one cache entry, which is the point of a codebook cache.
//
// Bucket 0 is reserved for empty bins, so any difference in *support*
// (which symbols appear at all) always changes the fingerprint. That makes
// support the only correctness-relevant property the fingerprint can still
// alias on (hash collisions, deliberate coarseness) — which is why the
// cache pairs every hit with the CodebookCache::covers() guard before a
// cached codebook is ever used to encode.

#include <bit>
#include <cstddef>
#include <span>

#include "util/types.hpp"

namespace parhuff::svc {

/// A histogram's identity in the codebook cache: shape hash + alphabet
/// size. Two fingerprints compare equal only when both match.
struct Fingerprint {
  u64 hash = 0;
  u32 nbins = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Fingerprint `freq` as described above. `seed` folds cache-relevant
/// config (codebook builder kind — see svc::cache_seed) into the hash so
/// configs that would build different codebooks never share an entry.
[[nodiscard]] inline Fingerprint fingerprint_histogram(
    std::span<const u64> freq, u64 seed = 0) {
  u64 total = 0;
  for (const u64 f : freq) total += f;

  u64 h = 0xcbf29ce484222325ull;
  const auto mix = [&h](u8 b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<u8>(seed >> (8 * i)));

  for (const u64 f : freq) {
    u8 bucket = 0;  // empty bin: support differences always change the hash
    if (f > 0 && total > 0) {
      // Share of total scaled to 2^20 (exact integer math), bucketed by
      // log2: each bucket spans a 2x band of share, ~21 bands total.
      const u64 scaled = static_cast<u64>(
          (static_cast<unsigned __int128>(f) << 20) / total);
      bucket = static_cast<u8>(1 + std::bit_width(scaled));
    }
    mix(bucket);
  }
  return Fingerprint{h, static_cast<u32>(freq.size())};
}

}  // namespace parhuff::svc
