#pragma once
// Umbrella header: the public API surface of parhuff.
//
// Typical use needs only:
//   #include <parhuff.hpp>
//   auto blob  = parhuff::compress<parhuff::u8>(bytes, cfg, &report);
//   auto bytes = parhuff::serialize(blob);
//   auto back  = parhuff::decompress(parhuff::deserialize<parhuff::u8>(bytes));
//
// Finer-grained entry points (individual encoders/decoders, the SIMT
// substrate, dataset generators, performance models) are exported too;
// see README.md for the architecture map.

#include "core/canonical.hpp"      // Codebook, canonize_from_lengths
#include "core/decode.hpp"         // decode_stream, decode_range
#include "core/decode_gaparray.hpp"  // annotate_gaps, decode_gaparray
#include "core/decode_selfsync.hpp"
#include "core/decode_simt.hpp"
#include "core/decode_table.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/encode_simt.hpp"
#include "core/entropy.hpp"
#include "core/format.hpp"         // serialize/deserialize, file helpers
#include "core/histogram.hpp"
#include "core/par_codebook.hpp"
#include "core/pipeline.hpp"       // compress/decompress, PipelineConfig
#include "core/streaming.hpp"
#include "core/tree.hpp"
#include "lossy/lossy.hpp"         // cuSZ-style lossy compressor
#include "obs/metrics.hpp"         // MetricsRegistry, ScopedStageTimer
#include "obs/report.hpp"          // to_json(PipelineReport), MetricsDocument
#include "obs/trace.hpp"           // TraceRecorder, TraceSpan
#include "perf/cpu_model.hpp"
#include "perf/gpu_model.hpp"
#include "simt/spec.hpp"
