#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace parhuff::obs {

namespace {
double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// HistoStat bucket layout: kPerDecade geometric buckets per decade over
// [kLo, kLo * 10^kDecades), clamped at both ends.
constexpr double kHistoLo = 1e-7;
constexpr int kHistoPerDecade = 16;
constexpr int kHistoDecades = 10;
constexpr std::size_t kHistoBuckets =
    static_cast<std::size_t>(kHistoPerDecade * kHistoDecades);

std::size_t histo_bucket(double v) {
  if (!(v > kHistoLo)) return 0;
  const double idx =
      std::log10(v / kHistoLo) * static_cast<double>(kHistoPerDecade);
  if (idx >= static_cast<double>(kHistoBuckets - 1)) return kHistoBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double histo_bucket_mid(std::size_t b) {
  return kHistoLo *
         std::pow(10.0, (static_cast<double>(b) + 0.5) /
                            static_cast<double>(kHistoPerDecade));
}
}  // namespace

double HistoStat::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the sample the quantile falls on (nearest-rank method).
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(clamped_q * static_cast<double>(count))));
  u64 cum = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum += buckets[b];
    if (cum >= rank) return std::clamp(histo_bucket_mid(b), min, max);
  }
  return max;
}

void MetricsRegistry::counter_add(const std::string& name, u64 delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::gauge_max(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  double& g = gauges_[name];
  if (value > g) g = value;
}

void MetricsRegistry::stage_add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  StageStat& s = stages_[name];
  s.seconds += seconds;
  s.count += 1;
}

void MetricsRegistry::histo_record(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  HistoStat& h = histos_[name];
  if (h.buckets.empty()) h.buckets.assign(kHistoBuckets, 0);
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  h.count += 1;
  h.sum += value;
  h.buckets[histo_bucket(value)] += 1;
}

u64 MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

StageStat MetricsRegistry::stage(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stages_.find(name);
  return it == stages_.end() ? StageStat{} : it->second;
}

HistoStat MetricsRegistry::histo(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histos_.find(name);
  return it == histos_.end() ? HistoStat{} : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Copy under the source lock first; never hold both locks at once.
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, StageStat> stages;
  std::map<std::string, HistoStat> histos;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    stages = other.stages_;
    histos = other.histos_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : counters) counters_[k] += v;
  for (const auto& [k, v] : gauges) gauges_[k] = v;
  for (const auto& [k, v] : stages) {
    stages_[k].seconds += v.seconds;
    stages_[k].count += v.count;
  }
  for (const auto& [k, v] : histos) {
    HistoStat& h = histos_[k];
    if (v.count == 0) continue;
    if (h.count == 0) {
      h = v;
      continue;
    }
    h.min = std::min(h.min, v.min);
    h.max = std::max(h.max, v.max);
    h.count += v.count;
    h.sum += v.sum;
    for (std::size_t b = 0; b < h.buckets.size() && b < v.buckets.size(); ++b) {
      h.buckets[b] += v.buckets[b];
    }
  }
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  stages_.clear();
  histos_.clear();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [k, v] : counters_) counters.set(k, v);
  Json gauges = Json::object();
  for (const auto& [k, v] : gauges_) gauges.set(k, v);
  Json stages = Json::object();
  for (const auto& [k, v] : stages_) {
    stages.set(k, Json::object()
                      .set("seconds", v.seconds)
                      .set("count", v.count)
                      .set("mean_seconds", v.mean_seconds()));
  }
  Json histos = Json::object();
  for (const auto& [k, v] : histos_) {
    histos.set(k, Json::object()
                      .set("count", v.count)
                      .set("sum", v.sum)
                      .set("min", v.min)
                      .set("max", v.max)
                      .set("mean", v.mean())
                      .set("p50", v.quantile(0.50))
                      .set("p95", v.quantile(0.95))
                      .set("p99", v.quantile(0.99)));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("stages", std::move(stages))
      .set("histograms", std::move(histos));
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

ScopedStageTimer::ScopedStageTimer(MetricsRegistry& reg, std::string name)
    : reg_(reg), name_(std::move(name)), start_us_(now_us()) {}

ScopedStageTimer::~ScopedStageTimer() {
  reg_.stage_add(name_, (now_us() - start_us_) * 1e-6);
}

}  // namespace parhuff::obs
