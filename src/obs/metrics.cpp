#include "obs/metrics.hpp"

#include <chrono>

namespace parhuff::obs {

namespace {
double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void MetricsRegistry::counter_add(const std::string& name, u64 delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::stage_add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  StageStat& s = stages_[name];
  s.seconds += seconds;
  s.count += 1;
}

u64 MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

StageStat MetricsRegistry::stage(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stages_.find(name);
  return it == stages_.end() ? StageStat{} : it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Copy under the source lock first; never hold both locks at once.
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, StageStat> stages;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    counters = other.counters_;
    gauges = other.gauges_;
    stages = other.stages_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, v] : counters) counters_[k] += v;
  for (const auto& [k, v] : gauges) gauges_[k] = v;
  for (const auto& [k, v] : stages) {
    stages_[k].seconds += v.seconds;
    stages_[k].count += v.count;
  }
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  stages_.clear();
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [k, v] : counters_) counters.set(k, v);
  Json gauges = Json::object();
  for (const auto& [k, v] : gauges_) gauges.set(k, v);
  Json stages = Json::object();
  for (const auto& [k, v] : stages_) {
    stages.set(k, Json::object()
                      .set("seconds", v.seconds)
                      .set("count", v.count)
                      .set("mean_seconds", v.mean_seconds()));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("stages", std::move(stages));
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

ScopedStageTimer::ScopedStageTimer(MetricsRegistry& reg, std::string name)
    : reg_(reg), name_(std::move(name)), start_us_(now_us()) {}

ScopedStageTimer::~ScopedStageTimer() {
  reg_.stage_add(name_, (now_us() - start_us_) * 1e-6);
}

}  // namespace parhuff::obs
