#pragma once
// MetricsRegistry: named counters, gauges and stage timers that the
// pipeline, the streaming compressor and the SIMT launch layer publish
// into. A registry snapshot serializes into the `metrics` section of the
// `parhuff-metrics-v1` document (docs/observability.md).
//
// Counters are monotonically-increasing u64 totals (bytes moved, kernel
// launches); gauges are last-write-wins doubles (compression ratio of the
// most recent run); stage timers accumulate seconds *and* invocation
// counts, so mean-per-call survives aggregation; histograms record full
// value distributions in fixed log-scaled buckets, so the service layer's
// per-request latency p50/p95/p99 survive aggregation too.
//
// All operations are thread-safe; the simulated kernels publish from
// OpenMP worker threads. `global()` is the process-wide instance the
// library layers publish into by default — benches snapshot and `clear()`
// it between runs when they want per-run numbers.

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/types.hpp"

namespace parhuff::obs {

/// A `seconds` total plus how many add() calls produced it.
struct StageStat {
  double seconds = 0;
  u64 count = 0;

  [[nodiscard]] double mean_seconds() const {
    return count == 0 ? 0.0 : seconds / static_cast<double>(count);
  }
};

/// A recorded value distribution: 16 geometric buckets per decade covering
/// [1e-7, 1e3) — for latencies, 100 ns to ~17 min — with out-of-range
/// values clamped to the edge buckets. Quantiles report the geometric
/// midpoint of the covering bucket (≤ ~7.5% relative error from the
/// bucketing), clamped to the observed [min, max].
struct HistoStat {
  u64 count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::vector<u64> buckets;  ///< empty until the first record

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Value at quantile `q` in [0, 1]; 0 when nothing was recorded.
  [[nodiscard]] double quantile(double q) const;
};

class MetricsRegistry {
 public:
  void counter_add(const std::string& name, u64 delta = 1);
  void gauge_set(const std::string& name, double value);
  /// Raise the gauge to `value` if it is below it (high-water marks, e.g.
  /// the RPC server's per-stream buffering bound); no-op otherwise.
  void gauge_max(const std::string& name, double value);
  void stage_add(const std::string& name, double seconds);
  /// Record one sample into the named distribution (see HistoStat).
  void histo_record(const std::string& name, double value);

  [[nodiscard]] u64 counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] StageStat stage(const std::string& name) const;
  [[nodiscard]] HistoStat histo(const std::string& name) const;

  /// Fold another registry's totals into this one (counters, stage timers
  /// and histograms add; gauges overwrite).
  void merge(const MetricsRegistry& other);

  void clear();

  /// Snapshot as {"counters":{...},"gauges":{...},"stages":{name:
  /// {"seconds":s,"count":n,"mean_seconds":m}},"histograms":{name:
  /// {"count":n,"sum":s,"min":…,"max":…,"mean":…,"p50":…,"p95":…,
  /// "p99":…}}}. Keys sort lexicographically, so documents diff cleanly
  /// across runs.
  [[nodiscard]] Json to_json() const;

  /// Process-wide registry the library layers publish into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, StageStat> stages_;
  std::map<std::string, HistoStat> histos_;
};

/// RAII stage timer: adds the scope's wall time to `reg.stage_add(name)`
/// on destruction.
class ScopedStageTimer {
 public:
  ScopedStageTimer(MetricsRegistry& reg, std::string name);
  ~ScopedStageTimer();
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  MetricsRegistry& reg_;
  std::string name_;
  double start_us_;
};

}  // namespace parhuff::obs
