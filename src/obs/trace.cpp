#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

namespace parhuff::obs {

namespace {

double steady_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Set when PARHUFF_TRACE names a file; written at process exit.
std::string& env_trace_path() {
  static std::string path;
  return path;
}

void write_env_trace_at_exit() {
  const std::string& path = env_trace_path();
  if (path.empty()) return;
  try {
    TraceRecorder::global().write(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parhuff: PARHUFF_TRACE write failed: %s\n",
                 e.what());
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_us_(steady_us()) {}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = [] {
    auto* r = new TraceRecorder();
    if (const char* env = std::getenv("PARHUFF_TRACE")) {
      const std::string v = env;
      if (!v.empty() && v != "0" && v != "off" && v != "false") {
        r->enable();
        if (v != "1" && v != "on" && v != "true") {
          env_trace_path() = v;
          std::atexit(write_env_trace_at_exit);
        }
      }
    }
    return r;
  }();
  return *rec;
}

double TraceRecorder::now_us() const { return steady_us() - epoch_us_; }

int TraceRecorder::thread_tid() {
  // Caller holds mu_. Dense small ids render as compact Perfetto tracks.
  const unsigned long long h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (const auto& [hash, id] : tids_) {
    if (hash == h) return id;
  }
  const int id = static_cast<int>(tids_.size()) + 1;
  tids_.emplace_back(h, id);
  return id;
}

void TraceRecorder::complete(std::string name, std::string cat, double ts_us,
                             double dur_us) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::move(name), std::move(cat), ts_us,
                               dur_us, thread_tid(), 'X'});
}

void TraceRecorder::instant(std::string name, std::string cat) {
  if (!enabled()) return;
  const double ts = now_us();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{std::move(name), std::move(cat), ts, 0, thread_tid(), 'i'});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

Json TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json arr = Json::array();
  // Process metadata event so the track has a readable name.
  arr.push(Json::object()
               .set("name", "process_name")
               .set("ph", "M")
               .set("pid", 1)
               .set("tid", 0)
               .set("args", Json::object().set("name", "parhuff")));
  for (const TraceEvent& e : events_) {
    Json ev = Json::object()
                  .set("name", e.name)
                  .set("cat", e.cat)
                  .set("ph", std::string(1, e.phase))
                  .set("ts", e.ts_us)
                  .set("pid", 1)
                  .set("tid", e.tid);
    if (e.phase == 'X') ev.set("dur", e.dur_us);
    if (e.phase == 'i') ev.set("s", "t");  // thread-scoped instant
    arr.push(std::move(ev));
  }
  return Json::object()
      .set("traceEvents", std::move(arr))
      .set("displayTimeUnit", "ms");
}

void TraceRecorder::write(const std::string& path) const {
  write_json_file(path, to_json());
}

}  // namespace parhuff::obs
