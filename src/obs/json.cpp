#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace parhuff::obs {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::runtime_error(std::string("Json: value is not ") + wanted);
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // %.17g is exact for doubles but verbose; prefer the shortest of the
  // common precisions that still round-trips.
  for (int prec = 15; prec <= 16; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, d);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == d) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

i64 Json::as_i64() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      if (uint_ > static_cast<u64>(INT64_MAX)) kind_error("within i64 range");
      return static_cast<i64>(uint_);
    case Kind::kDouble:
      return static_cast<i64>(dbl_);
    default:
      kind_error("a number");
  }
}

u64 Json::as_u64() const {
  switch (kind_) {
    case Kind::kUint:
      return uint_;
    case Kind::kInt:
      if (int_ < 0) kind_error("non-negative");
      return static_cast<u64>(int_);
    case Kind::kDouble:
      if (dbl_ < 0) kind_error("non-negative");
      return static_cast<u64>(dbl_);
    default:
      kind_error("a number");
  }
}

double Json::as_double() const {
  switch (kind_) {
    case Kind::kDouble:
      return dbl_;
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    default:
      kind_error("a number");
  }
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return str_;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) kind_error("an array");
  arr_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return arr_.size();
  if (kind_ == Kind::kObject) return obj_.size();
  kind_error("a container");
}

bool Json::has(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::at(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("an object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  throw std::runtime_error("Json: missing key: " + std::string(key));
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray) kind_error("an array");
  if (index >= arr_.size()) throw std::runtime_error("Json: index out of range");
  return arr_[index];
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return obj_;
}

const std::vector<Json>& Json::elements() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return arr_;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUint:
      out += std::to_string(uint_);
      break;
    case Kind::kDouble:
      append_number(out, dbl_);
      break;
    case Kind::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::kArray:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    case Kind::kObject:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += escape(obj_[i].first);
        out += pretty ? "\": " : "\":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& o) const {
  if (is_number() && o.is_number()) {
    // Integers compare exactly across kInt/kUint; doubles by value.
    if (kind_ != Kind::kDouble && o.kind_ != Kind::kDouble) {
      if (kind_ == Kind::kInt && int_ < 0) {
        return o.kind_ == Kind::kInt && o.int_ == int_;
      }
      if (o.kind_ == Kind::kInt && o.int_ < 0) return false;
      return as_u64() == o.as_u64();
    }
    return as_double() == o.as_double();
  }
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == o.bool_;
    case Kind::kString:
      return str_ == o.str_;
    case Kind::kArray:
      return arr_ == o.arr_;
    case Kind::kObject:
      return obj_ == o.obj_;
    default:
      return false;  // numbers handled above
  }
}

// --- Parser. -----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("lone high surrogate");
            }
            pos_ += 2;
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    bool negative = false;
    bool floating = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    // RFC 8259: the integer part is "0" or a nonzero digit followed by
    // digits — "01" is malformed.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zero");
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      floating = true;
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      floating = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string tok(text_.substr(start, pos_ - start));
    if (!floating) {
      errno = 0;
      if (negative) {
        const long long v = std::strtoll(tok.c_str(), nullptr, 10);
        if (errno != ERANGE) return Json(static_cast<i64>(v));
      } else {
        const unsigned long long v = std::strtoull(tok.c_str(), nullptr, 10);
        if (errno != ERANGE) return Json(static_cast<u64>(v));
      }
      // Integer overflow: fall through to double like other parsers do.
    }
    return Json(std::strtod(tok.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void write_json_file(const std::string& path, const Json& j) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  const std::string body = j.dump(2) + "\n";
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const int rc = std::fclose(f);
  if (n != body.size() || rc != 0) {
    throw std::runtime_error("short write: " + path);
  }
}

}  // namespace parhuff::obs
