#pragma once
// Dependency-free JSON document model for the observability layer: build a
// value tree, dump it (compact or indented), and parse it back. This is the
// serializer behind the `parhuff-metrics-v1` bench reports and the Chrome
// trace_event export (docs/observability.md documents both schemas).
//
// Scope is deliberately small: UTF-8 pass-through strings, exact 64-bit
// integers (a MemTally counter must survive the round trip bit-for-bit, so
// integers are NOT squeezed through double), objects preserving insertion
// order. Non-finite doubles serialize as null — JSON has no NaN/Inf.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace parhuff::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double d) : kind_(Kind::kDouble), dbl_(d) {}
  Json(i64 i) : kind_(Kind::kInt), int_(i) {}
  Json(u64 u) : kind_(Kind::kUint), uint_(u) {}
  Json(int i) : Json(static_cast<i64>(i)) {}
  Json(unsigned u) : Json(static_cast<u64>(u)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), str_(s) {}

  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Throw std::runtime_error unless the value holds the requested kind
  /// (numbers convert freely between the three numeric representations).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] i64 as_i64() const;
  [[nodiscard]] u64 as_u64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Object: insert-or-assign preserving first-insertion order. Returns
  /// *this so document construction chains.
  Json& set(std::string key, Json value);
  /// Array: append.
  Json& push(Json value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool has(std::string_view key) const;
  /// Object member / array element access; throws std::runtime_error when
  /// absent or when the value is not a container of the right kind.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;
  [[nodiscard]] const std::vector<Json>& elements() const;

  /// Render. `indent < 0` → compact one-line form; otherwise pretty-printed
  /// with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parser for everything dump() emits (plus \uXXXX escapes incl.
  /// surrogate pairs). Throws std::runtime_error with an offset on error.
  [[nodiscard]] static Json parse(std::string_view text);

  /// JSON string escaping of `s` (without surrounding quotes).
  [[nodiscard]] static std::string escape(std::string_view s);

  bool operator==(const Json& o) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  i64 int_ = 0;
  u64 uint_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Write `j.dump(2)` plus a trailing newline to `path`; throws
/// std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const Json& j);

}  // namespace parhuff::obs
