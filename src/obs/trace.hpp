#pragma once
// Trace-span recorder exporting Chrome trace_event JSON — load the output
// in Perfetto (https://ui.perfetto.dev) or chrome://tracing to see the
// pipeline's histogram/codebook/encode stages and the simulated kernel
// launches on a timeline. docs/observability.md documents the span naming
// convention.
//
// Recording is off by default and costs one relaxed atomic load per span
// when disabled. Enable it either
//   - programmatically: TraceRecorder::global().enable()   (what --trace-out
//     does in the bench/example drivers), or
//   - via the environment: PARHUFF_TRACE=1 enables recording;
//     PARHUFF_TRACE=/path/to/trace.json additionally writes the trace there
//     at process exit.
//
// Spans nest naturally per thread (complete "ph":"X" events carry begin +
// duration); worker threads show up as separate tracks.

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace parhuff::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0;   ///< microseconds since the recorder's epoch
  double dur_us = 0;  ///< 0 for instant events
  int tid = 0;        ///< small dense id per OS thread
  char phase = 'X';   ///< 'X' complete span, 'i' instant
};

class TraceRecorder {
 public:
  /// Process-wide recorder. First call applies the PARHUFF_TRACE
  /// environment toggle described above.
  static TraceRecorder& global();

  /// Standalone recorder (disabled, fresh epoch). TraceSpan always targets
  /// global(); local instances exist for isolated use and tests.
  TraceRecorder();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder's epoch (process start, effectively).
  [[nodiscard]] double now_us() const;

  /// Record a completed span [ts_us, ts_us + dur_us) on the calling thread.
  void complete(std::string name, std::string cat, double ts_us,
                double dur_us);
  /// Record an instant event at now().
  void instant(std::string name, std::string cat);

  [[nodiscard]] std::size_t event_count() const;
  void clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the Chrome trace_event
  /// "JSON object format" both Perfetto and chrome://tracing load.
  [[nodiscard]] Json to_json() const;
  /// to_json() written to `path` (throws std::runtime_error on I/O error).
  void write(const std::string& path) const;

 private:
  int thread_tid();

  std::atomic<bool> enabled_{false};
  double epoch_us_ = 0;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<unsigned long long, int>> tids_;  // hash(thread) → id
};

/// RAII span: records `[construction, destruction)` into the global
/// recorder when tracing was enabled at construction time. Cheap no-op
/// otherwise — safe to leave in hot paths.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "parhuff")
      : armed_(TraceRecorder::global().enabled()),
        name_(name),
        cat_(cat),
        start_us_(armed_ ? TraceRecorder::global().now_us() : 0) {}
  ~TraceSpan() {
    if (!armed_) return;
    TraceRecorder& rec = TraceRecorder::global();
    rec.complete(name_, cat_, start_us_, rec.now_us() - start_us_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_;
  const char* name_;
  const char* cat_;
  double start_us_;
};

}  // namespace parhuff::obs
