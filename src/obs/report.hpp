#pragma once
// Bridges between the pipeline's report structs and the observability
// layer: lossless Json projections of MemTally / PipelineReport /
// GpuTimeBreakdown, registry publishing, and the versioned
// `parhuff-metrics-v1` document the benches emit (schema documented
// field-by-field in docs/observability.md).
//
// Header-only on purpose: it only touches inline struct fields and inline
// perf functions' declarations, so obs/ stays below core/ and perf/ in the
// link order while still speaking their types.

#include <string>
#include <utility>

#include "core/pipeline.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "perf/gpu_model.hpp"
#include "simt/mem_model.hpp"
#include "simt/spec.hpp"
#include "util/timer.hpp"

namespace parhuff::obs {

/// Schema identifier stamped into every document this layer emits.
inline constexpr const char* kMetricsSchema = "parhuff-metrics-v1";

[[nodiscard]] inline const char* kind_name(HistogramKind k) {
  switch (k) {
    case HistogramKind::kSerial: return "serial";
    case HistogramKind::kOpenMP: return "openmp";
    case HistogramKind::kSimt: return "simt";
  }
  return "?";
}

[[nodiscard]] inline const char* kind_name(CodebookKind k) {
  switch (k) {
    case CodebookKind::kSerialTree: return "serial_tree";
    case CodebookKind::kParallelSimt: return "parallel_simt";
    case CodebookKind::kParallelOmp: return "parallel_omp";
  }
  return "?";
}

[[nodiscard]] inline const char* kind_name(EncoderKind k) {
  switch (k) {
    case EncoderKind::kSerial: return "serial";
    case EncoderKind::kOpenMP: return "openmp";
    case EncoderKind::kCoarseSimt: return "coarse_simt";
    case EncoderKind::kPrefixSumSimt: return "prefixsum_simt";
    case EncoderKind::kReduceShuffleSimt: return "reduceshuffle_simt";
    case EncoderKind::kAdaptiveSimt: return "adaptive_simt";
  }
  return "?";
}

/// Every MemTally counter, verbatim (u64 → JSON integer, no rounding).
[[nodiscard]] inline Json to_json(const simt::MemTally& t) {
  return Json::object()
      .set("global_read_bytes", t.global_read_bytes)
      .set("global_write_bytes", t.global_write_bytes)
      .set("global_read_sectors", t.global_read_sectors)
      .set("global_write_sectors", t.global_write_sectors)
      .set("shared_bytes", t.shared_bytes)
      .set("global_atomics", t.global_atomics)
      .set("global_atomic_conflicts", t.global_atomic_conflicts)
      .set("shared_atomics", t.shared_atomics)
      .set("shared_atomic_conflicts", t.shared_atomic_conflicts)
      .set("kernel_launches", t.kernel_launches)
      .set("grid_syncs", t.grid_syncs)
      .set("block_syncs", t.block_syncs)
      .set("divergent_branches", t.divergent_branches)
      .set("scalar_ops", t.scalar_ops)
      .set("serial_dependent_ops", t.serial_dependent_ops);
}

/// perf::model_time breakdown in seconds, keyed like docs/model.md's terms.
[[nodiscard]] inline Json to_json(const perf::GpuTimeBreakdown& b) {
  return Json::object()
      .set("launch_s", b.launch_s)
      .set("sync_s", b.sync_s)
      .set("dram_s", b.dram_s)
      .set("shared_s", b.shared_s)
      .set("compute_s", b.compute_s)
      .set("atomic_s", b.atomic_s)
      .set("serial_s", b.serial_s)
      .set("total_s", b.total());
}

[[nodiscard]] inline Json to_json(const ReduceShuffleStats& s) {
  return Json::object()
      .set("breaking_groups", s.breaking_groups)
      .set("breaking_symbols", s.breaking_symbols)
      .set("reduce_iterations", s.reduce_iterations)
      .set("shuffle_iterations", s.shuffle_iterations);
}

[[nodiscard]] inline Json to_json(const ParCodebookStats& s) {
  return Json::object()
      .set("rounds", s.rounds)
      .set("melds", s.melds)
      .set("merged_elements", s.merged_elements)
      .set("levels", s.levels)
      .set("max_len", static_cast<u64>(s.max_len));
}

[[nodiscard]] inline Json to_json(const PipelineConfig& c) {
  Json j = Json::object()
               .set("nbins", static_cast<u64>(c.nbins))
               .set("histogram", kind_name(c.histogram))
               .set("codebook", kind_name(c.codebook))
               .set("encoder", kind_name(c.encoder))
               .set("magnitude", static_cast<u64>(c.magnitude))
               .set("cpu_threads", static_cast<i64>(c.cpu_threads));
  j.set("reduce_factor",
        c.reduce_factor ? Json(static_cast<u64>(*c.reduce_factor)) : Json());
  return j;
}

/// StageTimes → {name: {"seconds":s,"count":n,"mean_seconds":m}}.
[[nodiscard]] inline Json to_json(const StageTimes& st) {
  Json j = Json::object();
  for (const auto& [name, e] : st.all()) {
    j.set(name, Json::object()
                    .set("seconds", e.seconds)
                    .set("count", static_cast<u64>(e.count))
                    .set("mean_seconds", st.mean_seconds(name)));
  }
  return j;
}

/// The full report: measured stage seconds, the three stage tallies,
/// derived ratio/throughput, and the encoder/codebook stats blocks. Every
/// PipelineReport field appears exactly once — test_obs asserts the
/// mapping stays lossless.
[[nodiscard]] inline Json to_json(const PipelineReport& r) {
  Json stages = Json::object()
                    .set("histogram",
                         Json::object()
                             .set("seconds", r.hist_seconds)
                             .set("tally", to_json(r.hist_tally)))
                    .set("codebook",
                         Json::object()
                             .set("seconds", r.codebook_seconds)
                             .set("tally", to_json(r.codebook_tally)))
                    .set("encode",
                         Json::object()
                             .set("seconds", r.encode_seconds)
                             .set("tally", to_json(r.encode_tally)));
  if (r.gap_seconds != 0) {
    stages.set("gap_annotate", Json::object().set("seconds", r.gap_seconds));
  }
  return Json::object()
      .set("stages", std::move(stages))
      .set("entropy_bits", r.entropy_bits)
      .set("avg_bits", r.avg_bits)
      .set("reduce_factor", static_cast<u64>(r.reduce_factor))
      .set("reduce_shuffle", to_json(r.rs))
      .set("codebook_stats", to_json(r.cb_stats))
      .set("input_bytes", static_cast<u64>(r.input_bytes))
      .set("compressed_bytes", static_cast<u64>(r.compressed_bytes))
      .set("compression_ratio", r.compression_ratio())
      .set("total_seconds", r.total_seconds())
      .set("host_gbps", gbps(r.input_bytes, r.total_seconds()));
}

/// Modeled device times for each pipeline stage tally on each spec:
/// {"V100":{"histogram":{...},"codebook":{...},"encode":{...},
///   "total_s":…,"overall_gbps":…}, …}. This is where perf::model_time's
/// pricing lands in the document (docs/model.md ↔ docs/observability.md).
[[nodiscard]] inline Json modeled_json(
    const PipelineReport& r,
    std::initializer_list<const simt::DeviceSpec*> devices) {
  Json out = Json::object();
  for (const simt::DeviceSpec* dev : devices) {
    const auto h = perf::model_time(r.hist_tally, *dev);
    const auto c = perf::model_time(r.codebook_tally, *dev);
    const auto e = perf::model_time(r.encode_tally, *dev);
    const double total = h.total() + c.total() + e.total();
    out.set(dev->name,
            Json::object()
                .set("histogram", to_json(h))
                .set("codebook", to_json(c))
                .set("encode", to_json(e))
                .set("total_s", total)
                .set("overall_gbps", gbps(r.input_bytes, total)));
  }
  return out;
}

/// Flatten a MemTally's counters into `reg` under `prefix.`.
inline void publish(MetricsRegistry& reg, const simt::MemTally& t,
                    const std::string& prefix) {
  // Bind the temporary: members() returns a reference into the Json, and a
  // range-for over `to_json(t).members()` would iterate a destroyed object
  // (C++23's P2718 lifetime extension does not apply in C++20).
  const Json j = to_json(t);
  for (const auto& [key, value] : j.members()) {
    reg.counter_add(prefix + "." + key, value.as_u64());
  }
}

/// Publish one compress() run: stage timers (seconds + call counts),
/// byte counters, per-stage tallies, and last-run gauges.
inline void publish(MetricsRegistry& reg, const PipelineReport& r,
                    const std::string& prefix = "pipeline") {
  reg.stage_add(prefix + ".histogram", r.hist_seconds);
  reg.stage_add(prefix + ".codebook", r.codebook_seconds);
  reg.stage_add(prefix + ".encode", r.encode_seconds);
  if (r.gap_seconds != 0) {
    reg.stage_add(prefix + ".gap_annotate", r.gap_seconds);
  }
  reg.counter_add(prefix + ".runs");
  reg.counter_add(prefix + ".input_bytes", r.input_bytes);
  reg.counter_add(prefix + ".compressed_bytes", r.compressed_bytes);
  publish(reg, r.hist_tally, prefix + ".histogram");
  publish(reg, r.codebook_tally, prefix + ".codebook");
  publish(reg, r.encode_tally, prefix + ".encode");
  reg.gauge_set(prefix + ".last.entropy_bits", r.entropy_bits);
  reg.gauge_set(prefix + ".last.avg_bits", r.avg_bits);
  reg.gauge_set(prefix + ".last.reduce_factor",
                static_cast<double>(r.reduce_factor));
  reg.gauge_set(prefix + ".last.compression_ratio", r.compression_ratio());
  reg.gauge_set(prefix + ".last.host_gbps",
                gbps(r.input_bytes, r.total_seconds()));
}

/// Builder for a `parhuff-metrics-v1` document:
///   {"schema":"parhuff-metrics-v1","name":…,"config":{…},
///    "records":[…],"metrics":{registry snapshot}}
/// `records` carries the emitter's per-case results (one object per
/// dataset/configuration); `metrics` is the registry aggregate.
class MetricsDocument {
 public:
  explicit MetricsDocument(std::string name) : name_(std::move(name)) {
    config_ = Json::object();
  }

  Json& config() { return config_; }
  void add_record(Json record) { records_.push(std::move(record)); }
  [[nodiscard]] std::size_t record_count() const { return records_.size(); }

  [[nodiscard]] Json to_json(const MetricsRegistry& reg =
                                 MetricsRegistry::global()) const {
    Json j = Json::object();
    j.set("schema", kMetricsSchema);
    j.set("name", name_);
    j.set("config", config_);
    j.set("records", records_);
    j.set("metrics", reg.to_json());
    return j;
  }

  void write(const std::string& path,
             const MetricsRegistry& reg = MetricsRegistry::global()) const {
    write_json_file(path, to_json(reg));
  }

 private:
  std::string name_;
  Json config_;
  Json records_ = Json::array();
};

}  // namespace parhuff::obs
