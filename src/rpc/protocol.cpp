#include "rpc/protocol.hpp"

#include <cstring>

namespace parhuff::rpc {

namespace {

template <typename T>
void put_le(u8* dst, T v) {
  std::memcpy(dst, &v, sizeof(T));
}

template <typename T>
[[nodiscard]] T get_le(const u8* src) {
  T v;
  std::memcpy(&v, src, sizeof(T));
  return v;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadRequest: return "bad_request";
    case Status::kUnsupportedVersion: return "unsupported_version";
    case Status::kQueueFull: return "queue_full";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kCancelled: return "cancelled";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kInternal: return "internal";
  }
  return "unknown";
}

std::array<u8, kHeaderBytes> encode_header(const Header& h) {
  std::array<u8, kHeaderBytes> b{};
  put_le<u32>(b.data() + 0, kMagic);
  b[4] = kVersion;
  b[5] = static_cast<u8>(h.kind);
  b[6] = static_cast<u8>(h.op);
  b[7] = h.sym_width;
  put_le<u64>(b.data() + 8, h.request_id);
  b[16] = h.priority;
  b[17] = static_cast<u8>(h.status);
  put_le<u16>(b.data() + 18, 0);  // reserved
  put_le<u32>(b.data() + 20, h.payload_len);
  // Stream Chunk/End frames carry the stream id where every other op
  // carries the relative deadline (anchored once at Begin).
  put_le<u64>(b.data() + 24,
              is_stream_ref_op(h.op) ? h.stream_id : h.deadline_micros);
  return b;
}

std::vector<u8> encode_frame(const Frame& f, u32 max_payload) {
  if (f.payload.size() > max_payload) {
    throw std::length_error("rpc: frame payload exceeds the protocol bound");
  }
  Header h = f.h;
  h.payload_len = static_cast<u32>(f.payload.size());
  const std::array<u8, kHeaderBytes> hb = encode_header(h);
  std::vector<u8> out(kHeaderBytes + f.payload.size());
  std::memcpy(out.data(), hb.data(), kHeaderBytes);
  if (!f.payload.empty()) {
    std::memcpy(out.data() + kHeaderBytes, f.payload.data(),
                f.payload.size());
  }
  return out;
}

Header decode_header(std::span<const u8, kHeaderBytes> b, u32 max_payload) {
  // Magic first: a mismatch means the stream is not frame-aligned at all,
  // so no field (not even the request id) can be trusted for a response.
  if (get_le<u32>(b.data() + 0) != kMagic) {
    throw ProtocolError("bad magic", Status::kBadRequest,
                        /*can_respond=*/false, 0);
  }
  Header h;
  h.request_id = get_le<u64>(b.data() + 8);
  const u8 version = b[4];
  if (version < kMinVersion || version > kVersion) {
    throw ProtocolError("unsupported version " + std::to_string(version),
                        Status::kUnsupportedVersion, /*can_respond=*/true,
                        h.request_id);
  }
  const u8 kind = b[5];
  if (kind > static_cast<u8>(Kind::kResponse)) {
    throw ProtocolError("bad kind " + std::to_string(kind),
                        Status::kBadRequest, /*can_respond=*/true,
                        h.request_id);
  }
  h.kind = static_cast<Kind>(kind);
  const u8 op = b[6];
  if (op < static_cast<u8>(Op::kCompress) ||
      op > static_cast<u8>(Op::kLossyDecompress)) {
    throw ProtocolError("bad op " + std::to_string(op), Status::kBadRequest,
                        /*can_respond=*/true, h.request_id);
  }
  h.op = static_cast<Op>(op);
  h.sym_width = b[7];
  h.priority = b[16];
  const u8 status = b[17];
  if (status > static_cast<u8>(Status::kInternal)) {
    throw ProtocolError("bad status " + std::to_string(status),
                        Status::kBadRequest, /*can_respond=*/true,
                        h.request_id);
  }
  h.status = static_cast<Status>(status);
  h.payload_len = get_le<u32>(b.data() + 20);
  if (h.payload_len > max_payload) {
    throw ProtocolError(
        "payload length " + std::to_string(h.payload_len) +
            " exceeds the bound " + std::to_string(max_payload),
        Status::kBadRequest, /*can_respond=*/true, h.request_id);
  }
  const u64 slot24 = get_le<u64>(b.data() + 24);
  if (is_stream_ref_op(h.op)) {
    h.stream_id = slot24;
  } else {
    h.deadline_micros = slot24;
  }
  return h;
}

std::vector<u8> encode_stream_end_request(const StreamEndRequest& req) {
  std::vector<u8> b(kStreamEndRequestBytes, 0);
  put_le<u64>(b.data() + 0, req.total_bytes);
  put_le<u64>(b.data() + 8, req.checksum);
  return b;
}

StreamEndRequest decode_stream_end_request(std::span<const u8> payload) {
  if (payload.size() < kStreamEndRequestBytes) {
    throw ProtocolError("stream end payload too short (" +
                            std::to_string(payload.size()) + " bytes)",
                        Status::kBadRequest, /*can_respond=*/false, 0);
  }
  StreamEndRequest req;
  req.total_bytes = get_le<u64>(payload.data() + 0);
  req.checksum = get_le<u64>(payload.data() + 8);
  return req;
}

std::vector<u8> encode_stream_summary(const StreamSummary& s) {
  std::vector<u8> b(kStreamSummaryBytes, 0);
  put_le<u64>(b.data() + 0, s.bytes_in);
  put_le<u64>(b.data() + 8, s.bytes_out);
  put_le<u64>(b.data() + 16, s.checksum);
  return b;
}

StreamSummary decode_stream_summary(std::span<const u8> payload) {
  if (payload.size() < kStreamSummaryBytes) {
    throw ProtocolError("stream summary payload too short (" +
                            std::to_string(payload.size()) + " bytes)",
                        Status::kBadRequest, /*can_respond=*/false, 0);
  }
  StreamSummary s;
  s.bytes_in = get_le<u64>(payload.data() + 0);
  s.bytes_out = get_le<u64>(payload.data() + 8);
  s.checksum = get_le<u64>(payload.data() + 16);
  return s;
}

std::vector<u8> encode_lossy_request_header(const LossyRequestHeader& h) {
  std::vector<u8> b(kLossyRequestHeaderBytes, 0);
  put_le<u64>(b.data() + 0, h.nx);
  put_le<u64>(b.data() + 8, h.ny);
  put_le<u64>(b.data() + 16, h.nz);
  put_le<double>(b.data() + 24, h.rel_error_bound);
  put_le<double>(b.data() + 32, h.abs_error_bound);
  put_le<u32>(b.data() + 40, h.nbins);
  put_le<u32>(b.data() + 44, h.rle_min_run);
  return b;
}

LossyRequestHeader decode_lossy_request_header(std::span<const u8> payload) {
  if (payload.size() < kLossyRequestHeaderBytes) {
    throw ProtocolError("lossy request payload too short (" +
                            std::to_string(payload.size()) + " bytes)",
                        Status::kBadRequest, /*can_respond=*/false, 0);
  }
  LossyRequestHeader h;
  h.nx = get_le<u64>(payload.data() + 0);
  h.ny = get_le<u64>(payload.data() + 8);
  h.nz = get_le<u64>(payload.data() + 16);
  h.rel_error_bound = get_le<double>(payload.data() + 24);
  h.abs_error_bound = get_le<double>(payload.data() + 32);
  h.nbins = get_le<u32>(payload.data() + 40);
  h.rle_min_run = get_le<u32>(payload.data() + 44);
  return h;
}

std::vector<u8> encode_lossy_field_header(const LossyFieldHeader& h) {
  std::vector<u8> b(kLossyFieldHeaderBytes, 0);
  put_le<u64>(b.data() + 0, h.nx);
  put_le<u64>(b.data() + 8, h.ny);
  put_le<u64>(b.data() + 16, h.nz);
  put_le<double>(b.data() + 24, h.error_bound);
  return b;
}

LossyFieldHeader decode_lossy_field_header(std::span<const u8> payload) {
  if (payload.size() < kLossyFieldHeaderBytes) {
    throw ProtocolError("lossy field payload too short (" +
                            std::to_string(payload.size()) + " bytes)",
                        Status::kBadRequest, /*can_respond=*/false, 0);
  }
  LossyFieldHeader h;
  h.nx = get_le<u64>(payload.data() + 0);
  h.ny = get_le<u64>(payload.data() + 8);
  h.nz = get_le<u64>(payload.data() + 16);
  h.error_bound = get_le<double>(payload.data() + 24);
  return h;
}

std::pair<LossyFieldHeader, std::vector<float>> decode_lossy_field_payload(
    std::span<const u8> payload) {
  const LossyFieldHeader h = decode_lossy_field_header(payload);
  const std::span<const u8> body = payload.subspan(kLossyFieldHeaderBytes);
  const u64 n = body.size() / sizeof(float);
  bool ok = body.size() % sizeof(float) == 0 && n != 0 && h.nx != 0 &&
            h.ny != 0 && h.nz != 0;
  ok = ok && h.nx <= n / h.ny;
  ok = ok && h.nx * h.ny <= n / h.nz;
  ok = ok && h.nx * h.ny * h.nz == n;
  if (!ok) {
    throw ProtocolError("lossy field payload dims mismatch",
                        Status::kBadRequest, /*can_respond=*/false, 0);
  }
  std::vector<float> values(static_cast<std::size_t>(n));
  std::memcpy(values.data(), body.data(), body.size());
  return {h, std::move(values)};
}

std::vector<u8> encode_health_info(const HealthInfo& info) {
  std::vector<u8> b(kHealthInfoBytes, 0);
  put_le<u32>(b.data() + 0, info.info_version);
  b[4] = info.accepting ? 1 : 0;
  put_le<u64>(b.data() + 8, info.queue_depth);
  put_le<u64>(b.data() + 16, info.queue_capacity);
  put_le<u64>(b.data() + 24, info.connections);
  put_le<u64>(b.data() + 32, info.max_connections);
  return b;
}

HealthInfo decode_health_info(std::span<const u8> payload) {
  if (payload.size() < kHealthInfoBytes) {
    throw ProtocolError("health payload too short (" +
                            std::to_string(payload.size()) + " bytes)",
                        Status::kBadRequest, /*can_respond=*/false, 0);
  }
  HealthInfo info;
  info.info_version = get_le<u32>(payload.data() + 0);
  if (info.info_version == 0) {
    throw ProtocolError("health payload unversioned", Status::kBadRequest,
                        /*can_respond=*/false, 0);
  }
  info.accepting = payload[4] != 0;
  info.queue_depth = get_le<u64>(payload.data() + 8);
  info.queue_capacity = get_le<u64>(payload.data() + 16);
  info.connections = get_le<u64>(payload.data() + 24);
  info.max_connections = get_le<u64>(payload.data() + 32);
  return info;
}

}  // namespace parhuff::rpc
