#pragma once
// RPC server: the cross-process front door for CompressionService
// (docs/rpc.md). One server owns a u8 and a u16 service instance plus an
// io WorkStealExecutor; the accept loop, each connection's reader and
// each connection's writer are long-running tasks on that executor, so
// the pool is sized 1 + 2 * max_connections by default and connections
// past max_connections are refused at accept.
//
// Per-connection threading:
//   reader — parses frames, validates, submits compress work to the
//     service (admission, batching, caching, deadlines and the retry/
//     degraded machinery all apply exactly as for in-process callers),
//     registers decompress work, applies cancels immediately, and
//     enqueues one response slot per request;
//   writer — resolves response slots strictly in request order (one
//     connection = one ordered stream, pipelined-HTTP style) and writes
//     the frames. A compress slot blocks on the service future — which
//     always resolves (the service's resolve-always invariant) — so no
//     slot can leak; when the connection dies first, remaining slots are
//     still drained and counted as rpc.responses_dropped.
//
// Cancellation: a cancel frame names an earlier request id on the same
// connection. For compress that maps onto svc::RequestHandle::cancel()
// (pending requests die immediately, dispatched ones abandon at the next
// kernel poll point); for decompress onto the per-request CancelToken the
// decode walk polls. Deadlines arrive as relative budgets and are
// re-anchored against the server's injected util::Clock.
//
// Streaming (protocol v3): a *StreamBegin frame opens per-connection
// stream state (bounded by max_streams_per_connection) and answers with
// the server-assigned stream id; each Chunk frame is processed in its
// writer slot — encode/decode of chunk N overlaps the reader pulling
// chunk N+1 off the wire — and answers with the output produced so far;
// End verifies the whole-stream byte count + stream_checksum and answers
// a StreamSummary. The stream's deadline is anchored once at Begin and
// its CancelToken is registered under the Begin request id, so kCancel
// aborts a stream exactly like a single-frame request. Any stream error
// answers typed on the offending frame and forgets the id; because every
// stream frame still drains exactly one response slot, the existing
// written+dropped == received balance holds unchanged, and streams add
// their own: rpc.streams_opened == rpc.streams_completed +
// rpc.streams_aborted (connection teardown counts still-open streams as
// aborted).
//
// Fault sites (util::FaultInjector): rpc.server.accept, rpc.server.read,
// rpc.server.write, rpc.server.stream_chunk — each models the connection
// (or a chunk's processing) dying at that point; the tests arm them to
// prove every client future still resolves.

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "rpc/transport.hpp"
#include "svc/service.hpp"
#include "util/work_steal.hpp"

namespace parhuff::rpc {

struct ServerConfig {
  /// io pool size; 0 → 1 + 2 * max_connections (accept + a reader and a
  /// writer per connection; every task is long-running, so the pool must
  /// hold them all simultaneously).
  int io_threads = 0;
  std::size_t max_connections = 8;
  /// Bound on a single request frame's payload.
  u32 max_payload_bytes = kMaxPayloadBytes;
  /// Bound on one v3 stream chunk's payload — the server's per-stream
  /// buffering bound and the unit of transfer/encode overlap. Bigger
  /// chunks answer kBadRequest.
  u32 stream_chunk_bytes = kDefaultStreamChunkBytes;
  /// Open v3 streams one connection may hold at once; a Begin past the
  /// cap answers kQueueFull (also the typed answer a Begin-replay flood
  /// gets, so replays can never accrete unbounded state).
  std::size_t max_streams_per_connection = 4;
  /// Passed through to both CompressionService instances. The embedded
  /// clock (service.clock) also drives the server's deadline re-anchoring
  /// and the io pool's idle park.
  svc::ServiceConfig service;
  /// Server-side pipeline configs per symbol width. Defaults cover the
  /// full symbol range (256 / 65536 bins) because the histogram kernels
  /// trust every symbol to be < nbins — required for untrusted payloads.
  PipelineConfig pipeline8;
  PipelineConfig pipeline16;

  ServerConfig() {
    pipeline8.nbins = 256;
    pipeline16.nbins = 64 * 1024;
  }
};

class RpcServer {
 public:
  /// Takes ownership of the listener and starts accepting immediately.
  RpcServer(std::unique_ptr<Listener> listener, ServerConfig cfg = {});
  /// stop(), then joins everything.
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Stop accepting, shut every live connection down, drain the io pool.
  /// Idempotent. In-flight service requests still resolve; their
  /// responses are written when the connection survives long enough,
  /// dropped (rpc.responses_dropped) otherwise.
  void stop();

  /// Live connections right now (tests / introspection).
  [[nodiscard]] std::size_t connection_count() const;

  /// Largest per-stream buffered byte count any v3 stream reached since
  /// the server started — the bounded-buffering contract made testable:
  /// it stays a small constant multiple of stream_chunk_bytes no matter
  /// how large the streamed payload is.
  [[nodiscard]] u64 stream_buffer_high_water() const {
    return stream_buffer_high_water_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] svc::CompressionService<u8>& service8() { return *svc8_; }
  [[nodiscard]] svc::CompressionService<u16>& service16() { return *svc16_; }

 private:
  struct ConnState;
  struct StreamState;

  void accept_loop();
  void reader_loop(std::shared_ptr<ConnState> cs);
  void writer_loop(std::shared_ptr<ConnState> cs);
  /// Frame-level dispatch; returns false when the connection must drop.
  bool handle_frame(const std::shared_ptr<ConnState>& cs, const Header& h,
                    std::vector<u8> payload);
  template <typename Sym>
  void handle_compress(const std::shared_ptr<ConnState>& cs, const Header& h,
                       std::vector<u8> payload, const PipelineConfig& pl,
                       svc::CompressionService<Sym>& svc);
  template <typename Sym>
  void handle_decompress(const std::shared_ptr<ConnState>& cs,
                         const Header& h, std::vector<u8> payload);
  void handle_stream_begin(const std::shared_ptr<ConnState>& cs,
                           const Header& h);
  void handle_stream_frame(const std::shared_ptr<ConnState>& cs,
                           const Header& h, std::vector<u8> payload);
  /// v4 fused lossy verbs. Compress routes on the request's nbins — the
  /// residual alphabet decides which service instance (u8 for nbins <=
  /// 256, u16 otherwise) owns the request; decompress is self-describing
  /// and runs on the writer task like plain decompress.
  void handle_lossy_compress(const std::shared_ptr<ConnState>& cs,
                             const Header& h, std::vector<u8> payload);
  void handle_lossy_decompress(const std::shared_ptr<ConnState>& cs,
                               const Header& h, std::vector<u8> payload);

  ServerConfig cfg_;
  const util::Clock* clock_;  // resolved from cfg_.service.clock
  std::unique_ptr<svc::CompressionService<u8>> svc8_;
  std::unique_ptr<svc::CompressionService<u16>> svc16_;
  std::unique_ptr<Listener> listener_;

  mutable std::mutex conns_mu_;
  std::vector<std::weak_ptr<ConnState>> conns_;
  bool stopping_ = false;  // under conns_mu_

  std::atomic<u64> next_stream_id_{0};
  std::atomic<u64> stream_buffer_high_water_{0};

  /// Declared last: destroyed first, joining the accept/reader/writer
  /// tasks while the services they use are still alive.
  std::unique_ptr<WorkStealExecutor> io_;
};

}  // namespace parhuff::rpc
