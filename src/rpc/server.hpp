#pragma once
// RPC server: the cross-process front door for CompressionService
// (docs/rpc.md). One server owns a u8 and a u16 service instance plus an
// io WorkStealExecutor; the accept loop, each connection's reader and
// each connection's writer are long-running tasks on that executor, so
// the pool is sized 1 + 2 * max_connections by default and connections
// past max_connections are refused at accept.
//
// Per-connection threading:
//   reader — parses frames, validates, submits compress work to the
//     service (admission, batching, caching, deadlines and the retry/
//     degraded machinery all apply exactly as for in-process callers),
//     registers decompress work, applies cancels immediately, and
//     enqueues one response slot per request;
//   writer — resolves response slots strictly in request order (one
//     connection = one ordered stream, pipelined-HTTP style) and writes
//     the frames. A compress slot blocks on the service future — which
//     always resolves (the service's resolve-always invariant) — so no
//     slot can leak; when the connection dies first, remaining slots are
//     still drained and counted as rpc.responses_dropped.
//
// Cancellation: a cancel frame names an earlier request id on the same
// connection. For compress that maps onto svc::RequestHandle::cancel()
// (pending requests die immediately, dispatched ones abandon at the next
// kernel poll point); for decompress onto the per-request CancelToken the
// decode walk polls. Deadlines arrive as relative budgets and are
// re-anchored against the server's injected util::Clock.
//
// Fault sites (util::FaultInjector): rpc.server.accept, rpc.server.read,
// rpc.server.write — each models the connection dying at that point; the
// tests arm them to prove every client future still resolves.

#include <cstddef>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "rpc/transport.hpp"
#include "svc/service.hpp"
#include "util/work_steal.hpp"

namespace parhuff::rpc {

struct ServerConfig {
  /// io pool size; 0 → 1 + 2 * max_connections (accept + a reader and a
  /// writer per connection; every task is long-running, so the pool must
  /// hold them all simultaneously).
  int io_threads = 0;
  std::size_t max_connections = 8;
  /// Bound on a single request frame's payload.
  u32 max_payload_bytes = kMaxPayloadBytes;
  /// Passed through to both CompressionService instances. The embedded
  /// clock (service.clock) also drives the server's deadline re-anchoring
  /// and the io pool's idle park.
  svc::ServiceConfig service;
  /// Server-side pipeline configs per symbol width. Defaults cover the
  /// full symbol range (256 / 65536 bins) because the histogram kernels
  /// trust every symbol to be < nbins — required for untrusted payloads.
  PipelineConfig pipeline8;
  PipelineConfig pipeline16;

  ServerConfig() {
    pipeline8.nbins = 256;
    pipeline16.nbins = 64 * 1024;
  }
};

class RpcServer {
 public:
  /// Takes ownership of the listener and starts accepting immediately.
  RpcServer(std::unique_ptr<Listener> listener, ServerConfig cfg = {});
  /// stop(), then joins everything.
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Stop accepting, shut every live connection down, drain the io pool.
  /// Idempotent. In-flight service requests still resolve; their
  /// responses are written when the connection survives long enough,
  /// dropped (rpc.responses_dropped) otherwise.
  void stop();

  /// Live connections right now (tests / introspection).
  [[nodiscard]] std::size_t connection_count() const;

  [[nodiscard]] svc::CompressionService<u8>& service8() { return *svc8_; }
  [[nodiscard]] svc::CompressionService<u16>& service16() { return *svc16_; }

 private:
  struct ConnState;

  void accept_loop();
  void reader_loop(std::shared_ptr<ConnState> cs);
  void writer_loop(std::shared_ptr<ConnState> cs);
  /// Frame-level dispatch; returns false when the connection must drop.
  bool handle_frame(const std::shared_ptr<ConnState>& cs, const Header& h,
                    std::vector<u8> payload);
  template <typename Sym>
  void handle_compress(const std::shared_ptr<ConnState>& cs, const Header& h,
                       std::vector<u8> payload, const PipelineConfig& pl,
                       svc::CompressionService<Sym>& svc);
  template <typename Sym>
  void handle_decompress(const std::shared_ptr<ConnState>& cs,
                         const Header& h, std::vector<u8> payload);

  ServerConfig cfg_;
  const util::Clock* clock_;  // resolved from cfg_.service.clock
  std::unique_ptr<svc::CompressionService<u8>> svc8_;
  std::unique_ptr<svc::CompressionService<u16>> svc16_;
  std::unique_ptr<Listener> listener_;

  mutable std::mutex conns_mu_;
  std::vector<std::weak_ptr<ConnState>> conns_;
  bool stopping_ = false;  // under conns_mu_

  /// Declared last: destroyed first, joining the accept/reader/writer
  /// tasks while the services they use are still alive.
  std::unique_ptr<WorkStealExecutor> io_;
};

}  // namespace parhuff::rpc
