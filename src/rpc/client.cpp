#include "rpc/client.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <exception>

#include "core/streaming.hpp"
#include "svc/deadline.hpp"
#include "util/fault_inject.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace parhuff::rpc {

namespace {

[[nodiscard]] std::string payload_message(const std::vector<u8>& payload) {
  return std::string(payload.begin(), payload.end());
}

/// Map a non-kOk response onto the exception the caller's future carries.
/// Deadline/cancel reuse the in-process service exception types so callers
/// handle both transports with one catch.
[[nodiscard]] std::exception_ptr status_exception(
    Status s, const std::vector<u8>& payload) {
  switch (s) {
    case Status::kDeadlineExceeded:
      return std::make_exception_ptr(svc::DeadlineExceeded());
    case Status::kCancelled:
      return std::make_exception_ptr(svc::CancelledError());
    default:
      return std::make_exception_ptr(RpcError(s, payload_message(payload)));
  }
}

}  // namespace

RpcClient::RpcClient(Connector connect, ClientConfig cfg)
    : connector_(std::move(connect)),
      cfg_(cfg),
      clock_(cfg.clock ? cfg.clock : &util::Clock::real()) {
  if (!connector_) {
    throw std::invalid_argument("RpcClient: null connector");
  }
  reader_ = std::thread([this] { reader_loop(); });
}

RpcClient::~RpcClient() {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    conn = conn_;
  }
  conn_cv_.notify_all();
  if (conn) conn->shutdown();  // unblocks a reader parked in read_exact
  if (reader_.joinable()) reader_.join();

  // The reader fails its own generation's pendings as connections die; a
  // request registered after the final connection loss can still be left.
  std::unordered_map<u64, Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(pending_);
  }
  for (auto& [id, p] : leftover) {
    p.promise.set_exception(std::make_exception_ptr(
        TransportError("rpc client: destroyed with request in flight")));
  }

  // Stream drivers join last: every future a driver still holds resolved
  // above (reader generation sweep, the sender's own failure path, or the
  // leftover sweep), and a driver submitting after stopping_ fails fast in
  // ensure_connected without ever registering, so no join can hang.
  std::vector<Driver> drivers;
  {
    std::lock_guard<std::mutex> lock(drivers_mu_);
    drivers.swap(drivers_);
  }
  for (Driver& d : drivers) {
    if (d.t.joinable()) d.t.join();
  }
}

RpcCall RpcClient::compress(std::span<const u8> symbol_bytes, u8 sym_width,
                            const RpcOptions& opts) {
  return compress(std::vector<u8>(symbol_bytes.begin(), symbol_bytes.end()),
                  sym_width, opts);
}

RpcCall RpcClient::compress(std::vector<u8>&& symbol_bytes, u8 sym_width,
                            const RpcOptions& opts) {
  if (use_streaming(symbol_bytes.size())) {
    return submit_stream(Op::kCompressStreamBegin, std::move(symbol_bytes),
                         sym_width, opts);
  }
  Frame f;
  f.h.op = Op::kCompress;
  f.h.sym_width = sym_width;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload = std::move(symbol_bytes);
  return submit_frame(std::move(f));
}

RpcCall RpcClient::decompress(std::span<const u8> container, u8 sym_width,
                              const RpcOptions& opts) {
  return decompress(std::vector<u8>(container.begin(), container.end()),
                    sym_width, opts);
}

RpcCall RpcClient::decompress(std::vector<u8>&& container, u8 sym_width,
                              const RpcOptions& opts) {
  // Only a PHS2 streamed container can be split at segment boundaries on
  // the server; a monolithic PHF container past the frame bound keeps the
  // typed kBadRequest from submit_frame's bound check.
  const bool streamed_container =
      container.size() >= 4 &&
      std::memcmp(container.data(), kStreamHeaderMagic, 4) == 0;
  if (streamed_container && use_streaming(container.size())) {
    return submit_stream(Op::kDecompressStreamBegin, std::move(container),
                         sym_width, opts);
  }
  Frame f;
  f.h.op = Op::kDecompress;
  f.h.sym_width = sym_width;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload = std::move(container);
  return submit_frame(std::move(f));
}

RpcCall RpcClient::lossy_compress(std::span<const float> field,
                                  const LossyRequestHeader& cfg,
                                  const RpcOptions& opts) {
  Frame f;
  f.h.op = Op::kLossyCompress;
  // Informational: the residual Huffman alphabet the server will use.
  f.h.sym_width = cfg.nbins <= 256 ? 1 : 2;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload = encode_lossy_request_header(cfg);
  const std::size_t at = f.payload.size();
  f.payload.resize(at + field.size() * sizeof(float));
  if (!field.empty()) {
    std::memcpy(f.payload.data() + at, field.data(),
                field.size() * sizeof(float));
  }
  return submit_frame(std::move(f));
}

RpcCall RpcClient::lossy_compress_raw(std::span<const u8> payload,
                                      u8 sym_width, const RpcOptions& opts) {
  Frame f;
  f.h.op = Op::kLossyCompress;
  f.h.sym_width = sym_width;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload.assign(payload.begin(), payload.end());
  return submit_frame(std::move(f));
}

RpcCall RpcClient::lossy_decompress(std::span<const u8> container,
                                    const RpcOptions& opts) {
  Frame f;
  f.h.op = Op::kLossyDecompress;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload.assign(container.begin(), container.end());
  return submit_frame(std::move(f));
}

RpcCall RpcClient::stream_begin(Op op, u8 sym_width, const RpcOptions& opts) {
  if (!is_stream_begin_op(op)) {
    throw std::invalid_argument("stream_begin: op is not a stream Begin op");
  }
  Frame f;
  f.h.op = op;
  f.h.sym_width = sym_width;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  return submit_frame(std::move(f));
}

RpcCall RpcClient::stream_frame(Op op, u64 stream_id,
                                std::span<const u8> payload) {
  if (!is_stream_ref_op(op)) {
    throw std::invalid_argument(
        "stream_frame: op is not a stream Chunk/End op");
  }
  Header h;
  h.op = op;
  h.stream_id = stream_id;
  return submit_frame(h, payload);
}

RpcCall RpcClient::stream_end(Op op, u64 stream_id, u64 total_bytes,
                              u64 checksum) {
  if (op != Op::kCompressStreamEnd && op != Op::kDecompressStreamEnd) {
    throw std::invalid_argument("stream_end: op is not a stream End op");
  }
  const std::vector<u8> body =
      encode_stream_end_request(StreamEndRequest{total_bytes, checksum});
  return stream_frame(op, stream_id, std::span<const u8>(body));
}

std::future<void> RpcClient::cancel(u64 request_id) {
  Frame f;
  f.h.op = Op::kCancel;
  f.payload.resize(8);
  std::memcpy(f.payload.data(), &request_id, 8);  // LE hosts only, like bytesio
  RpcCall call = submit_frame(std::move(f));
  return std::async(std::launch::deferred,
                    [fut = std::move(call.result)]() mutable { fut.get(); });
}

std::future<std::string> RpcClient::stats() {
  Frame f;
  f.h.op = Op::kStats;
  RpcCall call = submit_frame(std::move(f));
  return std::async(std::launch::deferred,
                    [fut = std::move(call.result)]() mutable {
                      return payload_message(fut.get());
                    });
}

std::future<HealthInfo> RpcClient::health() {
  Frame f;
  f.h.op = Op::kHealth;
  RpcCall call = submit_frame(std::move(f));
  return std::async(std::launch::deferred,
                    [fut = std::move(call.result)]() mutable {
                      return decode_health_info(fut.get());
                    });
}

bool RpcClient::use_streaming(std::size_t payload_bytes) const {
  if (!cfg_.enable_streaming) return false;
  const std::size_t threshold = cfg_.stream_threshold_bytes > 0
                                    ? cfg_.stream_threshold_bytes
                                    : cfg_.max_payload_bytes;
  return payload_bytes > threshold;
}

RpcCall RpcClient::submit_stream(Op begin_op, std::vector<u8> data,
                                 u8 sym_width, RpcOptions opts) {
  // Begin goes out inline so the returned id is the Begin id — the handle
  // cancel() takes for the whole stream — and so a connect failure
  // surfaces on the caller's thread, not inside a detached driver.
  RpcCall begin = stream_begin(begin_op, sym_width, opts);
  auto out = std::make_shared<std::promise<std::vector<u8>>>();
  RpcCall call{out->get_future(), begin.id};

  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread t([this, begin_op, sym_width, d = std::move(data),
                 bf = std::move(begin.result), out, done]() mutable {
    drive_stream(begin_op, std::move(d), sym_width, std::move(bf), out);
    done->store(true, std::memory_order_release);
  });

  std::lock_guard<std::mutex> lock(drivers_mu_);
  // Reap drivers that already finished — joins are instant — so a
  // long-lived client streaming forever keeps a bounded thread roster.
  for (auto it = drivers_.begin(); it != drivers_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->t.joinable()) it->t.join();
      it = drivers_.erase(it);
    } else {
      ++it;
    }
  }
  drivers_.push_back(Driver{std::move(t), std::move(done)});
  return call;
}

void RpcClient::drive_stream(Op begin_op, std::vector<u8> data, u8 sym_width,
                             std::future<std::vector<u8>> begin,
                             std::shared_ptr<std::promise<std::vector<u8>>> out) {
  std::deque<std::future<std::vector<u8>>> window;
  try {
    const std::vector<u8> sid_bytes = begin.get();  // typed/transport throws
    if (sid_bytes.size() < 8) {
      throw RpcError(Status::kInternal,
                     "rpc stream: short stream-id payload in Begin response");
    }
    u64 sid = 0;
    std::memcpy(&sid, sid_bytes.data(), 8);  // LE hosts only, like bytesio

    const bool compressing = begin_op == Op::kCompressStreamBegin;
    const Op chunk_op =
        compressing ? Op::kCompressStreamChunk : Op::kDecompressStreamChunk;
    const Op end_op =
        compressing ? Op::kCompressStreamEnd : Op::kDecompressStreamEnd;

    // Chunks carry whole symbols: a u16 symbol split across two chunks
    // would make the server's codec see a torn alphabet.
    const std::size_t width = sym_width > 0 ? sym_width : 1;
    std::size_t chunk_bytes = cfg_.stream_chunk_bytes > 0
                                  ? cfg_.stream_chunk_bytes
                                  : kDefaultStreamChunkBytes;
    chunk_bytes -= chunk_bytes % width;
    if (chunk_bytes == 0) chunk_bytes = width;
    const std::size_t window_cap =
        cfg_.stream_window > 0 ? cfg_.stream_window : 1;

    std::vector<u8> result;
    u64 checksum = kFnv1aSeed;
    auto drain_one = [&] {
      std::vector<u8> ack = window.front().get();
      window.pop_front();
      result.insert(result.end(), ack.begin(), ack.end());
    };

    for (std::size_t off = 0; off < data.size(); off += chunk_bytes) {
      const std::size_t n = std::min(chunk_bytes, data.size() - off);
      // The span is a view into `data` — stream_frame writes it to the
      // wire synchronously, so nothing is copied into an owned frame.
      const std::span<const u8> piece(data.data() + off, n);
      checksum = stream_checksum(piece, checksum);
      while (window.size() >= window_cap) drain_one();
      window.push_back(stream_frame(chunk_op, sid, piece).result);
    }
    while (!window.empty()) drain_one();

    RpcCall end = stream_end(end_op, sid, data.size(), checksum);
    (void)end.result.get();  // StreamSummary ack; throws typed on abort
    out->set_value(std::move(result));
  } catch (...) {
    // In-flight chunk acks behind the failure still resolve (the reader's
    // generation sweep or the sender's own failure path guarantees it);
    // drain them so no future outlives this frame's stack.
    const std::exception_ptr err = std::current_exception();
    while (!window.empty()) {
      try {
        (void)window.front().get();
      } catch (...) {
      }
      window.pop_front();
    }
    out->set_exception(err);
  }
}

RpcCall RpcClient::submit_frame(Frame f) {
  return submit_frame(f.h, std::span<const u8>(f.payload));
}

RpcCall RpcClient::submit_frame(Header h, std::span<const u8> payload) {
  const u64 id = next_id_.fetch_add(1, std::memory_order_relaxed);
  h.kind = Kind::kRequest;
  h.request_id = id;
  h.status = Status::kOk;

  std::promise<std::vector<u8>> promise;
  RpcCall call{promise.get_future(), id};

  // Check the bound before touching the connection so an oversized
  // payload fails typed without burning a connect attempt.
  if (payload.size() > cfg_.max_payload_bytes) {
    promise.set_exception(std::make_exception_ptr(RpcError(
        Status::kBadRequest, "rpc: frame payload exceeds the protocol bound")));
    return call;
  }

  std::lock_guard<std::mutex> send_lock(send_mu_);
  std::shared_ptr<Connection> conn;
  u64 gen = 0;
  try {
    std::tie(conn, gen) = ensure_connected();
  } catch (...) {
    promise.set_exception(std::current_exception());
    return call;
  }

  // Register before writing: the response can arrive the instant the
  // bytes land, and the reader must find the pending entry.
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(id, Pending{gen, std::move(promise)});
  }

  try {
    util::FaultInjector::global().maybe_throw("rpc.client.send");
    write_frame(*conn, h, payload, cfg_.max_payload_bytes);
  } catch (...) {
    // Fail only our own promise (if the reader didn't already claim it as
    // part of a generation sweep), then kill the connection; the reader
    // observes the death, fails the generation's other pendings and
    // clears conn_ for the next sender to redial.
    std::promise<std::vector<u8>> mine;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end() && it->second.generation == gen) {
        mine = std::move(it->second.promise);
        pending_.erase(it);
        have = true;
      }
    }
    if (have) {
      mine.set_exception(std::make_exception_ptr(
          TransportError("rpc client: send failed")));
    }
    conn->shutdown();
  }
  return call;
}

std::pair<std::shared_ptr<Connection>, u64> RpcClient::ensure_connected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw TransportError("rpc client: shutting down");
    }
    if (conn_) return {conn_, generation_};
  }

  Xoshiro256 rng(0x5bd1e995u + next_id_.load(std::memory_order_relaxed));
  std::string last_error = "no attempt made";
  const int attempts = cfg_.connect_attempts > 0 ? cfg_.connect_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      util::backoff_sleep(cfg_.backoff, attempt - 1, rng, *clock_);
    }
    try {
      util::FaultInjector::global().maybe_throw("rpc.client.connect");
      std::unique_ptr<Connection> fresh = connector_();
      if (!fresh) throw TransportError("connector returned null");
      std::shared_ptr<Connection> conn = std::move(fresh);
      u64 gen;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          conn->shutdown();
          throw TransportError("rpc client: shutting down");
        }
        conn_ = conn;
        gen = ++generation_;
      }
      conn_cv_.notify_all();  // hand the new connection to the reader
      return {conn, gen};
    } catch (const TransportError& e) {
      if (std::string_view(e.what()) == "rpc client: shutting down") throw;
      last_error = e.what();
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  throw TransportError("rpc client: connect failed after " +
                       std::to_string(attempts) +
                       " attempts: " + last_error);
}

void RpcClient::reader_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    u64 gen = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      conn_cv_.wait(lock, [&] { return conn_ != nullptr || stopping_; });
      if (stopping_) return;
      conn = conn_;
      gen = generation_;
    }

    // Drain responses until the connection dies, then fail whatever this
    // generation still has pending. The reader is the only actor that
    // fails a whole generation; senders only ever fail their own request.
    std::string why = "connection closed";
    try {
      for (;;) {
        util::FaultInjector::global().maybe_throw("rpc.client.read");
        std::array<u8, kHeaderBytes> hdr;
        if (!conn->read_exact(hdr.data(), hdr.size())) break;  // clean EOF
        const Header h = decode_header(
            std::span<const u8, kHeaderBytes>(hdr),
            response_payload_bound(cfg_.max_payload_bytes));
        std::vector<u8> payload(h.payload_len);
        if (h.payload_len > 0 &&
            !conn->read_exact(payload.data(), payload.size())) {
          throw TransportError("rpc client: EOF before payload");
        }
        if (h.kind != Kind::kResponse) {
          throw ProtocolError("request frame on the response stream",
                              Status::kBadRequest, false, h.request_id);
        }

        std::promise<std::vector<u8>> promise;
        bool have = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pending_.find(h.request_id);
          if (it != pending_.end() && it->second.generation == gen) {
            promise = std::move(it->second.promise);
            pending_.erase(it);
            have = true;
          }
        }
        // Unmatched ids are tolerated: the sender may have failed the
        // request locally before the response arrived.
        if (!have) continue;
        if (h.status == Status::kOk) {
          promise.set_value(std::move(payload));
        } else {
          promise.set_exception(status_exception(h.status, payload));
        }
      }
    } catch (const std::exception& e) {
      why = e.what();
    }

    conn->shutdown();
    std::vector<std::promise<std::vector<u8>>> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn_ == conn) conn_ = nullptr;  // next sender redials
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.generation == gen) {
          orphans.push_back(std::move(it->second.promise));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& p : orphans) {
      p.set_exception(std::make_exception_ptr(
          TransportError("rpc client: connection lost: " + why)));
    }
  }
}

}  // namespace parhuff::rpc
