#include "rpc/client.hpp"

#include <cstring>
#include <exception>

#include "svc/deadline.hpp"
#include "util/fault_inject.hpp"
#include "util/rng.hpp"

namespace parhuff::rpc {

namespace {

[[nodiscard]] std::string payload_message(const std::vector<u8>& payload) {
  return std::string(payload.begin(), payload.end());
}

/// Map a non-kOk response onto the exception the caller's future carries.
/// Deadline/cancel reuse the in-process service exception types so callers
/// handle both transports with one catch.
[[nodiscard]] std::exception_ptr status_exception(
    Status s, const std::vector<u8>& payload) {
  switch (s) {
    case Status::kDeadlineExceeded:
      return std::make_exception_ptr(svc::DeadlineExceeded());
    case Status::kCancelled:
      return std::make_exception_ptr(svc::CancelledError());
    default:
      return std::make_exception_ptr(RpcError(s, payload_message(payload)));
  }
}

}  // namespace

RpcClient::RpcClient(Connector connect, ClientConfig cfg)
    : connector_(std::move(connect)),
      cfg_(cfg),
      clock_(cfg.clock ? cfg.clock : &util::Clock::real()) {
  if (!connector_) {
    throw std::invalid_argument("RpcClient: null connector");
  }
  reader_ = std::thread([this] { reader_loop(); });
}

RpcClient::~RpcClient() {
  std::shared_ptr<Connection> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    conn = conn_;
  }
  conn_cv_.notify_all();
  if (conn) conn->shutdown();  // unblocks a reader parked in read_exact
  if (reader_.joinable()) reader_.join();

  // The reader fails its own generation's pendings as connections die; a
  // request registered after the final connection loss can still be left.
  std::unordered_map<u64, Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(pending_);
  }
  for (auto& [id, p] : leftover) {
    p.promise.set_exception(std::make_exception_ptr(
        TransportError("rpc client: destroyed with request in flight")));
  }
}

RpcCall RpcClient::compress(std::span<const u8> symbol_bytes, u8 sym_width,
                            const RpcOptions& opts) {
  Frame f;
  f.h.op = Op::kCompress;
  f.h.sym_width = sym_width;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload.assign(symbol_bytes.begin(), symbol_bytes.end());
  return submit_frame(std::move(f));
}

RpcCall RpcClient::decompress(std::span<const u8> container, u8 sym_width,
                              const RpcOptions& opts) {
  Frame f;
  f.h.op = Op::kDecompress;
  f.h.sym_width = sym_width;
  f.h.priority = static_cast<u8>(opts.priority);
  f.h.deadline_micros =
      opts.deadline_seconds > 0
          ? static_cast<u64>(opts.deadline_seconds * 1e6)
          : 0;
  f.payload.assign(container.begin(), container.end());
  return submit_frame(std::move(f));
}

std::future<void> RpcClient::cancel(u64 request_id) {
  Frame f;
  f.h.op = Op::kCancel;
  f.payload.resize(8);
  std::memcpy(f.payload.data(), &request_id, 8);  // LE hosts only, like bytesio
  RpcCall call = submit_frame(std::move(f));
  return std::async(std::launch::deferred,
                    [fut = std::move(call.result)]() mutable { fut.get(); });
}

std::future<std::string> RpcClient::stats() {
  Frame f;
  f.h.op = Op::kStats;
  RpcCall call = submit_frame(std::move(f));
  return std::async(std::launch::deferred,
                    [fut = std::move(call.result)]() mutable {
                      return payload_message(fut.get());
                    });
}

std::future<HealthInfo> RpcClient::health() {
  Frame f;
  f.h.op = Op::kHealth;
  RpcCall call = submit_frame(std::move(f));
  return std::async(std::launch::deferred,
                    [fut = std::move(call.result)]() mutable {
                      return decode_health_info(fut.get());
                    });
}

RpcCall RpcClient::submit_frame(Frame f) {
  const u64 id = next_id_.fetch_add(1, std::memory_order_relaxed);
  f.h.kind = Kind::kRequest;
  f.h.request_id = id;
  f.h.status = Status::kOk;

  std::promise<std::vector<u8>> promise;
  RpcCall call{promise.get_future(), id};

  // Check the bound before touching the connection so an oversized
  // payload fails typed without burning a connect attempt.
  if (f.payload.size() > cfg_.max_payload_bytes) {
    promise.set_exception(std::make_exception_ptr(RpcError(
        Status::kBadRequest, "rpc: frame payload exceeds the protocol bound")));
    return call;
  }

  std::lock_guard<std::mutex> send_lock(send_mu_);
  std::shared_ptr<Connection> conn;
  u64 gen = 0;
  try {
    std::tie(conn, gen) = ensure_connected();
  } catch (...) {
    promise.set_exception(std::current_exception());
    return call;
  }

  // Register before writing: the response can arrive the instant the
  // bytes land, and the reader must find the pending entry.
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(id, Pending{gen, std::move(promise)});
  }

  try {
    util::FaultInjector::global().maybe_throw("rpc.client.send");
    write_frame(*conn, f, cfg_.max_payload_bytes);
  } catch (...) {
    // Fail only our own promise (if the reader didn't already claim it as
    // part of a generation sweep), then kill the connection; the reader
    // observes the death, fails the generation's other pendings and
    // clears conn_ for the next sender to redial.
    std::promise<std::vector<u8>> mine;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it != pending_.end() && it->second.generation == gen) {
        mine = std::move(it->second.promise);
        pending_.erase(it);
        have = true;
      }
    }
    if (have) {
      mine.set_exception(std::make_exception_ptr(
          TransportError("rpc client: send failed")));
    }
    conn->shutdown();
  }
  return call;
}

std::pair<std::shared_ptr<Connection>, u64> RpcClient::ensure_connected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw TransportError("rpc client: shutting down");
    }
    if (conn_) return {conn_, generation_};
  }

  Xoshiro256 rng(0x5bd1e995u + next_id_.load(std::memory_order_relaxed));
  std::string last_error = "no attempt made";
  const int attempts = cfg_.connect_attempts > 0 ? cfg_.connect_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      util::backoff_sleep(cfg_.backoff, attempt - 1, rng, *clock_);
    }
    try {
      util::FaultInjector::global().maybe_throw("rpc.client.connect");
      std::unique_ptr<Connection> fresh = connector_();
      if (!fresh) throw TransportError("connector returned null");
      std::shared_ptr<Connection> conn = std::move(fresh);
      u64 gen;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          conn->shutdown();
          throw TransportError("rpc client: shutting down");
        }
        conn_ = conn;
        gen = ++generation_;
      }
      conn_cv_.notify_all();  // hand the new connection to the reader
      return {conn, gen};
    } catch (const TransportError& e) {
      if (std::string_view(e.what()) == "rpc client: shutting down") throw;
      last_error = e.what();
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  throw TransportError("rpc client: connect failed after " +
                       std::to_string(attempts) +
                       " attempts: " + last_error);
}

void RpcClient::reader_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    u64 gen = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      conn_cv_.wait(lock, [&] { return conn_ != nullptr || stopping_; });
      if (stopping_) return;
      conn = conn_;
      gen = generation_;
    }

    // Drain responses until the connection dies, then fail whatever this
    // generation still has pending. The reader is the only actor that
    // fails a whole generation; senders only ever fail their own request.
    std::string why = "connection closed";
    try {
      for (;;) {
        util::FaultInjector::global().maybe_throw("rpc.client.read");
        std::array<u8, kHeaderBytes> hdr;
        if (!conn->read_exact(hdr.data(), hdr.size())) break;  // clean EOF
        const Header h = decode_header(
            std::span<const u8, kHeaderBytes>(hdr),
            response_payload_bound(cfg_.max_payload_bytes));
        std::vector<u8> payload(h.payload_len);
        if (h.payload_len > 0 &&
            !conn->read_exact(payload.data(), payload.size())) {
          throw TransportError("rpc client: EOF before payload");
        }
        if (h.kind != Kind::kResponse) {
          throw ProtocolError("request frame on the response stream",
                              Status::kBadRequest, false, h.request_id);
        }

        std::promise<std::vector<u8>> promise;
        bool have = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pending_.find(h.request_id);
          if (it != pending_.end() && it->second.generation == gen) {
            promise = std::move(it->second.promise);
            pending_.erase(it);
            have = true;
          }
        }
        // Unmatched ids are tolerated: the sender may have failed the
        // request locally before the response arrived.
        if (!have) continue;
        if (h.status == Status::kOk) {
          promise.set_value(std::move(payload));
        } else {
          promise.set_exception(status_exception(h.status, payload));
        }
      }
    } catch (const std::exception& e) {
      why = e.what();
    }

    conn->shutdown();
    std::vector<std::promise<std::vector<u8>>> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn_ == conn) conn_ = nullptr;  // next sender redials
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.generation == gen) {
          orphans.push_back(std::move(it->second.promise));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& p : orphans) {
      p.set_exception(std::make_exception_ptr(
          TransportError("rpc client: connection lost: " + why)));
    }
  }
}

}  // namespace parhuff::rpc
