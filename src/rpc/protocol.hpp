#pragma once
// Wire protocol for the cross-process compression service (docs/rpc.md).
//
// Every message — request or response — is one length-prefixed frame: a
// fixed 32-byte little-endian header followed by `payload_len` bytes of
// payload. Layout:
//
//   offset  size  field
//        0     4  magic            0x43524850 ("PHRC")
//        4     1  version          kMinVersion..kVersion accepted
//        5     1  kind             0 request / 1 response
//        6     1  op               Op (compress/decompress/cancel/stats/
//                                  health/stream begin-chunk-end)
//        7     1  sym_width        payload symbol width in bytes (1 or 2)
//        8     8  request_id       caller-chosen; echoed on the response
//       16     1  priority         svc::Priority numeric value
//       17     1  status           Status; always kOk on requests
//       18     2  reserved         must-ignore (forward compatibility)
//       20     4  payload_len      bytes following the header
//       24     8  deadline_micros  relative budget in µs; 0 = none.
//                                  On stream *Chunk/End* frames (both
//                                  kinds) this slot carries the u64
//                                  stream_id instead — the stream's
//                                  deadline was anchored once at Begin,
//                                  which frees the field.
//
// The deadline is *relative* on the wire (the client and server do not
// share a clock); the server re-anchors it against its own injected
// util::Clock on receipt. Payloads by op:
//
//   compress    request: raw symbols (sym_width bytes each)
//               response: PHF2 container (core/format.hpp serialize())
//   decompress  request: PHF2 container — response: raw symbols
//   cancel      request: u64 target request id — response: empty
//   stats       request: empty — response: parhuff-metrics-v1 JSON text
//   health      request: empty — response: HealthInfo (fixed LE layout);
//               protocol v2. A v1 server never sees the op (the version
//               gate answers kUnsupportedVersion first); a v2 server that
//               somehow receives an op it does not know answers
//               kBadRequest — both typed, so a health prober can always
//               distinguish "legacy peer" from "dead peer".
//
// Protocol v3 adds the streaming verbs (kCompressStreamBegin/Chunk/End
// and the decompress mirror) so payloads larger than one frame's bound
// stream as a sequence of bounded chunk frames and wire transfer overlaps
// encode/decode server-side:
//
//   *StreamBegin  request: empty — response: u64 LE server-assigned
//                 stream id. The Begin frame's deadline_micros anchors the
//                 budget for the WHOLE stream (re-anchored once, server
//                 clock); chunk frames carry the stream id where the
//                 deadline would live.
//   *StreamChunk  request: ≤ stream_chunk_bytes of raw symbols (compress)
//                 or PHS2 stream bytes (decompress) — response: the
//                 output produced so far by this chunk (possibly empty
//                 for decompress while a segment straddles chunks).
//   *StreamEnd    request: StreamEndRequest (u64 total bytes | u64
//                 stream_checksum over every chunk payload byte, in
//                 order) — response: StreamSummary (u64 bytes_in |
//                 u64 bytes_out | u64 checksum). A mismatch aborts the
//                 stream with kBadRequest.
//
// Any stream error (unknown id, oversized chunk, checksum mismatch,
// deadline, cancel, fault) answers typed on the offending frame and
// aborts the stream: the id is forgotten and later frames for it answer
// kBadRequest ("unknown stream"). Streams never stall silently.
//
// Protocol v4 adds the fused lossy verbs (docs/lossy.md):
//
//   lossy_compress    request: LossyRequestHeader (48-byte LE quantizer
//                     config) followed by nx*ny*nz little-endian f32
//                     samples — response: PHL2 container.
//   lossy_decompress  request: PHL1/PHL2 container — response:
//                     LossyFieldHeader (32-byte LE dims + resolved bound)
//                     followed by the reconstructed f32 samples.
//
// Version negotiation is unchanged: a v3 server that receives a v4 frame
// answers kUnsupportedVersion at the version gate, and a v3 frame that
// somehow carries a lossy op fails the op range check with kBadRequest —
// typed either way, never a hang.
//
// A non-kOk response carries a human-readable message as payload. Frame
// parsing distinguishes two failure classes: ProtocolError (a structurally
// invalid frame — the server answers with a typed error when enough of the
// header parsed to address one, else drops the connection) and
// TransportError (the byte stream itself died mid-frame; always fatal for
// the connection). See docs/rpc.md for the full error model.

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace parhuff::rpc {

inline constexpr u32 kMagic = 0x43524850u;  // "PHRC" when read little-endian
/// Current protocol version. v2 added the health op (kHealth) for in-band
/// shard probing; v3 added the streaming verbs (Begin/Chunk/End pairs);
/// v4 adds the fused lossy verbs (kLossyCompress/kLossyDecompress).
/// The header layout and every earlier op are unchanged, so the whole
/// [kMinVersion, kVersion] range is still accepted.
inline constexpr u8 kVersion = 4;
inline constexpr u8 kMinVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
/// Default bound on a single frame's payload; both ends reject bigger
/// frames (kBadRequest) before allocating.
inline constexpr u32 kMaxPayloadBytes = 64u << 20;
/// Default bound on one stream chunk's payload (v3 streaming verbs).
/// Deliberately much smaller than kMaxPayloadBytes: it is the server's
/// per-stream buffering bound and the unit of transfer/encode overlap.
inline constexpr u32 kDefaultStreamChunkBytes = 4u << 20;

/// Responses may outgrow the request bound (container overhead on
/// incompressible input), so the response direction gets 1 MiB of slack —
/// the server encodes against this bound and the client decodes with it.
[[nodiscard]] inline constexpr u32 response_payload_bound(u32 request_bound) {
  const u64 b = static_cast<u64>(request_bound) + (u64{1} << 20);
  return b > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<u32>(b);
}

enum class Kind : u8 { kRequest = 0, kResponse = 1 };

enum class Op : u8 {
  kCompress = 1,
  kDecompress = 2,
  kCancel = 3,
  kStats = 4,
  kHealth = 5,  ///< protocol v2: compact load/liveness snapshot (HealthInfo)
  // Protocol v3 streaming verbs. A stream is Begin, then N Chunk frames,
  // then End; the server assigns the stream id (Begin response payload)
  // and Chunk/End frames carry it in the header's offset-24 slot.
  kCompressStreamBegin = 6,
  kCompressStreamChunk = 7,
  kCompressStreamEnd = 8,
  kDecompressStreamBegin = 9,
  kDecompressStreamChunk = 10,
  kDecompressStreamEnd = 11,
  // Protocol v4 fused lossy verbs (lossy/fused.hpp). sym_width on these
  // frames describes the residual Huffman alphabet the server should use
  // on compress (derived from nbins; informational) and is ignored on
  // decompress (the container is self-describing).
  kLossyCompress = 12,
  kLossyDecompress = 13,
};

/// True for all six v3 streaming ops.
[[nodiscard]] inline constexpr bool is_stream_op(Op op) {
  return op >= Op::kCompressStreamBegin && op <= Op::kDecompressStreamEnd;
}

/// True for ops that open a stream (and therefore still carry a deadline
/// in the offset-24 slot).
[[nodiscard]] inline constexpr bool is_stream_begin_op(Op op) {
  return op == Op::kCompressStreamBegin || op == Op::kDecompressStreamBegin;
}

/// True for Chunk/End ops, whose offset-24 slot carries the stream id
/// instead of a deadline (the deadline was anchored at Begin).
[[nodiscard]] inline constexpr bool is_stream_ref_op(Op op) {
  return op == Op::kCompressStreamChunk || op == Op::kCompressStreamEnd ||
         op == Op::kDecompressStreamChunk || op == Op::kDecompressStreamEnd;
}

enum class Status : u8 {
  kOk = 0,
  kBadRequest = 1,          ///< malformed frame or payload
  kUnsupportedVersion = 2,  ///< header version != kVersion
  kQueueFull = 3,           ///< service admission rejected (kReject policy)
  kDeadlineExceeded = 4,    ///< request deadline passed server-side
  kCancelled = 5,           ///< request cancelled (cancel op or handle)
  kShuttingDown = 6,        ///< server stopping; request not admitted
  kInternal = 7,            ///< unexpected server-side failure
};

[[nodiscard]] const char* status_name(Status s);

/// The byte stream under a connection failed: mid-frame EOF, short write,
/// socket error, or the peer vanished. Always connection-fatal; pending
/// requests on the connection fail with this type.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A non-kOk response status, surfaced through the client's future.
/// (Deadline/cancel statuses map to the svc exception types instead —
/// see RpcClient.)
class RpcError : public std::runtime_error {
 public:
  RpcError(Status status, const std::string& message)
      : std::runtime_error("rpc: " + std::string(status_name(status)) +
                           ": " + message),
        status_(status) {}
  [[nodiscard]] Status status() const { return status_; }

 private:
  Status status_;
};

/// A structurally invalid frame. `can_respond` says whether enough of the
/// header parsed to address a typed error response (request id known);
/// otherwise the stream position is unknowable and the connection must be
/// dropped.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(const std::string& msg, Status status, bool can_respond,
                u64 request_id)
      : std::runtime_error("rpc protocol: " + msg),
        status_(status),
        can_respond_(can_respond),
        request_id_(request_id) {}
  [[nodiscard]] Status status() const { return status_; }
  [[nodiscard]] bool can_respond() const { return can_respond_; }
  [[nodiscard]] u64 request_id() const { return request_id_; }

 private:
  Status status_;
  bool can_respond_;
  u64 request_id_;
};

/// Decoded frame header (payload read separately).
struct Header {
  Kind kind = Kind::kRequest;
  Op op = Op::kCompress;
  u8 sym_width = 1;
  u64 request_id = 0;
  u8 priority = 1;  ///< svc::Priority numeric value
  Status status = Status::kOk;
  u32 payload_len = 0;
  u64 deadline_micros = 0;  ///< relative budget; 0 = none
  /// v3 streaming: the server-assigned stream this Chunk/End frame
  /// belongs to. Shares the offset-24 wire slot with deadline_micros
  /// (is_stream_ref_op decides which one is on the wire); 0 elsewhere.
  u64 stream_id = 0;
};

/// A whole message: header plus owned payload. `h.payload_len` is derived
/// from `payload.size()` when encoding.
struct Frame {
  Header h;
  std::vector<u8> payload;
};

/// Payload of a kHealth response: the compact load/liveness snapshot a
/// router's in-band probe consumes. Fixed little-endian layout
/// (kHealthInfoBytes): u32 info_version | u8 accepting | u8[3] reserved |
/// u64 queue_depth | u64 queue_capacity | u64 connections |
/// u64 max_connections. Decoders ignore trailing bytes, so future servers
/// may append fields without breaking old probers.
struct HealthInfo {
  u32 info_version = 1;
  bool accepting = true;    ///< false once the server began shutting down
  u64 queue_depth = 0;      ///< outstanding service requests right now
  u64 queue_capacity = 0;   ///< admission bound (0 = unknown)
  u64 connections = 0;      ///< live transport connections
  u64 max_connections = 0;  ///< accept cap
};

inline constexpr std::size_t kHealthInfoBytes = 40;

[[nodiscard]] std::vector<u8> encode_health_info(const HealthInfo& info);

/// Throws ProtocolError (kBadRequest, can_respond=false) on a short or
/// unversioned payload; trailing bytes beyond the known layout are ignored.
[[nodiscard]] HealthInfo decode_health_info(std::span<const u8> payload);

/// Payload of a *StreamEnd request: what the sender believes it streamed.
/// 16-byte LE layout: u64 total_bytes | u64 checksum, where checksum is
/// stream_checksum() chained over every chunk payload byte in send order
/// (util/hash.hpp). The server verifies both before completing.
struct StreamEndRequest {
  u64 total_bytes = 0;
  u64 checksum = 0;
};

/// Payload of a *StreamEnd kOk response. 24-byte LE layout:
/// u64 bytes_in | u64 bytes_out | u64 checksum (the verified input
/// checksum, echoed).
struct StreamSummary {
  u64 bytes_in = 0;
  u64 bytes_out = 0;
  u64 checksum = 0;
};

inline constexpr std::size_t kStreamEndRequestBytes = 16;
inline constexpr std::size_t kStreamSummaryBytes = 24;

[[nodiscard]] std::vector<u8> encode_stream_end_request(
    const StreamEndRequest& req);
/// Throws ProtocolError (kBadRequest, can_respond=false) on a short
/// payload; trailing bytes are ignored (forward slack).
[[nodiscard]] StreamEndRequest decode_stream_end_request(
    std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_stream_summary(const StreamSummary& s);
[[nodiscard]] StreamSummary decode_stream_summary(std::span<const u8> payload);

/// Leading bytes of a kLossyCompress request payload: the quantizer
/// configuration, followed immediately by nx*ny*nz LE f32 samples.
/// 48-byte LE layout: u64 nx | u64 ny | u64 nz | f64 rel_error_bound |
/// f64 abs_error_bound | u32 nbins | u32 rle_min_run. This header is also
/// the router's affinity key for lossy traffic: fields with the same
/// shape and quantizer land on the same shard, so their residual
/// histograms can share its codebook cache.
struct LossyRequestHeader {
  u64 nx = 0;
  u64 ny = 0;
  u64 nz = 0;
  double rel_error_bound = 0;
  double abs_error_bound = 0;
  u32 nbins = 0;
  u32 rle_min_run = 0;
};

/// Leading bytes of a kLossyDecompress kOk response payload: the field's
/// shape and the resolved absolute error bound, followed by nx*ny*nz LE
/// f32 reconstructed samples. 32-byte LE layout: u64 nx | u64 ny | u64 nz
/// | f64 error_bound.
struct LossyFieldHeader {
  u64 nx = 0;
  u64 ny = 0;
  u64 nz = 0;
  double error_bound = 0;
};

inline constexpr std::size_t kLossyRequestHeaderBytes = 48;
inline constexpr std::size_t kLossyFieldHeaderBytes = 32;

[[nodiscard]] std::vector<u8> encode_lossy_request_header(
    const LossyRequestHeader& h);
/// Throws ProtocolError (kBadRequest, can_respond=false) on a short
/// payload; bytes beyond the header belong to the sample stream and are
/// not examined here.
[[nodiscard]] LossyRequestHeader decode_lossy_request_header(
    std::span<const u8> payload);

[[nodiscard]] std::vector<u8> encode_lossy_field_header(
    const LossyFieldHeader& h);
[[nodiscard]] LossyFieldHeader decode_lossy_field_header(
    std::span<const u8> payload);

/// Split a kLossyDecompress kOk response payload into its header and the
/// reconstructed f32 samples. Throws ProtocolError (kBadRequest) when the
/// sample byte count disagrees with the header's dims (overflow-safe — a
/// forged header can never wrap the product into a plausible count).
[[nodiscard]] std::pair<LossyFieldHeader, std::vector<float>>
decode_lossy_field_payload(std::span<const u8> payload);

[[nodiscard]] std::array<u8, kHeaderBytes> encode_header(const Header& h);

/// Header + payload in one contiguous buffer (one write syscall per
/// frame). Throws std::length_error when the payload exceeds
/// `max_payload`.
[[nodiscard]] std::vector<u8> encode_frame(
    const Frame& f, u32 max_payload = kMaxPayloadBytes);

/// Validates magic, version, kind, op, status range and the payload bound.
/// Throws ProtocolError; never reads beyond the 32 bytes.
[[nodiscard]] Header decode_header(
    std::span<const u8, kHeaderBytes> bytes,
    u32 max_payload = kMaxPayloadBytes);

}  // namespace parhuff::rpc
