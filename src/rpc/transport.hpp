#pragma once
// Pluggable byte-stream transport under the RPC framing (docs/rpc.md).
//
// Two implementations ship:
//   * Unix-domain sockets (transport_unix.cpp) — the production path;
//   * an in-memory loopback (transport_inmem.hpp) — a deterministic pipe
//     pair for tests: no sockets, no file system, no real waits beyond
//     event-driven condition variables, so protocol/fault scenarios run
//     under util::VirtualClock byte-for-byte reproducibly.
//
// The contract is deliberately tiny — blocking exact-read/full-write plus
// an unblocking shutdown — because the framing above it (rpc/protocol.hpp)
// needs nothing else, and both implementations can honor it exactly.

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "rpc/protocol.hpp"
#include "util/types.hpp"

namespace parhuff::rpc {

/// One bidirectional byte stream. All methods are blocking;
/// shutdown() may be called from any thread to unblock both directions.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Read exactly `n` bytes into `dst`. Returns false on a clean EOF
  /// *before the first byte* (the peer closed between frames); throws
  /// TransportError on EOF mid-buffer or any stream error. `n` == 0
  /// returns true.
  virtual bool read_exact(u8* dst, std::size_t n) = 0;

  /// Write all `n` bytes or throw TransportError.
  virtual void write_all(const u8* src, std::size_t n) = 0;

  /// Scatter-write two buffers back to back (header + payload on the hot
  /// frame path, skipping the contiguous-copy assembly). The default is
  /// two write_all() calls; transports override it with a genuinely
  /// vectored write. NOT atomic against concurrent writers — frame
  /// senders must already hold their side's write serialization.
  virtual void write_two(const u8* a, std::size_t na, const u8* b,
                        std::size_t nb) {
    write_all(a, na);
    if (nb != 0) write_all(b, nb);
  }

  /// Close both directions and unblock any blocked reader/writer (they
  /// observe EOF / TransportError). Idempotent, thread-safe.
  virtual void shutdown() = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Block for the next connection; nullptr once close() was called.
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Stop accepting and unblock a blocked accept(). Idempotent.
  virtual void close() = 0;
};

/// Encode the header on the stack and scatter-write header + borrowed
/// payload — the zero-copy send path: a streamed chunk's bytes go from
/// the caller's buffer straight into the socket without ever being
/// assembled into a contiguous frame (or even into a Frame's owned
/// vector). The span is only read during the call, so callers may lend
/// views into buffers they keep. Throws std::length_error when the
/// payload exceeds `max_payload`.
inline void write_frame(Connection& c, const Header& header,
                        std::span<const u8> payload,
                        u32 max_payload = kMaxPayloadBytes) {
  if (payload.size() > max_payload) {
    throw std::length_error("rpc: frame payload exceeds the protocol bound");
  }
  Header h = header;
  h.payload_len = static_cast<u32>(payload.size());
  const std::array<u8, kHeaderBytes> hb = encode_header(h);
  c.write_two(hb.data(), hb.size(), payload.data(), payload.size());
}

/// Owned-frame convenience over the span overload — the hot-path
/// replacement for encode_frame() + write_all(), which assembles (and
/// allocates) a contiguous copy of the whole frame first.
inline void write_frame(Connection& c, const Frame& f,
                        u32 max_payload = kMaxPayloadBytes) {
  write_frame(c, f.h, std::span<const u8>(f.payload), max_payload);
}

// --- Unix-domain-socket transport (transport_unix.cpp). ---------------------

/// Bind + listen on `path` (an existing socket file is replaced). Throws
/// TransportError on any socket-layer failure.
[[nodiscard]] std::unique_ptr<Listener> listen_unix(const std::string& path);

/// Connect to a server listening on `path`.
[[nodiscard]] std::unique_ptr<Connection> connect_unix(
    const std::string& path);

}  // namespace parhuff::rpc
