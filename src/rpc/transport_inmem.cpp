#include "rpc/transport_inmem.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>
#include <vector>

namespace parhuff::rpc {

namespace {

using detail::Pipe;

/// One endpoint: reads from `in`, writes to `out`. The two endpoints of a
/// connection hold the same pipes crossed over.
class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~LoopbackConnection() override { shutdown(); }

  bool read_exact(u8* dst, std::size_t n) override {
    std::size_t got = 0;
    std::unique_lock<std::mutex> lock(in_->mu);
    while (got < n) {
      in_->cv.wait(lock,
                   [&] { return in_->unread() != 0 || in_->closed; });
      const std::size_t take = std::min(n - got, in_->unread());
      std::memcpy(dst + got, in_->buf.data() + in_->head, take);
      in_->head += take;
      in_->compact();
      got += take;
      if (got < n && in_->closed && in_->unread() == 0) {
        if (got == 0) return false;  // clean EOF between frames
        throw TransportError("rpc loopback: EOF mid-frame");
      }
    }
    return true;
  }

  void write_all(const u8* src, std::size_t n) override {
    {
      std::lock_guard<std::mutex> lock(out_->mu);
      if (out_->closed) {
        throw TransportError("rpc loopback: write on closed connection");
      }
      out_->buf.insert(out_->buf.end(), src, src + n);
    }
    // Exactly one reader per pipe direction; notify_one avoids spurious
    // wakeup churn on the hot frame path.
    out_->cv.notify_one();
  }

  void write_two(const u8* a, std::size_t na, const u8* b,
                 std::size_t nb) override {
    // One lock and one wakeup per frame instead of two: the reader sees
    // header and payload land together.
    {
      std::lock_guard<std::mutex> lock(out_->mu);
      if (out_->closed) {
        throw TransportError("rpc loopback: write on closed connection");
      }
      out_->buf.insert(out_->buf.end(), a, a + na);
      out_->buf.insert(out_->buf.end(), b, b + nb);
    }
    out_->cv.notify_one();
  }

  void shutdown() override {
    // Close both directions: our writes stop (peer drains then sees EOF)
    // and our blocked reads unblock.
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
};

}  // namespace

struct LoopbackHub::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Connection>> backlog;  // server halves
  bool closed = false;
};

namespace {

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<LoopbackHub::State> st)
      : st_(std::move(st)) {}

  std::unique_ptr<Connection> accept() override {
    std::unique_lock<std::mutex> lock(st_->mu);
    st_->cv.wait(lock, [&] { return !st_->backlog.empty() || st_->closed; });
    if (st_->backlog.empty()) return nullptr;  // closed
    std::unique_ptr<Connection> c = std::move(st_->backlog.front());
    st_->backlog.pop_front();
    return c;
  }

  void close() override {
    {
      std::lock_guard<std::mutex> lock(st_->mu);
      st_->closed = true;
    }
    st_->cv.notify_all();
  }

 private:
  std::shared_ptr<LoopbackHub::State> st_;
};

}  // namespace

LoopbackHub::LoopbackHub() : st_(std::make_shared<State>()) {}

LoopbackHub::~LoopbackHub() { close(); }

std::unique_ptr<Listener> LoopbackHub::listener() {
  return std::make_unique<LoopbackListener>(st_);
}

std::unique_ptr<Connection> LoopbackHub::connect() {
  auto c2s = std::make_shared<Pipe>();  // client writes, server reads
  auto s2c = std::make_shared<Pipe>();  // server writes, client reads
  auto client = std::make_unique<LoopbackConnection>(s2c, c2s);
  auto server = std::make_unique<LoopbackConnection>(c2s, s2c);
  {
    std::lock_guard<std::mutex> lock(st_->mu);
    if (st_->closed) {
      throw TransportError("rpc loopback: connect() on a closed hub");
    }
    st_->backlog.push_back(std::move(server));
  }
  st_->cv.notify_all();
  return client;
}

void LoopbackHub::close() {
  {
    std::lock_guard<std::mutex> lock(st_->mu);
    st_->closed = true;
    // Pending halves never accepted: closing them makes the matching
    // client side observe EOF instead of hanging.
    for (auto& c : st_->backlog) c->shutdown();
    st_->backlog.clear();
  }
  st_->cv.notify_all();
}

}  // namespace parhuff::rpc
