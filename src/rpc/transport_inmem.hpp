#pragma once
// In-memory loopback transport: a pair of byte pipes per connection, and a
// hub whose listener()/connect() halves behave exactly like a bound Unix
// socket — but with no file descriptors, no kernel buffers and no real
// waits beyond event-driven condition variables. Tests drive every
// protocol path deterministically (util::VirtualClock for time,
// util::FaultInjector at the rpc.* sites for failures) and mid-frame
// disconnects are exact: shutdown() after N written bytes is the same
// byte-level truncation every run.

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "rpc/transport.hpp"
#include "util/types.hpp"

namespace parhuff::rpc {

namespace detail {

/// One direction of a loopback connection: an unbounded byte queue.
/// Unbounded keeps write_all() non-blocking, which rules out the
/// writer-waits-for-reader deadlocks a bounded test pipe invites; RPC
/// frames are bounded by kMaxPayloadBytes anyway.
///
/// Stored as a flat vector with a read offset rather than a deque: frames
/// land and drain as whole-buffer memcpys, and once the reader catches up
/// the buffer resets and its capacity is reused for the next frame — no
/// per-block allocation churn on the hot path.
struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<u8> buf;
  std::size_t head = 0;  // buf[head..) is unread
  bool closed = false;   // no more writes; readers drain then see EOF

  [[nodiscard]] std::size_t unread() const { return buf.size() - head; }

  /// Drop drained bytes; callers hold `mu`. Cheap no-op until the drained
  /// prefix dominates the buffer.
  void compact() {
    if (head == buf.size()) {
      buf.clear();
      head = 0;
    } else if (head > (1u << 20) && head > buf.size() / 2) {
      buf.erase(buf.begin(),
                buf.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// A rendezvous point: server side takes listener() once, clients call
/// connect() any number of times. Destroying the hub closes everything.
class LoopbackHub {
 public:
  LoopbackHub();
  ~LoopbackHub();
  LoopbackHub(const LoopbackHub&) = delete;
  LoopbackHub& operator=(const LoopbackHub&) = delete;

  /// The accept side. May be called once; the Listener shares the hub's
  /// lifetime state, so the hub must outlive it.
  [[nodiscard]] std::unique_ptr<Listener> listener();

  /// Create a connection pair: returns the client half, queues the server
  /// half for accept(). Throws TransportError once the hub is closed.
  [[nodiscard]] std::unique_ptr<Connection> connect();

  /// Stop accepting (accept() returns nullptr, connect() throws). Live
  /// connections are not touched — like closing a listening socket.
  void close();

  struct State;  // public so the .cpp's listener type can hold it

 private:
  std::shared_ptr<State> st_;
};

}  // namespace parhuff::rpc
