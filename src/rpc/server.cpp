#include "rpc/server.hpp"

#include <array>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "core/decode.hpp"
#include "core/format.hpp"
#include "core/streaming.hpp"
#include "lossy/lossy.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/fault_inject.hpp"
#include "util/hash.hpp"

namespace parhuff::rpc {

namespace {

[[nodiscard]] Frame error_frame(const Header& req, Status status,
                                const std::string& message) {
  Frame f;
  f.h.kind = Kind::kResponse;
  f.h.op = req.op;
  f.h.sym_width = req.sym_width;
  f.h.request_id = req.request_id;
  f.h.stream_id = req.stream_id;
  f.h.status = status;
  f.payload.assign(message.begin(), message.end());
  return f;
}

[[nodiscard]] svc::Priority to_priority(u8 p) {
  if (p >= static_cast<u8>(svc::Priority::kHigh)) return svc::Priority::kHigh;
  return static_cast<svc::Priority>(p);
}

[[nodiscard]] bool is_compress_stream_op(Op op) {
  return op == Op::kCompressStreamBegin || op == Op::kCompressStreamChunk ||
         op == Op::kCompressStreamEnd;
}

/// Incremental per-stream transcoder behind the v3 chunk verbs. One
/// instance per open stream, driven strictly sequentially by the
/// connection's writer slots, so no internal locking is needed. process()
/// consumes one chunk's payload (taking ownership — for u8 compress the
/// wire buffer IS the kernel input, no copy) and returns whatever output
/// that chunk produced; finish() validates that nothing is left dangling.
class StreamChunkCodec {
 public:
  virtual ~StreamChunkCodec() = default;
  virtual std::vector<u8> process(std::vector<u8> chunk,
                                  const CancelToken* cancel) = 0;
  virtual void finish(const CancelToken* cancel) = 0;
  /// Most bytes ever buffered across chunk boundaries — the bounded-
  /// buffering contract's measurable quantity.
  [[nodiscard]] virtual u64 buffered_high_water() const = 0;
};

/// Compress direction: first chunk trains, smooths and freezes the
/// stream codebook (add-one smoothing keeps every alphabet symbol
/// encodable however later chunks drift) and emits the PHS2 header +
/// first framed segment; each later chunk emits one framed segment.
/// Nothing is buffered between chunks.
template <typename Sym>
class CompressStreamCodec final : public StreamChunkCodec {
 public:
  explicit CompressStreamCodec(PipelineConfig pl) : sc_(std::move(pl)) {}

  std::vector<u8> process(std::vector<u8> chunk,
                          const CancelToken* cancel) override {
    if (chunk.size() % sizeof(Sym) != 0) {
      throw std::invalid_argument("chunk is not a whole number of symbols");
    }
    std::span<const Sym> syms;
    [[maybe_unused]] std::vector<Sym> realigned;
    if constexpr (std::is_same_v<Sym, u8>) {
      syms = std::span<const Sym>(chunk);
    } else {
      // Wider symbols need the realigning copy (the wire buffer has no
      // alignment guarantee); the u8 path has none.
      realigned.resize(chunk.size() / sizeof(Sym));
      if (!realigned.empty()) {
        std::memcpy(realigned.data(), chunk.data(), chunk.size());
      }
      syms = realigned;
    }
    std::vector<u8> out;
    if (syms.empty()) return out;
    if (!sc_.frozen()) {
      sc_.observe(syms);
      sc_.smooth();
      sc_.freeze();
      out = sc_.header();
    }
    std::vector<u8> frame = sc_.encode_segment(syms, cancel);
    out.insert(out.end(), frame.begin(), frame.end());
    return out;
  }

  void finish(const CancelToken*) override {}

  [[nodiscard]] u64 buffered_high_water() const override { return 0; }

 private:
  StreamingCompressor<Sym> sc_;
};

/// Decompress direction: chunks carry an arbitrary split of PHS2 header +
/// framed segments. Bytes accumulate only until the current header/
/// segment completes (never the whole stream): each complete segment is
/// decoded immediately and its symbols returned in that chunk's response.
/// `unit_bound` caps a single header or segment (so a forged length can
/// never balloon the buffer) and `output_bound` caps one response's
/// decoded bytes.
template <typename Sym>
class DecompressStreamCodec final : public StreamChunkCodec {
 public:
  DecompressStreamCodec(u64 unit_bound, u64 output_bound)
      : unit_bound_(unit_bound), output_bound_(output_bound) {}

  std::vector<u8> process(std::vector<u8> chunk,
                          const CancelToken* cancel) override {
    if (pending_.empty()) {
      pending_ = std::move(chunk);
    } else {
      pending_.insert(pending_.end(), chunk.begin(), chunk.end());
    }
    if (pending_.size() > high_water_) high_water_ = pending_.size();
    std::vector<u8> out;
    std::size_t head = 0;
    if (!dec_) {
      // Fast-fail a stream that is not PHS2 at all (e.g. a monolithic
      // PHF container pushed through the chunk verbs) instead of
      // buffering up to the bound first.
      if (pending_.size() >= 4 &&
          std::memcmp(pending_.data(), kStreamHeaderMagic, 4) != 0) {
        throw std::invalid_argument(
            "stream is not a PHS2 streamed container");
      }
      try {
        const std::size_t hl =
            StreamingDecompressor<Sym>::header_length(pending_);
        dec_.emplace(std::span<const u8>(pending_).first(hl));
        head = hl;
      } catch (const std::runtime_error&) {
        // Not parsable yet: either truncated (wait for more bytes) or
        // corrupt — the unit bound decides when waiting stops being an
        // option.
        if (pending_.size() > unit_bound_) {
          throw std::invalid_argument(
              "stream header unparsable within the buffering bound");
        }
        return out;
      }
    }
    for (;;) {
      const std::span<const u8> rest =
          std::span<const u8>(pending_).subspan(head);
      std::size_t total = 0;
      if (!StreamingDecompressor<Sym>::frame_length(rest, &total)) break;
      if (total > unit_bound_) {
        throw std::invalid_argument(
            "stream segment exceeds the buffering bound");
      }
      if (rest.size() < total) break;
      const std::vector<Sym> syms =
          dec_->decode_segment(rest.first(total), cancel);
      const std::size_t nbytes = syms.size() * sizeof(Sym);
      if (out.size() + nbytes > output_bound_) {
        throw std::invalid_argument(
            "chunk decodes beyond the response bound; stream smaller "
            "chunks");
      }
      const std::size_t at = out.size();
      out.resize(at + nbytes);
      if (nbytes != 0) std::memcpy(out.data() + at, syms.data(), nbytes);
      head += total;
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(head));
    return out;
  }

  void finish(const CancelToken*) override {
    if (!pending_.empty()) {
      throw std::invalid_argument(
          "stream ended with " + std::to_string(pending_.size()) +
          " bytes of an incomplete header/segment");
    }
  }

  [[nodiscard]] u64 buffered_high_water() const override {
    return high_water_;
  }

 private:
  u64 unit_bound_;
  u64 output_bound_;
  std::vector<u8> pending_;
  u64 high_water_ = 0;
  std::optional<StreamingDecompressor<Sym>> dec_;
};

[[nodiscard]] std::unique_ptr<StreamChunkCodec> make_stream_codec(
    Op begin_op, u8 sym_width, const ServerConfig& cfg) {
  const bool compress = begin_op == Op::kCompressStreamBegin;
  // A segment framing a whole chunk outgrows the chunk slightly
  // (codebook/stream metadata) — same reasoning as the response bound's
  // slack.
  const u64 unit_bound =
      static_cast<u64>(cfg.stream_chunk_bytes) + (u64{1} << 20);
  const u64 output_bound = response_payload_bound(cfg.max_payload_bytes);
  if (sym_width == 1) {
    if (compress) {
      return std::make_unique<CompressStreamCodec<u8>>(cfg.pipeline8);
    }
    return std::make_unique<DecompressStreamCodec<u8>>(unit_bound,
                                                       output_bound);
  }
  if (compress) {
    return std::make_unique<CompressStreamCodec<u16>>(cfg.pipeline16);
  }
  return std::make_unique<DecompressStreamCodec<u16>>(unit_bound,
                                                      output_bound);
}

}  // namespace

/// One open v3 stream. Created by Begin, destroyed by End, an error or
/// connection teardown. Chunk processing happens in writer slots, which
/// run strictly sequentially per connection, so the mutable fields need
/// no lock of their own; the token is shared with the reader's cancel
/// path (CancelToken is thread-safe).
struct RpcServer::StreamState {
  u64 id = 0;
  Op begin_op = Op::kCompressStreamBegin;
  u8 sym_width = 1;
  u64 begin_request_id = 0;
  std::shared_ptr<CancelToken> token;
  u64 bytes_in = 0;
  u64 bytes_out = 0;
  u64 checksum = kFnv1aSeed;
  std::unique_ptr<StreamChunkCodec> codec;
};

/// Everything the reader and writer of one connection share. The response
/// slots are copyable std::functions (move-only captures ride behind
/// shared_ptr, the same boxing the service's dispatch() uses); they hold a
/// raw ConnState* where needed — safe because the writer keeps the state
/// alive for as long as any slot exists.
struct RpcServer::ConnState {
  std::shared_ptr<Connection> conn;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<Frame()>> slots;  // FIFO response order
  bool reader_done = false;

  // Cancellable in-flight requests on this connection, by request id.
  std::unordered_map<u64, svc::RequestHandle> compress_inflight;
  std::unordered_map<u64, std::shared_ptr<CancelToken>> decode_inflight;

  // Open v3 streams, by server-assigned stream id. The map is guarded by
  // mu (reader opens, writer slots look up and close); the pointed-to
  // state is mutated only by the strictly-sequential writer slots.
  std::unordered_map<u64, std::shared_ptr<StreamState>> streams;

  void enqueue(std::function<Frame()> slot) {
    {
      std::lock_guard<std::mutex> lock(mu);
      slots.push_back(std::move(slot));
    }
    cv.notify_all();
  }

  void enqueue_ready(Frame f) {
    auto boxed = std::make_shared<Frame>(std::move(f));
    enqueue([boxed]() { return std::move(*boxed); });
  }

  void reader_finished() {
    {
      std::lock_guard<std::mutex> lock(mu);
      reader_done = true;
    }
    cv.notify_all();
  }

  void unregister(u64 id) {
    std::lock_guard<std::mutex> lock(mu);
    compress_inflight.erase(id);
    decode_inflight.erase(id);
  }
};

RpcServer::RpcServer(std::unique_ptr<Listener> listener, ServerConfig cfg)
    : cfg_(cfg),
      clock_(cfg.service.clock ? cfg.service.clock : &util::Clock::real()),
      svc8_(std::make_unique<svc::CompressionService<u8>>(cfg.service)),
      svc16_(std::make_unique<svc::CompressionService<u16>>(cfg.service)),
      listener_(std::move(listener)) {
  if (!listener_) {
    throw std::invalid_argument("RpcServer: listener must not be null");
  }
  if (cfg_.max_connections == 0) {
    throw std::invalid_argument("RpcServer: max_connections must be > 0");
  }
  const int io = cfg_.io_threads > 0
                     ? cfg_.io_threads
                     : static_cast<int>(1 + 2 * cfg_.max_connections);
  io_ = std::make_unique<WorkStealExecutor>(io, clock_);
  io_->submit([this] { accept_loop(); });
}

RpcServer::~RpcServer() {
  stop();
  io_.reset();  // joins accept/reader/writer tasks
  // Services tear down after the io tasks that use them (member order).
}

void RpcServer::stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    stopping_ = true;
  }
  listener_->close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& w : conns_) {
      if (std::shared_ptr<ConnState> cs = w.lock()) cs->conn->shutdown();
    }
  }
  io_->wait_idle();
}

std::size_t RpcServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t live = 0;
  for (const auto& w : conns_) {
    if (!w.expired()) ++live;
  }
  return live;
}

void RpcServer::accept_loop() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (;;) {
    std::unique_ptr<Connection> c;
    try {
      c = listener_->accept();
    } catch (...) {
      break;  // listener failed: server keeps serving live connections
    }
    if (!c) break;  // closed

    bool reject = false;
    // Fault site: the connection dies right after accept (e.g. a peer
    // that vanished during the handshake).
    try {
      util::FaultInjector::global().maybe_throw("rpc.server.accept");
    } catch (...) {
      reject = true;
    }

    std::shared_ptr<ConnState> cs;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      std::size_t live = 0;
      std::erase_if(conns_, [](const std::weak_ptr<ConnState>& w) {
        return w.expired();
      });
      live = conns_.size();
      if (stopping_ || live >= cfg_.max_connections) reject = true;
      if (!reject) {
        cs = std::make_shared<ConnState>();
        cs->conn = std::shared_ptr<Connection>(std::move(c));
        conns_.push_back(cs);
      }
    }
    if (reject) {
      if (c) c->shutdown();
      reg.counter_add("rpc.connections_rejected");
      continue;
    }
    reg.counter_add("rpc.connections_accepted");

    // The writer goes first so a reader-submit failure can still unblock
    // it via reader_finished(). Executor-submit faults are transient; a
    // connection that cannot get its tasks scheduled is dropped whole.
    bool writer_up = false;
    try {
      io_->submit([this, cs] { writer_loop(cs); });
      writer_up = true;
      io_->submit([this, cs] { reader_loop(cs); });
    } catch (...) {
      cs->conn->shutdown();
      if (writer_up) {
        cs->reader_finished();
      }
      reg.counter_add("rpc.connections_rejected");
    }
  }
}

void RpcServer::reader_loop(std::shared_ptr<ConnState> cs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  util::FaultInjector& faults = util::FaultInjector::global();
  for (;;) {
    std::array<u8, kHeaderBytes> hb;
    try {
      // Fault site: the connection dies between frames.
      faults.maybe_throw("rpc.server.read");
      if (!cs->conn->read_exact(hb.data(), kHeaderBytes)) break;
    } catch (...) {
      break;
    }

    Header h;
    try {
      h = decode_header(std::span<const u8, kHeaderBytes>(hb),
                        cfg_.max_payload_bytes);
    } catch (const ProtocolError& e) {
      reg.counter_add("rpc.protocol_errors");
      if (!e.can_respond()) break;  // stream not frame-aligned: drop
      // Stay frame-synced by consuming the declared payload when its
      // length is sane; an oversized declaration is unskippable, so the
      // typed error is the connection's last frame.
      u32 raw_len = 0;
      std::memcpy(&raw_len, hb.data() + 20, sizeof(raw_len));
      const bool resync = raw_len <= cfg_.max_payload_bytes;
      if (resync && raw_len > 0) {
        std::vector<u8> skip(raw_len);
        try {
          if (!cs->conn->read_exact(skip.data(), skip.size())) break;
        } catch (...) {
          break;
        }
      }
      reg.counter_add("rpc.protocol_error_responses");
      cs->enqueue_ready(
          error_frame(Header{.op = Op::kCompress,
                             .request_id = e.request_id()},
                      e.status(), e.what()));
      if (!resync) break;
      continue;
    }

    std::vector<u8> payload(h.payload_len);
    try {
      if (!cs->conn->read_exact(payload.data(), payload.size())) break;
    } catch (...) {
      break;
    }

    reg.counter_add("rpc.requests_received");
    if (!handle_frame(cs, h, std::move(payload))) break;
  }
  cs->reader_finished();
}

bool RpcServer::handle_frame(const std::shared_ptr<ConnState>& cs,
                             const Header& h, std::vector<u8> payload) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (h.kind != Kind::kRequest) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "response frame sent to a server"));
    return true;
  }
  switch (h.op) {
    case Op::kCompress:
      if (h.sym_width == 1) {
        handle_compress<u8>(cs, h, std::move(payload), cfg_.pipeline8,
                            *svc8_);
      } else if (h.sym_width == 2) {
        handle_compress<u16>(cs, h, std::move(payload), cfg_.pipeline16,
                             *svc16_);
      } else {
        cs->enqueue_ready(error_frame(h, Status::kBadRequest,
                                      "sym_width must be 1 or 2"));
      }
      return true;
    case Op::kDecompress:
      if (h.sym_width == 1) {
        handle_decompress<u8>(cs, h, std::move(payload));
      } else if (h.sym_width == 2) {
        handle_decompress<u16>(cs, h, std::move(payload));
      } else {
        cs->enqueue_ready(error_frame(h, Status::kBadRequest,
                                      "sym_width must be 1 or 2"));
      }
      return true;
    case Op::kCancel: {
      if (payload.size() != sizeof(u64)) {
        cs->enqueue_ready(error_frame(
            h, Status::kBadRequest, "cancel payload must be a u64 id"));
        return true;
      }
      u64 target = 0;
      std::memcpy(&target, payload.data(), sizeof(target));
      reg.counter_add("rpc.cancels_received");
      // Apply immediately in the reader — a cancel must not wait behind
      // the in-order response stream it is trying to shorten.
      {
        std::lock_guard<std::mutex> lock(cs->mu);
        if (auto it = cs->compress_inflight.find(target);
            it != cs->compress_inflight.end()) {
          it->second.cancel();
        } else if (auto jt = cs->decode_inflight.find(target);
                   jt != cs->decode_inflight.end()) {
          jt->second->request();
        }
        // Unknown id: the request already resolved (or never existed) —
        // cancel is idempotent best-effort either way.
      }
      Frame ack;
      ack.h.kind = Kind::kResponse;
      ack.h.op = Op::kCancel;
      ack.h.request_id = h.request_id;
      ack.h.status = Status::kOk;
      cs->enqueue_ready(std::move(ack));
      return true;
    }
    case Op::kHealth: {
      // Answered from the reader with current values (no future to wait
      // on): a router probe must see load *now*, not after the response
      // stream drains.
      HealthInfo info;
      info.queue_depth = svc8_->queue_depth() + svc16_->queue_depth();
      info.queue_capacity = 2 * cfg_.service.queue_capacity;
      info.connections = connection_count();
      info.max_connections = cfg_.max_connections;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        info.accepting = !stopping_;
      }
      Frame f;
      f.h.kind = Kind::kResponse;
      f.h.op = Op::kHealth;
      f.h.request_id = h.request_id;
      f.h.status = Status::kOk;
      f.payload = encode_health_info(info);
      reg.counter_add("rpc.health_probes");
      cs->enqueue_ready(std::move(f));
      return true;
    }
    case Op::kLossyCompress:
      handle_lossy_compress(cs, h, std::move(payload));
      return true;
    case Op::kLossyDecompress:
      handle_lossy_decompress(cs, h, std::move(payload));
      return true;
    case Op::kCompressStreamBegin:
    case Op::kDecompressStreamBegin:
      handle_stream_begin(cs, h);
      return true;
    case Op::kCompressStreamChunk:
    case Op::kCompressStreamEnd:
    case Op::kDecompressStreamChunk:
    case Op::kDecompressStreamEnd:
      handle_stream_frame(cs, h, std::move(payload));
      return true;
    case Op::kStats: {
      cs->enqueue([id = h.request_id]() {
        Frame f;
        f.h.kind = Kind::kResponse;
        f.h.op = Op::kStats;
        f.h.request_id = id;
        f.h.status = Status::kOk;
        obs::Json j = obs::Json::object();
        j.set("schema", obs::kMetricsSchema);
        j.set("name", "rpc-stats");
        j.set("metrics", obs::MetricsRegistry::global().to_json());
        const std::string text = j.dump();
        f.payload.assign(text.begin(), text.end());
        return f;
      });
      return true;
    }
  }
  return true;  // unreachable: decode_header validated the op
}

template <typename Sym>
void RpcServer::handle_compress(const std::shared_ptr<ConnState>& cs,
                                const Header& h, std::vector<u8> payload,
                                const PipelineConfig& pl,
                                svc::CompressionService<Sym>& svc) {
  if (payload.size() % sizeof(Sym) != 0) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "payload is not a whole number of symbols"));
    return;
  }
  // Byte symbols ride the wire buffer straight through; wider symbols
  // need the realigning copy.
  std::vector<Sym> data;
  if constexpr (std::is_same_v<Sym, u8>) {
    data = std::move(payload);
  } else {
    data.resize(payload.size() / sizeof(Sym));
    if (!data.empty()) {
      std::memcpy(data.data(), payload.data(), payload.size());
    }
  }

  svc::SubmitOptions opts;
  opts.priority = to_priority(h.priority);
  if (h.deadline_micros != 0) {
    // Relative on the wire; re-anchored against the server's clock.
    opts.deadline = svc::Deadline::in(
        static_cast<double>(h.deadline_micros) * 1e-6, *clock_);
  }

  svc::Submission<Sym> sub;
  try {
    sub = svc.submit(std::move(data), pl, opts);
  } catch (const svc::QueueFullError&) {
    cs->enqueue_ready(error_frame(h, Status::kQueueFull,
                                  "service admission queue full"));
    return;
  } catch (const std::logic_error&) {
    cs->enqueue_ready(
        error_frame(h, Status::kShuttingDown, "server shutting down"));
    return;
  } catch (const std::exception& e) {
    cs->enqueue_ready(error_frame(h, Status::kBadRequest, e.what()));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(cs->mu);
    cs->compress_inflight.emplace(h.request_id, sub.handle);
  }

  auto fut = std::make_shared<std::future<svc::CompressResult<Sym>>>(
      std::move(sub.result));
  ConnState* raw = cs.get();  // the writer keeps *cs alive past this slot
  const double start_us = obs::TraceRecorder::global().now_us();
  cs->enqueue([raw, fut, hdr = h, start_us]() {
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = Op::kCompress;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    try {
      svc::CompressResult<Sym> res = fut->get();
      Compressed<Sym> blob;
      blob.codebook = *res.codebook;
      blob.stream = std::move(res.stream);
      f.payload = serialize<Sym>(blob);
      f.h.status = Status::kOk;
    } catch (const svc::DeadlineExceeded& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const svc::CancelledError& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    raw->unregister(hdr.request_id);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

template <typename Sym>
void RpcServer::handle_decompress(const std::shared_ptr<ConnState>& cs,
                                  const Header& h, std::vector<u8> payload) {
  auto token = std::make_shared<CancelToken>();
  if (h.deadline_micros != 0) {
    token->arm_deadline(clock_->now() + util::Clock::dur(
                            static_cast<double>(h.deadline_micros) * 1e-6),
                        *clock_);
  }
  {
    std::lock_guard<std::mutex> lock(cs->mu);
    cs->decode_inflight.emplace(h.request_id, token);
  }
  auto body = std::make_shared<std::vector<u8>>(std::move(payload));
  ConnState* raw = cs.get();
  const double start_us = obs::TraceRecorder::global().now_us();
  // The decode runs on the writer task itself (requests on one connection
  // are an ordered stream anyway); the walk polls the token, so a cancel
  // frame or the deadline aborts it mid-stream (satellite: decode-side
  // cancellation).
  cs->enqueue([raw, body, token, hdr = h, start_us]() {
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = Op::kDecompress;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    try {
      token->check();  // cheap pre-flight: already cancelled/expired?
      if (body->size() >= 4 &&
          std::memcmp(body->data(), kStreamHeaderMagic, 4) == 0) {
        // A PHS2 streamed container (StreamingCompressor output — what
        // the v3 compress stream produces). Decode its framed segments
        // in order so streamed-compress results round-trip through the
        // plain decompress verb too, when they fit one frame.
        const std::span<const u8> bytes(*body);
        const std::size_t hl =
            StreamingDecompressor<Sym>::header_length(bytes);
        const StreamingDecompressor<Sym> sd(bytes.first(hl));
        for (const std::span<const u8> seg :
             StreamingDecompressor<Sym>::split_frames(bytes.subspan(hl))) {
          const std::vector<Sym> out = sd.decode_segment(seg, token.get());
          const std::size_t at = f.payload.size();
          f.payload.resize(at + out.size() * sizeof(Sym));
          if (!out.empty()) {
            std::memcpy(f.payload.data() + at, out.data(),
                        out.size() * sizeof(Sym));
          }
        }
      } else {
        const Compressed<Sym> blob = deserialize<Sym>(*body);
        // decode_auto picks the gap-array kernel when the container
        // carried gap metadata (a "PHF3" + GAP1 blob), the host decoder
        // otherwise.
        const std::vector<Sym> out =
            decode_auto<Sym>(blob.stream, blob.codebook, 0, token.get());
        f.payload.resize(out.size() * sizeof(Sym));
        if (!out.empty()) {
          std::memcpy(f.payload.data(), out.data(), f.payload.size());
        }
      }
      f.h.status = Status::kOk;
    } catch (const OperationCancelled& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const DeadlineExpired& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::runtime_error& e) {
      // Malformed container / corrupt stream: the client's fault.
      f.h.status = Status::kBadRequest;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    raw->unregister(hdr.request_id);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

void RpcServer::handle_lossy_compress(const std::shared_ptr<ConnState>& cs,
                                      const Header& h,
                                      std::vector<u8> payload) {
  // Validate the shape before any allocation is committed to it: header
  // present, sample stream a whole number of f32s, dims matching the
  // stream exactly (overflow-safe stepwise product — nx*ny*nz of forged
  // u64 dims must never wrap into a plausible count).
  LossyRequestHeader lh;
  try {
    lh = decode_lossy_request_header(payload);
  } catch (const ProtocolError& e) {
    cs->enqueue_ready(error_frame(h, Status::kBadRequest, e.what()));
    return;
  }
  const std::size_t body_bytes = payload.size() - kLossyRequestHeaderBytes;
  if (body_bytes % sizeof(float) != 0) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "payload is not a whole number of f32s"));
    return;
  }
  const u64 n_floats = body_bytes / sizeof(float);
  bool dims_ok = lh.nx != 0 && lh.ny != 0 && lh.nz != 0 && n_floats != 0;
  dims_ok = dims_ok && lh.nx <= n_floats / lh.ny;
  dims_ok = dims_ok && lh.nx * lh.ny <= n_floats / lh.nz;
  dims_ok = dims_ok && lh.nx * lh.ny * lh.nz == n_floats;
  if (!dims_ok) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "dims do not match the f32 sample count"));
    return;
  }
  if (lh.nbins < 4 || lh.nbins > 65536) {
    cs->enqueue_ready(
        error_frame(h, Status::kBadRequest, "nbins out of range [4, 65536]"));
    return;
  }

  std::vector<float> field(static_cast<std::size_t>(n_floats));
  std::memcpy(field.data(), payload.data() + kLossyRequestHeaderBytes,
              body_bytes);
  data::Dims dims{static_cast<std::size_t>(lh.nx),
                  static_cast<std::size_t>(lh.ny),
                  static_cast<std::size_t>(lh.nz)};
  lossy::FusedConfig fc;
  fc.rel_error_bound = lh.rel_error_bound;
  fc.abs_error_bound = lh.abs_error_bound;
  fc.nbins = lh.nbins;
  fc.rle_min_run = lh.rle_min_run;
  fc.pipeline = lh.nbins <= 256 ? cfg_.pipeline8 : cfg_.pipeline16;

  svc::SubmitOptions opts;
  opts.priority = to_priority(h.priority);
  if (h.deadline_micros != 0) {
    opts.deadline = svc::Deadline::in(
        static_cast<double>(h.deadline_micros) * 1e-6, *clock_);
  }

  // Route on the residual alphabet: the u8 service owns narrow quantizers,
  // the u16 service everything wider (submit_lossy enforces the same
  // predicate, so a routing bug fails loudly instead of silently).
  svc::LossySubmission sub;
  try {
    sub = lh.nbins <= 256
              ? svc8_->submit_lossy(std::move(field), dims, fc, opts)
              : svc16_->submit_lossy(std::move(field), dims, fc, opts);
  } catch (const svc::QueueFullError&) {
    cs->enqueue_ready(error_frame(h, Status::kQueueFull,
                                  "service admission queue full"));
    return;
  } catch (const std::logic_error&) {
    cs->enqueue_ready(
        error_frame(h, Status::kShuttingDown, "server shutting down"));
    return;
  } catch (const std::exception& e) {
    cs->enqueue_ready(error_frame(h, Status::kBadRequest, e.what()));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(cs->mu);
    cs->compress_inflight.emplace(h.request_id, sub.handle);
  }

  auto fut = std::make_shared<std::future<svc::LossyResult>>(
      std::move(sub.result));
  ConnState* raw = cs.get();  // the writer keeps *cs alive past this slot
  const double start_us = obs::TraceRecorder::global().now_us();
  cs->enqueue([raw, fut, hdr = h, start_us]() {
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = Op::kLossyCompress;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    try {
      svc::LossyResult res = fut->get();
      f.payload = std::move(res.container);
      f.h.status = Status::kOk;
    } catch (const svc::DeadlineExceeded& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const svc::CancelledError& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::invalid_argument& e) {
      f.h.status = Status::kBadRequest;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    raw->unregister(hdr.request_id);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

void RpcServer::handle_lossy_decompress(const std::shared_ptr<ConnState>& cs,
                                        const Header& h,
                                        std::vector<u8> payload) {
  auto token = std::make_shared<CancelToken>();
  if (h.deadline_micros != 0) {
    token->arm_deadline(clock_->now() + util::Clock::dur(
                            static_cast<double>(h.deadline_micros) * 1e-6),
                        *clock_);
  }
  {
    std::lock_guard<std::mutex> lock(cs->mu);
    cs->decode_inflight.emplace(h.request_id, token);
  }
  auto body = std::make_shared<std::vector<u8>>(std::move(payload));
  ConnState* raw = cs.get();
  const double start_us = obs::TraceRecorder::global().now_us();
  // Runs on the writer task like plain decompress; the container magic
  // (PHL1/PHL2) picks the path and the decode/reconstruct walks poll the
  // token.
  cs->enqueue([raw, body, token, hdr = h, start_us]() {
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = Op::kLossyDecompress;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    try {
      token->check();  // cheap pre-flight: already cancelled/expired?
      const lossy::Field field = lossy::decompress_field(*body, token.get());
      LossyFieldHeader fh;
      fh.nx = static_cast<u64>(field.dims.nx);
      fh.ny = static_cast<u64>(field.dims.ny);
      fh.nz = static_cast<u64>(field.dims.nz);
      fh.error_bound = field.error_bound;
      f.payload = encode_lossy_field_header(fh);
      const std::size_t at = f.payload.size();
      f.payload.resize(at + field.values.size() * sizeof(float));
      if (!field.values.empty()) {
        std::memcpy(f.payload.data() + at, field.values.data(),
                    field.values.size() * sizeof(float));
      }
      f.h.status = Status::kOk;
    } catch (const OperationCancelled& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const DeadlineExpired& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::runtime_error& e) {
      // Malformed container / corrupt stream: the client's fault.
      f.h.status = Status::kBadRequest;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    raw->unregister(hdr.request_id);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

void RpcServer::handle_stream_begin(const std::shared_ptr<ConnState>& cs,
                                    const Header& h) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (h.sym_width != 1 && h.sym_width != 2) {
    cs->enqueue_ready(
        error_frame(h, Status::kBadRequest, "sym_width must be 1 or 2"));
    return;
  }
  auto st = std::make_shared<StreamState>();
  st->id = next_stream_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  st->begin_op = h.op;
  st->sym_width = h.sym_width;
  st->begin_request_id = h.request_id;
  st->token = std::make_shared<CancelToken>();
  if (h.deadline_micros != 0) {
    // The one and only anchoring point: the whole stream runs on this
    // budget; chunk frames carry the stream id where a deadline would be.
    st->token->arm_deadline(
        clock_->now() + util::Clock::dur(
                            static_cast<double>(h.deadline_micros) * 1e-6),
        *clock_);
  }
  st->codec = make_stream_codec(h.op, h.sym_width, cfg_);
  bool over_cap = false;
  {
    std::lock_guard<std::mutex> lock(cs->mu);
    if (cs->streams.size() >= cfg_.max_streams_per_connection) {
      over_cap = true;
    } else {
      cs->streams.emplace(st->id, st);
      // Registered under the Begin request id: a kCancel naming it aborts
      // the stream at the next chunk, exactly like single-frame requests.
      cs->decode_inflight.emplace(h.request_id, st->token);
    }
  }
  if (over_cap) {
    cs->enqueue_ready(error_frame(
        h, Status::kQueueFull, "per-connection open-stream cap reached"));
    return;
  }
  reg.counter_add("rpc.streams_opened");
  Frame f;
  f.h.kind = Kind::kResponse;
  f.h.op = h.op;
  f.h.sym_width = h.sym_width;
  f.h.request_id = h.request_id;
  f.h.status = Status::kOk;
  f.payload.resize(sizeof(u64));
  std::memcpy(f.payload.data(), &st->id, sizeof(u64));
  cs->enqueue_ready(std::move(f));
}

void RpcServer::handle_stream_frame(const std::shared_ptr<ConnState>& cs,
                                    const Header& h,
                                    std::vector<u8> payload) {
  auto body = std::make_shared<std::vector<u8>>(std::move(payload));
  ConnState* raw = cs.get();  // the writer keeps *cs alive past this slot
  const double start_us = obs::TraceRecorder::global().now_us();
  // Processed in the writer slot: while this chunk encodes/decodes, the
  // reader is already pulling the next chunk off the wire — that overlap
  // is the whole point of the streaming verbs.
  cs->enqueue([this, raw, body, hdr = h, start_us]() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const bool is_end = hdr.op == Op::kCompressStreamEnd ||
                        hdr.op == Op::kDecompressStreamEnd;
    std::shared_ptr<StreamState> st;
    {
      std::lock_guard<std::mutex> lock(raw->mu);
      if (auto it = raw->streams.find(hdr.stream_id);
          it != raw->streams.end()) {
        st = it->second;
      }
    }
    if (!st) {
      return error_frame(hdr, Status::kBadRequest,
                         "unknown stream id (never opened, completed, or "
                         "already aborted)");
    }
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = hdr.op;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    f.h.stream_id = hdr.stream_id;
    bool completed = false;
    try {
      // Fault site: the stream's processing dies mid-chunk (a kernel
      // failure, an allocation failure...). The stream aborts typed.
      util::FaultInjector::global().maybe_throw("rpc.server.stream_chunk");
      if (is_compress_stream_op(hdr.op) !=
          is_compress_stream_op(st->begin_op)) {
        throw std::invalid_argument(
            "stream op family does not match the Begin op");
      }
      st->token->check();
      if (!is_end) {
        if (body->size() > cfg_.stream_chunk_bytes) {
          throw std::invalid_argument(
              "chunk exceeds stream_chunk_bytes (" +
              std::to_string(cfg_.stream_chunk_bytes) + ")");
        }
        st->checksum = stream_checksum(*body, st->checksum);
        st->bytes_in += body->size();
        reg.counter_add("rpc.stream_chunks");
        reg.counter_add("rpc.stream_bytes_in", body->size());
        std::vector<u8> out =
            st->codec->process(std::move(*body), st->token.get());
        st->bytes_out += out.size();
        reg.counter_add("rpc.stream_bytes_out", out.size());
        f.payload = std::move(out);
      } else {
        const StreamEndRequest end = decode_stream_end_request(*body);
        if (end.total_bytes != st->bytes_in) {
          throw std::invalid_argument(
              "stream length mismatch: sender claims " +
              std::to_string(end.total_bytes) + " bytes, server received " +
              std::to_string(st->bytes_in));
        }
        if (end.checksum != st->checksum) {
          throw std::invalid_argument("stream checksum mismatch");
        }
        st->codec->finish(st->token.get());
        f.payload = encode_stream_summary(
            StreamSummary{st->bytes_in, st->bytes_out, st->checksum});
        completed = true;
      }
      f.h.status = Status::kOk;
    } catch (const OperationCancelled& e) {
      f = error_frame(hdr, Status::kCancelled, e.what());
    } catch (const DeadlineExpired& e) {
      f = error_frame(hdr, Status::kDeadlineExceeded, e.what());
    } catch (const util::TransientError& e) {
      f = error_frame(hdr, Status::kInternal, e.what());
    } catch (const ProtocolError& e) {
      f = error_frame(hdr, Status::kBadRequest, e.what());
    } catch (const std::invalid_argument& e) {
      f = error_frame(hdr, Status::kBadRequest, e.what());
    } catch (const std::runtime_error& e) {
      // Corrupt stream bytes (bad segment payload etc.): the client's
      // fault.
      f = error_frame(hdr, Status::kBadRequest, e.what());
    } catch (const std::exception& e) {
      f = error_frame(hdr, Status::kInternal, e.what());
    }
    // Track the bounded-buffering high water even on failure paths.
    const u64 buffered = st->codec ? st->codec->buffered_high_water() : 0;
    u64 cur = stream_buffer_high_water_.load(std::memory_order_relaxed);
    while (buffered > cur && !stream_buffer_high_water_.compare_exchange_weak(
                                 cur, buffered, std::memory_order_relaxed)) {
    }
    reg.gauge_max("rpc.stream_buffered_bytes_high_water",
                  static_cast<double>(buffered));
    // Completion and every error are terminal for the stream: forget the
    // id (later frames answer "unknown stream") and settle the
    // opened == completed + aborted balance.
    if (f.h.status != Status::kOk || completed) {
      bool was_open = false;
      {
        std::lock_guard<std::mutex> lock(raw->mu);
        was_open = raw->streams.erase(st->id) > 0;
        raw->decode_inflight.erase(st->begin_request_id);
      }
      if (was_open) {
        reg.counter_add(completed ? "rpc.streams_completed"
                                  : "rpc.streams_aborted");
      }
    }
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

void RpcServer::writer_loop(std::shared_ptr<ConnState> cs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  util::FaultInjector& faults = util::FaultInjector::global();
  bool conn_ok = true;
  for (;;) {
    std::function<Frame()> slot;
    {
      std::unique_lock<std::mutex> lock(cs->mu);
      cs->cv.wait(lock,
                  [&] { return !cs->slots.empty() || cs->reader_done; });
      if (cs->slots.empty()) break;  // reader done and everything drained
      slot = std::move(cs->slots.front());
      cs->slots.pop_front();
    }
    // Resolving a slot never throws (each slot catches internally) but
    // may block on a service future — which always resolves, so every
    // slot drains even after the connection died.
    Frame f = slot();
    if (!conn_ok) {
      reg.counter_add("rpc.responses_dropped");
      continue;
    }
    try {
      // Fault site: the connection dies while a response is in flight.
      faults.maybe_throw("rpc.server.write");
      const u32 bound = response_payload_bound(cfg_.max_payload_bytes);
      try {
        write_frame(*cs->conn, f, bound);
      } catch (const std::length_error&) {
        write_frame(*cs->conn,
                    error_frame(f.h, Status::kInternal,
                                "response exceeds the frame bound"),
                    bound);
      }
      reg.counter_add("rpc.responses_written");
    } catch (...) {
      conn_ok = false;
      cs->conn->shutdown();  // unblocks the reader too
      reg.counter_add("rpc.responses_dropped");
    }
  }
  // Every slot has drained, so no stream can make further progress:
  // whatever is still open died with the connection and settles the
  // opened == completed + aborted balance as aborted.
  {
    std::lock_guard<std::mutex> lock(cs->mu);
    if (!cs->streams.empty()) {
      reg.counter_add("rpc.streams_aborted", cs->streams.size());
      cs->streams.clear();
    }
  }
  cs->conn->shutdown();
}

}  // namespace parhuff::rpc
