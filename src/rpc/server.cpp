#include "rpc/server.hpp"

#include <array>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "core/decode.hpp"
#include "core/format.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/fault_inject.hpp"

namespace parhuff::rpc {

namespace {

[[nodiscard]] Frame error_frame(const Header& req, Status status,
                                const std::string& message) {
  Frame f;
  f.h.kind = Kind::kResponse;
  f.h.op = req.op;
  f.h.sym_width = req.sym_width;
  f.h.request_id = req.request_id;
  f.h.status = status;
  f.payload.assign(message.begin(), message.end());
  return f;
}

[[nodiscard]] svc::Priority to_priority(u8 p) {
  if (p >= static_cast<u8>(svc::Priority::kHigh)) return svc::Priority::kHigh;
  return static_cast<svc::Priority>(p);
}

}  // namespace

/// Everything the reader and writer of one connection share. The response
/// slots are copyable std::functions (move-only captures ride behind
/// shared_ptr, the same boxing the service's dispatch() uses); they hold a
/// raw ConnState* where needed — safe because the writer keeps the state
/// alive for as long as any slot exists.
struct RpcServer::ConnState {
  std::shared_ptr<Connection> conn;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<Frame()>> slots;  // FIFO response order
  bool reader_done = false;

  // Cancellable in-flight requests on this connection, by request id.
  std::unordered_map<u64, svc::RequestHandle> compress_inflight;
  std::unordered_map<u64, std::shared_ptr<CancelToken>> decode_inflight;

  void enqueue(std::function<Frame()> slot) {
    {
      std::lock_guard<std::mutex> lock(mu);
      slots.push_back(std::move(slot));
    }
    cv.notify_all();
  }

  void enqueue_ready(Frame f) {
    auto boxed = std::make_shared<Frame>(std::move(f));
    enqueue([boxed]() { return std::move(*boxed); });
  }

  void reader_finished() {
    {
      std::lock_guard<std::mutex> lock(mu);
      reader_done = true;
    }
    cv.notify_all();
  }

  void unregister(u64 id) {
    std::lock_guard<std::mutex> lock(mu);
    compress_inflight.erase(id);
    decode_inflight.erase(id);
  }
};

RpcServer::RpcServer(std::unique_ptr<Listener> listener, ServerConfig cfg)
    : cfg_(cfg),
      clock_(cfg.service.clock ? cfg.service.clock : &util::Clock::real()),
      svc8_(std::make_unique<svc::CompressionService<u8>>(cfg.service)),
      svc16_(std::make_unique<svc::CompressionService<u16>>(cfg.service)),
      listener_(std::move(listener)) {
  if (!listener_) {
    throw std::invalid_argument("RpcServer: listener must not be null");
  }
  if (cfg_.max_connections == 0) {
    throw std::invalid_argument("RpcServer: max_connections must be > 0");
  }
  const int io = cfg_.io_threads > 0
                     ? cfg_.io_threads
                     : static_cast<int>(1 + 2 * cfg_.max_connections);
  io_ = std::make_unique<WorkStealExecutor>(io, clock_);
  io_->submit([this] { accept_loop(); });
}

RpcServer::~RpcServer() {
  stop();
  io_.reset();  // joins accept/reader/writer tasks
  // Services tear down after the io tasks that use them (member order).
}

void RpcServer::stop() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    stopping_ = true;
  }
  listener_->close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& w : conns_) {
      if (std::shared_ptr<ConnState> cs = w.lock()) cs->conn->shutdown();
    }
  }
  io_->wait_idle();
}

std::size_t RpcServer::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t live = 0;
  for (const auto& w : conns_) {
    if (!w.expired()) ++live;
  }
  return live;
}

void RpcServer::accept_loop() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  for (;;) {
    std::unique_ptr<Connection> c;
    try {
      c = listener_->accept();
    } catch (...) {
      break;  // listener failed: server keeps serving live connections
    }
    if (!c) break;  // closed

    bool reject = false;
    // Fault site: the connection dies right after accept (e.g. a peer
    // that vanished during the handshake).
    try {
      util::FaultInjector::global().maybe_throw("rpc.server.accept");
    } catch (...) {
      reject = true;
    }

    std::shared_ptr<ConnState> cs;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      std::size_t live = 0;
      std::erase_if(conns_, [](const std::weak_ptr<ConnState>& w) {
        return w.expired();
      });
      live = conns_.size();
      if (stopping_ || live >= cfg_.max_connections) reject = true;
      if (!reject) {
        cs = std::make_shared<ConnState>();
        cs->conn = std::shared_ptr<Connection>(std::move(c));
        conns_.push_back(cs);
      }
    }
    if (reject) {
      if (c) c->shutdown();
      reg.counter_add("rpc.connections_rejected");
      continue;
    }
    reg.counter_add("rpc.connections_accepted");

    // The writer goes first so a reader-submit failure can still unblock
    // it via reader_finished(). Executor-submit faults are transient; a
    // connection that cannot get its tasks scheduled is dropped whole.
    bool writer_up = false;
    try {
      io_->submit([this, cs] { writer_loop(cs); });
      writer_up = true;
      io_->submit([this, cs] { reader_loop(cs); });
    } catch (...) {
      cs->conn->shutdown();
      if (writer_up) {
        cs->reader_finished();
      }
      reg.counter_add("rpc.connections_rejected");
    }
  }
}

void RpcServer::reader_loop(std::shared_ptr<ConnState> cs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  util::FaultInjector& faults = util::FaultInjector::global();
  for (;;) {
    std::array<u8, kHeaderBytes> hb;
    try {
      // Fault site: the connection dies between frames.
      faults.maybe_throw("rpc.server.read");
      if (!cs->conn->read_exact(hb.data(), kHeaderBytes)) break;
    } catch (...) {
      break;
    }

    Header h;
    try {
      h = decode_header(std::span<const u8, kHeaderBytes>(hb),
                        cfg_.max_payload_bytes);
    } catch (const ProtocolError& e) {
      reg.counter_add("rpc.protocol_errors");
      if (!e.can_respond()) break;  // stream not frame-aligned: drop
      // Stay frame-synced by consuming the declared payload when its
      // length is sane; an oversized declaration is unskippable, so the
      // typed error is the connection's last frame.
      u32 raw_len = 0;
      std::memcpy(&raw_len, hb.data() + 20, sizeof(raw_len));
      const bool resync = raw_len <= cfg_.max_payload_bytes;
      if (resync && raw_len > 0) {
        std::vector<u8> skip(raw_len);
        try {
          if (!cs->conn->read_exact(skip.data(), skip.size())) break;
        } catch (...) {
          break;
        }
      }
      reg.counter_add("rpc.protocol_error_responses");
      cs->enqueue_ready(
          error_frame(Header{.op = Op::kCompress,
                             .request_id = e.request_id()},
                      e.status(), e.what()));
      if (!resync) break;
      continue;
    }

    std::vector<u8> payload(h.payload_len);
    try {
      if (!cs->conn->read_exact(payload.data(), payload.size())) break;
    } catch (...) {
      break;
    }

    reg.counter_add("rpc.requests_received");
    if (!handle_frame(cs, h, std::move(payload))) break;
  }
  cs->reader_finished();
}

bool RpcServer::handle_frame(const std::shared_ptr<ConnState>& cs,
                             const Header& h, std::vector<u8> payload) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  if (h.kind != Kind::kRequest) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "response frame sent to a server"));
    return true;
  }
  switch (h.op) {
    case Op::kCompress:
      if (h.sym_width == 1) {
        handle_compress<u8>(cs, h, std::move(payload), cfg_.pipeline8,
                            *svc8_);
      } else if (h.sym_width == 2) {
        handle_compress<u16>(cs, h, std::move(payload), cfg_.pipeline16,
                             *svc16_);
      } else {
        cs->enqueue_ready(error_frame(h, Status::kBadRequest,
                                      "sym_width must be 1 or 2"));
      }
      return true;
    case Op::kDecompress:
      if (h.sym_width == 1) {
        handle_decompress<u8>(cs, h, std::move(payload));
      } else if (h.sym_width == 2) {
        handle_decompress<u16>(cs, h, std::move(payload));
      } else {
        cs->enqueue_ready(error_frame(h, Status::kBadRequest,
                                      "sym_width must be 1 or 2"));
      }
      return true;
    case Op::kCancel: {
      if (payload.size() != sizeof(u64)) {
        cs->enqueue_ready(error_frame(
            h, Status::kBadRequest, "cancel payload must be a u64 id"));
        return true;
      }
      u64 target = 0;
      std::memcpy(&target, payload.data(), sizeof(target));
      reg.counter_add("rpc.cancels_received");
      // Apply immediately in the reader — a cancel must not wait behind
      // the in-order response stream it is trying to shorten.
      {
        std::lock_guard<std::mutex> lock(cs->mu);
        if (auto it = cs->compress_inflight.find(target);
            it != cs->compress_inflight.end()) {
          it->second.cancel();
        } else if (auto jt = cs->decode_inflight.find(target);
                   jt != cs->decode_inflight.end()) {
          jt->second->request();
        }
        // Unknown id: the request already resolved (or never existed) —
        // cancel is idempotent best-effort either way.
      }
      Frame ack;
      ack.h.kind = Kind::kResponse;
      ack.h.op = Op::kCancel;
      ack.h.request_id = h.request_id;
      ack.h.status = Status::kOk;
      cs->enqueue_ready(std::move(ack));
      return true;
    }
    case Op::kHealth: {
      // Answered from the reader with current values (no future to wait
      // on): a router probe must see load *now*, not after the response
      // stream drains.
      HealthInfo info;
      info.queue_depth = svc8_->queue_depth() + svc16_->queue_depth();
      info.queue_capacity = 2 * cfg_.service.queue_capacity;
      info.connections = connection_count();
      info.max_connections = cfg_.max_connections;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        info.accepting = !stopping_;
      }
      Frame f;
      f.h.kind = Kind::kResponse;
      f.h.op = Op::kHealth;
      f.h.request_id = h.request_id;
      f.h.status = Status::kOk;
      f.payload = encode_health_info(info);
      reg.counter_add("rpc.health_probes");
      cs->enqueue_ready(std::move(f));
      return true;
    }
    case Op::kStats: {
      cs->enqueue([id = h.request_id]() {
        Frame f;
        f.h.kind = Kind::kResponse;
        f.h.op = Op::kStats;
        f.h.request_id = id;
        f.h.status = Status::kOk;
        obs::Json j = obs::Json::object();
        j.set("schema", obs::kMetricsSchema);
        j.set("name", "rpc-stats");
        j.set("metrics", obs::MetricsRegistry::global().to_json());
        const std::string text = j.dump();
        f.payload.assign(text.begin(), text.end());
        return f;
      });
      return true;
    }
  }
  return true;  // unreachable: decode_header validated the op
}

template <typename Sym>
void RpcServer::handle_compress(const std::shared_ptr<ConnState>& cs,
                                const Header& h, std::vector<u8> payload,
                                const PipelineConfig& pl,
                                svc::CompressionService<Sym>& svc) {
  if (payload.size() % sizeof(Sym) != 0) {
    cs->enqueue_ready(error_frame(
        h, Status::kBadRequest, "payload is not a whole number of symbols"));
    return;
  }
  // Byte symbols ride the wire buffer straight through; wider symbols
  // need the realigning copy.
  std::vector<Sym> data;
  if constexpr (std::is_same_v<Sym, u8>) {
    data = std::move(payload);
  } else {
    data.resize(payload.size() / sizeof(Sym));
    if (!data.empty()) {
      std::memcpy(data.data(), payload.data(), payload.size());
    }
  }

  svc::SubmitOptions opts;
  opts.priority = to_priority(h.priority);
  if (h.deadline_micros != 0) {
    // Relative on the wire; re-anchored against the server's clock.
    opts.deadline = svc::Deadline::in(
        static_cast<double>(h.deadline_micros) * 1e-6, *clock_);
  }

  svc::Submission<Sym> sub;
  try {
    sub = svc.submit(std::move(data), pl, opts);
  } catch (const svc::QueueFullError&) {
    cs->enqueue_ready(error_frame(h, Status::kQueueFull,
                                  "service admission queue full"));
    return;
  } catch (const std::logic_error&) {
    cs->enqueue_ready(
        error_frame(h, Status::kShuttingDown, "server shutting down"));
    return;
  } catch (const std::exception& e) {
    cs->enqueue_ready(error_frame(h, Status::kBadRequest, e.what()));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(cs->mu);
    cs->compress_inflight.emplace(h.request_id, sub.handle);
  }

  auto fut = std::make_shared<std::future<svc::CompressResult<Sym>>>(
      std::move(sub.result));
  ConnState* raw = cs.get();  // the writer keeps *cs alive past this slot
  const double start_us = obs::TraceRecorder::global().now_us();
  cs->enqueue([raw, fut, hdr = h, start_us]() {
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = Op::kCompress;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    try {
      svc::CompressResult<Sym> res = fut->get();
      Compressed<Sym> blob;
      blob.codebook = *res.codebook;
      blob.stream = std::move(res.stream);
      f.payload = serialize<Sym>(blob);
      f.h.status = Status::kOk;
    } catch (const svc::DeadlineExceeded& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const svc::CancelledError& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    raw->unregister(hdr.request_id);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

template <typename Sym>
void RpcServer::handle_decompress(const std::shared_ptr<ConnState>& cs,
                                  const Header& h, std::vector<u8> payload) {
  auto token = std::make_shared<CancelToken>();
  if (h.deadline_micros != 0) {
    token->arm_deadline(clock_->now() + util::Clock::dur(
                            static_cast<double>(h.deadline_micros) * 1e-6),
                        *clock_);
  }
  {
    std::lock_guard<std::mutex> lock(cs->mu);
    cs->decode_inflight.emplace(h.request_id, token);
  }
  auto body = std::make_shared<std::vector<u8>>(std::move(payload));
  ConnState* raw = cs.get();
  const double start_us = obs::TraceRecorder::global().now_us();
  // The decode runs on the writer task itself (requests on one connection
  // are an ordered stream anyway); the walk polls the token, so a cancel
  // frame or the deadline aborts it mid-stream (satellite: decode-side
  // cancellation).
  cs->enqueue([raw, body, token, hdr = h, start_us]() {
    Frame f;
    f.h.kind = Kind::kResponse;
    f.h.op = Op::kDecompress;
    f.h.sym_width = hdr.sym_width;
    f.h.request_id = hdr.request_id;
    try {
      token->check();  // cheap pre-flight: already cancelled/expired?
      const Compressed<Sym> blob = deserialize<Sym>(*body);
      // decode_auto picks the gap-array kernel when the container carried
      // gap metadata (a "PHF3" + GAP1 blob), the host decoder otherwise.
      const std::vector<Sym> out =
          decode_auto<Sym>(blob.stream, blob.codebook, 0, token.get());
      f.payload.resize(out.size() * sizeof(Sym));
      if (!out.empty()) {
        std::memcpy(f.payload.data(), out.data(), f.payload.size());
      }
      f.h.status = Status::kOk;
    } catch (const OperationCancelled& e) {
      f.h.status = Status::kCancelled;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const DeadlineExpired& e) {
      f.h.status = Status::kDeadlineExceeded;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::runtime_error& e) {
      // Malformed container / corrupt stream: the client's fault.
      f.h.status = Status::kBadRequest;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    } catch (const std::exception& e) {
      f.h.status = Status::kInternal;
      f.payload.assign(e.what(), e.what() + std::strlen(e.what()));
    }
    raw->unregister(hdr.request_id);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    obs::TraceRecorder& rec = obs::TraceRecorder::global();
    const double done_us = rec.now_us();
    reg.histo_record("rpc.request_seconds", (done_us - start_us) / 1e6);
    rec.complete("rpc.request", "rpc", start_us, done_us - start_us);
    return f;
  });
}

void RpcServer::writer_loop(std::shared_ptr<ConnState> cs) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  util::FaultInjector& faults = util::FaultInjector::global();
  bool conn_ok = true;
  for (;;) {
    std::function<Frame()> slot;
    {
      std::unique_lock<std::mutex> lock(cs->mu);
      cs->cv.wait(lock,
                  [&] { return !cs->slots.empty() || cs->reader_done; });
      if (cs->slots.empty()) break;  // reader done and everything drained
      slot = std::move(cs->slots.front());
      cs->slots.pop_front();
    }
    // Resolving a slot never throws (each slot catches internally) but
    // may block on a service future — which always resolves, so every
    // slot drains even after the connection died.
    Frame f = slot();
    if (!conn_ok) {
      reg.counter_add("rpc.responses_dropped");
      continue;
    }
    try {
      // Fault site: the connection dies while a response is in flight.
      faults.maybe_throw("rpc.server.write");
      const u32 bound = response_payload_bound(cfg_.max_payload_bytes);
      try {
        write_frame(*cs->conn, f, bound);
      } catch (const std::length_error&) {
        write_frame(*cs->conn,
                    error_frame(f.h, Status::kInternal,
                                "response exceeds the frame bound"),
                    bound);
      }
      reg.counter_add("rpc.responses_written");
    } catch (...) {
      conn_ok = false;
      cs->conn->shutdown();  // unblocks the reader too
      reg.counter_add("rpc.responses_dropped");
    }
  }
  cs->conn->shutdown();
}

}  // namespace parhuff::rpc
