#include "rpc/transport.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace parhuff::rpc {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string("rpc unix transport: ") + what + ": " +
                       std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("rpc unix transport: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

class UnixConnection final : public Connection {
 public:
  explicit UnixConnection(int fd) : fd_(fd) {}
  ~UnixConnection() override {
    shutdown();
    ::close(fd_);
  }

  bool read_exact(u8* dst, std::size_t n) override {
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fd_, dst + got, n - got);
      if (r > 0) {
        got += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) {
        if (got == 0) return false;  // clean EOF between frames
        throw TransportError("rpc unix transport: EOF mid-frame");
      }
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    return true;
  }

  void write_all(const u8* src, std::size_t n) override {
    std::size_t sent = 0;
    while (sent < n) {
      // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE (a
      // TransportError), not kill the process with SIGPIPE.
      const ssize_t w = ::send(fd_, src + sent, n - sent, MSG_NOSIGNAL);
      if (w > 0) {
        sent += static_cast<std::size_t>(w);
        continue;
      }
      if (w == 0) {
        // A blocking send() never legitimately accepts zero of a non-empty
        // buffer; treating it as progress would spin forever on a wedged
        // descriptor. Surface it as the stream dying instead.
        throw TransportError("rpc unix transport: zero-length write");
      }
      if (errno == EINTR) continue;
      throw_errno("write");
    }
  }

  void write_two(const u8* a, std::size_t na, const u8* b,
                 std::size_t nb) override {
    // sendmsg() with two iovecs: header + payload leave in one syscall
    // without assembling a contiguous frame buffer first. Streaming makes
    // multi-MiB payloads routine, and a unix socket's send buffer is a few
    // hundred KiB — so PARTIAL writes are the common case here, not the
    // exception: every resume path below (short write inside either iovec,
    // short write landing exactly on the iovec boundary, EINTR between
    // attempts) is exercised by the large-frame socket test in
    // tests/test_stream.cpp.
    iovec iov[2];
    iov[0] = {const_cast<u8*>(a), na};
    iov[1] = {const_cast<u8*>(b), nb};
    int idx = 0;
    while (idx < 2) {
      if (iov[idx].iov_len == 0) {
        ++idx;
        continue;
      }
      msghdr msg{};
      msg.msg_iov = &iov[idx];
      msg.msg_iovlen = static_cast<std::size_t>(2 - idx);
      const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw_errno("write");
      }
      if (w == 0) {
        // Same zero-progress guard as write_all(): never spin.
        throw TransportError("rpc unix transport: zero-length write");
      }
      std::size_t rem = static_cast<std::size_t>(w);
      while (idx < 2 && rem >= iov[idx].iov_len) {
        rem -= iov[idx].iov_len;
        iov[idx].iov_len = 0;
        ++idx;
      }
      if (idx < 2 && rem != 0) {
        iov[idx].iov_base = static_cast<u8*>(iov[idx].iov_base) + rem;
        iov[idx].iov_len -= rem;
      }
    }
  }

  void shutdown() override {
    if (!down_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);  // unblocks both directions
    }
  }

 private:
  int fd_;
  std::atomic<bool> down_{false};
};

class UnixListener final : public Listener {
 public:
  UnixListener(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~UnixListener() override {
    close();
    ::close(fd_);
    ::unlink(path_.c_str());
  }

  std::unique_ptr<Connection> accept() override {
    for (;;) {
      const int fd = ::accept(fd_, nullptr, nullptr);
      if (fd >= 0) {
        if (closed_.load(std::memory_order_acquire)) {
          ::close(fd);  // raced with close(): refuse, report shutdown
          return nullptr;
        }
        return std::make_unique<UnixConnection>(fd);
      }
      if (closed_.load(std::memory_order_acquire)) return nullptr;
      if (errno == EINTR) continue;
      // shutdown() on the listening socket surfaces as EINVAL on Linux;
      // anything else while open is a genuine failure.
      throw_errno("accept");
    }
  }

  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);  // unblocks a blocked accept()
    }
  }

 private:
  int fd_;
  std::string path_;
  std::atomic<bool> closed_{false};
};

}  // namespace

std::unique_ptr<Listener> listen_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  ::unlink(path.c_str());  // replace a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_errno("listen");
  }
  return std::make_unique<UnixListener>(fd, path);
}

std::unique_ptr<Connection> connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return std::make_unique<UnixConnection>(fd);
    }
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect");
  }
}

}  // namespace parhuff::rpc
