#pragma once
// RPC client: futures over a connection, mirroring the in-process
// CompressionService::submit() shape (docs/rpc.md).
//
//   RpcClient cli(
//       [&] { return connect_unix("/tmp/parhuff.sock"); });
//   RpcCall call = cli.compress_data<u8>(symbols,
//                                        {.deadline_seconds = 0.5});
//   std::vector<u8> container = call.result.get();   // PHF2 bytes
//   cli.cancel(call.id);                             // best-effort
//
// Every future resolves: with payload bytes on kOk, with
// svc::DeadlineExceeded / svc::CancelledError on the matching statuses,
// with RpcError for other typed server errors, or with TransportError
// when the connection died with the request in flight.
//
// Connection management: the client lazily connects on first use and
// transparently reconnects (util::BackoffPolicy, bounded attempts) after
// a connection failure — requests in flight across the loss fail with
// TransportError (the server may or may not have executed them; compress
// is idempotent, so callers simply resubmit), later requests use the new
// connection. One background reader thread owns response demultiplexing
// and is the only actor that fails a connection's pending futures.
//
// Fault sites (util::FaultInjector): rpc.client.connect, rpc.client.send,
// rpc.client.read.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rpc/transport.hpp"
#include "svc/service.hpp"
#include "util/backoff.hpp"

namespace parhuff::rpc {

struct ClientConfig {
  /// Bounded connect/reconnect attempts before a send fails with
  /// TransportError.
  int connect_attempts = 5;
  util::BackoffPolicy backoff;
  /// Time source for the reconnect backoff. nullptr = real clock.
  const util::Clock* clock = nullptr;
  /// Bound on request payloads this client sends; responses are accepted
  /// up to response_payload_bound() of it, matching the server.
  u32 max_payload_bytes = kMaxPayloadBytes;
};

struct RpcOptions {
  svc::Priority priority = svc::Priority::kNormal;
  /// Relative deadline budget shipped on the wire (re-anchored against
  /// the server's clock). 0 = none.
  double deadline_seconds = 0;
};

/// One in-flight request: the response payload future plus the id to
/// cancel() with.
struct RpcCall {
  std::future<std::vector<u8>> result;
  u64 id = 0;
};

class RpcClient {
 public:
  /// Factory for a fresh connection; called on first use and on every
  /// reconnect. Must throw (or return null) on failure.
  using Connector = std::function<std::unique_ptr<Connection>()>;

  explicit RpcClient(Connector connect, ClientConfig cfg = {});
  /// Fails every pending future with TransportError, then joins.
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Compress raw symbol bytes (`sym_width` 1 or 2; payload length must
  /// be a multiple). Resolves to PHF2 container bytes.
  [[nodiscard]] RpcCall compress(std::span<const u8> symbol_bytes,
                                 u8 sym_width = 1,
                                 const RpcOptions& opts = {});

  /// Typed convenience over compress(): Sym is u8 or u16.
  template <typename Sym>
  [[nodiscard]] RpcCall compress_data(std::span<const Sym> symbols,
                                      const RpcOptions& opts = {}) {
    return compress(
        std::span<const u8>(reinterpret_cast<const u8*>(symbols.data()),
                            symbols.size() * sizeof(Sym)),
        sizeof(Sym), opts);
  }

  /// Decompress a PHF2 container. Resolves to raw symbol bytes of
  /// `sym_width`-byte symbols.
  [[nodiscard]] RpcCall decompress(std::span<const u8> container,
                                   u8 sym_width = 1,
                                   const RpcOptions& opts = {});

  /// Best-effort cancel of an earlier call on this client. Resolves when
  /// the server acknowledged (the target may still complete if it passed
  /// its last poll point — same contract as RequestHandle::cancel()).
  [[nodiscard]] std::future<void> cancel(u64 request_id);

  /// Server-side parhuff-metrics-v1 snapshot (JSON text).
  [[nodiscard]] std::future<std::string> stats();

  /// In-band health probe (protocol v2). Resolves with the server's
  /// HealthInfo; a v1 peer answers the unknown version with a typed
  /// RpcError (kUnsupportedVersion) rather than hanging, so probers can
  /// tell "legacy" from "dead" (TransportError).
  [[nodiscard]] std::future<HealthInfo> health();

 private:
  struct Pending {
    u64 generation = 0;
    std::promise<std::vector<u8>> promise;
  };

  [[nodiscard]] RpcCall submit_frame(Frame f);
  /// Called under send_mu_: returns the live connection and its
  /// generation, dialing (with backoff) when there is none. Throws
  /// TransportError after the attempt budget.
  [[nodiscard]] std::pair<std::shared_ptr<Connection>, u64> ensure_connected();
  void reader_loop();
  /// Fail every pending entry of `generation` with TransportError.
  void fail_generation(u64 generation, const char* why);

  Connector connector_;
  ClientConfig cfg_;
  const util::Clock* clock_;

  std::mutex mu_;  // conn_, generation_, pending_, stopping_
  std::condition_variable conn_cv_;  // reader parks here between conns
  std::shared_ptr<Connection> conn_;
  u64 generation_ = 0;
  std::unordered_map<u64, Pending> pending_;
  bool stopping_ = false;

  std::mutex send_mu_;  // serializes connect + frame writes
  std::atomic<u64> next_id_{1};
  std::thread reader_;
};

}  // namespace parhuff::rpc
