#pragma once
// RPC client: futures over a connection, mirroring the in-process
// CompressionService::submit() shape (docs/rpc.md).
//
//   RpcClient cli(
//       [&] { return connect_unix("/tmp/parhuff.sock"); });
//   RpcCall call = cli.compress_data<u8>(symbols,
//                                        {.deadline_seconds = 0.5});
//   std::vector<u8> container = call.result.get();   // PHF2 bytes
//   cli.cancel(call.id);                             // best-effort
//
// Every future resolves: with payload bytes on kOk, with
// svc::DeadlineExceeded / svc::CancelledError on the matching statuses,
// with RpcError for other typed server errors, or with TransportError
// when the connection died with the request in flight.
//
// Connection management: the client lazily connects on first use and
// transparently reconnects (util::BackoffPolicy, bounded attempts) after
// a connection failure — requests in flight across the loss fail with
// TransportError (the server may or may not have executed them; compress
// is idempotent, so callers simply resubmit), later requests use the new
// connection. One background reader thread owns response demultiplexing
// and is the only actor that fails a connection's pending futures.
//
// Fault sites (util::FaultInjector): rpc.client.connect, rpc.client.send,
// rpc.client.read.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rpc/transport.hpp"
#include "svc/service.hpp"
#include "util/backoff.hpp"

namespace parhuff::rpc {

struct ClientConfig {
  /// Bounded connect/reconnect attempts before a send fails with
  /// TransportError.
  int connect_attempts = 5;
  util::BackoffPolicy backoff;
  /// Time source for the reconnect backoff. nullptr = real clock.
  const util::Clock* clock = nullptr;
  /// Bound on request payloads this client sends; responses are accepted
  /// up to response_payload_bound() of it, matching the server.
  u32 max_payload_bytes = kMaxPayloadBytes;
  /// Transparently switch oversized compress/decompress submits onto the
  /// v3 streaming verbs instead of failing them typed. Off restores the
  /// pre-v3 behavior: payloads past the bound answer kBadRequest without
  /// touching the connection or the pending map.
  bool enable_streaming = true;
  /// Chunk payload size the transparent chunker sends (rounded down to a
  /// whole number of symbols). Must not exceed the server's
  /// stream_chunk_bytes.
  u32 stream_chunk_bytes = kDefaultStreamChunkBytes;
  /// Payload size above which a submit streams instead of riding one
  /// frame. 0 = max_payload_bytes (stream only what a single frame
  /// cannot carry).
  u32 stream_threshold_bytes = 0;
  /// Chunk frames kept in flight per stream before the driver waits on
  /// the oldest ack — the transfer/encode-overlap pipelining depth.
  std::size_t stream_window = 8;
};

struct RpcOptions {
  svc::Priority priority = svc::Priority::kNormal;
  /// Relative deadline budget shipped on the wire (re-anchored against
  /// the server's clock). 0 = none.
  double deadline_seconds = 0;
};

/// One in-flight request: the response payload future plus the id to
/// cancel() with.
struct RpcCall {
  std::future<std::vector<u8>> result;
  u64 id = 0;
};

class RpcClient {
 public:
  /// Factory for a fresh connection; called on first use and on every
  /// reconnect. Must throw (or return null) on failure.
  using Connector = std::function<std::unique_ptr<Connection>()>;

  explicit RpcClient(Connector connect, ClientConfig cfg = {});
  /// Fails every pending future with TransportError, then joins.
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Compress raw symbol bytes (`sym_width` 1 or 2; payload length must
  /// be a multiple). Resolves to serialized container bytes: a PHF
  /// container when the payload rode one frame, a PHS2 streamed container
  /// when the transparent chunker streamed it (both decompress through
  /// this client and the server's decompress verb identically).
  [[nodiscard]] RpcCall compress(std::span<const u8> symbol_bytes,
                                 u8 sym_width = 1,
                                 const RpcOptions& opts = {});

  /// Ownership-transfer overload: the vector is moved, never copied —
  /// single-frame submits send straight from it, and a streamed submit's
  /// chunks are lent to the transport as views into it (the
  /// submit(vector&&) zero-copy path extended across the wire). Prefer
  /// this for large payloads; the span overload of a streamed submit
  /// must copy once to outlive the call.
  [[nodiscard]] RpcCall compress(std::vector<u8>&& symbol_bytes,
                                 u8 sym_width = 1,
                                 const RpcOptions& opts = {});

  /// Typed convenience over compress(): Sym is u8 or u16.
  template <typename Sym>
  [[nodiscard]] RpcCall compress_data(std::span<const Sym> symbols,
                                      const RpcOptions& opts = {}) {
    return compress(
        std::span<const u8>(reinterpret_cast<const u8*>(symbols.data()),
                            symbols.size() * sizeof(Sym)),
        sizeof(Sym), opts);
  }

  /// Decompress a serialized container (PHF single-frame or PHS2
  /// streamed). Resolves to raw symbol bytes of `sym_width`-byte symbols.
  /// Oversized PHS2 containers stream transparently; an oversized PHF
  /// container cannot be split and fails typed (kBadRequest).
  [[nodiscard]] RpcCall decompress(std::span<const u8> container,
                                   u8 sym_width = 1,
                                   const RpcOptions& opts = {});

  /// Ownership-transfer overload of decompress() — same zero-copy
  /// contract as the compress overload.
  [[nodiscard]] RpcCall decompress(std::vector<u8>&& container,
                                   u8 sym_width = 1,
                                   const RpcOptions& opts = {});

  /// v4 fused lossy compress (docs/lossy.md): ships the 48-byte quantizer
  /// config followed by the f32 field; resolves to a PHL2 container.
  /// cfg.nx*ny*nz must equal field.size(). A pre-v4 server answers the
  /// version gate with a typed RpcError (kUnsupportedVersion) — a
  /// feature probe, never a hang.
  [[nodiscard]] RpcCall lossy_compress(std::span<const float> field,
                                       const LossyRequestHeader& cfg,
                                       const RpcOptions& opts = {});

  /// Raw pass-through overload for proxies (the shard router's forward
  /// hop): `payload` must already be a LossyRequestHeader + f32 stream —
  /// exactly what the typed overload builds. The shard re-validates it.
  [[nodiscard]] RpcCall lossy_compress_raw(std::span<const u8> payload,
                                           u8 sym_width,
                                           const RpcOptions& opts = {});

  /// v4 fused lossy decompress: ships a PHL1/PHL2 container; resolves to
  /// a LossyFieldHeader + f32 payload (split it with
  /// decode_lossy_field_payload).
  [[nodiscard]] RpcCall lossy_decompress(std::span<const u8> container,
                                         const RpcOptions& opts = {});

  // --- v3 streaming verbs (protocol.hpp). compress()/decompress() use
  // these transparently for oversized payloads; they are public for
  // callers that want manual chunk control (the shard router forwards
  // streams with them). A stream is stream_begin(), N stream_frame()
  // chunks, stream_end(); every call returns an ordinary RpcCall and the
  // Begin id is the one cancel() accepts for the whole stream.

  /// Open a stream (`op` is kCompressStreamBegin or kDecompressStreamBegin;
  /// opts.deadline_seconds is anchored once, covering the whole stream).
  /// Resolves to the 8-byte LE server-assigned stream id.
  [[nodiscard]] RpcCall stream_begin(Op op, u8 sym_width = 1,
                                     const RpcOptions& opts = {});

  /// Send one Chunk/End frame on an open stream. The payload span is
  /// borrowed — written to the wire during this call, never copied into
  /// an owned frame — so callers may lend views into buffers they keep.
  [[nodiscard]] RpcCall stream_frame(Op op, u64 stream_id,
                                     std::span<const u8> payload);

  /// Close a stream: ships the byte total and chained stream_checksum for
  /// the server to verify. Resolves to a StreamSummary payload.
  [[nodiscard]] RpcCall stream_end(Op op, u64 stream_id, u64 total_bytes,
                                   u64 checksum);

  /// Best-effort cancel of an earlier call on this client. Resolves when
  /// the server acknowledged (the target may still complete if it passed
  /// its last poll point — same contract as RequestHandle::cancel()).
  [[nodiscard]] std::future<void> cancel(u64 request_id);

  /// Server-side parhuff-metrics-v1 snapshot (JSON text).
  [[nodiscard]] std::future<std::string> stats();

  /// In-band health probe (protocol v2). Resolves with the server's
  /// HealthInfo; a v1 peer answers the unknown version with a typed
  /// RpcError (kUnsupportedVersion) rather than hanging, so probers can
  /// tell "legacy" from "dead" (TransportError).
  [[nodiscard]] std::future<HealthInfo> health();

 private:
  struct Pending {
    u64 generation = 0;
    std::promise<std::vector<u8>> promise;
  };

  /// True when a compress/decompress payload of this size should ride the
  /// v3 streaming verbs instead of one frame.
  [[nodiscard]] bool use_streaming(std::size_t payload_bytes) const;
  [[nodiscard]] RpcCall submit_frame(Frame f);
  /// Borrowed-payload submit: registers the pending entry, then writes
  /// header + payload straight from the caller's span (read only during
  /// the call). Every other submit funnels through here.
  [[nodiscard]] RpcCall submit_frame(Header h, std::span<const u8> payload);
  /// Transparent chunking for oversized compress/decompress submits:
  /// sends Begin inline (so the returned id is the cancellable Begin id),
  /// then hands the moved payload to a driver thread that pipelines
  /// Chunk frames and resolves the outer future from the concatenated
  /// chunk acks + End summary.
  [[nodiscard]] RpcCall submit_stream(Op begin_op, std::vector<u8> data,
                                      u8 sym_width, RpcOptions opts);
  void drive_stream(Op begin_op, std::vector<u8> data, u8 sym_width,
                    std::future<std::vector<u8>> begin,
                    std::shared_ptr<std::promise<std::vector<u8>>> out);
  /// Called under send_mu_: returns the live connection and its
  /// generation, dialing (with backoff) when there is none. Throws
  /// TransportError after the attempt budget.
  [[nodiscard]] std::pair<std::shared_ptr<Connection>, u64> ensure_connected();
  void reader_loop();
  /// Fail every pending entry of `generation` with TransportError.
  void fail_generation(u64 generation, const char* why);

  Connector connector_;
  ClientConfig cfg_;
  const util::Clock* clock_;

  std::mutex mu_;  // conn_, generation_, pending_, stopping_
  std::condition_variable conn_cv_;  // reader parks here between conns
  std::shared_ptr<Connection> conn_;
  u64 generation_ = 0;
  std::unordered_map<u64, Pending> pending_;
  bool stopping_ = false;

  std::mutex send_mu_;  // serializes connect + frame writes
  std::atomic<u64> next_id_{1};
  std::thread reader_;

  /// One driver thread per in-flight streamed submit. Finished drivers
  /// are reaped opportunistically on the next streamed submit; the dtor
  /// joins whatever is left after failing the pending map (safe: every
  /// future a driver waits on resolves — the reader's generation sweep or
  /// the sender's own failure path guarantees it).
  struct Driver {
    std::thread t;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex drivers_mu_;
  std::vector<Driver> drivers_;
};

}  // namespace parhuff::rpc
