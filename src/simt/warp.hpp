#pragma once
// Warp-level primitives over the block simulator.
//
// A WarpCtx executes its 32 lanes in lockstep *per collective step*: lane
// bodies are lambdas invoked for every lane, and the collectives
// (shuffle/ballot/reduce/scan) operate on per-lane value arrays. This keeps
// the SIMD structure of the paper's kernels visible in the reproduction and
// lets the tally attribute divergence where lanes take different branches.

#include <array>
#include <cstdint>
#include <functional>

#include "simt/block.hpp"

namespace parhuff::simt {

inline constexpr int kWarpSize = 32;

class WarpCtx {
 public:
  WarpCtx(BlockCtx& blk, int warp_id, int active_lanes)
      : blk_(blk), warp_id_(warp_id), active_(active_lanes) {}

  [[nodiscard]] int warp_id() const { return warp_id_; }
  [[nodiscard]] int active_lanes() const { return active_; }
  /// Thread id within the block of this warp's lane `l`.
  [[nodiscard]] int tid(int lane) const {
    return warp_id_ * kWarpSize + lane;
  }

  /// Execute `fn(lane)` for every active lane.
  template <typename Fn>
  void lanes(Fn&& fn) {
    for (int l = 0; l < active_; ++l) fn(l);
  }

  /// __ballot_sync: bitmask of lanes whose predicate holds.
  template <typename Pred>
  std::uint32_t ballot(Pred&& pred) {
    std::uint32_t mask = 0;
    int set = 0;
    for (int l = 0; l < active_; ++l) {
      if (pred(l)) {
        mask |= (1u << l);
        ++set;
      }
    }
    // Divergence if the predicate splits the warp.
    if (set != 0 && set != active_) blk_.tally().divergent_branches += 1;
    return mask;
  }

  /// __shfl_down_sync over a per-lane value array (in place result in lane i
  /// gets lane i+delta's value; lanes past the end keep their own).
  template <typename T>
  void shfl_down(std::array<T, kWarpSize>& v, int delta) {
    for (int l = 0; l + delta < active_; ++l) v[l] = v[l + delta];
    blk_.tally().ops(static_cast<u64>(active_));
  }

  /// Warp tree-reduction (sum) of per-lane values; result returned (lane 0's
  /// value on hardware).
  template <typename T>
  T reduce_add(std::array<T, kWarpSize>& v) {
    T sum{};
    for (int l = 0; l < active_; ++l) sum += v[l];
    // log2(32)=5 shuffle steps on hardware
    blk_.tally().ops(static_cast<u64>(active_) * 5);
    return sum;
  }

  /// Inclusive warp scan (sum) in place.
  template <typename T>
  void scan_inclusive(std::array<T, kWarpSize>& v) {
    T run{};
    for (int l = 0; l < active_; ++l) {
      run += v[l];
      v[l] = run;
    }
    blk_.tally().ops(static_cast<u64>(active_) * 5);
  }

 private:
  BlockCtx& blk_;
  int warp_id_;
  int active_;
};

/// Iterate the warps of a block: `fn(WarpCtx&)` for each warp; the final
/// warp may be partially populated when block_dim % 32 != 0.
template <typename Fn>
void for_each_warp(BlockCtx& blk, Fn&& fn) {
  const int warps = (blk.block_dim() + kWarpSize - 1) / kWarpSize;
  for (int w = 0; w < warps; ++w) {
    const int active =
        (w == warps - 1) ? blk.block_dim() - w * kWarpSize : kWarpSize;
    WarpCtx ctx(blk, w, active);
    fn(ctx);
  }
}

}  // namespace parhuff::simt
