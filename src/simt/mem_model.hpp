#pragma once
// Memory-transaction accounting for simulated kernels.
//
// Kernels running on the SIMT simulator annotate each global-memory access
// stream with the pattern it would exhibit on real hardware (the pattern is
// a static property of the code: a warp reading in[base+lane] is coalesced;
// a warp where each lane walks its own chunk is strided; a codebook lookup
// is effectively random). The byte counts are measured exactly at runtime;
// only the bytes→sector expansion uses the declared pattern. This is the
// standard analytic-GPU-model compromise: functional execution is exact,
// transaction expansion is derived from the access shape.

#include <cstdint>

#include "util/types.hpp"

namespace parhuff::simt {

/// DRAM transaction granularity on Volta/Turing.
inline constexpr u64 kSectorBytes = 32;

enum class Pattern {
  kCoalesced,  ///< consecutive lanes touch consecutive addresses
  kStrided,    ///< constant inter-lane stride larger than the element
  kRandom,     ///< data-dependent addresses (e.g. codebook lookups)
  kBroadcast,  ///< all lanes read the same address (one sector per warp)
};

/// Counter block. One per kernel launch; merged into the pipeline report.
struct MemTally {
  // Global memory, useful payload bytes.
  u64 global_read_bytes = 0;
  u64 global_write_bytes = 0;
  // Global memory, 32-byte sectors actually transferred after coalescing.
  u64 global_read_sectors = 0;
  u64 global_write_sectors = 0;
  // Shared memory payload bytes.
  u64 shared_bytes = 0;
  // Atomics: count and total serialized conflict depth.
  u64 global_atomics = 0;
  u64 global_atomic_conflicts = 0;
  u64 shared_atomics = 0;
  u64 shared_atomic_conflicts = 0;
  // Control.
  u64 kernel_launches = 0;
  u64 grid_syncs = 0;
  u64 block_syncs = 0;
  u64 divergent_branches = 0;
  // Scalar work executed by threads (approximate instruction count).
  u64 scalar_ops = 0;
  // Work executed by a *single* thread with full dependent latency
  // (sequential sections; drives the serial-on-GPU baselines).
  u64 serial_dependent_ops = 0;

  void reset() { *this = MemTally{}; }

  MemTally& operator+=(const MemTally& o) {
    global_read_bytes += o.global_read_bytes;
    global_write_bytes += o.global_write_bytes;
    global_read_sectors += o.global_read_sectors;
    global_write_sectors += o.global_write_sectors;
    shared_bytes += o.shared_bytes;
    global_atomics += o.global_atomics;
    global_atomic_conflicts += o.global_atomic_conflicts;
    shared_atomics += o.shared_atomics;
    shared_atomic_conflicts += o.shared_atomic_conflicts;
    kernel_launches += o.kernel_launches;
    grid_syncs += o.grid_syncs;
    block_syncs += o.block_syncs;
    divergent_branches += o.divergent_branches;
    scalar_ops += o.scalar_ops;
    serial_dependent_ops += o.serial_dependent_ops;
    return *this;
  }

  /// Record `n` accesses of `elem_bytes` each from one warp-shaped group of
  /// `group` lanes, expanding to sectors per the pattern.
  void global_read(u64 n, u64 elem_bytes, Pattern p, int group = 32) {
    global_read_bytes += n * elem_bytes;
    global_read_sectors += sectors(n, elem_bytes, p, group);
  }
  void global_write(u64 n, u64 elem_bytes, Pattern p, int group = 32) {
    global_write_bytes += n * elem_bytes;
    global_write_sectors += sectors(n, elem_bytes, p, group);
  }
  void shared_access(u64 n, u64 elem_bytes) { shared_bytes += n * elem_bytes; }
  /// `conflict_depth` = expected number of same-address/same-bank collisions
  /// each atomic serializes behind (1 = conflict-free).
  void global_atomic(u64 n, double conflict_depth = 1.0) {
    global_atomics += n;
    global_atomic_conflicts += static_cast<u64>(
        static_cast<double>(n) * (conflict_depth < 1.0 ? 1.0 : conflict_depth));
  }
  void shared_atomic(u64 n, double conflict_depth = 1.0) {
    shared_atomics += n;
    shared_atomic_conflicts += static_cast<u64>(
        static_cast<double>(n) * (conflict_depth < 1.0 ? 1.0 : conflict_depth));
  }
  void ops(u64 n) { scalar_ops += n; }
  void serial_ops(u64 n) { serial_dependent_ops += n; }

  [[nodiscard]] static u64 sectors(u64 n, u64 elem_bytes, Pattern p,
                                   int group) {
    if (n == 0) return 0;
    switch (p) {
      case Pattern::kCoalesced: {
        // group consecutive elements share ceil(group*elem/32) sectors; a
        // partial trailing group still rounds up per warp.
        const u64 per_group =
            (static_cast<u64>(group) * elem_bytes + kSectorBytes - 1) /
            kSectorBytes;
        const u64 groups = (n + static_cast<u64>(group) - 1) /
                           static_cast<u64>(group);
        return groups * per_group;
      }
      case Pattern::kStrided:
      case Pattern::kRandom:
        // every access lands in its own sector
        return n * ((elem_bytes + kSectorBytes - 1) / kSectorBytes);
      case Pattern::kBroadcast: {
        const u64 groups = (n + static_cast<u64>(group) - 1) /
                           static_cast<u64>(group);
        return groups * ((elem_bytes + kSectorBytes - 1) / kSectorBytes);
      }
    }
    return n;
  }
};

}  // namespace parhuff::simt
