#pragma once
// Functional SIMT execution: grids of thread blocks with shared memory and
// barrier semantics, executed block-parallel on the host.
//
// Execution model
// ---------------
// A kernel is a callable `void(BlockCtx&)`. Blocks are independent (as in
// CUDA) and are scheduled across an OpenMP thread pool. *Within* a block,
// per-thread code is expressed as barrier-delimited regions:
//
//   launch(grid_dim, block_dim, tally, [&](BlockCtx& blk) {
//     auto hist = blk.shared_array<unsigned>(nbins);       // __shared__
//     blk.threads([&](int tid) { ... phase 1 ... });       // region
//     blk.sync();                                          // __syncthreads()
//     blk.threads([&](int tid) { ... phase 2 ... });
//   });
//
// Each `threads()` region runs every thread of the block to completion
// before the next region starts, which is exactly the visibility guarantee
// `__syncthreads()` provides for code that only communicates across
// barriers — the discipline all kernels in this codebase follow (and that
// correct CUDA kernels must follow anyway). `sync()` exists to make the
// barrier explicit at call sites and to tally its modeled cost.
//
// Warp-level execution (shuffles, ballots) is provided by warp.hpp on top of
// `BlockCtx::warps()`.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simt/mem_model.hpp"
#include "util/parallel.hpp"

namespace parhuff::simt {

/// Per-block shared-memory arena. Allocations live until the block retires,
/// mirroring the shared-memory lifecycle binding described in §III-A of the
/// paper.
class SharedMem {
 public:
  explicit SharedMem(std::size_t capacity_bytes)
      : storage_(capacity_bytes), used_(0) {}

  template <typename T>
  std::span<T> alloc(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    const std::size_t aligned = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    assert(aligned + bytes <= storage_.size() &&
           "simulated shared memory exhausted (96 KiB/block)");
    used_ = aligned + bytes;
    return {reinterpret_cast<T*>(storage_.data() + aligned), n};
  }

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }

 private:
  std::vector<std::byte> storage_;
  std::size_t used_;
};

/// Volta/Turing expose up to 96 KiB of shared memory per block.
inline constexpr std::size_t kSharedMemBytes = 96 * 1024;

class BlockCtx {
 public:
  BlockCtx(int block_id, int block_dim, int grid_dim, MemTally* tally)
      : block_id_(block_id),
        block_dim_(block_dim),
        grid_dim_(grid_dim),
        shmem_(kSharedMemBytes),
        tally_(tally) {}

  [[nodiscard]] int block_id() const { return block_id_; }
  [[nodiscard]] int block_dim() const { return block_dim_; }
  [[nodiscard]] int grid_dim() const { return grid_dim_; }
  /// Global thread id of this block's thread `tid`.
  [[nodiscard]] std::size_t global_id(int tid) const {
    return static_cast<std::size_t>(block_id_) * block_dim_ + tid;
  }
  /// Total threads in the grid.
  [[nodiscard]] std::size_t grid_size() const {
    return static_cast<std::size_t>(grid_dim_) * block_dim_;
  }

  template <typename T>
  std::span<T> shared_array(std::size_t n) {
    tally().shared_access(0, 0);  // allocation itself is free
    return shmem_.alloc<T>(n);
  }

  /// Run `fn(tid)` for every thread of the block. Regions are implicitly
  /// barrier-delimited (see file comment).
  template <typename Fn>
  void threads(Fn&& fn) {
    for (int t = 0; t < block_dim_; ++t) fn(t);
  }

  /// Explicit __syncthreads() — functional no-op between regions, but
  /// tallied for the performance model.
  void sync() { tally().block_syncs += 1; }

  [[nodiscard]] MemTally& tally() {
    return tally_ ? *tally_ : scratch_tally_;
  }

 private:
  int block_id_;
  int block_dim_;
  int grid_dim_;
  SharedMem shmem_;
  MemTally* tally_;
  MemTally scratch_tally_;  // used when the caller doesn't collect metrics
};

/// Launch `grid_dim` blocks of `block_dim` simulated threads. Blocks execute
/// concurrently on host threads; each block runs its regions serially.
/// `tally` (optional) accumulates transaction counts from all blocks.
template <typename Kernel>
void launch(int grid_dim, int block_dim, MemTally* tally, Kernel&& kernel) {
  assert(block_dim >= 1 && block_dim <= 1024);
  obs::TraceSpan span("simt.launch", "simt");
  std::vector<MemTally> per_block(tally ? static_cast<std::size_t>(grid_dim)
                                        : 0);
  parhuff::parallel_for(static_cast<std::size_t>(grid_dim), [&](std::size_t b) {
    BlockCtx ctx(static_cast<int>(b), block_dim, grid_dim,
                 tally ? &per_block[b] : nullptr);
    kernel(ctx);
  });
  obs::MetricsRegistry::global().counter_add("simt.kernel_launches");
  if (tally) {
    tally->kernel_launches += 1;
    u64 block_syncs = 0;
    for (const auto& t : per_block) {
      *tally += t;
      block_syncs += t.block_syncs;
    }
    obs::MetricsRegistry::global().counter_add("simt.block_syncs",
                                               block_syncs);
  }
}

}  // namespace parhuff::simt
