#pragma once
// Atomic read-modify-write wrappers matching the CUDA intrinsics the paper's
// kernels rely on (atomicAdd / atomicMin / atomicMax / atomicCAS).
//
// Simulated blocks may execute concurrently on host threads, so these must
// be real atomics; std::atomic_ref lets plain arrays stay plain.

#include <atomic>

namespace parhuff::simt {

template <typename T>
T atomic_add(T& target, T value) {
  return std::atomic_ref<T>(target).fetch_add(value,
                                              std::memory_order_relaxed);
}

template <typename T>
T atomic_min(T& target, T value) {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (value < cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  return cur;
}

template <typename T>
T atomic_max(T& target, T value) {
  std::atomic_ref<T> ref(target);
  T cur = ref.load(std::memory_order_relaxed);
  while (value > cur &&
         !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  return cur;
}

template <typename T>
T atomic_cas(T& target, T expected, T desired) {
  std::atomic_ref<T> ref(target);
  T e = expected;
  ref.compare_exchange_strong(e, desired, std::memory_order_relaxed);
  return e;  // CUDA atomicCAS returns the old value
}

}  // namespace parhuff::simt
