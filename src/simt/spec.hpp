#pragma once
// Device specifications for the GPUs the paper evaluates on.
//
// parhuff runs every GPU kernel on a functional SIMT simulator (see
// block.hpp / coop.hpp). Wall-clock on the simulator says nothing about GPU
// time, so each kernel also tallies the memory transactions, synchronizations
// and scalar work it performs (mem_model.hpp), and perf/gpu_model.hpp
// converts those tallies into *modeled* time for one of these DeviceSpecs.
// All modeled numbers printed by the benches are labeled as modeled.

#include <string>

namespace parhuff::simt {

struct DeviceSpec {
  std::string name;

  int sm_count = 0;             ///< streaming multiprocessors
  int warp_size = 32;
  int max_threads_per_block = 1024;
  int max_resident_threads_per_sm = 2048;

  double mem_bandwidth_gbps = 0;     ///< peak DRAM bandwidth (decimal GB/s)
  double mem_efficiency = 0.80;      ///< sustainable fraction of peak for
                                     ///< streaming kernels
  double shared_bandwidth_gbps = 0;  ///< aggregate shared-memory bandwidth

  double kernel_launch_us = 60.0;    ///< the paper profiles ~60 us per launch
  double grid_sync_us = 3.0;         ///< cooperative-groups grid barrier
  double block_sync_ns = 30.0;       ///< __syncthreads
  double atomic_global_ns = 10.0;    ///< serialized same-address global atomic
  double atomic_shared_ns = 2.0;     ///< serialized same-bank shared atomic

  double clock_ghz = 1.0;
  /// Modeled latency of one dependent scalar operation executed by a single
  /// GPU thread (no ILP, no occupancy to hide latency). This drives the
  /// "serial tree construction on the GPU takes 144 ms" reproduction: a lone
  /// GPU thread pays full pipeline + memory latency on every step.
  double serial_thread_op_ns = 105.0;
  /// Modeled throughput of bulk scalar work when the grid is saturated:
  /// ops per second across the whole device.
  [[nodiscard]] double bulk_ops_per_sec() const {
    // 64 FP32/int lanes per SM, issue ~1 op/clk/lane.
    return static_cast<double>(sm_count) * 64.0 * clock_ghz * 1e9;
  }

  /// Sustainable DRAM bandwidth in bytes/second.
  [[nodiscard]] double mem_bytes_per_sec() const {
    return mem_bandwidth_gbps * 1e9 * mem_efficiency;
  }

  /// NVIDIA Tesla V100 (Longhorn): 80 SMs, 16 GB HBM2 @ 900 GB/s.
  static DeviceSpec v100();
  /// NVIDIA Quadro RTX 5000 (Frontera): 48 SMs, 16 GB GDDR6 @ 448 GB/s.
  static DeviceSpec rtx5000();
};

}  // namespace parhuff::simt
