#include "simt/spec.hpp"

namespace parhuff::simt {

DeviceSpec DeviceSpec::v100() {
  DeviceSpec d;
  d.name = "V100";
  d.sm_count = 80;
  d.mem_bandwidth_gbps = 900.0;
  d.shared_bandwidth_gbps = 12000.0;
  d.clock_ghz = 1.53;
  d.kernel_launch_us = 60.0;
  d.grid_sync_us = 2.5;
  d.serial_thread_op_ns = 105.0;
  return d;
}

DeviceSpec DeviceSpec::rtx5000() {
  DeviceSpec d;
  d.name = "RTX5000";
  d.sm_count = 48;
  d.mem_bandwidth_gbps = 448.0;
  d.shared_bandwidth_gbps = 7000.0;
  d.clock_ghz = 1.62;
  d.kernel_launch_us = 60.0;
  d.grid_sync_us = 3.0;
  d.serial_thread_op_ns = 95.0;
  return d;
}

}  // namespace parhuff::simt
