#pragma once
// Block-level cooperative primitives over the SIMT simulator: reduction,
// exclusive/inclusive scan, and broadcast, with the warp-then-block
// structure (and cost profile) of the standard CUB-style implementations.
//
// These operate on shared-memory spans inside a block and tally the
// shared traffic + log-depth op counts the real algorithms exhibit.

#include <cstddef>
#include <span>

#include "simt/block.hpp"

namespace parhuff::simt {

/// Block-wide sum reduction of `data` (in shared memory). Returns the sum;
/// `data` contents are preserved.
template <typename T>
[[nodiscard]] T block_reduce_add(BlockCtx& blk, std::span<const T> data) {
  T sum{};
  for (const T& v : data) sum += v;
  u64 lg = 1;
  for (std::size_t n = data.size(); n > 1; n >>= 1) ++lg;
  blk.tally().ops(data.size() + 32 * lg);
  blk.tally().shared_access(data.size(), sizeof(T));
  blk.sync();
  return sum;
}

/// Block-wide exclusive scan in place; returns the total.
template <typename T>
T block_scan_exclusive(BlockCtx& blk, std::span<T> data) {
  T run{};
  for (T& v : data) {
    const T x = v;
    v = run;
    run += x;
  }
  u64 lg = 1;
  for (std::size_t n = data.size(); n > 1; n >>= 1) ++lg;
  // Work-efficient scan: up-sweep + down-sweep, 2n shared accesses, log
  // depth barriers.
  blk.tally().ops(2 * data.size());
  blk.tally().shared_access(2 * data.size(), sizeof(T));
  blk.tally().block_syncs += 2 * lg;
  return run;
}

/// Block-wide inclusive scan in place; returns the total.
template <typename T>
T block_scan_inclusive(BlockCtx& blk, std::span<T> data) {
  T run{};
  for (T& v : data) {
    run += v;
    v = run;
  }
  u64 lg = 1;
  for (std::size_t n = data.size(); n > 1; n >>= 1) ++lg;
  blk.tally().ops(2 * data.size());
  blk.tally().shared_access(2 * data.size(), sizeof(T));
  blk.tally().block_syncs += 2 * lg;
  return run;
}

/// Block-wide maximum.
template <typename T>
[[nodiscard]] T block_reduce_max(BlockCtx& blk, std::span<const T> data) {
  T best = data.empty() ? T{} : data[0];
  for (const T& v : data) {
    if (best < v) best = v;
  }
  blk.tally().ops(data.size());
  blk.tally().shared_access(data.size(), sizeof(T));
  blk.sync();
  return best;
}

}  // namespace parhuff::simt
