#pragma once
// Cooperative-groups substitute: a single persistent grid whose threads can
// synchronize grid-wide.
//
// The paper's codebook-construction kernels (Algorithm 1) are single CUDA
// kernels using Cooperative Groups `grid.sync()` between fine-grained
// parallel regions, precisely to avoid paying ~60 us per kernel launch for
// regions that do microseconds of work. The simulator models the same
// structure: a CooperativeGrid is "launched" once (one kernel-launch tally),
// and each `par`/`seq` region boundary is one grid sync.
//
//   CooperativeGrid grid(n_threads, &tally);
//   grid.par(n, [&](std::size_t i) { ... });   // concurrent-for region
//   grid.seq([&] { ... });                     // single-thread region
//
// Functional semantics match CREW PRAM with barriers: every region sees all
// writes of the previous region. Regions execute on the host thread pool.

#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simt/mem_model.hpp"
#include "util/parallel.hpp"

namespace parhuff::simt {

class CooperativeGrid {
 public:
  /// `grid_threads` is the number of resident threads the cooperative launch
  /// would have; regions larger than it are grid-strided, which the tally
  /// reflects via scalar op counts.
  explicit CooperativeGrid(std::size_t grid_threads, MemTally* tally)
      : grid_threads_(grid_threads),
        tally_(tally),
        span_("simt.coop_grid", "simt") {
    if (tally_) tally_->kernel_launches += 1;
    obs::MetricsRegistry::global().counter_add("simt.kernel_launches");
  }

  [[nodiscard]] std::size_t grid_threads() const { return grid_threads_; }

  /// Concurrent region: fn(i) for i in [0, n), followed by grid.sync().
  template <typename Fn>
  void par(std::size_t n, Fn&& fn) {
    parhuff::parallel_for(n, fn);
    sync();
  }

  /// Sequential region executed by "thread 0", followed by grid.sync().
  /// `dependent_ops` lets callers charge the modeled cost of the serial
  /// chain they just executed (counted, not estimated, at the call site).
  template <typename Fn>
  void seq(Fn&& fn, u64 dependent_ops = 0) {
    fn();
    if (tally_) tally_->serial_dependent_ops += dependent_ops;
    sync();
  }

  void sync() {
    if (tally_) tally_->grid_syncs += 1;
    obs::MetricsRegistry::global().counter_add("simt.grid_syncs");
  }

  [[nodiscard]] MemTally* tally() { return tally_; }

 private:
  std::size_t grid_threads_;
  MemTally* tally_;
  obs::TraceSpan span_;  ///< the cooperative launch's lifetime on the trace
};

}  // namespace parhuff::simt
