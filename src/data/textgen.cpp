#include "data/textgen.hpp"

#include <array>
#include <string_view>

#include "util/rng.hpp"

namespace parhuff::data {

namespace {

// English letter frequencies (per mille), lowercase.
constexpr std::array<std::pair<char, int>, 26> kLetterFreq = {{
    {'e', 127}, {'t', 91}, {'a', 82}, {'o', 75}, {'i', 70}, {'n', 67},
    {'s', 63},  {'h', 61}, {'r', 60}, {'d', 43}, {'l', 40}, {'c', 28},
    {'u', 28},  {'m', 24}, {'w', 24}, {'f', 22}, {'g', 20}, {'y', 20},
    {'p', 19},  {'b', 15}, {'v', 10}, {'k', 8},  {'j', 2},  {'x', 2},
    {'q', 1},   {'z', 1},
}};

constexpr std::string_view kTags[] = {
    "<page>",     "</page>",   "<title>",    "</title>", "<revision>",
    "</revision>", "<text xml:space=\"preserve\">", "</text>",
    "<id>",       "</id>",     "<timestamp>", "</timestamp>",
    "<contributor>", "</contributor>", "[[Category:", "]]", "[[", "]]",
    "{{cite web", "}}", "&quot;", "&amp;",
};

class LetterSampler {
 public:
  LetterSampler() {
    int cum = 0;
    for (std::size_t i = 0; i < kLetterFreq.size(); ++i) {
      cum += kLetterFreq[i].second;
      cum_[i] = cum;
    }
    total_ = cum;
  }
  char sample(Xoshiro256& rng) const {
    const int x = static_cast<int>(rng.below(static_cast<u64>(total_)));
    for (std::size_t i = 0; i < cum_.size(); ++i) {
      if (x < cum_[i]) return kLetterFreq[i].first;
    }
    return 'e';
  }

 private:
  std::array<int, 26> cum_{};
  int total_ = 0;
};

}  // namespace

std::vector<u8> generate_text(std::size_t size, u64 seed) {
  Xoshiro256 rng(seed ^ 0x74657874u);
  const LetterSampler letters;
  std::vector<u8> out;
  out.reserve(size + 64);

  auto emit = [&](char c) { out.push_back(static_cast<u8>(c)); };
  auto emit_sv = [&](std::string_view s) {
    for (char c : s) emit(c);
  };

  std::size_t since_tag = 0;
  std::size_t since_newline = 0;
  while (out.size() < size) {
    // Structural markup roughly every 300 characters.
    if (since_tag > 250 + rng.below(120)) {
      emit_sv(kTags[rng.below(std::size(kTags))]);
      since_tag = 0;
      continue;
    }
    // A word.
    const std::size_t len = 1 + rng.geometric(0.22);
    const bool capitalize = rng.below(8) == 0;
    for (std::size_t i = 0; i < len && out.size() < size; ++i) {
      char c = letters.sample(rng);
      if (i == 0 && capitalize && c >= 'a' && c <= 'z') {
        c = static_cast<char>(c - 'a' + 'A');
      }
      emit(c);
    }
    since_tag += len;
    since_newline += len;
    // Separator: space, punctuation, digits (years, ids), wiki markup,
    // UTF-8 continuation pairs, newline — the long tail that pushes a real
    // Wikipedia dump's byte alphabet toward ~5.2 average Huffman bits.
    const u64 sep = rng.below(100);
    if (sep < 50) {
      emit(' ');
    } else if (sep < 56) {
      emit(',');
      emit(' ');
    } else if (sep < 62) {
      emit('.');
      emit(' ');
    } else if (sep < 75) {
      // A number (years, page ids, citation numbers).
      const std::size_t digits = 1 + rng.below(6);
      for (std::size_t i = 0; i < digits && out.size() < size; ++i) {
        emit(static_cast<char>('0' + rng.below(10)));
      }
      emit(' ');
    } else if (sep < 78) {
      emit('\'');
    } else if (sep < 89) {
      // Markup tail. Wiki link/template brackets come in doubles and
      // dominate (as in a real dump, where [[ and {{ are everywhere);
      // singleton punctuation is the long tail.
      if (rng.below(2) == 0) {
        static constexpr const char* kDoubles[] = {"[[", "]]", "{{", "}}",
                                                   "''"};
        const char* d = kDoubles[rng.below(std::size(kDoubles))];
        emit(d[0]);
        emit(d[1]);
      } else {
        static constexpr char kPunct[] = {'|', '=', '/', ':', ';', '-', '"',
                                          '#', '(', ')', '*', '&', '%', '_',
                                          '+', '!'};
        emit(kPunct[rng.below(std::size(kPunct))]);
      }
    } else if (sep < 95) {
      // UTF-8 two-byte sequence: a handful of accented letters dominate in
      // a real dump (é, ü, ö, à, ...), so the continuation byte comes from
      // a small set rather than uniformly.
      static constexpr unsigned char kCont[] = {0xA9, 0xBC, 0xB6, 0xA0,
                                                0xA8, 0xB3, 0x9F, 0x84};
      emit(static_cast<char>(0xC3));
      emit(static_cast<char>(kCont[rng.below(std::size(kCont))]));
    } else {
      emit('\n');
      since_newline = 0;
    }
    if (since_newline > 600) {
      emit('\n');
      since_newline = 0;
    }
  }
  out.resize(size);
  return out;
}

}  // namespace parhuff::data
