#pragma once
// Structured-record generators:
//  * generate_nci  — stand-in for Silesia's `nci` (chemical structure
//    database): fixed-width numeric coordinate tables dominated by spaces
//    and zeros; the paper measures 2.73 average bits.
//  * generate_flan — stand-in for SuiteSparse Flan_1565 in Rutherford-Boeing
//    format: ASCII integer/float columns, digit-heavy; paper: 4.14 bits.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

[[nodiscard]] std::vector<u8> generate_nci(std::size_t size, u64 seed);
[[nodiscard]] std::vector<u8> generate_flan(std::size_t size, u64 seed);

}  // namespace parhuff::data
