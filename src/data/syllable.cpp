#include "data/syllable.hpp"

#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace parhuff::data {

namespace {

constexpr char kFrontVowels[] = {'e', 'i', 'o', 'u'};  // "harmony" class A
constexpr char kBackVowels[] = {'a', 'i', 'u', 'o'};   // class B (overlap ok)
constexpr char kOnsets[] = {'k', 't', 's', 'l', 'm', 'n', 'r', 'd',
                            'g', 'b', 'y', 'v', 'p', 'h'};
constexpr char kCodas[] = {'n', 'r', 'l', 'k', 't', 's', 'm'};

bool is_vowel(u8 c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}
bool is_letter(u8 c) { return c >= 'a' && c <= 'z'; }

}  // namespace

std::vector<u8> generate_agglutinative(std::size_t size, u64 seed) {
  Xoshiro256 rng(seed ^ 0x73796cu);
  std::vector<u8> out;
  out.reserve(size + 32);
  auto emit = [&](char c) { out.push_back(static_cast<u8>(c)); };

  std::size_t since_newline = 0;
  while (out.size() < size) {
    // One word: a root of 1-2 syllables plus 0-4 agglutinated suffixes,
    // all sharing a vowel-harmony class.
    const bool front = rng.below(2) == 0;
    const char* vowels = front ? kFrontVowels : kBackVowels;
    const std::size_t n_vowels = front ? std::size(kFrontVowels)
                                       : std::size(kBackVowels);
    const std::size_t syllables = 1 + rng.below(2) + rng.below(5);
    for (std::size_t sy = 0; sy < syllables && out.size() < size; ++sy) {
      // CV or CVC; onset distribution skewed so common syllables repeat.
      emit(kOnsets[static_cast<std::size_t>(
          rng.below(100) < 70 ? rng.below(6) : rng.below(std::size(kOnsets)))]);
      emit(vowels[rng.below(n_vowels)]);
      if (rng.below(3) == 0) {
        emit(kCodas[rng.below(std::size(kCodas))]);
      }
    }
    since_newline += syllables * 3;
    if (rng.below(12) == 0) {
      emit('.');
    }
    if (since_newline > 400) {
      emit('\n');
      since_newline = 0;
    } else {
      emit(' ');
    }
  }
  out.resize(size);
  return out;
}

SyllableStream syllabify(const std::vector<u8>& text) {
  SyllableStream s;
  std::unordered_map<std::string, u16> dict;
  auto intern = [&](std::string&& syl) {
    auto [it, inserted] = dict.emplace(std::move(syl),
                                       static_cast<u16>(s.dictionary.size()));
    if (inserted) {
      if (s.dictionary.size() >= 65535) {
        throw std::runtime_error("syllable dictionary exceeds 16-bit ids");
      }
      s.dictionary.push_back(it->first);
    }
    s.symbols.push_back(it->second);
  };

  std::size_t i = 0;
  while (i < text.size()) {
    if (!is_letter(text[i])) {
      intern(std::string(1, static_cast<char>(text[i])));
      ++i;
      continue;
    }
    // Maximal C*V+C? group: consume onsets until the vowel run, take the
    // vowels, then one coda consonant if the next-next char keeps a valid
    // syllable start (greedy syllabification).
    std::size_t j = i;
    while (j < text.size() && is_letter(text[j]) && !is_vowel(text[j])) ++j;
    while (j < text.size() && is_vowel(text[j])) ++j;
    if (j < text.size() && is_letter(text[j]) && !is_vowel(text[j])) {
      // Take the consonant as coda unless it begins the next syllable
      // (i.e. it is followed directly by a vowel).
      const bool next_is_onset =
          j + 1 < text.size() && is_vowel(text[j + 1]);
      if (!next_is_onset) ++j;
    }
    if (j == i) ++j;  // safety: always progress
    intern(std::string(text.begin() + static_cast<std::ptrdiff_t>(i),
                       text.begin() + static_cast<std::ptrdiff_t>(j)));
    i = j;
  }
  s.distinct = s.dictionary.size();
  std::size_t nbins = 1;
  while (nbins < s.distinct) nbins <<= 1;
  s.nbins = nbins;
  return s;
}

std::vector<u8> unsyllabify(const SyllableStream& s) {
  std::vector<u8> out;
  for (const u16 sym : s.symbols) {
    const std::string& syl = s.dictionary.at(sym);
    out.insert(out.end(), syl.begin(), syl.end());
  }
  return out;
}

}  // namespace parhuff::data
