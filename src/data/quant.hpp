#pragma once
// Mini-SZ: the error-bounded lossy-compression front end that produces the
// paper's Nyx-Quant workload (quantization codes of SZ on Nyx's
// baryon_density field).
//
// This is a real, round-trippable implementation of SZ's classic pipeline
// piece: a 3-D Lorenzo predictor over *reconstructed* values and a linear
// error-bounded quantizer with 2^k bins centered on "perfect prediction".
// Codes that fall outside the bin range become outliers stored verbatim.
// The decompressed field is guaranteed within ±eb of the input (tested).
//
// The synthetic input field is a multi-scale cosmology-like density: smooth
// large-scale modes plus lognormal small-scale structure, tuned so the code
// histogram matches the paper's Nyx-Quant profile (≈1.03 average bits over
// 1024 bins).

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

struct Dims {
  std::size_t nx = 0, ny = 0, nz = 0;
  [[nodiscard]] std::size_t total() const { return nx * ny * nz; }
};

/// Synthetic baryon-density-like field.
[[nodiscard]] std::vector<float> generate_cosmo_field(Dims dims, u64 seed);

struct Quantized {
  Dims dims;
  double error_bound = 0;
  u32 nbins = 0;
  std::vector<u16> codes;  ///< quantization codes; 0 = outlier marker
  std::vector<std::pair<u32, float>> outliers;  ///< (flat index, raw value)
};

/// SZ-style quantization: |reconstruct(quantize(f)) - f| <= eb elementwise.
[[nodiscard]] Quantized lorenzo_quantize(const std::vector<float>& field,
                                         Dims dims, double error_bound,
                                         u32 nbins = 1024);

/// Inverse transform.
[[nodiscard]] std::vector<float> lorenzo_reconstruct(const Quantized& q);

/// Convenience for the benches: `n` Nyx-Quant-like codes over 1024 bins.
[[nodiscard]] std::vector<u16> generate_nyx_quant(std::size_t n, u64 seed);

}  // namespace parhuff::data
