#pragma once
// Synthetic frequency histograms for codebook-construction benchmarks.
//
// The paper's footnote 3: real test datasets top out at 8192 symbols, so
// Table IV uses synthetic normally-distributed histograms for 16384–65536
// symbols. Additional shapes (exponential, Zipf, uniform, DNA-k-mer-like)
// back the property tests and ablations.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

/// Normal histogram: bin i's frequency ∝ exp(-(i-n/2)^2 / 2σ^2), σ = n/8,
/// scaled to `total` and clamped to ≥1 so every symbol participates.
[[nodiscard]] std::vector<u64> normal_histogram(std::size_t nbins, u64 total,
                                                u64 seed);

/// Exponential: freq_i ∝ 2^(-i·k/n); adversarial depth for Huffman trees.
[[nodiscard]] std::vector<u64> exponential_histogram(std::size_t nbins,
                                                     double decay, u64 seed);

/// Zipf with exponent `s` — text-like tails.
[[nodiscard]] std::vector<u64> zipf_histogram(std::size_t nbins, double s,
                                              u64 total, u64 seed);

/// Uniformly random frequencies in [1, hi].
[[nodiscard]] std::vector<u64> uniform_histogram(std::size_t nbins, u64 hi,
                                                 u64 seed);

/// DNA-k-mer-shaped histogram with exactly `nbins` populated symbols: a few
/// hundred dominant ACGT-only k-mers carrying most of the mass plus a long
/// tail of rare mixed k-mers (the Table III regime).
[[nodiscard]] std::vector<u64> kmer_like_histogram(std::size_t nbins,
                                                   u64 total, u64 seed);

}  // namespace parhuff::data
