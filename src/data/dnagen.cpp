#include "data/dnagen.hpp"

#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace parhuff::data {

namespace {

constexpr std::string_view kWords[] = {
    "Bacillus", "subtilis", "strain",  "chromosome", "complete", "genome",
    "16S",      "ribosomal", "RNA",    "gene",       "partial",  "sequence",
    "Escherichia", "coli",  "plasmid", "protein",    "putative", "synthase",
};

void emit_str(std::vector<u8>& out, std::string_view s) {
  for (char c : s) out.push_back(static_cast<u8>(c));
}

}  // namespace

std::vector<u8> generate_genbank(std::size_t size, u64 seed) {
  Xoshiro256 rng(seed ^ 0x646e61u);
  std::vector<u8> out;
  out.reserve(size + 256);

  u64 accession = 100000 + rng.below(800000);
  while (out.size() < size) {
    // --- Record header. ---------------------------------------------------
    char buf[96];
    const u64 seq_len = (24 + rng.below(120)) * 100;
    std::snprintf(buf, sizeof buf,
                  "LOCUS       AB%06llu  %llu bp    DNA     linear   BCT\n",
                  static_cast<unsigned long long>(accession++ % 400),
                  static_cast<unsigned long long>(seq_len));
    emit_str(out, buf);
    emit_str(out, "DEFINITION  ");
    for (int w = 0; w < 6; ++w) {
      emit_str(out, kWords[rng.below(std::size(kWords))]);
      out.push_back(' ');
    }
    emit_str(out, "\nORIGIN\n");

    // --- Sequence block: "   601 acgtacgtag cgta..." lines. ---------------
    // Base composition ~GC-balanced with CpG suppression and rare 'n'.
    u8 prev = 'a';
    for (u64 pos = 1; pos <= seq_len && out.size() < size; pos += 60) {
      std::snprintf(buf, sizeof buf, "%9llu",
                    static_cast<unsigned long long>(pos));
      emit_str(out, buf);
      for (int group = 0; group < 6; ++group) {
        out.push_back(' ');
        for (int i = 0; i < 10; ++i) {
          u8 base;
          const u64 x = rng.below(1000);
          if (prev == 'c' && x < 180) {
            base = 't';  // CpG suppression: c rarely followed by g
          } else if (x < 300) {
            base = 'a';
          } else if (x < 560) {
            base = 't';
          } else if (x < 790) {
            base = 'g';
          } else {
            base = 'c';
          }
          out.push_back(base);
          prev = base;
        }
      }
      out.push_back('\n');
    }
    emit_str(out, "//\n");
  }
  out.resize(size);
  return out;
}

KmerStream kmer_pack(const std::vector<u8>& bytes, unsigned k) {
  if (k == 0 || k > 8) throw std::invalid_argument("k must be in [1, 8]");
  KmerStream s;
  std::unordered_map<std::string, u16> dict;
  const std::size_t n_syms = (bytes.size() + k - 1) / k;
  s.symbols.reserve(n_syms);
  std::string key(k, '\0');
  for (std::size_t i = 0; i < bytes.size(); i += k) {
    for (unsigned j = 0; j < k; ++j) {
      key[j] = i + j < bytes.size() ? static_cast<char>(bytes[i + j]) : '\0';
    }
    auto [it, inserted] =
        dict.emplace(key, static_cast<u16>(s.dictionary.size()));
    if (inserted) {
      if (s.dictionary.size() >= 65535) {
        throw std::runtime_error("k-mer dictionary exceeds 16-bit symbols");
      }
      s.dictionary.emplace_back(key.begin(), key.end());
    }
    s.symbols.push_back(it->second);
  }
  s.distinct = s.dictionary.size();
  std::size_t nbins = 1;
  while (nbins < s.distinct) nbins <<= 1;
  s.nbins = nbins;
  return s;
}

std::vector<u8> kmer_unpack(const KmerStream& s, unsigned k,
                            std::size_t original_size) {
  std::vector<u8> out;
  out.reserve(s.symbols.size() * k);
  for (const u16 sym : s.symbols) {
    const auto& bytes = s.dictionary.at(sym);
    out.insert(out.end(), bytes.begin(), bytes.end());
  }
  out.resize(original_size);
  return out;
}

}  // namespace parhuff::data
