#pragma once
// Registry of the paper's six evaluation datasets mapped to their synthetic
// stand-ins, with the reference numbers the benches print alongside the
// measured/modeled reproduction (Table V rows).

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

enum class SymbolWidth { kByte, kMulti };

struct DatasetInfo {
  std::string name;            ///< paper's name, e.g. "ENWIK8"
  std::size_t paper_bytes;     ///< dataset size in the paper
  double paper_avg_bits;       ///< Table V "avg. bits"
  u32 paper_reduce_factor;     ///< Table V "#reduce"
  double paper_encode_v100;    ///< Table V ours ENCODE GB/s on V100
  double paper_encode_rtx;     ///< ... on RTX 5000
  double paper_cusz_encode_v100;  ///< Table V cuSZ ENCODE GB/s on V100
  double paper_overall_v100;   ///< Table V ours OVERALL GB/s on V100
  SymbolWidth width;
  std::size_t nbins;           ///< histogram size used by the pipeline
};

/// The six rows of Table V, in paper order.
[[nodiscard]] const std::vector<DatasetInfo>& paper_datasets();

/// Generate the stand-in for dataset `name` ("ENWIK8", "ENWIK9", "MR",
/// "NCI", "FLAN_1565", "NYX-QUANT") at `bytes` size. Byte datasets return
/// one byte per symbol in `bytes8`; NYX-QUANT fills `syms16` (u16 codes,
/// 1024 bins) and leaves bytes8 empty.
struct GeneratedDataset {
  DatasetInfo info;
  std::vector<u8> bytes8;
  std::vector<u16> syms16;
  [[nodiscard]] std::size_t input_bytes() const {
    return bytes8.size() + syms16.size() * sizeof(u16);
  }
};

[[nodiscard]] GeneratedDataset generate(const std::string& name,
                                        std::size_t bytes, u64 seed);

}  // namespace parhuff::data
