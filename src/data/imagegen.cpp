#include "data/imagegen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace parhuff::data {

std::vector<u8> generate_mri(std::size_t size, u64 seed) {
  Xoshiro256 rng(seed ^ 0x6d7269u);
  std::vector<u8> out;
  out.reserve(size + 2);

  // Like the real Silesia `mr`, the stream is 16-bit samples emitted as
  // little-endian byte pairs: low bytes carry the acquisition detail
  // (moderate entropy), high bytes are small magnitudes (mostly 0-15, very
  // low entropy). That interleaving is also why the file exhibits almost
  // no breaking points under 4-way merges — long and short codewords
  // alternate, so group sums stay well under the 32-bit cell.
  constexpr std::size_t W = 256, H = 256;
  while (out.size() + 1 < size) {
    // Per-slice anatomy.
    const double cx = W / 2.0 + rng.normal() * 6.0;
    const double cy = H / 2.0 + rng.normal() * 6.0;
    const double rx = W * (0.42 + rng.uniform() * 0.05);
    const double ry = H * (0.46 + rng.uniform() * 0.05);
    struct Bump {
      double x, y, s, a;
    };
    Bump bumps[6];
    for (auto& b : bumps) {
      b = {cx + rng.normal() * rx * 0.4, cy + rng.normal() * ry * 0.4,
           12.0 + rng.uniform() * 30.0, 400.0 + rng.uniform() * 1200.0};
    }
    for (std::size_t y = 0; y < H && out.size() + 1 < size; ++y) {
      for (std::size_t x = 0; x < W && out.size() + 1 < size; ++x) {
        const double dx = (static_cast<double>(x) - cx) / rx;
        const double dy = (static_cast<double>(y) - cy) / ry;
        const double d = dx * dx + dy * dy;
        double v = 0.0;
        if (d < 1.0) {
          v = 800.0 * (1.0 - d);  // base tissue ramp (12-bit dynamic range)
          for (const auto& b : bumps) {
            const double bx = static_cast<double>(x) - b.x;
            const double by = static_cast<double>(y) - b.y;
            v += b.a * std::exp(-(bx * bx + by * by) / (2 * b.s * b.s));
          }
          v += rng.normal() * 40.0;  // acquisition noise
        } else if (rng.below(5) == 0) {
          v = rng.uniform() * 30.0;  // background noise floor
        }
        const unsigned sample =
            static_cast<unsigned>(std::clamp(v, 0.0, 2047.0)) & ~7u;
        out.push_back(static_cast<u8>(sample & 0xFF));
        out.push_back(static_cast<u8>(sample >> 8));
      }
    }
  }
  out.resize(size);
  return out;
}

}  // namespace parhuff::data
