#pragma once
// GenBank flat-file stand-in (gbbct1.seq) and the k-mer symbolizer.
//
// The generated file mixes ORIGIN sequence blocks ("   601 acgtacgtac ...")
// with LOCUS/DEFINITION/FEATURES header text, so k-mers over the raw bytes
// produce alphabets well beyond 4^k — the paper reports 2048/4096/8192
// symbols for k = 3/4/5, which is the regime Table III sweeps.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

[[nodiscard]] std::vector<u8> generate_genbank(std::size_t size, u64 seed);

/// Non-overlapping k-mer packing: every k consecutive bytes form one symbol
/// via a first-seen dictionary (a trailing partial k-mer is padded with
/// zero bytes). Returns the symbol stream; `dict_out` (optional) receives
/// the k-mer → id mapping for decoding.
struct KmerStream {
  std::vector<u16> symbols;
  std::size_t distinct = 0;   ///< dictionary size
  std::size_t nbins = 0;      ///< next power of two >= distinct
  std::vector<std::vector<u8>> dictionary;  ///< id → k bytes
};

[[nodiscard]] KmerStream kmer_pack(const std::vector<u8>& bytes, unsigned k);

/// Inverse of kmer_pack (for round-trip tests / the DNA example).
[[nodiscard]] std::vector<u8> kmer_unpack(const KmerStream& s, unsigned k,
                                          std::size_t original_size);

}  // namespace parhuff::data
