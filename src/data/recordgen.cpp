#include "data/recordgen.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace parhuff::data {

std::vector<u8> generate_nci(std::size_t size, u64 seed) {
  Xoshiro256 rng(seed ^ 0x6e6369u);
  std::vector<u8> out;
  out.reserve(size + 128);
  auto emit = [&](char c) { out.push_back(static_cast<u8>(c)); };

  // SDF-style MOL blocks: an atom table of fixed-width coordinates
  // ("   -0.0187    1.4093    0.0000 C   0  0") — the stream is dominated
  // by spaces and zeros, which is what gives nci its low entropy.
  while (out.size() < size) {
    // Record header: registry id + program stamp, as SDF blocks carry.
    {
      char hdr[64];
      std::snprintf(hdr, sizeof hdr, "NCI%05llu\n\n",
                    static_cast<unsigned long long>(10000 + rng.below(90000)));
      for (const char* p = hdr; *p; ++p) emit(*p);
    }
    const std::size_t atoms = 60 + rng.below(39);
    for (std::size_t a = 0; a < atoms && out.size() < size; ++a) {
      for (int coord = 0; coord < 3; ++coord) {
        // 2-D structure diagrams: z is always zero and x/y sit on a coarse
        // drawing grid, so coordinate text is dominated by '0' and a small
        // digit set (what gives the real nci its 2.73-bit profile and its
        // near-zero breaking rate under 8-way merges).
        // Positive-quadrant half-grid layout: fractions are only .0000 or
        // .5000, so coordinate digit runs stay on very common symbols.
        const double v =
            coord == 2 ? 0.0 : static_cast<double>(rng.below(17)) * 0.5;
        char buf[16];
        std::snprintf(buf, sizeof buf, "%10.4f", v);
        for (const char* p = buf; *p; ++p) emit(*p);
      }
      emit(' ');
      // Element column: carbon-dominated organic composition, with the
      // occasional two-character halogen.
      {
        const u64 e = rng.below(100);
        if (e < 55) emit('C');
        else if (e < 70) emit('N');
        else if (e < 82) emit('O');
        else if (e < 88) emit('S');
        else if (e < 93) emit('H');
        else if (e < 97) { emit('C'); emit('l'); }
        else { emit('B'); emit('r'); }
      }
      emit(' ');
      // Bond/charge columns: almost always "  0".
      for (int col = 0; col < 4; ++col) {
        emit(' ');
        emit(' ');
        emit(rng.below(20) == 0 ? static_cast<char>('1' + rng.below(3))
                                : '0');
      }
      emit('\n');
    }
    // Bond table: " aa bb t 0" rows, digits and spaces only — the bulk
    // filler that makes header text rare in the real database.
    const std::size_t bonds = 3 * atoms + rng.below(atoms);
    for (std::size_t b = 0; b < bonds && out.size() < size; ++b) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%4u%4u%4u  0\n",
                    static_cast<unsigned>(1 + rng.below(atoms)),
                    static_cast<unsigned>(1 + rng.below(atoms)),
                    static_cast<unsigned>(1 + rng.below(3)));
      for (const char* p = buf; *p; ++p) emit(*p);
    }
    // Block terminator.
    for (const char c : {'M', ' ', ' ', 'E', 'N', 'D', '\n', '$', '$', '$',
                         '$', '\n'}) {
      emit(c);
    }
  }
  out.resize(size);
  return out;
}

std::vector<u8> generate_flan(std::size_t size, u64 seed) {
  Xoshiro256 rng(seed ^ 0x666c616eu);
  std::vector<u8> out;
  out.reserve(size + 128);
  auto emit = [&](char c) { out.push_back(static_cast<u8>(c)); };
  auto emit_str = [&](const char* s) {
    while (*s) emit(*s++);
  };

  emit_str("Flan-like   synthetic rb matrix\nrsa ");
  static constexpr const char* kAnnot[] = {
      "%% matrix market like annotation  structural mechanics hexahedral",
      "%% steel flange  symmetric positive definite  assembled stiffness",
      "%% generated block  elements shell tetrahedral discretization",
  };
  std::size_t lines = 0;
  // Rutherford-Boeing body: row-index columns (8-wide integers, locally
  // increasing — a banded matrix) followed by value columns in Fortran
  // E-notation.
  u64 row = 1;
  while (out.size() < size) {
    // Annotation lines every ~8 data lines widen the byte alphabet with
    // letters, matching the mixed text/numeric profile of the real file
    // (Huffman avg ≈4.1 bits rather than a pure digit stream's ~3.6).
    if (++lines % 8 == 0) {
      emit_str(kAnnot[rng.below(std::size(kAnnot))]);
      emit('\n');
    }
    // A line of 10 row indices.
    for (int i = 0; i < 10 && out.size() < size; ++i) {
      row += 1 + rng.below(4000);
      if (row > 1500000) row = 1 + rng.below(1000);
      char buf[16];
      std::snprintf(buf, sizeof buf, "%8llu",
                    static_cast<unsigned long long>(row));
      emit_str(buf);
    }
    emit('\n');
    // A line of 4 values in Fortran D-notation (mixed-case exponent
    // letters and signs widen the byte alphabet like a real RB file).
    for (int i = 0; i < 5 && out.size() < size; ++i) {
      const double v = (rng.uniform() * 2.0 - 1.0) *
                       (rng.below(10) == 0 ? 1e6 : 1e2);
      char buf[24];
      std::snprintf(buf, sizeof buf, "%19.11E", v);
      // Fortran writers emit D exponents about half the time.
      if (rng.below(2) == 0) {
        for (char* p = buf; *p; ++p) {
          if (*p == 'E') *p = 'D';
        }
      }
      emit_str(buf);
    }
    emit('\n');
  }
  out.resize(size);
  return out;
}

}  // namespace parhuff::data
