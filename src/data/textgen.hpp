#pragma once
// enwik8/enwik9 stand-in: XML-wrapped English-like text (DESIGN.md §1).
//
// The encoder pipeline only sees the byte-frequency profile, so the
// generator targets the statistics that matter for the reproduction: byte
// alphabet ~190 symbols with the letter/markup mix of a Wikipedia XML dump,
// yielding ≈5.1–5.3 average Huffman bits (the paper measures 5.16/5.21).

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

/// Generate `size` bytes of XML-ish English text. Deterministic in `seed`.
[[nodiscard]] std::vector<u8> generate_text(std::size_t size, u64 seed);

}  // namespace parhuff::data
