#pragma once
// Stand-in for Silesia's `mr` (magnetic resonance image): slices with a
// dark background, smooth anatomical blobs, and acquisition noise, emitted
// as bytes. Paper measurement: 4.02 average bits.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

[[nodiscard]] std::vector<u8> generate_mri(std::size_t size, u64 seed);

}  // namespace parhuff::data
