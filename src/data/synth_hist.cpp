#include "data/synth_hist.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace parhuff::data {

std::vector<u64> normal_histogram(std::size_t nbins, u64 total, u64 seed) {
  Xoshiro256 rng(seed ^ 0x6e6f726du);
  std::vector<u64> h(nbins, 0);
  const double mu = static_cast<double>(nbins) / 2.0;
  const double sigma = static_cast<double>(nbins) / 8.0;
  double sum = 0;
  std::vector<double> w(nbins);
  for (std::size_t i = 0; i < nbins; ++i) {
    const double d = (static_cast<double>(i) - mu) / sigma;
    w[i] = std::exp(-0.5 * d * d) * (0.8 + 0.4 * rng.uniform());
    sum += w[i];
  }
  for (std::size_t i = 0; i < nbins; ++i) {
    h[i] = std::max<u64>(
        1, static_cast<u64>(w[i] / sum * static_cast<double>(total)));
  }
  return h;
}

std::vector<u64> exponential_histogram(std::size_t nbins, double decay,
                                       u64 seed) {
  Xoshiro256 rng(seed ^ 0x657870u);
  std::vector<u64> h(nbins);
  // Frequencies grow ~decay^i capped to keep sums within u64: classic
  // worst-case (skewed) Huffman input, deep trees.
  double f = 1.0;
  for (std::size_t i = 0; i < nbins; ++i) {
    h[i] = static_cast<u64>(f) + rng.below(2);
    if (h[i] == 0) h[i] = 1;
    f = std::min(f * decay, 1e15);
  }
  return h;
}

std::vector<u64> zipf_histogram(std::size_t nbins, double s, u64 total,
                                u64 seed) {
  Xoshiro256 rng(seed ^ 0x7a697066u);
  std::vector<double> w(nbins);
  double sum = 0;
  for (std::size_t i = 0; i < nbins; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    sum += w[i];
  }
  std::vector<u64> h(nbins);
  for (std::size_t i = 0; i < nbins; ++i) {
    h[i] = std::max<u64>(
        1, static_cast<u64>(w[i] / sum * static_cast<double>(total)));
  }
  // Shuffle so rank is uncorrelated with symbol value.
  for (std::size_t i = nbins; i > 1; --i) {
    std::swap(h[i - 1], h[rng.below(i)]);
  }
  return h;
}

std::vector<u64> uniform_histogram(std::size_t nbins, u64 hi, u64 seed) {
  Xoshiro256 rng(seed ^ 0x756e69u);
  std::vector<u64> h(nbins);
  for (auto& f : h) f = 1 + rng.below(hi);
  return h;
}

std::vector<u64> kmer_like_histogram(std::size_t nbins, u64 total, u64 seed) {
  Xoshiro256 rng(seed ^ 0x6b6d6572u);
  std::vector<u64> h(nbins, 0);
  // Head: ~1/16 of bins are pure-base k-mers holding ~95% of the mass with
  // a Zipf-ish profile; tail: rare mixed k-mers.
  const std::size_t head = std::max<std::size_t>(4, nbins / 16);
  double sum = 0;
  std::vector<double> w(head);
  for (std::size_t i = 0; i < head; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.7);
    sum += w[i];
  }
  const double head_mass = 0.95 * static_cast<double>(total);
  for (std::size_t i = 0; i < head; ++i) {
    h[i] = std::max<u64>(1, static_cast<u64>(w[i] / sum * head_mass));
  }
  const u64 tail_each = std::max<u64>(
      1, static_cast<u64>(0.05 * static_cast<double>(total)) /
             static_cast<u64>(nbins - head));
  for (std::size_t i = head; i < nbins; ++i) {
    h[i] = 1 + rng.below(2 * tail_each);
  }
  for (std::size_t i = nbins; i > 1; --i) {
    std::swap(h[i - 1], h[rng.below(i)]);
  }
  return h;
}

}  // namespace parhuff::data
