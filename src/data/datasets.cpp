#include "data/datasets.hpp"

#include <stdexcept>

#include "data/imagegen.hpp"
#include "data/quant.hpp"
#include "data/recordgen.hpp"
#include "data/textgen.hpp"

namespace parhuff::data {

const std::vector<DatasetInfo>& paper_datasets() {
  static const std::vector<DatasetInfo> kInfo = {
      // name, bytes, avg_bits, r, enc V, enc TU, cuSZ enc V, overall V
      {"ENWIK8", 95 * 1000 * 1000ull, 5.1639, 2, 94.0, 42.2, 12.2, 46.1,
       SymbolWidth::kByte, 256},
      {"ENWIK9", 954 * 1000 * 1000ull, 5.2124, 2, 94.6, 49.7, 11.3, 70.6,
       SymbolWidth::kByte, 256},
      {"MR", 9500 * 1000ull, 4.0165, 2, 76.8, 42.0, 15.2, 18.4,
       SymbolWidth::kByte, 256},
      {"NCI", 32 * 1000 * 1000ull, 2.7307, 3, 154.8, 63.7, 14.9, 36.1,
       SymbolWidth::kByte, 256},
      {"FLAN_1565", 1400 * 1000 * 1000ull, 4.1428, 2, 94.9, 50.0, 10.7, 69.5,
       SymbolWidth::kByte, 256},
      {"NYX-QUANT", 256 * 1000 * 1000ull, 1.0272, 3, 314.6, 145.2, 29.7, 96.0,
       SymbolWidth::kMulti, 1024},
  };
  return kInfo;
}

GeneratedDataset generate(const std::string& name, std::size_t bytes,
                          u64 seed) {
  GeneratedDataset out;
  bool found = false;
  for (const auto& info : paper_datasets()) {
    if (info.name == name) {
      out.info = info;
      found = true;
      break;
    }
  }
  if (!found) throw std::invalid_argument("unknown dataset: " + name);

  if (name == "ENWIK8" || name == "ENWIK9") {
    out.bytes8 = generate_text(bytes, seed);
  } else if (name == "MR") {
    out.bytes8 = generate_mri(bytes, seed);
  } else if (name == "NCI") {
    out.bytes8 = generate_nci(bytes, seed);
  } else if (name == "FLAN_1565") {
    out.bytes8 = generate_flan(bytes, seed);
  } else if (name == "NYX-QUANT") {
    out.syms16 = generate_nyx_quant(bytes / sizeof(u16), seed);
  }
  return out;
}

}  // namespace parhuff::data
