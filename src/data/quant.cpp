#include "data/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace parhuff::data {

std::vector<float> generate_cosmo_field(Dims dims, u64 seed) {
  Xoshiro256 rng(seed ^ 0x6e7978u);
  const std::size_t n = dims.total();
  std::vector<float> field(n, 0.0f);

  // Large-scale structure: a few random plane-wave modes per axis.
  struct Mode {
    double kx, ky, kz, phase, amp;
  };
  Mode modes[10];
  for (auto& m : modes) {
    m = {(rng.uniform() * 3.0 + 0.5) * 6.2831853 / static_cast<double>(dims.nx),
         (rng.uniform() * 3.0 + 0.5) * 6.2831853 / static_cast<double>(dims.ny),
         (rng.uniform() * 3.0 + 0.5) * 6.2831853 / static_cast<double>(dims.nz),
         rng.uniform() * 6.2831853, 0.4 + rng.uniform() * 0.8};
  }
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++idx) {
        double v = 0.0;
        for (const auto& m : modes) {
          v += m.amp * std::cos(m.kx * static_cast<double>(x) +
                                m.ky * static_cast<double>(y) +
                                m.kz * static_cast<double>(z) + m.phase);
        }
        // Lognormal-ish densities: exponentiate to create rare dense
        // filaments (the hard-to-predict regions that populate the
        // non-center quantization bins).
        field[idx] = static_cast<float>(std::exp(0.75 * v));
      }
    }
  }
  // Small-scale perturbations: sparse sharp clumps.
  const std::size_t clumps = std::max<std::size_t>(1, n / 4096);
  for (std::size_t c = 0; c < clumps; ++c) {
    const std::size_t center = rng.below(n);
    const double amp = 2.0 + rng.uniform() * 12.0;
    for (std::size_t o = 0; o < 8 && center + o < n; ++o) {
      field[center + o] += static_cast<float>(amp / (1.0 + o));
    }
  }
  return field;
}

Quantized lorenzo_quantize(const std::vector<float>& field, Dims dims,
                           double error_bound, u32 nbins) {
  if (field.size() != dims.total()) {
    throw std::invalid_argument("field size does not match dims");
  }
  if (nbins < 4 || error_bound <= 0) {
    throw std::invalid_argument("bad quantizer parameters");
  }
  Quantized q;
  q.dims = dims;
  q.error_bound = error_bound;
  q.nbins = nbins;
  q.codes.resize(field.size());

  // Reconstructed field so prediction uses what the decompressor will see.
  std::vector<float> recon(field.size(), 0.0f);
  const i64 center = nbins / 2;
  const double bin_width = 2.0 * error_bound;
  const std::size_t sx = 1, sy = dims.nx, sz = dims.nx * dims.ny;

  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++idx) {
        // 3-D Lorenzo predictor over already-reconstructed neighbours.
        double pred = 0.0;
        const bool hx = x > 0, hy = y > 0, hz = z > 0;
        if (hx) pred += recon[idx - sx];
        if (hy) pred += recon[idx - sy];
        if (hz) pred += recon[idx - sz];
        if (hx && hy) pred -= recon[idx - sx - sy];
        if (hx && hz) pred -= recon[idx - sx - sz];
        if (hy && hz) pred -= recon[idx - sy - sz];
        if (hx && hy && hz) pred += recon[idx - sx - sy - sz];

        const double err = static_cast<double>(field[idx]) - pred;
        const i64 code = center + static_cast<i64>(std::llround(err / bin_width));
        if (code <= 0 || code >= static_cast<i64>(nbins)) {
          // Outlier: store verbatim (code 0 is the marker).
          q.codes[idx] = 0;
          q.outliers.emplace_back(static_cast<u32>(idx), field[idx]);
          recon[idx] = field[idx];
        } else {
          q.codes[idx] = static_cast<u16>(code);
          recon[idx] = static_cast<float>(
              pred + static_cast<double>(code - center) * bin_width);
        }
      }
    }
  }
  return q;
}

std::vector<float> lorenzo_reconstruct(const Quantized& q) {
  std::vector<float> recon(q.codes.size(), 0.0f);
  const i64 center = q.nbins / 2;
  const double bin_width = 2.0 * q.error_bound;
  const std::size_t sx = 1, sy = q.dims.nx, sz = q.dims.nx * q.dims.ny;

  std::size_t next_outlier = 0;
  std::size_t idx = 0;
  for (std::size_t z = 0; z < q.dims.nz; ++z) {
    for (std::size_t y = 0; y < q.dims.ny; ++y) {
      for (std::size_t x = 0; x < q.dims.nx; ++x, ++idx) {
        if (q.codes[idx] == 0) {
          if (next_outlier >= q.outliers.size() ||
              q.outliers[next_outlier].first != idx) {
            throw std::runtime_error("reconstruct: outlier list corrupt");
          }
          recon[idx] = q.outliers[next_outlier++].second;
          continue;
        }
        double pred = 0.0;
        const bool hx = x > 0, hy = y > 0, hz = z > 0;
        if (hx) pred += recon[idx - sx];
        if (hy) pred += recon[idx - sy];
        if (hz) pred += recon[idx - sz];
        if (hx && hy) pred -= recon[idx - sx - sy];
        if (hx && hz) pred -= recon[idx - sx - sz];
        if (hy && hz) pred -= recon[idx - sy - sz];
        if (hx && hy && hz) pred += recon[idx - sx - sy - sz];
        recon[idx] = static_cast<float>(
            pred +
            static_cast<double>(static_cast<i64>(q.codes[idx]) - center) *
                bin_width);
      }
    }
  }
  return recon;
}

std::vector<u16> generate_nyx_quant(std::size_t n, u64 seed) {
  // Grid sized to cover n, quantized with a relative-style bound chosen so
  // the code histogram lands at ≈1.03 average bits (the paper's Nyx-Quant).
  std::size_t side = 1;
  while (side * side * side < n) ++side;
  side = std::max<std::size_t>(side, 8);
  const Dims dims{side, side, side};
  const std::vector<float> field = generate_cosmo_field(dims, seed);
  float fmin = field[0], fmax = field[0];
  for (float v : field) {
    fmin = std::min(fmin, v);
    fmax = std::max(fmax, v);
  }
  // Calibrated so the code histogram's average Huffman bitwidth lands at
  // the paper's Nyx-Quant operating point (≈1.03 bits over 1024 bins).
  const double eb = static_cast<double>(fmax - fmin) * 0.25;
  Quantized q = lorenzo_quantize(field, dims, eb, 1024);
  q.codes.resize(n);
  return std::move(q.codes);
}

}  // namespace parhuff::data
