#pragma once
// Syllable-based text symbolization — the n-gram text-compression scenario
// of §II-A (Nguyen et al.: "partition words into syllables and produce
// their bit representations"; the number of bits per symbol depends on the
// dictionary size).
//
// generate_agglutinative produces text in a synthetic agglutinative
// language (CV/CVC syllable structure with vowel-harmony-like constraints,
// long suffixed words — Turkish/Finnish-flavoured morphology), which is
// exactly where syllable symbolization pays: a few thousand distinct
// syllables cover the whole corpus.
//
// syllabify segments the byte stream into syllables (maximal C?V+C?
// groups; non-letter bytes are singleton symbols) through a first-seen
// dictionary, yielding a u16 symbol stream a multi-byte Huffman pipeline
// consumes directly.

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace parhuff::data {

[[nodiscard]] std::vector<u8> generate_agglutinative(std::size_t size,
                                                     u64 seed);

struct SyllableStream {
  std::vector<u16> symbols;
  std::vector<std::string> dictionary;  ///< id → syllable bytes
  std::size_t distinct = 0;
  std::size_t nbins = 0;  ///< next power of two >= distinct
};

[[nodiscard]] SyllableStream syllabify(const std::vector<u8>& text);

/// Inverse of syllabify.
[[nodiscard]] std::vector<u8> unsyllabify(const SyllableStream& s);

}  // namespace parhuff::data
