#include "lossy/fused.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/bytesio.hpp"
#include "core/decode_gaparray.hpp"
#include "core/format.hpp"
#include "core/rle.hpp"
#include "data/quant.hpp"
#include "obs/metrics.hpp"
#include "util/fault_inject.hpp"
#include "util/timer.hpp"

namespace parhuff::lossy {

namespace {
constexpr char kMagicFused[4] = {'P', 'H', 'L', '2'};
/// Cancel poll granularity inside the fused quantize pass and the
/// reconstruct walk (matches the decode-side contract of >= one poll per
/// 64 Ki symbols).
constexpr std::size_t kPollStride = 64 * 1024;

/// Resolve the absolute error bound over the *finite* values only — a
/// field polluted with NaN/Inf must not poison the relative-range mode
/// (the non-finite elements become exact outliers regardless).
double resolve_bound(std::span<const float> field, const FusedConfig& cfg) {
  if (cfg.abs_error_bound > 0) return cfg.abs_error_bound;
  if (cfg.rel_error_bound <= 0) {
    throw std::invalid_argument("lossy: no positive error bound");
  }
  bool any = false;
  float fmin = 0, fmax = 0;
  for (const float v : field) {
    if (!std::isfinite(v)) continue;
    if (!any) {
      fmin = fmax = v;
      any = true;
    } else {
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
    }
  }
  double eb = any ? static_cast<double>(fmax - fmin) * cfg.rel_error_bound : 0;
  if (eb <= 0) eb = 1e-30;  // constant field: any positive bound works
  return eb;
}

template <typename Sym>
std::vector<u8> encode_residual(const std::vector<u16>& residual,
                                std::span<const u64> freq,
                                RleAccumulator& acc, const PipelineConfig& pc,
                                FusedReport& rep, const CodebookSource* books,
                                const CancelToken* cancel) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();

  std::shared_ptr<const Codebook> book;
  if (books && books->find) book = books->find(freq, pc);
  if (book) {
    rep.cache_hit = true;
  } else {
    const obs::ScopedStageTimer st(reg, "lossy.codebook");
    auto built =
        std::make_shared<Codebook>(build_codebook(freq, pc, &rep.huffman, cancel));
    book = built;
    if (books && books->store) books->store(freq, pc, book);
  }

  util::FaultInjector::global().maybe_throw("lossy.encode");
  EncodedStream stream;
  {
    const obs::ScopedStageTimer st(reg, "lossy.encode");
    if constexpr (sizeof(Sym) == 1) {
      // Narrow residual codes into the u8 alphabet (nbins <= 256 — every
      // code fits by construction).
      std::vector<u8> narrow(residual.size());
      for (std::size_t i = 0; i < residual.size(); ++i) {
        narrow[i] = static_cast<u8>(residual[i]);
      }
      stream = encode_with_codebook<u8>(narrow, *book, pc, freq, &rep.huffman,
                                        cancel);
    } else {
      stream = encode_with_codebook<u16>(residual, *book, pc, freq,
                                         &rep.huffman, cancel);
    }
  }
  if (pc.gap_subseq_bits != 0) {
    annotate_gaps(stream, *book, pc.gap_subseq_bits);
  }
  acc.annotate(stream);
  const Compressed<Sym> blob{*book, std::move(stream)};
  return serialize(blob);
}

/// Reconstruction shared by decompress_field_fused: inverse Lorenzo walk
/// with the fused path's outlier rule — outliers restore the stored value
/// bit-exactly, but *predict* as 0.0f when that value is non-finite
/// (mirroring the compressor, which cannot let a NaN poison every
/// downstream prediction).
std::vector<float> fused_reconstruct(const std::vector<u16>& codes,
                                     const std::vector<std::pair<u32, float>>& outliers,
                                     data::Dims dims, double eb, u32 nbins,
                                     const CancelToken* cancel) {
  std::vector<float> out(codes.size(), 0.0f);
  std::vector<float> recon(codes.size(), 0.0f);  // prediction inputs
  const i64 center = nbins / 2;
  const double bin_width = 2.0 * eb;
  const std::size_t sx = 1, sy = dims.nx, sz = dims.nx * dims.ny;

  std::size_t next_outlier = 0;
  std::size_t idx = 0;
  std::size_t next_poll = kPollStride;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++idx) {
        if (cancel && idx >= next_poll) {
          cancel->check();
          next_poll += kPollStride;
        }
        if (codes[idx] == 0) {
          if (next_outlier >= outliers.size() ||
              outliers[next_outlier].first != idx) {
            throw std::runtime_error(
                "lossy container: outlier list does not match code stream");
          }
          const float v = outliers[next_outlier++].second;
          out[idx] = v;
          recon[idx] = std::isfinite(v) ? v : 0.0f;
          continue;
        }
        double pred = 0.0;
        const bool hx = x > 0, hy = y > 0, hz = z > 0;
        if (hx) pred += recon[idx - sx];
        if (hy) pred += recon[idx - sy];
        if (hz) pred += recon[idx - sz];
        if (hx && hy) pred -= recon[idx - sx - sy];
        if (hx && hz) pred -= recon[idx - sx - sz];
        if (hy && hz) pred -= recon[idx - sy - sz];
        if (hx && hy && hz) pred += recon[idx - sx - sy - sz];
        const float v = static_cast<float>(
            pred +
            static_cast<double>(static_cast<i64>(codes[idx]) - center) *
                bin_width);
        out[idx] = v;
        recon[idx] = v;
      }
    }
  }
  if (next_outlier != outliers.size()) {
    throw std::runtime_error("lossy container: unreferenced outliers");
  }
  return out;
}

}  // namespace

std::vector<u8> compress_field_fused(std::span<const float> field,
                                     data::Dims dims, const FusedConfig& cfg,
                                     FusedReport* report,
                                     const CodebookSource* books,
                                     const CancelToken* cancel) {
  if (field.size() != dims.total() || dims.total() == 0) {
    throw std::invalid_argument("lossy: field size does not match dims");
  }
  if (dims.total() > 0xFFFFFFFFull) {
    throw std::invalid_argument(
        "lossy: field exceeds the u32 outlier index space");
  }
  if (cfg.nbins < 4 || cfg.nbins > 65536) {
    throw std::invalid_argument("lossy: nbins out of range");
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  FusedReport local;
  FusedReport& rep = report ? *report : local;
  rep = FusedReport{};
  rep.raw_bytes = field.size() * sizeof(float);

  const double eb = resolve_bound(field, cfg);
  rep.error_bound = eb;

  // The fused pass: Lorenzo predict → quantize → histogram + RLE, one
  // sweep, no full code buffer.
  util::FaultInjector::global().maybe_throw("lossy.quantize");
  Timer t;
  const u32 nbins = cfg.nbins;
  const i64 center = nbins / 2;
  const double bin_width = 2.0 * eb;
  const std::size_t sx = 1, sy = dims.nx, sz = dims.nx * dims.ny;

  std::vector<u64> freq(nbins, 0);
  RleAccumulator acc(static_cast<u16>(center), cfg.rle_min_run, freq);
  std::vector<std::pair<u32, float>> outliers;
  std::vector<float> recon(field.size(), 0.0f);

  std::size_t idx = 0;
  std::size_t next_poll = kPollStride;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++idx) {
        if (cancel && idx >= next_poll) {
          cancel->check();
          next_poll += kPollStride;
        }
        double pred = 0.0;
        const bool hx = x > 0, hy = y > 0, hz = z > 0;
        if (hx) pred += recon[idx - sx];
        if (hy) pred += recon[idx - sy];
        if (hz) pred += recon[idx - sz];
        if (hx && hy) pred -= recon[idx - sx - sy];
        if (hx && hz) pred -= recon[idx - sx - sz];
        if (hy && hz) pred -= recon[idx - sy - sz];
        if (hx && hy && hz) pred += recon[idx - sx - sy - sz];

        const float v = field[idx];
        i64 code = 0;
        if (std::isfinite(v)) {
          const double err = static_cast<double>(v) - pred;
          // Magnitude pre-check before llround: a quantum count past the
          // bin range is an outlier anyway, and err/bin_width can exceed
          // the i64 range for denormal bounds (llround UB).
          if (std::abs(err) < bin_width * static_cast<double>(nbins)) {
            code = center + static_cast<i64>(std::llround(err / bin_width));
            if (code <= 0 || code >= static_cast<i64>(nbins)) code = 0;
          }
        }
        if (code == 0) {
          outliers.emplace_back(static_cast<u32>(idx), v);
          recon[idx] = std::isfinite(v) ? v : 0.0f;
          acc.push(0);
        } else {
          recon[idx] = static_cast<float>(
              pred + static_cast<double>(code - center) * bin_width);
          acc.push(static_cast<u16>(code));
        }
      }
    }
  }
  acc.finish();
  rep.quantize_seconds = t.seconds();
  reg.stage_add("lossy.quantize_fused", rep.quantize_seconds);

  rep.outliers = outliers.size();
  rep.outlier_bytes = outliers.size() * (sizeof(u32) + sizeof(float));
  rep.rle_runs = acc.runs();
  rep.rle_run_symbols = acc.run_symbols();
  reg.counter_add("lossy.outliers", outliers.size());
  reg.counter_add("lossy.rle_runs", acc.runs());
  reg.counter_add("lossy.rle_run_symbols", acc.run_symbols());

  PipelineConfig pc = cfg.pipeline;
  pc.nbins = nbins;
  const std::vector<u16> residual = acc.take_residual();
  rep.residual_symbols = residual.size();

  std::vector<u8> huff_bytes =
      nbins <= 256
          ? encode_residual<u8>(residual, freq, acc, pc, rep, books, cancel)
          : encode_residual<u16>(residual, freq, acc, pc, rep, books, cancel);

  ByteWriter w;
  w.put_array(std::span<const char>(kMagicFused, 4));
  w.put<u64>(static_cast<u64>(dims.nx));
  w.put<u64>(static_cast<u64>(dims.ny));
  w.put<u64>(static_cast<u64>(dims.nz));
  w.put<double>(eb);
  w.put<u32>(nbins);
  w.put<u8>(nbins <= 256 ? 1 : 2);
  w.put<u64>(static_cast<u64>(outliers.size()));
  for (const auto& [oi, value] : outliers) {
    w.put<u32>(oi);
    w.put<float>(value);
  }
  w.put<u64>(static_cast<u64>(huff_bytes.size()));
  w.put_bytes(huff_bytes);
  auto bytes = w.take();
  rep.compressed_bytes = bytes.size();
  return bytes;
}

Field decompress_field_fused(std::span<const u8> bytes,
                             const CancelToken* cancel) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  ByteReader r(bytes);
  const auto magic = r.get_array<char>(4);
  if (std::memcmp(magic.data(), kMagicFused, 4) != 0) {
    throw std::runtime_error("lossy container: bad magic");
  }
  data::Dims dims;
  dims.nx = static_cast<std::size_t>(r.get<u64>());
  dims.ny = static_cast<std::size_t>(r.get<u64>());
  dims.nz = static_cast<std::size_t>(r.get<u64>());
  const double eb = r.get<double>();
  const u32 nbins = r.get<u32>();
  const u8 sym_bytes = r.get<u8>();
  const std::size_t total = dims.total();
  if (total == 0 || total > 0xFFFFFFFFull || !std::isfinite(eb) || eb <= 0 ||
      nbins < 4 || nbins > 65536) {
    throw std::runtime_error("lossy container: implausible header");
  }
  if (sym_bytes != (nbins <= 256 ? 1 : 2)) {
    throw std::runtime_error("lossy container: symbol width mismatch");
  }
  const u64 n_outliers = r.get<u64>();
  if (n_outliers > total) {
    throw std::runtime_error("lossy container: outlier count range");
  }
  std::vector<std::pair<u32, float>> outliers;
  outliers.reserve(static_cast<std::size_t>(n_outliers));
  u64 prev = 0;
  for (u64 i = 0; i < n_outliers; ++i) {
    const u32 oi = r.get<u32>();
    const float value = r.get<float>();
    if (oi >= total || (i > 0 && oi <= prev)) {
      throw std::runtime_error("lossy container: outlier index order");
    }
    prev = oi;
    outliers.emplace_back(oi, value);
  }
  const u64 huff_len = r.get<u64>();
  const auto huff_bytes = r.get_view(static_cast<std::size_t>(huff_len));
  if (!r.done()) {
    throw std::runtime_error("lossy container: trailing bytes");
  }

  std::vector<u16> codes;
  {
    const obs::ScopedStageTimer st(reg, "lossy.decode");
    std::vector<u16> residual;
    const EncodedStream* stream = nullptr;
    Compressed<u8> blob8;
    Compressed<u16> blob16;
    if (sym_bytes == 1) {
      blob8 = deserialize<u8>(huff_bytes);
      const std::vector<u8> narrow = decode_auto<u8>(blob8.stream, blob8.codebook,
                                                     0, cancel);
      residual.assign(narrow.begin(), narrow.end());
      stream = &blob8.stream;
    } else {
      blob16 = deserialize<u16>(huff_bytes);
      residual = decode_auto<u16>(blob16.stream, blob16.codebook, 0, cancel);
      stream = &blob16.stream;
    }
    if (stream->has_rle()) {
      // The run symbol must be a real quantizer code: in range and not the
      // outlier marker (a forged marker run would desynchronize the
      // outlier side channel).
      if (stream->rle_symbol == 0 || stream->rle_symbol >= nbins) {
        throw std::runtime_error("lossy container: rle run symbol range");
      }
    }
    codes = rle_expand(residual, *stream);
  }
  if (codes.size() != total) {
    throw std::runtime_error("lossy container: code count mismatch");
  }
  for (const u16 c : codes) {
    if (c >= nbins) {
      throw std::runtime_error("lossy container: code out of range");
    }
  }

  Field out;
  out.dims = dims;
  out.error_bound = eb;
  {
    const obs::ScopedStageTimer st(reg, "lossy.reconstruct");
    out.values = fused_reconstruct(codes, outliers, dims, eb, nbins, cancel);
  }
  return out;
}

}  // namespace parhuff::lossy
