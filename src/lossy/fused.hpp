#pragma once
// Fused error-bounded lossy compression (cuSZ+-style, PAPERS.md #5;
// docs/lossy.md). The glued path (lossy.hpp) materializes the full
// quantization-code buffer, then hands it to the Huffman pipeline, which
// scans it again for the histogram. The fused path does prediction,
// quantization, histogramming and run-length extraction in ONE pass:
//
//   float field ──► Lorenzo predict ─► quantize ─► RleAccumulator
//                                         │             │
//                                    outlier side    residual codes +
//                                      channel       residual histogram
//                                                        │
//                                         codebook (or cache hit) ─► encode
//
// The full N-symbol code buffer never exists: long runs of the
// perfect-prediction code (overwhelming on smooth fields) go straight to
// the container's checksummed "RLE1" optional field (core/rle.hpp,
// core/format.hpp), and only the residual stream is Huffman-coded — over
// the narrow u8 alphabet when nbins <= 256, u16 otherwise.
//
// Containers: "PHL2" = fused layout (header + outlier side channel + an
// embedded PHF2/PHF3 container whose stream may carry the RLE1 field).
// lossy::decompress_field() dispatches on the magic, so PHL1 and PHL2
// containers decompress through one entry point. Decompression guarantees
// |out - in| <= eb elementwise; outliers — including NaN/Inf inputs, which
// quantizers must never feed to llround — are restored bit-exactly, with
// 0.0f substituted as their *prediction* input on both sides so the two
// reconstructions stay in lockstep.
//
// The CodebookSource hook is how the service layer splices its sharded-LRU
// codebook cache into the fused path: find() is consulted with the
// residual histogram before a build (a covers()-guarded hit skips the
// build), store() publishes fresh builds. Fault sites: lossy.quantize,
// lossy.encode (shared with the glued path).

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "core/canonical.hpp"
#include "core/pipeline.hpp"
#include "lossy/lossy.hpp"
#include "util/types.hpp"

namespace parhuff::lossy {

struct FusedConfig {
  /// Error bound relative to the field's finite-value range; the absolute
  /// bound is rel_error_bound * (max - min).
  double rel_error_bound = 1e-3;
  /// Absolute bound; used instead of the relative one when positive.
  double abs_error_bound = 0.0;
  /// Quantizer bins; nbins <= 256 selects the u8 Huffman alphabet.
  u32 nbins = 1024;
  /// Minimum run of perfect-prediction codes extracted into the RLE side
  /// channel. 0 disables extraction (container stays RLE-less).
  u32 rle_min_run = 256;
  /// Huffman stage configuration. nbins is overridden from the quantizer's
  /// nbins above; everything else (encoder kind, magnitude, gap
  /// annotation, threads) applies as-is.
  PipelineConfig pipeline;
};

struct FusedReport {
  double error_bound = 0;  ///< resolved absolute bound
  std::size_t outliers = 0;
  std::size_t rle_runs = 0;
  u64 rle_run_symbols = 0;       ///< symbols extracted into runs
  std::size_t residual_symbols = 0;  ///< symbols actually Huffman-coded
  double quantize_seconds = 0;   ///< the fused predict/quantize/RLE pass
  bool cache_hit = false;        ///< codebook came from a CodebookSource
  PipelineReport huffman;
  std::size_t raw_bytes = 0;
  std::size_t compressed_bytes = 0;
  std::size_t outlier_bytes = 0;

  [[nodiscard]] double ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// External codebook source — the service layer's cache, fingerprinted
/// over the residual quant-code histogram. find() returns a codebook that
/// covers `freq` (the caller has already applied its correctness guard) or
/// nullptr; store() receives freshly built books. Either hook may be
/// empty.
struct CodebookSource {
  std::function<std::shared_ptr<const Codebook>(std::span<const u64> freq,
                                                const PipelineConfig&)>
      find;
  std::function<void(std::span<const u64> freq, const PipelineConfig&,
                     const std::shared_ptr<const Codebook>&)>
      store;
};

/// Fused compress: one pass over `field`, then codebook + encode over the
/// residual stream only. Throws std::invalid_argument on shape/parameter
/// errors; `cancel` is polled inside the quantize pass (per row slab) and
/// through the pipeline stages.
[[nodiscard]] std::vector<u8> compress_field_fused(
    std::span<const float> field, data::Dims dims, const FusedConfig& cfg = {},
    FusedReport* report = nullptr, const CodebookSource* books = nullptr,
    const CancelToken* cancel = nullptr);

/// Inverse of compress_field_fused (PHL2 containers only — use
/// lossy::decompress_field for magic dispatch). Throws std::runtime_error
/// on malformed input.
[[nodiscard]] Field decompress_field_fused(std::span<const u8> bytes,
                                           const CancelToken* cancel = nullptr);

}  // namespace parhuff::lossy
