#pragma once
// Error-bounded lossy floating-point compression — the cuSZ-style system
// the paper's Huffman encoder was built for (§I: SZ/cuSZ pipelines are
// "prediction + error-bounded quantization + Huffman", and the encoder
// evaluated here is the cuSZ stage-4 replacement).
//
// Pipeline: 3-D Lorenzo prediction over reconstructed values →
// error-bounded linear quantization (2^k bins, code 0 = outlier) →
// parhuff Huffman encoding of the code stream → a self-contained container
// holding dims/eb/outliers/codebook/payload. Decompression inverts each
// stage; |out - in| <= eb holds elementwise (outliers are exact).

#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "data/quant.hpp"
#include "util/types.hpp"

namespace parhuff::lossy {

struct Config {
  /// Error bound relative to the field's value range (SZ's REL mode);
  /// the absolute bound is rel_error_bound * (max - min).
  double rel_error_bound = 1e-3;
  /// Absolute bound; used instead of the relative one when positive.
  double abs_error_bound = 0.0;
  u32 nbins = 1024;
  EncoderKind encoder = EncoderKind::kAdaptiveSimt;
  u32 magnitude = 10;
};

struct Report {
  double error_bound = 0;         ///< resolved absolute bound
  std::size_t outliers = 0;
  double quantize_seconds = 0;
  PipelineReport huffman;
  std::size_t raw_bytes = 0;
  std::size_t compressed_bytes = 0;
  std::size_t outlier_bytes = 0;

  [[nodiscard]] double ratio() const {
    return compressed_bytes == 0
               ? 0.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(compressed_bytes);
  }
};

/// Compress a 3-D float field into a self-contained byte container.
/// Throws std::invalid_argument on shape/parameter errors.
[[nodiscard]] std::vector<u8> compress_field(std::span<const float> field,
                                             data::Dims dims,
                                             const Config& cfg = {},
                                             Report* report = nullptr);

struct Field {
  data::Dims dims;
  double error_bound = 0;
  std::vector<float> values;
};

/// Inverse of compress_field / compress_field_fused: dispatches on the
/// container magic ("PHL1" glued, "PHL2" fused — lossy/fused.hpp), so one
/// entry point reads both generations. Throws std::runtime_error on
/// malformed input. `cancel` is polled inside the decode and reconstruct
/// walks.
[[nodiscard]] Field decompress_field(std::span<const u8> bytes,
                                     const CancelToken* cancel = nullptr);

}  // namespace parhuff::lossy
