#include "lossy/lossy.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/bytesio.hpp"
#include "core/format.hpp"
#include "lossy/fused.hpp"
#include "util/fault_inject.hpp"
#include "util/timer.hpp"

namespace parhuff::lossy {

namespace {
constexpr char kMagic[4] = {'P', 'H', 'L', '1'};
constexpr char kMagicFused[4] = {'P', 'H', 'L', '2'};
}

std::vector<u8> compress_field(std::span<const float> field, data::Dims dims,
                               const Config& cfg, Report* report) {
  if (field.size() != dims.total() || dims.total() == 0) {
    throw std::invalid_argument("lossy: field size does not match dims");
  }
  if (cfg.nbins < 4 || cfg.nbins > 65536) {
    throw std::invalid_argument("lossy: nbins out of range");
  }
  Report local;
  Report& rep = report ? *report : local;
  rep = Report{};
  rep.raw_bytes = field.size() * sizeof(float);

  // Resolve the error bound.
  double eb = cfg.abs_error_bound;
  if (eb <= 0) {
    if (cfg.rel_error_bound <= 0) {
      throw std::invalid_argument("lossy: no positive error bound");
    }
    float fmin = field[0], fmax = field[0];
    for (const float v : field) {
      fmin = std::min(fmin, v);
      fmax = std::max(fmax, v);
    }
    eb = static_cast<double>(fmax - fmin) * cfg.rel_error_bound;
    if (eb <= 0) eb = 1e-30;  // constant field: any positive bound works
  }
  rep.error_bound = eb;

  // Stage 1+2: Lorenzo prediction + quantization.
  util::FaultInjector::global().maybe_throw("lossy.quantize");
  Timer t;
  const std::vector<float> field_copy(field.begin(), field.end());
  const data::Quantized q =
      data::lorenzo_quantize(field_copy, dims, eb, cfg.nbins);
  rep.quantize_seconds = t.seconds();
  rep.outliers = q.outliers.size();
  rep.outlier_bytes = q.outliers.size() * (sizeof(u32) + sizeof(float));

  // Stage 3+4: Huffman over the code stream.
  util::FaultInjector::global().maybe_throw("lossy.encode");
  PipelineConfig pc;
  pc.nbins = cfg.nbins;
  pc.encoder = cfg.encoder;
  pc.magnitude = cfg.magnitude;
  const Compressed<u16> blob = compress<u16>(q.codes, pc, &rep.huffman);
  const std::vector<u8> huff_bytes = serialize(blob);

  // Container.
  ByteWriter w;
  w.put_array(std::span<const char>(kMagic, 4));
  w.put<u64>(static_cast<u64>(dims.nx));
  w.put<u64>(static_cast<u64>(dims.ny));
  w.put<u64>(static_cast<u64>(dims.nz));
  w.put<double>(eb);
  w.put<u32>(cfg.nbins);
  w.put<u64>(static_cast<u64>(q.outliers.size()));
  for (const auto& [idx, value] : q.outliers) {
    w.put<u32>(idx);
    w.put<float>(value);
  }
  w.put<u64>(static_cast<u64>(huff_bytes.size()));
  w.put_bytes(huff_bytes);
  auto bytes = w.take();
  rep.compressed_bytes = bytes.size();
  return bytes;
}

Field decompress_field(std::span<const u8> bytes, const CancelToken* cancel) {
  ByteReader r(bytes);
  const auto magic = r.get_array<char>(4);
  if (std::memcmp(magic.data(), kMagicFused, 4) == 0) {
    return decompress_field_fused(bytes, cancel);
  }
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    throw std::runtime_error("lossy container: bad magic");
  }
  data::Quantized q;
  q.dims.nx = static_cast<std::size_t>(r.get<u64>());
  q.dims.ny = static_cast<std::size_t>(r.get<u64>());
  q.dims.nz = static_cast<std::size_t>(r.get<u64>());
  q.error_bound = r.get<double>();
  q.nbins = r.get<u32>();
  const std::size_t total = q.dims.total();
  if (total == 0 || total > (std::size_t{1} << 34) || q.error_bound <= 0 ||
      q.nbins < 4) {
    throw std::runtime_error("lossy container: implausible header");
  }
  const u64 n_outliers = r.get<u64>();
  if (n_outliers > total) {
    throw std::runtime_error("lossy container: outlier count range");
  }
  q.outliers.reserve(static_cast<std::size_t>(n_outliers));
  u64 prev = 0;
  for (u64 i = 0; i < n_outliers; ++i) {
    const u32 idx = r.get<u32>();
    const float value = r.get<float>();
    if (idx >= total || (i > 0 && idx <= prev)) {
      throw std::runtime_error("lossy container: outlier index order");
    }
    prev = idx;
    q.outliers.emplace_back(idx, value);
  }
  const u64 huff_len = r.get<u64>();
  const auto huff_bytes = r.get_view(static_cast<std::size_t>(huff_len));
  if (!r.done()) {
    throw std::runtime_error("lossy container: trailing bytes");
  }
  const Compressed<u16> blob = deserialize<u16>(huff_bytes);
  q.codes = decode_auto<u16>(blob.stream, blob.codebook, 0, cancel);
  if (q.codes.size() != total) {
    throw std::runtime_error("lossy container: code count mismatch");
  }

  Field out;
  out.dims = q.dims;
  out.error_bound = q.error_bound;
  out.values = data::lorenzo_reconstruct(q);
  return out;
}

}  // namespace parhuff::lossy
