// Streaming-verb overhead: one large payload pushed through the protocol
// v3 chunked path three ways — in-process StreamingCompressor calls (the
// work floor), streamed RPC over a unix socket, and streamed RPC through
// the shard router front-end.
//
// The client pipelines chunks (stream_window deep), so the wire transfer
// of chunk N+1 overlaps the server's encode of chunk N; the headline
// number is slowdown_vs_inproc, which the acceptance bar pins at <= 1.2x
// for the direct unix case — the chunked framing must not throttle the
// encoder it feeds. A final record carries the stream counters so CI can
// assert the opened == completed + aborted ledger over the whole run.
//
// BENCH_stream.json records one object per case plus the workload shape,
// in the bench schema bench/README.md documents.

#include <algorithm>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "common.hpp"
#include "core/streaming.hpp"
#include "obs/metrics.hpp"
#include "router/router.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"

namespace {

using namespace parhuff;

std::vector<u8> ramp_data(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

PipelineConfig host_config() {
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

constexpr int kReps = 3;
constexpr std::size_t kChunkBytes = 1024 * 1024;

/// What the server's compress-stream codec does per connection: train on
/// the first chunk, then one framed segment per chunk. Timing this is the
/// no-wire floor the RPC cases are measured against.
double run_inproc(std::span<const u8> data) {
  Timer t;
  StreamingCompressor<u8> sc(host_config());
  std::vector<u8> out;
  for (std::size_t off = 0; off < data.size(); off += kChunkBytes) {
    const auto piece = data.subspan(off, std::min(kChunkBytes,
                                                  data.size() - off));
    if (!sc.frozen()) {
      sc.observe(piece);
      sc.smooth();
      sc.freeze();
      out = sc.header();
    }
    const std::vector<u8> frame = sc.encode_segment(piece);
    out.insert(out.end(), frame.begin(), frame.end());
  }
  if (out.empty()) std::abort();  // keep the work live
  return t.seconds();
}

double run_stream_rpc(rpc::RpcClient& cli, std::span<const u8> data) {
  // The ownership-transfer copy happens outside the timed region: the
  // inproc baseline lends spans, so charging the RPC case for building a
  // movable buffer would measure memcpy, not the wire machinery.
  std::vector<u8> payload(data.begin(), data.end());
  Timer t;
  const std::vector<u8> container =
      cli.compress(std::move(payload)).result.get();
  if (container.empty()) std::abort();
  return t.seconds();
}

rpc::ServerConfig server_config() {
  rpc::ServerConfig sc;
  sc.pipeline8 = host_config();
  return sc;
}

rpc::ClientConfig client_config() {
  rpc::ClientConfig cc;
  cc.stream_chunk_bytes = kChunkBytes;
  cc.stream_threshold_bytes = kChunkBytes;  // stream anything non-trivial
  return cc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver run("stream", argc, argv);
  bench::banner(
      "STREAMING VERBS: in-process chunked encode vs streamed RPC vs "
      "streamed router RPC");

  const std::size_t total =
      bench::scaled_bytes(std::size_t{256} * 1024 * 1024);
  const std::vector<u8> data = ramp_data(total, 2021);
  run.config()
      .set("total_bytes", static_cast<u64>(total))
      .set("chunk_bytes", static_cast<u64>(kChunkBytes));

  (void)run_inproc(data);  // warm-up
  double inproc_s = run_inproc(data);
  for (int r = 1; r < kReps; ++r) inproc_s = std::min(inproc_s, run_inproc(data));

  double unix_s = 0;
  const std::string spath =
      "/tmp/parhuff_bench_stream_" + std::to_string(::getpid()) + ".sock";
  {
    rpc::RpcServer server(rpc::listen_unix(spath), server_config());
    rpc::RpcClient cli([&] { return rpc::connect_unix(spath); },
                       client_config());
    // Correctness gate once, outside the timed reps: the streamed
    // container must round-trip.
    {
      std::vector<u8> payload(data.begin(), data.end());
      std::vector<u8> container =
          cli.compress(std::move(payload)).result.get();
      const std::vector<u8> round =
          cli.decompress(std::move(container)).result.get();
      if (round.size() != data.size() ||
          !std::equal(round.begin(), round.end(), data.begin())) {
        std::abort();
      }
    }
    unix_s = run_stream_rpc(cli, data);
    for (int r = 1; r < kReps; ++r) {
      unix_s = std::min(unix_s, run_stream_rpc(cli, data));
    }
  }
  ::unlink(spath.c_str());

  double router_s = 0;
  const std::string b0 =
      "/tmp/parhuff_bench_stream_b0_" + std::to_string(::getpid()) + ".sock";
  const std::string b1 =
      "/tmp/parhuff_bench_stream_b1_" + std::to_string(::getpid()) + ".sock";
  const std::string fpath =
      "/tmp/parhuff_bench_stream_f_" + std::to_string(::getpid()) + ".sock";
  {
    rpc::RpcServer shard0(rpc::listen_unix(b0), server_config());
    rpc::RpcServer shard1(rpc::listen_unix(b1), server_config());
    std::vector<router::ShardEndpoint> eps;
    eps.push_back({"s0", [b0] { return rpc::connect_unix(b0); }});
    eps.push_back({"s1", [b1] { return rpc::connect_unix(b1); }});
    router::RouterConfig rc;
    rc.client = client_config();
    router::ShardRouter rtr(rpc::listen_unix(fpath), std::move(eps), rc);
    rpc::RpcClient cli([&] { return rpc::connect_unix(fpath); },
                       client_config());
    (void)run_stream_rpc(cli, data);  // warm-up
    router_s = run_stream_rpc(cli, data);
    for (int r = 1; r < kReps; ++r) {
      router_s = std::min(router_s, run_stream_rpc(cli, data));
    }
  }
  ::unlink(b0.c_str());
  ::unlink(b1.c_str());
  ::unlink(fpath.c_str());

  TextTable table(
      "streamed compress of one large payload, best of 3");
  table.header({"case", "MB/s", "slowdown vs inproc"});
  const auto row = [&](const char* name, double seconds) {
    table.row({name,
               fmt(static_cast<double>(total) / seconds / 1e6, 1),
               fmt(seconds / inproc_s, 2)});
  };
  row("inproc streaming", inproc_s);
  row("rpc stream unix", unix_s);
  row("router stream unix", router_s);
  table.print();

  const auto record = [&](const char* name, double seconds) {
    obs::Json rec = obs::Json::object();
    rec.set("case", name)
        .set("seconds", seconds)
        .set("throughput_gbps", gbps(total, seconds))
        .set("slowdown_vs_inproc", seconds / inproc_s);
    run.record(std::move(rec));
  };
  record("inproc_streaming", inproc_s);
  record("rpc_stream_unix", unix_s);
  record("router_stream_unix", router_s);

  // The stream ledger over the whole run — CI asserts the balance.
  auto& reg = obs::MetricsRegistry::global();
  obs::Json counters = obs::Json::object();
  counters.set("case", "stream_counters")
      .set("rpc_streams_opened", reg.counter("rpc.streams_opened"))
      .set("rpc_streams_completed", reg.counter("rpc.streams_completed"))
      .set("rpc_streams_aborted", reg.counter("rpc.streams_aborted"))
      .set("router_streams_opened", reg.counter("router.streams_opened"))
      .set("router_streams_completed",
           reg.counter("router.streams_completed"))
      .set("router_streams_aborted", reg.counter("router.streams_aborted"));
  run.record(std::move(counters));

  return run.finish();
}
