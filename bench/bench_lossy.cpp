// Lossy-path bench: fused single-pass compression (predict + quantize +
// histogram + RLE extraction, lossy/fused.hpp) vs the glued two-pass
// pipeline (lossy/lossy.hpp: full code buffer, then Huffman re-scans it).
//
// Three field families, each at an error bound wide enough that Lorenzo
// prediction lands most elements in the center bin (the regime SZ/cuSZ
// target — §I, PAPERS.md #5):
//   smooth   — separable trig field, rel 1e-2;
//   cosmo    — multi-scale baryon-density-like field, rel 1e-2;
//   plateau  — constant bulk with a structured prefix (instrument
//              baseline / halo-free void), abs bound.
//
// For each family both paths run back-to-back on the same input; the
// fused path should win BOTH ratio (runs leave the Huffman stream, and
// the RLE1 side channel prices a run at 12 bytes instead of len bits)
// and throughput (one pass over the field instead of two, and the
// encoder only touches the residual stream). bench_lossy asserts nothing
// itself — BENCH_lossy.json carries per-case records plus a
// `fused_wins_*` summary that CI's bench smoke validates.
//
// The final case drives svc::CompressionService::submit_lossy with a
// repeated config to measure the codebook-cache hit path and snapshot the
// lossy.* counters (requests == completed + failed is re-checked in CI).

#include <cmath>
#include <vector>

#include "common.hpp"
#include "data/quant.hpp"
#include "lossy/fused.hpp"
#include "lossy/lossy.hpp"
#include "svc/service.hpp"

namespace {

using namespace parhuff;

std::vector<float> smooth_field(data::Dims dims) {
  std::vector<float> f(dims.total());
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++i) {
        f[i] = static_cast<float>(8.0 * std::sin(x * 0.02) *
                                      std::cos(y * 0.017) +
                                  0.5 * std::sin(z * 0.05));
      }
    }
  }
  return f;
}

std::vector<float> plateau_field(data::Dims dims) {
  std::vector<float> f(dims.total(), 4.5f);
  for (std::size_t i = 0; i < f.size() / 8; ++i) {
    f[i] = static_cast<float>(std::sin(static_cast<double>(i) * 0.03) * 3.0);
  }
  return f;
}

struct PathRun {
  double seconds = 0;
  double ratio = 0;
  std::size_t bytes = 0;
  std::size_t rle_runs = 0;
  u64 rle_run_symbols = 0;
  std::size_t residual_symbols = 0;
  std::size_t outliers = 0;
};

PathRun run_glued(const std::vector<float>& field, data::Dims dims,
                  const lossy::FusedConfig& fc, int reps) {
  lossy::Config cfg;
  cfg.rel_error_bound = fc.rel_error_bound;
  cfg.abs_error_bound = fc.abs_error_bound;
  cfg.nbins = fc.nbins;
  cfg.encoder = fc.pipeline.encoder;
  cfg.magnitude = fc.pipeline.magnitude;
  PathRun r;
  r.seconds = 1e30;
  for (int i = 0; i < reps; ++i) {
    lossy::Report rep;
    Timer t;
    const auto bytes = lossy::compress_field(field, dims, cfg, &rep);
    const double s = t.seconds();
    if (s < r.seconds) r.seconds = s;
    r.ratio = rep.ratio();
    r.bytes = bytes.size();
    r.residual_symbols = dims.total();
    r.outliers = rep.outliers;
  }
  return r;
}

PathRun run_fused(const std::vector<float>& field, data::Dims dims,
                  const lossy::FusedConfig& cfg, int reps) {
  PathRun r;
  r.seconds = 1e30;
  for (int i = 0; i < reps; ++i) {
    lossy::FusedReport rep;
    Timer t;
    const auto bytes = lossy::compress_field_fused(field, dims, cfg, &rep);
    const double s = t.seconds();
    if (s < r.seconds) r.seconds = s;
    r.ratio = rep.ratio();
    r.bytes = bytes.size();
    r.rle_runs = rep.rle_runs;
    r.rle_run_symbols = rep.rle_run_symbols;
    r.residual_symbols = rep.residual_symbols;
    r.outliers = rep.outliers;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("lossy", argc, argv);
  bench::banner(
      "LOSSY PATH: fused one-pass predict/quantize/RLE/encode vs the glued "
      "two-pass quantize-then-Huffman pipeline");

  // ~8 MiB of floats per field at the default bench scale; constant within
  // a run so glued/fused see identical inputs.
  const data::Dims dims{128, 128, 128};
  const std::size_t raw_bytes = dims.total() * sizeof(float);
  const int reps = 3;

  lossy::FusedConfig base;
  base.nbins = 1024;
  base.rle_min_run = 256;
  base.pipeline.encoder = EncoderKind::kAdaptiveSimt;
  base.pipeline.magnitude = 10;

  struct FieldCase {
    const char* name;
    std::vector<float> field;
    double rel_eb;
    double abs_eb;
  };
  FieldCase cases[] = {
      {"smooth", smooth_field(dims), 1e-2, 0.0},
      {"cosmo", data::generate_cosmo_field(dims, 42), 5e-2, 0.0},
      {"plateau", plateau_field(dims), 0.0, 0.05},
  };

  run.config()
      .set("dims", std::to_string(dims.nx) + "x" + std::to_string(dims.ny) +
                       "x" + std::to_string(dims.nz))
      .set("raw_bytes", static_cast<u64>(raw_bytes))
      .set("nbins", static_cast<u64>(base.nbins))
      .set("rle_min_run", static_cast<u64>(base.rle_min_run))
      .set("reps", static_cast<u64>(reps));

  TextTable table("glued vs fused compress, best of 3 reps per case");
  table.header({"field", "path", "ratio", "GB/s", "bytes", "rle runs",
                "run syms", "residual", "outliers"});

  // Aggregate verdicts over the whole suite: summed compressed bytes and
  // summed wall time, so one noisy case can't flip the CI gate.
  std::size_t glued_bytes = 0, fused_bytes = 0;
  double glued_seconds = 0, fused_seconds = 0;
  for (FieldCase& c : cases) {
    lossy::FusedConfig cfg = base;
    cfg.rel_error_bound = c.rel_eb;
    cfg.abs_error_bound = c.abs_eb;

    const PathRun glued = run_glued(c.field, dims, cfg, reps);
    const PathRun fused = run_fused(c.field, dims, cfg, reps);
    glued_bytes += glued.bytes;
    fused_bytes += fused.bytes;
    glued_seconds += glued.seconds;
    fused_seconds += fused.seconds;

    const auto emit = [&](const char* path, const PathRun& r) {
      table.row({c.name, path, fmt(r.ratio, 1), fmt(gbps(raw_bytes, r.seconds), 2),
                 std::to_string(r.bytes), std::to_string(r.rle_runs),
                 std::to_string(r.rle_run_symbols),
                 std::to_string(r.residual_symbols),
                 std::to_string(r.outliers)});
      obs::Json rec = obs::Json::object();
      rec.set("case", std::string(c.name) + "_" + path)
          .set("field", c.name)
          .set("path", path)
          .set("seconds", r.seconds)
          .set("throughput_gbps", gbps(raw_bytes, r.seconds))
          .set("ratio", r.ratio)
          .set("compressed_bytes", static_cast<u64>(r.bytes))
          .set("rle_runs", static_cast<u64>(r.rle_runs))
          .set("rle_run_symbols", r.rle_run_symbols)
          .set("residual_symbols", static_cast<u64>(r.residual_symbols))
          .set("outliers", static_cast<u64>(r.outliers));
      run.record(std::move(rec));
    };
    emit("glued", glued);
    emit("fused", fused);
  }
  table.print();

  // Service-layer fused traffic: the same config re-submitted hits the
  // residual-histogram codebook cache after the first build. Counters
  // must balance (lossy.requests == lossy.completed + lossy.failed).
  {
    obs::MetricsRegistry::global().clear();
    const data::Dims sdims{64, 64, 64};
    const auto base_field = smooth_field(sdims);
    lossy::FusedConfig cfg = base;
    cfg.rel_error_bound = 1e-2;
    const std::size_t requests = 24;

    svc::ServiceConfig sc;
    sc.workers = 2;
    double seconds = 0;
    u64 cache_hits = 0;
    {
      svc::CompressionService<u16> service(sc);
      std::vector<svc::LossySubmission> subs;
      subs.reserve(requests);
      Timer t;
      for (std::size_t i = 0; i < requests; ++i) {
        auto field = base_field;  // per-request copy, same distribution
        subs.push_back(service.submit_lossy(std::move(field), sdims, cfg));
      }
      for (auto& s : subs) {
        if (s.result.get().cache_hit) ++cache_hits;
      }
      seconds = t.seconds();
    }
    const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const u64 req = reg.counter("lossy.requests");
    const u64 done = reg.counter("lossy.completed");
    const u64 fail = reg.counter("lossy.failed");
    const double rps = static_cast<double>(requests) / seconds;
    std::printf(
        "\nfused_svc: %zu submit_lossy requests, %.0f req/s, %llu codebook "
        "cache hits, counters %llu = %llu + %llu\n",
        requests, rps, static_cast<unsigned long long>(cache_hits),
        static_cast<unsigned long long>(req),
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(fail));
    obs::Json rec = obs::Json::object();
    rec.set("case", "fused_svc")
        .set("requests", static_cast<u64>(requests))
        .set("seconds", seconds)
        .set("requests_per_second", rps)
        .set("cache_hits", cache_hits)
        .set("lossy_requests", req)
        .set("lossy_completed", done)
        .set("lossy_failed", fail);
    run.record(std::move(rec));
  }

  const bool wins_ratio = fused_bytes < glued_bytes;
  const bool wins_throughput = fused_seconds < glued_seconds;
  run.config()
      .set("glued_total_bytes", static_cast<u64>(glued_bytes))
      .set("fused_total_bytes", static_cast<u64>(fused_bytes))
      .set("glued_total_seconds", glued_seconds)
      .set("fused_total_seconds", fused_seconds)
      .set("fused_wins_ratio", wins_ratio)
      .set("fused_wins_throughput", wins_throughput);
  std::printf(
      "\nexpected shape: fused wins ratio (runs leave the Huffman stream "
      "for the\n12-byte-per-run RLE1 field) and throughput (one pass, "
      "residual-only encode).\naggregate across fields: ratio %s "
      "(%zu vs %zu bytes), throughput %s (%.3fs vs %.3fs)\n",
      wins_ratio ? "WIN" : "LOSS", fused_bytes, glued_bytes,
      wins_throughput ? "WIN" : "LOSS", fused_seconds, glued_seconds);
  return run.finish();
}
