// RPC front-end overhead: the same closed-loop compress workload driven
// three ways — direct CompressionService::submit() calls, RPC over the
// in-memory loopback transport, and RPC over a real unix-domain socket.
//
// The loopback case isolates pure protocol cost (framing, the per-request
// response slot, one extra thread hop each way); the unix case adds kernel
// socket copies and wakeups on top. slowdown_vs_direct is the headline:
// loopback is expected to stay within ~1.3x of direct for 64 KiB requests,
// i.e. the wire machinery must not dominate the compression work it fronts.
//
// BENCH_rpc.json records one object per case plus the shared workload
// shape, in the bench schema bench/README.md documents.

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include <unistd.h>

#include "common.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport_inmem.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace parhuff;

std::vector<u8> ramp_data(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

PipelineConfig host_config() {
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

svc::ServiceConfig service_config() {
  svc::ServiceConfig sc;
  sc.workers = 4;
  sc.batch_window_seconds = 200e-6;
  return sc;
}

// Each case is repeated kReps times after a warm-up and scored by its
// fastest repetition: min-of-N discards scheduler noise, which dominates
// single-shot runs on small shared hosts.
constexpr int kReps = 3;

struct Workload {
  std::vector<u8> base;
  std::size_t request_bytes = 64 * 1024;
  std::size_t requests = 64;

  [[nodiscard]] std::span<const u8> slice(std::size_t i) const {
    const std::size_t off =
        (i * request_bytes) % (base.size() - request_bytes);
    return {base.data() + off, request_bytes};
  }
  [[nodiscard]] std::size_t total_bytes() const {
    return requests * request_bytes;
  }
};

double run_direct(const Workload& w) {
  svc::CompressionService<u8> service(service_config());
  const PipelineConfig cfg = host_config();
  std::vector<std::future<svc::CompressResult<u8>>> futs;
  futs.reserve(w.requests);
  Timer t;
  for (std::size_t i = 0; i < w.requests; ++i) {
    futs.push_back(service.submit(w.slice(i), cfg));
  }
  for (auto& f : futs) (void)f.get();
  return t.seconds();
}

double run_rpc(rpc::RpcClient& cli, const Workload& w) {
  std::vector<rpc::RpcCall> calls;
  calls.reserve(w.requests);
  Timer t;
  for (std::size_t i = 0; i < w.requests; ++i) {
    calls.push_back(cli.compress(w.slice(i)));
  }
  for (auto& c : calls) {
    if (c.result.get().empty()) std::abort();  // keep the work live
  }
  return t.seconds();
}

rpc::ServerConfig server_config() {
  rpc::ServerConfig sc;
  sc.service = service_config();
  sc.pipeline8 = host_config();
  return sc;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver run("rpc", argc, argv);
  bench::banner(
      "RPC FRONT-END: direct submit() vs loopback RPC vs unix-socket RPC");

  Workload w;
  w.base = ramp_data(std::size_t{1} << 20, 97);
  run.config()
      .set("requests", static_cast<u64>(w.requests))
      .set("request_bytes", static_cast<u64>(w.request_bytes))
      .set("workers", u64{4});

  (void)run_direct(w);  // warm-up
  double direct_s = run_direct(w);
  for (int r = 1; r < kReps; ++r) {
    direct_s = std::min(direct_s, run_direct(w));
  }

  double loopback_s = 0;
  {
    rpc::LoopbackHub hub;
    rpc::RpcServer server(hub.listener(), server_config());
    rpc::RpcClient cli([&] { return hub.connect(); });
    (void)run_rpc(cli, w);  // warm-up
    loopback_s = run_rpc(cli, w);
    for (int r = 1; r < kReps; ++r) {
      loopback_s = std::min(loopback_s, run_rpc(cli, w));
    }
  }

  double unix_s = 0;
  const std::string path =
      "/tmp/parhuff_bench_rpc_" + std::to_string(::getpid()) + ".sock";
  {
    rpc::RpcServer server(rpc::listen_unix(path), server_config());
    rpc::RpcClient cli([&] { return rpc::connect_unix(path); });
    (void)run_rpc(cli, w);  // warm-up
    unix_s = run_rpc(cli, w);
    for (int r = 1; r < kReps; ++r) {
      unix_s = std::min(unix_s, run_rpc(cli, w));
    }
  }
  ::unlink(path.c_str());

  TextTable table("closed-loop: 64 x 64 KiB compress requests (u8), best of 3");
  table.header({"case", "req/s", "MB/s", "slowdown vs direct"});
  const auto row = [&](const char* name, double seconds) {
    table.row({name,
               fmt(static_cast<double>(w.requests) / seconds, 0),
               fmt(static_cast<double>(w.total_bytes()) / seconds / 1e6, 1),
               fmt(seconds / direct_s, 2)});
  };
  row("direct submit()", direct_s);
  row("rpc loopback", loopback_s);
  row("rpc unix socket", unix_s);
  table.print();

  const auto record = [&](const char* name, double seconds) {
    obs::Json rec = obs::Json::object();
    rec.set("case", name)
        .set("seconds", seconds)
        .set("requests_per_second",
             static_cast<double>(w.requests) / seconds)
        .set("throughput_gbps", gbps(w.total_bytes(), seconds))
        .set("slowdown_vs_direct", seconds / direct_s);
    run.record(std::move(rec));
  };
  record("direct_submit", direct_s);
  record("rpc_loopback", loopback_s);
  record("rpc_unix_socket", unix_s);

  return run.finish();
}
