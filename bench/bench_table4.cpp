// Table IV reproduction: multithreaded (OpenMP) codebook construction time
// vs the serial builder, for 1024–65536 symbols and 1–8 threads. Real
// datasets cover <=8192 symbols; synthetic normal histograms cover
// 16384–65536 (paper footnote 3).
//
// Two blocks are printed: host-measured times (this machine has few
// physical cores, so >2 threads oversubscribe — the fork/join overhead
// effect is still visible), and times scaled through the Xeon-8280 model.

#include "common.hpp"
#include "core/executor.hpp"
#include "core/par_codebook.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("table4", argc, argv);
  bench::banner("TABLE IV: multithreaded codebook construction (ms)");

  struct Case {
    std::size_t n;
    std::vector<u64> freq;
  };
  std::vector<Case> cases;
  {
    const auto codes = data::generate_nyx_quant(4u << 20, 7);
    std::vector<u64> nyx(1024, 0);
    for (u16 c : codes) ++nyx[c];
    cases.push_back({1024, std::move(nyx)});
  }
  cases.push_back({2048, data::kmer_like_histogram(2048, 1u << 24, 3)});
  cases.push_back({4096, data::kmer_like_histogram(4096, 1u << 24, 4)});
  cases.push_back({8192, data::kmer_like_histogram(8192, 1u << 24, 5)});
  for (std::size_t n : {16384u, 32768u, 65536u}) {
    cases.push_back({n, data::normal_histogram(n, u64{1} << 28, n)});
  }

  const int threads[] = {1, 2, 4, 6, 8};
  TextTable meas("host-measured (2 physical cores; >2 threads oversubscribed)");
  meas.header({"#symbol", "serial", "1 thread", "2 threads", "4 threads",
               "6 threads", "8 threads"});
  TextTable model("modeled on 2x28-core Xeon 8280 (from measured serial work)");
  model.header({"#symbol", "serial", "1 core", "2 cores", "4 cores",
                "6 cores", "8 cores"});

  const perf::CpuSpec cpu;
  for (auto& c : cases) {
    obs::Json rec = obs::Json::object();
    obs::Json measured_ms = obs::Json::object();
    obs::Json modeled_ms = obs::Json::object();
    auto serial_reps = time_reps(7, [&] {
      Timer t;
      (void)build_codebook_serial(c.freq);
      return t.seconds();
    });
    const double serial_s = summarize(serial_reps).median;

    std::vector<std::string> mrow = {std::to_string(c.n),
                                     fmt(serial_s * 1e3, 3)};
    double omp1_s = 0;
    std::size_t regions = 0;
    for (int p : threads) {
      ParCodebookStats stats{};
      auto reps = time_reps(5, [&] {
        OmpExec exec(p);
        Timer t;
        stats = ParCodebookStats{};
        (void)build_codebook_parallel(exec, c.freq, &stats);
        return t.seconds();
      });
      const double s = summarize(reps).median;
      if (p == 1) omp1_s = s;
      // ~5 parallel regions per meld round + the CW phases.
      regions = stats.rounds * 5 + 8;
      mrow.push_back(fmt(s * 1e3, 3));
      measured_ms.set(std::to_string(p) + "_threads", s * 1e3);
    }
    meas.row(mrow);

    std::vector<std::string> orow = {std::to_string(c.n),
                                     fmt(serial_s * 1e3, 3)};
    for (int p : threads) {
      const double ms = perf::region_task_seconds(omp1_s, regions, p, cpu) * 1e3;
      orow.push_back(fmt(ms, 3));
      modeled_ms.set(std::to_string(p) + "_cores", ms);
    }
    model.row(orow);
    rec.set("symbols", static_cast<u64>(c.n))
        .set("serial_ms", serial_s * 1e3)
        .set("parallel_regions", static_cast<u64>(regions))
        .set("measured_ms", std::move(measured_ms))
        .set("modeled_xeon8280_ms", std::move(modeled_ms));
    run.record(std::move(rec));
  }
  meas.print();
  std::printf("\n");
  model.print();

  std::printf(
      "\npaper (Table IV) in ms — serial | 1 | 2 | 4 | 6 | 8 cores:\n"
      "   1024: 0.045 | 0.219 | 0.469 | 0.622 | 0.700 | 0.840\n"
      "   8192: 1.806 | 1.167 | 1.513 | 1.657 | 1.836 | 2.158\n"
      "  16384: 3.671 | 1.683 | 1.796 | 1.705 | 2.055 | 2.222\n"
      "  65536: 7.641 | 5.221 | 4.850 | 4.411 | 4.952 | 5.713\n"
      "expected shape: for small alphabets the serial builder wins and more\n"
      "threads only add fork/join overhead; the 1-thread array-based builder\n"
      "overtakes serial near 4096-8192 symbols; multithreading first pays\n"
      "off around 32768+ symbols.\n");
  return run.finish();
}
