// Figure 3 reproduction: the average-bitwidth → reduction-factor decision.
// For each dataset: measured avg codeword bitwidth, the expected merged
// width β·2^r for candidate r, which r the rule picks, and why (the
// merged word must land in [W/2, W) for W = 32).

#include "common.hpp"
#include "core/entropy.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("fig3", argc, argv);
  bench::banner("FIGURE 3: reduction-factor decision from average bitwidth");

  TextTable t("merged bitwidth beta*2^r per candidate r (W = 32 bits)");
  t.header({"dataset", "entropy", "avg bits", "r=1", "r=2", "r=3", "r=4",
            "r=5", "rule r", "used r (paper)"});

  for (const auto& info : data::paper_datasets()) {
    const auto ds =
        data::generate(info.name, bench::scaled_bytes(info.paper_bytes), 13);
    std::vector<u64> freq;
    double avg = 0, ent = 0;
    if (info.width == data::SymbolWidth::kByte) {
      freq = histogram_serial<u8>(ds.bytes8, 256);
    } else {
      freq = histogram_serial<u16>(ds.syms16, 1024);
    }
    const Codebook cb = build_codebook_serial(freq);
    avg = cb.average_bits(freq);
    ent = shannon_entropy(freq);

    std::vector<std::string> row = {info.name, fmt(ent, 4), fmt(avg, 4)};
    const u32 rule = reduce_factor_rule(avg);
    for (u32 r = 1; r <= 5; ++r) {
      const double w = merged_bitwidth(avg, r);
      std::string cell = fmt(w, 1);
      if (r == rule) cell += " <";       // rule's pick
      else if (w >= 32.0) cell += " !";  // would overflow the cell
      row.push_back(cell);
    }
    row.push_back(std::to_string(rule));
    row.push_back(std::to_string(info.paper_reduce_factor));
    t.row(row);
    obs::Json merged = obs::Json::object();
    for (u32 r = 1; r <= 5; ++r) {
      merged.set("r" + std::to_string(r), merged_bitwidth(avg, r));
    }
    run.record(obs::Json::object()
                   .set("dataset", info.name)
                   .set("entropy_bits", ent)
                   .set("avg_bits", avg)
                   .set("merged_bitwidth", std::move(merged))
                   .set("rule_r", rule)
                   .set("paper_r", info.paper_reduce_factor));
  }
  t.print();

  std::printf(
      "\n'<' marks the rule's choice (floor(log beta) + r + 1 = log W: the\n"
      "merged codeword expected in [16, 32) bits); '!' marks factors that\n"
      "would overflow the 32-bit cell. The paper caps the deployed r at 3\n"
      "(Table II shows M=10, r=3 beating r=4 on Nyx-Quant because breaking\n"
      "handling outweighs the bandwidth gain).\n");
  return run.finish();
}
