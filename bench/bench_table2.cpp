// Table II reproduction: encoding throughput (GB/s) of the reduce/shuffle
// encoder across chunk magnitudes M ∈ {12, 11, 10} and reduce factors
// r ∈ {4, 3, 2} on Nyx-Quant, modeled on V100 (Longhorn) and RTX 5000
// (Frontera), plus the breaking-point percentages.

#include "common.hpp"
#include "core/decode.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("table2", argc, argv);
  bench::banner("TABLE II: encode GB/s vs chunk magnitude x reduce factor "
                "(Nyx-Quant)");

  const std::size_t bytes = bench::scaled_bytes(256 * 1000 * 1000ull);
  const auto codes = data::generate_nyx_quant(bytes / sizeof(u16), 2021);
  const auto freq = histogram_serial<u16>(codes, 1024);
  const Codebook cb = build_codebook_serial(freq);
  std::printf("input: %s of quantization codes, avg bits %.5f\n\n",
              fmt_bytes(codes.size() * 2).c_str(), cb.average_bits(freq));

  const u32 mags[] = {12, 11, 10};
  const u32 reduces[] = {4, 3, 2};

  TextTable t("modeled GB/s (rows: reduce factor; columns: magnitude)");
  t.header({"r", "V100 2^12", "V100 2^11", "V100 2^10", "RTX 2^12",
            "RTX 2^11", "RTX 2^10", "breaking"});
  for (const u32 r : reduces) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(r) + " (" + std::to_string(1u << r) +
                    "x)");
    double breaking = 0;
    std::vector<double> v_col, tu_col;
    for (const u32 M : mags) {
      simt::MemTally tally;
      ReduceShuffleStats stats;
      const EncodedStream enc = encode_reduceshuffle_simt<u16>(
          codes, cb, ReduceShuffleConfig{M, r}, &tally, &stats);
      if (decode_stream<u16>(enc, cb, 0) != codes) {
        std::fprintf(stderr, "FATAL: round trip failed at M=%u r=%u\n", M, r);
        return 1;
      }
      const std::size_t paper_bytes = 256 * 1000 * 1000ull;
      v_col.push_back(perf::modeled_gbps_at(codes.size() * 2, paper_bytes,
                                            tally, bench::v100()));
      tu_col.push_back(perf::modeled_gbps_at(codes.size() * 2, paper_bytes,
                                             tally, bench::rtx5000()));
      breaking = enc.breaking_fraction();
      run.record(obs::Json::object()
                     .set("magnitude", M)
                     .set("reduce_factor", r)
                     .set("v100_gbps", v_col.back())
                     .set("rtx5000_gbps", tu_col.back())
                     .set("breaking_fraction", breaking)
                     .set("reduce_iterations",
                          static_cast<u64>(stats.reduce_iterations))
                     .set("shuffle_iterations",
                          static_cast<u64>(stats.shuffle_iterations))
                     .set("tally", obs::to_json(tally)));
    }
    for (double g : v_col) cells.push_back(fmt(g, 2));
    for (double g : tu_col) cells.push_back(fmt(g, 2));
    cells.push_back(fmt_pct(breaking, 6));
    t.row(cells);
  }
  t.print();

  std::printf(
      "\npaper (Table II), V100 / RTX 5000 in GB/s:\n"
      "  r=4: 227.60 274.40 291.04 | 110.94 124.42 133.84  breaking "
      "0.000434%%\n"
      "  r=3: 191.41 274.42 314.63 |  94.27 124.56 135.86  breaking "
      "0.003277%%\n"
      "  r=2:  68.32 106.87 172.54 |  42.70  55.53  79.45  breaking "
      "0.007536%%\n"
      "expected shape: M=10,r=3 strongest on V100; r=2 sharply slower; the\n"
      "V100 outperforms the RTX 5000 by roughly the bandwidth ratio.\n");
  return run.finish();
}
