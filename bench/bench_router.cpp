// Horizontal scaling through the shard router: the same open-loop compress
// burst driven three ways — one RpcServer on a loopback hub (the bench_rpc
// baseline shape), a ShardRouter fronting ONE shard (pure proxy overhead),
// and a ShardRouter fanning out across THREE shards.
//
// Open-loop means the whole burst is in flight before the first response
// is awaited, so the fleet's parallelism — not the client's issue rate —
// bounds the makespan. Every server (single or shard) gets an identical
// one-worker service, so speedup_vs_single measures added capacity, not a
// config difference: on a >= 4-core host the 3-shard case is expected to
// reach >= 2x the single server; on fewer cores the bench reports whatever
// the host can actually deliver (the JSON records host_threads so readers
// can tell which regime they are looking at).
//
// The burst cycles through distinct histogram shapes, so rendezvous
// routing spreads it across the fleet; BENCH_router.json also snapshots
// the router.* terminal counters per routed case, whose balance
// (routed == forwarded + failed_over + shed) must survive the run.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "router/harness.hpp"
#include "router/router.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport_inmem.hpp"

namespace {

using namespace parhuff;

constexpr std::size_t kRequests = 48;
constexpr std::size_t kRequestBytes = 64 * 1024;
constexpr std::size_t kShapes = 24;  // distinct routing keys in the burst
constexpr int kReps = 3;

PipelineConfig host_config() {
  PipelineConfig cfg;
  cfg.nbins = 256;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

/// One worker per server: fleet size is the only capacity variable.
rpc::ServerConfig shard_config() {
  rpc::ServerConfig sc;
  sc.service.workers = 1;
  sc.service.batch_max_requests = 1;  // one codebook build per request
  sc.max_connections = 2;
  sc.pipeline8 = host_config();
  return sc;
}

/// Payload `i` draws from an alphabet of (i % kShapes) + 2 symbols: each
/// shape is a distinct support set, hence a distinct rendezvous key.
std::vector<std::vector<u8>> make_payloads() {
  std::vector<std::vector<u8>> payloads(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    payloads[i].resize(kRequestBytes);
    const std::size_t alphabet = (i % kShapes) + 2;
    for (std::size_t b = 0; b < kRequestBytes; ++b) {
      payloads[i][b] = static_cast<u8>(b % alphabet);
    }
  }
  return payloads;
}

/// Fire the whole burst, then await it: the makespan of an open-loop burst.
double run_burst(rpc::RpcClient& cli,
                 const std::vector<std::vector<u8>>& payloads) {
  std::vector<rpc::RpcCall> calls;
  calls.reserve(payloads.size());
  Timer t;
  for (const auto& p : payloads) {
    calls.push_back(cli.compress(std::span<const u8>(p)));
  }
  for (auto& c : calls) {
    if (c.result.get().empty()) std::abort();  // keep the work live
  }
  return t.seconds();
}

double best_of(rpc::RpcClient& cli,
               const std::vector<std::vector<u8>>& payloads) {
  (void)run_burst(cli, payloads);  // warm-up
  double best = run_burst(cli, payloads);
  for (int r = 1; r < kReps; ++r) {
    best = std::min(best, run_burst(cli, payloads));
  }
  return best;
}

double run_router_case(std::size_t shards_n,
                       const std::vector<std::vector<u8>>& payloads,
                       obs::Json* counters_out) {
  auto& reg = obs::MetricsRegistry::global();
  const u64 routed0 = reg.counter("router.routed");
  const u64 forwarded0 = reg.counter("router.forwarded");
  const u64 failed_over0 = reg.counter("router.failed_over");
  const u64 shed0 = reg.counter("router.shed");

  router::ShardHarness shards(shards_n, shard_config());
  rpc::LoopbackHub front;
  router::RouterConfig rc;
  rc.start_prober = false;  // steady-state burst: no probe traffic
  rc.max_connections = 2;
  auto rt = std::make_unique<router::ShardRouter>(front.listener(),
                                                  shards.endpoints(), rc);
  rpc::RpcClient cli([&] { return front.connect(); });
  const double best = best_of(cli, payloads);

  rt->stop();  // quiesce so the terminal counters are final
  if (counters_out) {
    counters_out->set("routed", reg.counter("router.routed") - routed0)
        .set("forwarded", reg.counter("router.forwarded") - forwarded0)
        .set("failed_over",
             reg.counter("router.failed_over") - failed_over0)
        .set("shed", reg.counter("router.shed") - shed0);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Driver run("router", argc, argv);
  bench::banner(
      "SHARD ROUTER: open-loop burst vs single server, 1-shard and 3-shard "
      "fleets");

  const auto payloads = make_payloads();
  const unsigned host_threads = std::thread::hardware_concurrency();
  run.config()
      .set("requests", static_cast<u64>(kRequests))
      .set("request_bytes", static_cast<u64>(kRequestBytes))
      .set("shapes", static_cast<u64>(kShapes))
      .set("workers_per_server", u64{1})
      .set("host_threads", static_cast<u64>(host_threads));

  double single_s = 0;
  {
    rpc::LoopbackHub hub;
    rpc::RpcServer server(hub.listener(), shard_config());
    rpc::RpcClient cli([&] { return hub.connect(); });
    single_s = best_of(cli, payloads);
  }

  obs::Json counters1 = obs::Json::object();
  const double router1_s = run_router_case(1, payloads, &counters1);
  obs::Json counters3 = obs::Json::object();
  const double router3_s = run_router_case(3, payloads, &counters3);

  const std::size_t total = kRequests * kRequestBytes;
  TextTable table(
      "open-loop: 48 x 64 KiB compress burst (u8), 1 worker/server, best "
      "of 3");
  table.header({"case", "req/s", "MB/s", "speedup vs single"});
  const auto row = [&](const char* name, double seconds) {
    table.row({name,
               fmt(static_cast<double>(kRequests) / seconds, 0),
               fmt(static_cast<double>(total) / seconds / 1e6, 1),
               fmt(single_s / seconds, 2)});
  };
  row("single server loopback", single_s);
  row("router, 1 shard", router1_s);
  row("router, 3 shards", router3_s);
  table.print();
  if (host_threads < 4) {
    std::printf(
        "note: only %u hardware thread(s) — the 3-shard fleet cannot run "
        "its workers in parallel here; expect >= 2x on a >= 4-core host.\n",
        host_threads);
  }

  const auto record = [&](const char* name, double seconds,
                          obs::Json* counters) {
    obs::Json rec = obs::Json::object();
    rec.set("case", name)
        .set("seconds", seconds)
        .set("requests_per_second",
             static_cast<double>(kRequests) / seconds)
        .set("throughput_gbps", gbps(total, seconds))
        .set("speedup_vs_single", single_s / seconds);
    if (counters) rec.set("router_counters", std::move(*counters));
    run.record(std::move(rec));
  };
  record("single_server_loopback", single_s, nullptr);
  record("router_1shard_loopback", router1_s, &counters1);
  record("router_3shard_loopback", router3_s, &counters3);

  return run.finish();
}
