// Google-benchmark microbenchmarks + ablations for the design choices
// DESIGN.md calls out: bitstream throughput, merge-path partitioning,
// histogram privatization degree, codebook construction strategies, and
// the encoders' host-side cost.

#include <benchmark/benchmark.h>

#include <sstream>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "core/bitstream.hpp"
#include "core/decode.hpp"
#include "core/decode_selfsync.hpp"
#include "core/decode_table.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/executor.hpp"
#include "core/histogram.hpp"
#include "core/merge_path.hpp"
#include "core/par_codebook.hpp"
#include "core/sort.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

// --- Bitstream. -------------------------------------------------------------

void BM_BitWriterPut(benchmark::State& state) {
  const unsigned len = static_cast<unsigned>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<u64> vals(4096);
  for (auto& v : vals) v = rng.next() & ((u64{1} << len) - 1);
  for (auto _ : state) {
    BitWriter bw;
    for (u64 v : vals) bw.put(v, len);
    benchmark::DoNotOptimize(bw.finish());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BitWriterPut)->Arg(1)->Arg(5)->Arg(16)->Arg(31);

void BM_AppendBits(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  std::vector<word_t> src(words_for_bits(bits), 0xA5A5A5A5u);
  std::vector<word_t> dst(words_for_bits(2 * bits) + 2, 0);
  for (auto _ : state) {
    std::fill(dst.begin(), dst.end(), 0);
    append_bits(dst.data(), 13, src.data(), bits);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<i64>(bits / 8));
}
BENCHMARK(BM_AppendBits)->Arg(64)->Arg(1024)->Arg(32768);

// --- Merge path: partition-count ablation. ----------------------------------

void BM_MergePathPartitions(benchmark::State& state) {
  const std::size_t parts = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(2);
  std::vector<u64> a(8192), b(8192);
  for (auto& x : a) x = rng.below(1 << 20);
  for (auto& x : b) x = rng.below(1 << 20);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<u64> out(a.size() + b.size());
  OmpExec exec(0);
  for (auto _ : state) {
    merge_path(
        exec, a.size(), b.size(),
        [&](std::size_t i, std::size_t j) { return a[i] <= b[j]; },
        [&](std::size_t k, bool fa, std::size_t s) {
          out[k] = fa ? a[s] : b[s];
        },
        parts);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MergePathPartitions)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// --- Radix sort vs std::sort (the Thrust-substitute justification). ----------

void BM_RadixSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  std::vector<u64> keys(n);
  std::vector<u32> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.below(u64{1} << 40);
    vals[i] = static_cast<u32>(i);
  }
  for (auto _ : state) {
    auto k = keys;
    auto v = vals;
    radix_sort_by_key(k, v);
    benchmark::DoNotOptimize(k.data());
  }
}
BENCHMARK(BM_RadixSort)->Arg(1024)->Arg(8192)->Arg(65536);

// --- Histogram ablation: privatized vs direct. --------------------------------

void BM_HistogramSimt(benchmark::State& state) {
  const auto data = data::generate_text(4u << 20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram_simt<u8>(data, 256, nullptr));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(data.size()));
}
BENCHMARK(BM_HistogramSimt);

void BM_HistogramSerial(benchmark::State& state) {
  const auto data = data::generate_text(4u << 20, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram_serial<u8>(data, 256));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(data.size()));
}
BENCHMARK(BM_HistogramSerial);

// --- Codebook construction strategies. ---------------------------------------

void BM_CodebookSerial(benchmark::State& state) {
  const auto freq = data::normal_histogram(
      static_cast<std::size_t>(state.range(0)), u64{1} << 26, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_codebook_serial(freq));
  }
}
BENCHMARK(BM_CodebookSerial)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_CodebookParallelSeqExec(benchmark::State& state) {
  const auto freq = data::normal_histogram(
      static_cast<std::size_t>(state.range(0)), u64{1} << 26, 1);
  SeqExec exec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_codebook_parallel(exec, freq));
  }
}
BENCHMARK(BM_CodebookParallelSeqExec)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_CodebookParallelOmp(benchmark::State& state) {
  const auto freq = data::normal_histogram(
      static_cast<std::size_t>(state.range(0)), u64{1} << 26, 1);
  OmpExec exec(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_codebook_parallel(exec, freq));
  }
}
BENCHMARK(BM_CodebookParallelOmp)
    ->Args({1024, 2})
    ->Args({8192, 2})
    ->Args({65536, 2});

// --- Encoders (host wall time; the GPU numbers live in bench_table*). ---------

void BM_EncodeSerial(benchmark::State& state) {
  const auto codes = data::generate_nyx_quant(1u << 21, 5);
  const auto freq = histogram_serial<u16>(codes, 1024);
  const Codebook cb = build_codebook_serial(freq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_serial<u16>(codes, cb, 1024));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(codes.size() * 2));
}
BENCHMARK(BM_EncodeSerial);

void BM_EncodeReduceShuffle(benchmark::State& state) {
  const auto codes = data::generate_nyx_quant(1u << 21, 5);
  const auto freq = histogram_serial<u16>(codes, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const ReduceShuffleConfig cfg{10, static_cast<u32>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encode_reduceshuffle_simt<u16>(codes, cb, cfg, nullptr, nullptr));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(codes.size() * 2));
}
BENCHMARK(BM_EncodeReduceShuffle)->Arg(2)->Arg(3)->Arg(4);

void BM_Decode(benchmark::State& state) {
  const auto codes = data::generate_nyx_quant(1u << 21, 5);
  const auto freq = histogram_serial<u16>(codes, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_serial<u16>(codes, cb, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_stream<u16>(enc, cb, 0));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(codes.size() * 2));
}
BENCHMARK(BM_Decode);

void BM_DecodeTableDriven(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  const auto codes = data::generate_nyx_quant(1u << 21, 5);
  const auto freq = histogram_serial<u16>(codes, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_serial<u16>(codes, cb, 1024);
  const DecodeTable table(cb, k);
  std::vector<u16> out(enc.n_symbols);
  for (auto _ : state) {
    for (std::size_t c = 0; c < enc.chunks(); ++c) {
      BitReader br = enc.chunk_reader(c);
      table.decode(br, enc.chunk_size(c), out.data() + c * enc.chunk_symbols);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(codes.size() * 2));
}
BENCHMARK(BM_DecodeTableDriven)->Arg(8)->Arg(12);

void BM_DecodeSelfSync(benchmark::State& state) {
  const auto codes = data::generate_nyx_quant(1u << 21, 5);
  const auto freq = histogram_serial<u16>(codes, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const auto enc = encode_serial<u16>(codes, cb, 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_selfsync<u16>(enc, cb, {}));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<i64>(codes.size() * 2));
}
BENCHMARK(BM_DecodeSelfSync);

}  // namespace
}  // namespace parhuff

// Custom main instead of BENCHMARK_MAIN(): the driver flags
// (--json-out/--no-json/--trace-out) are peeled off before
// benchmark::Initialize sees argv, and the google-benchmark JSON report is
// captured and embedded record-by-record in the parhuff-metrics-v1 envelope
// (BENCH_micro.json) so all bench outputs share one schema.
int main(int argc, char** argv) {
  using namespace parhuff;
  std::vector<char*> ours{argv[0]}, gb_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    const bool takes_value = a == "--json-out" || a == "--trace-out";
    const bool is_ours = takes_value || a == "--no-json" ||
                         a.substr(0, 11) == "--json-out=" ||
                         a.substr(0, 12) == "--trace-out=";
    if (is_ours) {
      ours.push_back(argv[i]);
      if (takes_value && i + 1 < argc) ours.push_back(argv[++i]);
    } else {
      gb_args.push_back(argv[i]);
    }
  }
  bench::Driver run("micro", static_cast<int>(ours.size()), ours.data());

  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) {
    return 1;
  }

  // The JSON reporter must be the *display* reporter — a file reporter
  // makes google-benchmark demand --benchmark_out. Its stream is captured
  // so the console keeps quiet and the JSON lands in our document.
  std::ostringstream captured;
  benchmark::JSONReporter json_reporter;
  json_reporter.SetOutputStream(&captured);
  json_reporter.SetErrorStream(&captured);
  benchmark::RunSpecifiedBenchmarks(&json_reporter);
  benchmark::Shutdown();

  try {
    const obs::Json gb = obs::Json::parse(captured.str());
    if (gb.has("context")) run.config().set("google_benchmark", gb.at("context"));
    if (gb.has("benchmarks")) {
      for (const obs::Json& b : gb.at("benchmarks").elements()) run.record(b);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: could not embed google-benchmark JSON: %s\n",
                 e.what());
  }
  return run.finish();
}
