// Service-layer throughput/latency bench: heavy small-request traffic
// through the CompressionService vs naive per-request compress() calls.
//
// The workload models an ingest daemon compressing many small buffers that
// share one distribution (4096-symbol slices of one nyx-quant field, the
// shape §I motivates). Per request, the naive path pays histogram +
// codebook build + encode; the service amortizes the build via batching
// and skips it entirely on codebook-cache hits, so the measured
// requests/sec gap is exactly the amortized stage.
//
// Two load generators:
//   closed-loop — submit every request back-to-back, drain, measure wall
//     time (throughput; sweeps workers x batching x cache);
//   open-loop   — submit on a fixed interarrival clock (arrival rate
//     independent of completion rate, how a real ingest front-end behaves)
//     and report p50/p95/p99 end-to-end latency from the
//     svc.request_seconds histogram.
//
// BENCH_service.json records one object per case, including
// speedup_vs_naive for the service cases. The global-registry snapshot in
// the document reflects the final case only: each case clears the registry
// so its latency histogram is not polluted by the previous case.

#include <chrono>
#include <thread>
#include <vector>

#include "../tests/proptest.hpp"
#include "common.hpp"
#include "core/entropy.hpp"
#include "data/quant.hpp"
#include "svc/service.hpp"

namespace {

using namespace parhuff;

PipelineConfig host_config() {
  PipelineConfig cfg;
  cfg.nbins = 1024;
  cfg.histogram = HistogramKind::kSerial;
  cfg.codebook = CodebookKind::kSerialTree;
  cfg.encoder = EncoderKind::kSerial;
  return cfg;
}

struct Workload {
  std::vector<u16> base;
  std::size_t request_symbols = 4096;
  std::size_t requests = 192;

  [[nodiscard]] std::span<const u16> slice(std::size_t i) const {
    const std::size_t off =
        (i * request_symbols) % (base.size() - request_symbols);
    return {base.data() + off, request_symbols};
  }
  [[nodiscard]] std::size_t total_bytes() const {
    return requests * request_symbols * sizeof(u16);
  }
};

double run_naive(const Workload& w, const PipelineConfig& cfg) {
  Timer t;
  for (std::size_t i = 0; i < w.requests; ++i) {
    const auto c = compress<u16>(w.slice(i), cfg);
    if (c.stream.n_symbols == 0) std::abort();  // keep the work live
  }
  return t.seconds();
}

struct ServiceRun {
  double seconds = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  u64 cache_hits = 0, cache_misses = 0;
  u64 batches = 0;
};

ServiceRun run_closed_loop(const Workload& w, const PipelineConfig& cfg,
                           const svc::ServiceConfig& sc) {
  obs::MetricsRegistry::global().clear();  // per-case histogram
  svc::CompressionService<u16> service(sc);
  std::vector<std::future<svc::CompressResult<u16>>> futs;
  futs.reserve(w.requests);
  Timer t;
  for (std::size_t i = 0; i < w.requests; ++i) {
    futs.push_back(service.submit(w.slice(i), cfg));
  }
  for (auto& f : futs) (void)f.get();
  ServiceRun r;
  r.seconds = t.seconds();
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::HistoStat lat = reg.histo("svc.request_seconds");
  r.p50_ms = lat.quantile(0.50) * 1e3;
  r.p95_ms = lat.quantile(0.95) * 1e3;
  r.p99_ms = lat.quantile(0.99) * 1e3;
  r.cache_hits = reg.counter("svc.cache_hits");
  r.cache_misses = reg.counter("svc.cache_misses");
  r.batches = reg.counter("svc.batches");
  return r;
}

ServiceRun run_open_loop(const Workload& w, const PipelineConfig& cfg,
                         const svc::ServiceConfig& sc, double interarrival_s) {
  obs::MetricsRegistry::global().clear();
  svc::CompressionService<u16> service(sc);
  std::vector<std::future<svc::CompressResult<u16>>> futs;
  futs.reserve(w.requests);
  const auto start = std::chrono::steady_clock::now();
  const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(interarrival_s));
  Timer t;
  for (std::size_t i = 0; i < w.requests; ++i) {
    std::this_thread::sleep_until(start + dt * i);
    futs.push_back(service.submit(w.slice(i), cfg));
  }
  for (auto& f : futs) (void)f.get();
  ServiceRun r;
  r.seconds = t.seconds();
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::HistoStat lat = reg.histo("svc.request_seconds");
  r.p50_ms = lat.quantile(0.50) * 1e3;
  r.p95_ms = lat.quantile(0.95) * 1e3;
  r.p99_ms = lat.quantile(0.99) * 1e3;
  r.cache_hits = reg.counter("svc.cache_hits");
  r.cache_misses = reg.counter("svc.cache_misses");
  r.batches = reg.counter("svc.batches");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("service", argc, argv);
  bench::banner(
      "SERVICE LAYER: batched + cached small-request traffic vs naive "
      "per-request pipeline calls");

  Workload w;
  w.base = data::generate_nyx_quant(1u << 20, 42);
  const PipelineConfig cfg = host_config();
  run.config()
      .set("requests", static_cast<u64>(w.requests))
      .set("request_symbols", static_cast<u64>(w.request_symbols))
      .set("nbins", static_cast<u64>(cfg.nbins));

  // Warm-up (page in the dataset, JIT the allocator pools).
  (void)run_naive(w, cfg);
  const double naive_s = run_naive(w, cfg);
  const double naive_rps = static_cast<double>(w.requests) / naive_s;
  {
    obs::Json rec = obs::Json::object();
    rec.set("case", "naive_per_request")
        .set("seconds", naive_s)
        .set("requests_per_second", naive_rps)
        .set("throughput_gbps", gbps(w.total_bytes(), naive_s));
    run.record(std::move(rec));
  }

  TextTable table("closed-loop: 192 x 4096-symbol requests (u16, nyx-quant)");
  table.header({"case", "workers", "batch", "cache", "req/s", "speedup",
                "p50 ms", "p95 ms", "p99 ms", "hits", "batches"});
  table.row({"naive per-request", "-", "-", "-", fmt(naive_rps, 0), "1.00",
             "-", "-", "-", "-", "-"});

  struct Case {
    const char* name;
    int workers;
    bool batch;
    bool cache;
  };
  const Case cases[] = {
      {"service", 1, true, true},   {"service", 2, true, true},
      {"service", 4, true, true},   {"no-batch", 4, false, true},
      {"no-cache", 4, true, false}, {"no-batch,no-cache", 4, false, false},
  };
  double best_speedup = 0;
  for (const Case& c : cases) {
    svc::ServiceConfig sc;
    sc.workers = c.workers;
    sc.batch_window_seconds = c.batch ? 200e-6 : 0.0;
    sc.enable_cache = c.cache;
    const ServiceRun r = run_closed_loop(w, cfg, sc);
    const double rps = static_cast<double>(w.requests) / r.seconds;
    const double speedup = naive_s / r.seconds;
    if (c.batch && c.cache && speedup > best_speedup) best_speedup = speedup;
    table.row({c.name, std::to_string(c.workers), c.batch ? "on" : "off",
               c.cache ? "on" : "off", fmt(rps, 0), fmt(speedup, 2),
               fmt(r.p50_ms, 3), fmt(r.p95_ms, 3), fmt(r.p99_ms, 3),
               std::to_string(r.cache_hits), std::to_string(r.batches)});
    obs::Json rec = obs::Json::object();
    rec.set("case", std::string("closed_loop_") + c.name)
        .set("workers", static_cast<u64>(c.workers))
        .set("batching", c.batch)
        .set("cache", c.cache)
        .set("seconds", r.seconds)
        .set("requests_per_second", rps)
        .set("speedup_vs_naive", speedup)
        .set("p50_ms", r.p50_ms)
        .set("p95_ms", r.p95_ms)
        .set("p99_ms", r.p99_ms)
        .set("cache_hits", r.cache_hits)
        .set("cache_misses", r.cache_misses)
        .set("batches", r.batches);
    run.record(std::move(rec));
  }
  // Fault-tolerance machinery overhead on the no-fault path: same closed
  // loop through the options-taking submit with a generous (never-tripped)
  // deadline and a cancellation handle per request. The deadline checks,
  // handle-state CAS and disarmed injection hooks should be noise.
  {
    obs::MetricsRegistry::global().clear();
    svc::ServiceConfig sc;
    sc.workers = 4;
    sc.batch_window_seconds = 200e-6;
    double seconds = 0;
    {
      svc::CompressionService<u16> service(sc);
      std::vector<svc::Submission<u16>> subs;
      subs.reserve(w.requests);
      Timer t;
      for (std::size_t i = 0; i < w.requests; ++i) {
        svc::SubmitOptions opts;
        opts.deadline = svc::Deadline::in(10.0);
        subs.push_back(service.submit(w.slice(i), cfg, opts));
      }
      for (auto& s : subs) (void)s.result.get();
      seconds = t.seconds();
    }
    const double rps = static_cast<double>(w.requests) / seconds;
    const double speedup = naive_s / seconds;
    table.row({"with-deadlines", "4", "on", "on", fmt(rps, 0),
               fmt(speedup, 2), "-", "-", "-", "-", "-"});
    obs::Json rec = obs::Json::object();
    rec.set("case", "closed_loop_with_deadlines")
        .set("workers", u64{4})
        .set("batching", true)
        .set("cache", true)
        .set("seconds", seconds)
        .set("requests_per_second", rps)
        .set("speedup_vs_naive", speedup)
        .set("deadline_exceeded",
             obs::MetricsRegistry::global().counter("svc.deadline_exceeded"))
        .set("retries", obs::MetricsRegistry::global().counter("svc.retries"));
    run.record(std::move(rec));
  }
  table.print();

  // Open loop: arrivals every 100 us (~10k req/s offered) — latency under
  // a fixed offered load rather than at saturation.
  TextTable open("open-loop: fixed 100 us interarrival (offered ~10k req/s)");
  open.header({"case", "workers", "p50 ms", "p95 ms", "p99 ms", "hits"});
  for (const int workers : {1, 4}) {
    svc::ServiceConfig sc;
    sc.workers = workers;
    sc.batch_window_seconds = 200e-6;
    const ServiceRun r = run_open_loop(w, cfg, sc, 100e-6);
    open.row({"service", std::to_string(workers), fmt(r.p50_ms, 3),
              fmt(r.p95_ms, 3), fmt(r.p99_ms, 3),
              std::to_string(r.cache_hits)});
    obs::Json rec = obs::Json::object();
    rec.set("case", "open_loop_service")
        .set("workers", static_cast<u64>(workers))
        .set("interarrival_us", 100.0)
        .set("p50_ms", r.p50_ms)
        .set("p95_ms", r.p95_ms)
        .set("p99_ms", r.p99_ms)
        .set("cache_hits", r.cache_hits)
        .set("batches", r.batches);
    run.record(std::move(rec));
  }
  open.print();

  // Drifting distribution: the adaptive codebook lifecycle
  // (svc/codebook_manager.hpp) against the proptest harness's gradual
  // drift family, whose batches stay inside one cache fingerprint — the
  // covers() guard never fires, so without the manager the service
  // silently pays the stale book's ratio loss forever. One request per
  // batch, sequenced with quiesce() so every triggered hot-swap lands
  // before the next batch (the ratio-over-time samples are deterministic
  // in content, only timings vary). Recorded per batch: achieved
  // bits/symbol of the book the request actually encoded with, alongside
  // the batch's entropy floor; plus the full svc.adaptive.* lifecycle
  // totals, which CI checks for exact balance.
  {
    TextTable drift_tbl(
        "drifting open-loop: gradual drift within one fingerprint");
    drift_tbl.header({"case", "adaptive", "end bits/sym", "entropy",
                      "rebuilds", "applied", "hits"});
    proptest::DriftSpec spec;
    spec.batches = 40;
    const proptest::DriftSource src(spec,
                                    proptest::case_seed(0xbe4c4000ull, 0));
    PipelineConfig dcfg;
    dcfg.nbins = 64;
    dcfg.histogram = HistogramKind::kSerial;
    dcfg.codebook = CodebookKind::kSerialTree;
    dcfg.encoder = EncoderKind::kSerial;
    for (const bool adaptive : {false, true}) {
      obs::MetricsRegistry::global().clear();
      svc::ServiceConfig sc;
      sc.workers = 2;
      sc.batch_window_seconds = 0;  // one request per batch: no coalescing
      sc.adaptive.enabled = adaptive;
      sc.adaptive.window_decay = 0.5;
      sc.adaptive.min_window_symbols = 1024;
      sc.adaptive.divergence_high_bits = 0.05;
      sc.adaptive.divergence_low_bits = 0.02;
      svc::CompressionService<u16> service(sc);

      obs::Json samples = obs::Json::array();
      double end_bits = 0, end_entropy = 0;
      for (std::size_t t = 0; t < spec.batches; ++t) {
        const std::vector<u16> batch = src.batch<u16>(t);
        const std::vector<u64> hist = src.histogram(t);
        const auto res =
            service.submit(std::span<const u16>(batch), dcfg).get();
        end_bits = res.codebook->average_bits(hist);
        end_entropy = shannon_entropy(hist);
        samples.push(obs::Json::object()
                         .set("batch", static_cast<u64>(t))
                         .set("bits_per_symbol", end_bits)
                         .set("entropy_bits", end_entropy)
                         .set("cache_hit", res.cache_hit));
        if (service.adaptive()) service.adaptive()->quiesce();
      }
      service.drain();

      obs::Json rec = obs::Json::object();
      rec.set("case", "drifting_open_loop")
          .set("adaptive", adaptive)
          .set("batches", static_cast<u64>(spec.batches))
          .set("batch_symbols", static_cast<u64>(src.batch_symbols()))
          .set("end_bits_per_symbol", end_bits)
          .set("end_entropy_bits", end_entropy)
          .set("ratio_over_time", std::move(samples));
      u64 started = 0, applied = 0;
      if (service.adaptive()) {
        const auto c = service.adaptive()->counters();
        started = c.rebuilds_started;
        applied = c.rebuilds_applied;
        rec.set("rebuilds_started", c.rebuilds_started)
            .set("rebuilds_applied", c.rebuilds_applied)
            .set("rebuilds_superseded", c.rebuilds_superseded)
            .set("rebuilds_cancelled", c.rebuilds_cancelled)
            .set("rebuilds_failed", c.rebuilds_failed)
            .set("budget_deferred", c.budget_deferred)
            .set("observations", c.observations);
      }
      const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
      rec.set("cache_hits", reg.counter("svc.cache_hits"));
      drift_tbl.row({"drifting", adaptive ? "on" : "off", fmt(end_bits, 3),
                     fmt(end_entropy, 3), std::to_string(started),
                     std::to_string(applied),
                     std::to_string(reg.counter("svc.cache_hits"))});
      run.record(std::move(rec));
    }
    drift_tbl.print();
  }
  run.config().set("best_batched_cached_speedup_vs_naive", best_speedup);

  std::printf(
      "\nexpected shape: batched+cached service beats naive per-request\n"
      "calls (best measured speedup here: %.2fx) because the codebook\n"
      "build — the dominant fixed cost at 4096-symbol requests — is paid\n"
      "once per batch on a miss and not at all on a cache hit. The\n"
      "no-batch,no-cache case isolates raw service overhead (queue +\n"
      "futures + copy), which multi-worker parallelism must recover.\n",
      best_speedup);
  return run.finish();
}
