// Table III reproduction: Huffman codebook construction time breakdown on
// RTX 5000 / V100 for 1024–8192 symbols — the cuSZ serial-on-GPU baseline
// (gen codebook + canonize) vs our parallel construction (GenerateCL +
// GenerateCW), plus the measured serial CPU reference.

#include "common.hpp"
#include "core/canonical.hpp"
#include "core/par_codebook.hpp"
#include "core/sort.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"
#include "simt/coop.hpp"
#include "util/stats.hpp"

namespace parhuff {
namespace {

struct Case {
  std::string label;
  std::vector<u64> freq;
};

std::vector<Case> make_cases() {
  // Nyx-Quant's real 1024-bin histogram + DNA-k-mer-profile histograms at
  // the paper's 3/4/5-mer alphabet sizes (synthetic, exactly-n populated —
  // see DESIGN.md on the gbbct1.seq substitution).
  std::vector<Case> cases;
  const auto codes = data::generate_nyx_quant(4u << 20, 7);
  std::vector<u64> nyx(1024, 0);
  for (u16 c : codes) ++nyx[c];
  // The paper's Nyx-Quant codebook covers all 1024 bins; pad empty tails
  // with singletons so the constructed alphabet matches.
  for (u64& f : nyx) {
    if (f == 0) f = 1;
  }
  cases.push_back({"Nyx-Quant 1024", std::move(nyx)});
  cases.push_back({"3-mer 2048", data::kmer_like_histogram(2048, 1u << 24, 3)});
  cases.push_back({"4-mer 4096", data::kmer_like_histogram(4096, 1u << 24, 4)});
  cases.push_back({"5-mer 8192", data::kmer_like_histogram(8192, 1u << 24, 5)});
  return cases;
}

}  // namespace
}  // namespace parhuff

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("table3", argc, argv);
  bench::banner("TABLE III: codebook construction breakdown (ms)");

  TextTable cusz("cuSZ-style serial construction on one GPU thread (modeled)");
  cusz.header({"case", "#symbols", "serial CPU ms (measured)",
               "gen codebook TU", "gen codebook V", "canonize TU",
               "canonize V", "total TU", "total V"});
  TextTable ours("ours: parallel two-phase construction (modeled)");
  ours.header({"case", "#symbols", "GenCL TU", "GenCL V", "GenCW TU",
               "GenCW V", "total TU", "total V", "rounds", "speedup V"});

  for (auto& c : make_cases()) {
    const std::size_t n = c.freq.size();

    // Reference: measured serial CPU construction (median of 9).
    const auto reps = time_reps(9, [&] {
      Timer t;
      (void)build_codebook_serial(c.freq);
      return t.seconds();
    });
    const double cpu_ms = summarize(reps).median * 1e3;

    // cuSZ baseline: serial tree + serial canonize, each op paying lone
    // GPU-thread latency.
    SerialBuildStats st;
    const auto lens = build_lengths_pq(c.freq, &st);
    (void)canonize_from_lengths(lens);
    simt::MemTally tree_tally, canon_tally;
    tree_tally.kernel_launches = 1;
    tree_tally.serial_dependent_ops = st.dependent_ops;
    // Canonization is partially parallelized (only the RAW radix-sort
    // section is serial, ~1/3 of the op count).
    canon_tally.serial_dependent_ops = canonize_last_op_count() / 3;

    const double gb_tu = perf::modeled_ms(tree_tally, bench::rtx5000());
    const double gb_v = perf::modeled_ms(tree_tally, bench::v100());
    const double cn_tu = perf::modeled_ms(canon_tally, bench::rtx5000());
    const double cn_v = perf::modeled_ms(canon_tally, bench::v100());
    cusz.row({c.label, std::to_string(n), fmt(cpu_ms, 3), fmt(gb_tu, 3),
              fmt(gb_v, 3), fmt(cn_tu, 3), fmt(cn_v, 3),
              fmt(gb_tu + cn_tu, 3), fmt(gb_v + cn_v, 3)});

    // Ours: GenerateCL and GenerateCW with separate tallies.
    std::vector<u64> keys;
    std::vector<u32> syms;
    for (std::size_t s = 0; s < c.freq.size(); ++s) {
      if (c.freq[s]) {
        keys.push_back(c.freq[s]);
        syms.push_back(static_cast<u32>(s));
      }
    }
    radix_sort_by_key(keys, syms);
    simt::MemTally cl_tally, cw_tally;
    ParCodebookStats stats;
    std::vector<u32> cl;
    {
      simt::CooperativeGrid grid(n, &cl_tally);
      cl = generate_cl(grid, keys, &stats, &cl_tally);
    }
    {
      simt::CooperativeGrid grid(n, &cw_tally);
      (void)generate_cw(grid, cl, &stats, &cw_tally);
    }
    const double cl_tu = perf::modeled_ms(cl_tally, bench::rtx5000());
    const double cl_v = perf::modeled_ms(cl_tally, bench::v100());
    const double cw_tu = perf::modeled_ms(cw_tally, bench::rtx5000());
    const double cw_v = perf::modeled_ms(cw_tally, bench::v100());
    ours.row({c.label, std::to_string(n), fmt(cl_tu, 3), fmt(cl_v, 3),
              fmt(cw_tu, 3), fmt(cw_v, 3), fmt(cl_tu + cw_tu, 3),
              fmt(cl_v + cw_v, 3), std::to_string(stats.rounds),
              fmt((gb_v + cn_v) / (cl_v + cw_v), 1) + "x"});
    run.record(
        obs::Json::object()
            .set("case", c.label)
            .set("symbols", static_cast<u64>(n))
            .set("serial_cpu_ms", cpu_ms)
            .set("cusz", obs::Json::object()
                             .set("gen_codebook_ms_rtx5000", gb_tu)
                             .set("gen_codebook_ms_v100", gb_v)
                             .set("canonize_ms_rtx5000", cn_tu)
                             .set("canonize_ms_v100", cn_v))
            .set("ours", obs::Json::object()
                             .set("generate_cl_ms_rtx5000", cl_tu)
                             .set("generate_cl_ms_v100", cl_v)
                             .set("generate_cw_ms_rtx5000", cw_tu)
                             .set("generate_cw_ms_v100", cw_v)
                             .set("rounds", static_cast<u64>(stats.rounds)))
            .set("speedup_v100", (gb_v + cn_v) / (cl_v + cw_v))
            .set("tallies",
                 obs::Json::object()
                     .set("generate_cl", obs::to_json(cl_tally))
                     .set("generate_cw", obs::to_json(cw_tally))));
  }
  cusz.print();
  std::printf("\n");
  ours.print();

  std::printf(
      "\npaper (Table III) totals in ms, TU / V:\n"
      "  cuSZ serial: 1024: 3.416/3.804   2048: 8.623/10.044   "
      "4096: 20.667/25.347   8192: 63.201/60.541\n"
      "  ours:        1024: 0.449/0.544   2048: 0.713/0.868    "
      "4096: 1.425/1.677    8192: 5.261/5.437\n"
      "  (CPU serial reference: 0.045 / 0.208 / 0.695 / 1.806)\n"
      "expected shape: serial-on-GPU grows superlinearly and is 7-45x\n"
      "slower than our parallel construction; CPU serial beats the GPU\n"
      "below ~8192 symbols.\n");
  return run.finish();
}
