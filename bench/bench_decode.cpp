// Decoder-tier comparison across the paper's six datasets (docs/decode.md):
//   serial     — decode_stream pinned to one thread (validation baseline)
//   self-sync  — CUHD-style kernel: tentative decode + Jacobi sync passes
//   gap-array  — Rivera-style kernel driven by encoder-recorded metadata
// The streams are identical (serial encoder, no overflow groups), so the
// comparison isolates the decode algorithm. GPU columns are modeled from
// the simulator tallies on the V100 spec; host columns are measured. The
// self-sync decoder pays ~3 bit-serial walks over the payload where the
// gap array pays one, which is the whole story the table tells.
//
// Emits BENCH_decode.json (parhuff-metrics-v1): one record per dataset
// with the modeled/measured throughput of each tier and
// speedup_vs_selfsync, plus the global registry snapshot carrying the
// decode.* counters and stage timers accumulated through decode_auto.

#include "common.hpp"
#include "core/decode.hpp"
#include "core/decode_gaparray.hpp"
#include "core/decode_selfsync.hpp"
#include "core/encode_serial.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"

namespace parhuff {
namespace {

constexpr int kReps = 3;
constexpr u32 kChunkSymbols = 4096;

template <typename Sym>
void run_case(bench::Driver& run, TextTable& t, const data::DatasetInfo& info,
              const std::vector<Sym>& syms) {
  const std::size_t bytes = syms.size() * sizeof(Sym);
  const auto freq = histogram_serial<Sym>(syms, info.nbins);
  const Codebook cb = build_codebook_serial(freq);
  auto enc = encode_serial<Sym>(syms, cb, kChunkSymbols);
  annotate_gaps(enc, cb, kDefaultGapSubseqBits);
  const double meta_overhead =
      static_cast<double>(enc.gaps.size() + 2 * enc.gap_counts.size()) /
      static_cast<double>(enc.payload.size() * sizeof(word_t));

  // --- Serial tier: measured, one thread. --------------------------------
  double serial_s = 1e30;
  if (decode_stream<Sym>(enc, cb, 1) != syms) std::exit(1);
  for (int r = 0; r < kReps; ++r) {
    Timer tm;
    (void)decode_stream<Sym>(enc, cb, 1);
    serial_s = std::min(serial_s, tm.seconds());
  }

  // --- Self-sync tier: modeled from one tallied run, timed without. ------
  simt::MemTally ss_tally;
  SelfSyncStats ss_st;
  if (decode_selfsync<Sym>(enc, cb, {}, &ss_tally, &ss_st) != syms) {
    std::exit(1);
  }
  double selfsync_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    Timer tm;
    (void)decode_selfsync<Sym>(enc, cb, {});
    selfsync_s = std::min(selfsync_s, tm.seconds());
  }
  const double ss_gbps = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull,
                                               ss_tally, bench::v100());

  // --- Gap-array tier: modeled likewise; timed through decode_auto so the
  // document's registry snapshot carries the decode.* counters/stages. ----
  simt::MemTally ga_tally;
  GapArrayStats ga_st;
  if (decode_gaparray<Sym>(enc, cb, &ga_tally, &ga_st) != syms) std::exit(1);
  double gaparray_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    Timer tm;
    (void)decode_auto<Sym>(enc, cb);
    gaparray_s = std::min(gaparray_s, tm.seconds());
  }
  const double ga_gbps = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull,
                                               ga_tally, bench::v100());

  const double gb = static_cast<double>(bytes) / 1e9;
  const double speedup = ga_gbps / ss_gbps;
  t.row({info.name, fmt(gb / serial_s, 2), fmt(ss_gbps, 1),
         fmt(gb / selfsync_s, 2), fmt(ga_gbps, 1), fmt(gb / gaparray_s, 2),
         fmt(speedup, 2) + "x", fmt_pct(meta_overhead, 2)});
  run.record(
      obs::Json::object()
          .set("dataset", info.name)
          .set("input_bytes", static_cast<u64>(bytes))
          .set("serial_host_gbps", gb / serial_s)
          .set("selfsync_v100_gbps", ss_gbps)
          .set("selfsync_host_gbps", gb / selfsync_s)
          .set("selfsync_sync_passes", ss_st.sync_passes)
          .set("gaparray_v100_gbps", ga_gbps)
          .set("gaparray_host_gbps", gb / gaparray_s)
          .set("gaparray_subsequences", ga_st.subsequences)
          .set("gaparray_fallback_chunks", ga_st.fallback_chunks)
          .set("gap_metadata_overhead", meta_overhead)
          .set("speedup_vs_selfsync", speedup));
}

}  // namespace
}  // namespace parhuff

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("decode", argc, argv);
  bench::banner(
      "Decode tiers: serial vs self-sync vs gap-array (docs/decode.md)");
  run.config()
      .set("chunk_symbols", static_cast<u64>(kChunkSymbols))
      .set("gap_subseq_bits", static_cast<u64>(kDefaultGapSubseqBits))
      .set("reps", static_cast<u64>(kReps));

  TextTable t("decode throughput by tier (six paper datasets)");
  t.header({"dataset", "serial host GB/s", "self-sync V100 GB/s",
            "self-sync host GB/s", "gap-array V100 GB/s",
            "gap-array host GB/s", "gap vs self-sync", "meta overhead"});
  for (const auto& info : data::paper_datasets()) {
    const auto ds =
        data::generate(info.name, bench::scaled_bytes(info.paper_bytes), 1);
    if (ds.info.width == data::SymbolWidth::kByte) {
      run_case<u8>(run, t, ds.info, ds.bytes8);
    } else {
      run_case<u16>(run, t, ds.info, ds.syms16);
    }
  }
  t.print();
  std::printf(
      "\nThe modeled gap (one payload walk vs the self-sync decoder's\n"
      "tentative + correction + emit walks) is the Rivera et al. result;\n"
      "metadata costs ~%u bits per %u-bit subsequence on the wire.\n",
      24u, kDefaultGapSubseqBits);
  return run.finish();
}
