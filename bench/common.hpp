#pragma once
// Shared plumbing for the table/figure reproduction benches.
//
// Every bench prints (a) the paper's reference numbers and (b) this
// reproduction's numbers — host-measured where the paper measured CPUs,
// modeled through perf/ where the paper measured GPUs (the simulator's
// transaction tallies are device-independent, so one functional run prices
// both the RTX 5000 and the V100).
//
// Dataset sizes default to paper_size/24 (clamped to [2 MB, 48 MB]) so a
// full bench run finishes in minutes on a small host; set
// PARHUFF_BENCH_SCALE=1 to run at the paper's sizes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/pipeline.hpp"
#include "data/datasets.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "perf/cpu_model.hpp"
#include "perf/gpu_model.hpp"
#include "simt/spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace parhuff::bench {

/// Scale factor applied to paper dataset sizes (PARHUFF_BENCH_SCALE, default
/// 1/24).
inline double size_scale() {
  if (const char* s = std::getenv("PARHUFF_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0 / 24.0;
}

inline std::size_t scaled_bytes(std::size_t paper_bytes) {
  const double v = static_cast<double>(paper_bytes) * size_scale();
  const double clamped =
      v < 2e6 ? 2e6 : (v > 48e6 && size_scale() < 1.0 ? 48e6 : v);
  return static_cast<std::size_t>(clamped);
}

inline const simt::DeviceSpec& v100() {
  static const simt::DeviceSpec d = simt::DeviceSpec::v100();
  return d;
}
inline const simt::DeviceSpec& rtx5000() {
  static const simt::DeviceSpec d = simt::DeviceSpec::rtx5000();
  return d;
}

inline void banner(const char* what) {
  std::printf(
      "\n================================================================\n"
      "%s\n"
      "GPU columns are MODELED from simulator transaction tallies (see\n"
      "DESIGN.md); CPU columns are measured on this host and scaled via\n"
      "perf::CpuSpec where the paper used a 2x28-core Xeon 8280.\n"
      "Dataset scale: %.4f of paper sizes (PARHUFF_BENCH_SCALE to change).\n"
      "================================================================\n\n",
      what, size_scale());
}

/// Machine-readable output for a bench driver (docs/observability.md).
///
/// Construct one first thing in main(), feed it one `record()` per
/// measured case, and `return run.finish();`. Alongside the human-readable
/// tables every bench then writes `BENCH_<name>.json` — a
/// `parhuff-metrics-v1` document with the per-case records plus a snapshot
/// of the global MetricsRegistry (per-stage timers, tallies, SIMT launch
/// counters accumulated during the run).
///
/// Flags (every bench accepts them):
///   --json-out PATH   write the metrics document to PATH
///                     (default BENCH_<name>.json in the cwd)
///   --no-json         skip the metrics document
///   --trace-out PATH  record trace spans and write Chrome trace_event
///                     JSON to PATH (Perfetto / chrome://tracing)
/// PARHUFF_TRACE=1 (or =path) enables tracing without the flag.
class Driver {
 public:
  Driver(std::string name, int argc, const char* const* argv)
      : name_(std::move(name)), doc_("bench_" + name_) {
    // A flag error should read as a usage message, not std::terminate.
    try {
      const CliArgs args(argc, argv);
      json_path_ = args.get_string("json-out", "BENCH_" + name_ + ".json");
      emit_json_ = !args.get_bool("no-json", false);
      trace_path_ = args.get_string("trace-out", "");
      for (const auto& flag :
           args.unknown({"json-out", "no-json", "trace-out"})) {
        std::fprintf(stderr, "warning: unknown flag --%s (known: --json-out, "
                             "--no-json, --trace-out)\n",
                     flag.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "error: %s\nusage: bench_%s [--json-out PATH] [--no-json] "
                   "[--trace-out PATH]\n",
                   e.what(), name_.c_str());
      std::exit(2);
    }
    if (!trace_path_.empty()) obs::TraceRecorder::global().enable();
    // Per-run numbers: drop whatever generator warm-up already published.
    obs::MetricsRegistry::global().clear();
    doc_.config().set("bench", name_).set("size_scale", size_scale());
  }

  /// The document's `config` object — add bench-specific parameters.
  obs::Json& config() { return doc_.config(); }

  /// Append one per-case result object to `records`.
  void record(obs::Json rec) { doc_.add_record(std::move(rec)); }

  /// Write the metrics document (and the trace, when enabled). Returns the
  /// process exit code so main() can `return run.finish();`.
  int finish() {
    if (emit_json_) {
      doc_.write(json_path_);
      std::printf("\nmetrics: wrote %s (%zu records, schema %s)\n",
                  json_path_.c_str(), doc_.record_count(),
                  obs::kMetricsSchema);
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder::global().write(trace_path_);
      std::printf("trace: wrote %s (%zu events) — open in "
                  "https://ui.perfetto.dev\n",
                  trace_path_.c_str(),
                  obs::TraceRecorder::global().event_count());
    }
    return 0;
  }

 private:
  std::string name_;
  obs::MetricsDocument doc_;
  std::string json_path_;
  std::string trace_path_;
  bool emit_json_ = true;
};

}  // namespace parhuff::bench
