#pragma once
// Shared plumbing for the table/figure reproduction benches.
//
// Every bench prints (a) the paper's reference numbers and (b) this
// reproduction's numbers — host-measured where the paper measured CPUs,
// modeled through perf/ where the paper measured GPUs (the simulator's
// transaction tallies are device-independent, so one functional run prices
// both the RTX 5000 and the V100).
//
// Dataset sizes default to paper_size/24 (clamped to [2 MB, 48 MB]) so a
// full bench run finishes in minutes on a small host; set
// PARHUFF_BENCH_SCALE=1 to run at the paper's sizes.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.hpp"
#include "data/datasets.hpp"
#include "perf/cpu_model.hpp"
#include "perf/gpu_model.hpp"
#include "simt/spec.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace parhuff::bench {

/// Scale factor applied to paper dataset sizes (PARHUFF_BENCH_SCALE, default
/// 1/24).
inline double size_scale() {
  if (const char* s = std::getenv("PARHUFF_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 1.0 / 24.0;
}

inline std::size_t scaled_bytes(std::size_t paper_bytes) {
  const double v = static_cast<double>(paper_bytes) * size_scale();
  const double clamped =
      v < 2e6 ? 2e6 : (v > 48e6 && size_scale() < 1.0 ? 48e6 : v);
  return static_cast<std::size_t>(clamped);
}

inline const simt::DeviceSpec& v100() {
  static const simt::DeviceSpec d = simt::DeviceSpec::v100();
  return d;
}
inline const simt::DeviceSpec& rtx5000() {
  static const simt::DeviceSpec d = simt::DeviceSpec::rtx5000();
  return d;
}

inline void banner(const char* what) {
  std::printf(
      "\n================================================================\n"
      "%s\n"
      "GPU columns are MODELED from simulator transaction tallies (see\n"
      "DESIGN.md); CPU columns are measured on this host and scaled via\n"
      "perf::CpuSpec where the paper used a 2x28-core Xeon 8280.\n"
      "Dataset scale: %.4f of paper sizes (PARHUFF_BENCH_SCALE to change).\n"
      "================================================================\n\n",
      what, size_scale());
}

}  // namespace parhuff::bench
