// Ablations of the design choices DESIGN.md calls out (extensions beyond
// the paper's tables, clearly labeled):
//   A. Fixed global reduce factor (Fig. 3 rule) vs adaptive per-chunk
//      factors (§VII future work) on locally-varying data.
//   B. Cell width: the paper's uint32_t cells vs uint64_t cells.
//   C. Histogram shared-memory replication degree (Gómez-Luna's knob).
//   D. Decode throughput of the chunk-parallel decoder across chunk sizes.

#include "common.hpp"
#include "core/decode.hpp"
#include "core/decode_selfsync.hpp"
#include "core/decode_simt.hpp"
#include "core/encode_adaptive.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/entropy.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/textgen.hpp"
#include "util/rng.hpp"

namespace parhuff {
namespace {

std::vector<u16> bimodal_stream(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u16> v;
  v.reserve(n);
  while (v.size() < n) {
    const std::size_t calm = 2000 + rng.below(4000);
    for (std::size_t i = 0; i < calm && v.size() < n; ++i) {
      v.push_back(static_cast<u16>(rng.below(3)));
    }
    const std::size_t burst = 500 + rng.below(2000);
    for (std::size_t i = 0; i < burst && v.size() < n; ++i) {
      v.push_back(static_cast<u16>(3 + rng.below(1021)));
    }
  }
  return v;
}

void ablation_adaptive(bench::Driver& run) {
  const std::size_t n = 4u << 20;
  struct Input {
    const char* name;
    std::vector<u16> syms;
  };
  std::vector<Input> inputs;
  inputs.push_back({"nyx-quant (uniform stats)", data::generate_nyx_quant(n, 1)});
  inputs.push_back({"bimodal calm/burst", bimodal_stream(n, 2)});

  TextTable t("A. fixed (Fig. 3) vs adaptive per-chunk reduce factor");
  t.header({"input", "scheme", "breaking", "compressed KB",
            "modeled V100 GB/s"});
  for (auto& in : inputs) {
    const auto freq = histogram_serial<u16>(in.syms, 1024);
    const Codebook cb = build_codebook_serial(freq);
    const double avg = average_bitwidth(cb, freq);
    const std::size_t bytes = in.syms.size() * 2;
    {
      simt::MemTally tally;
      ReduceShuffleStats st;
      const auto enc = encode_reduceshuffle_simt<u16>(
          in.syms, cb,
          ReduceShuffleConfig{10, decide_reduce_factor(avg, 10)}, &tally,
          &st);
      if (decode_stream<u16>(enc, cb, 0) != in.syms) std::exit(1);
      const double g = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull,
                                             tally, bench::v100());
      t.row({in.name, "fixed r", fmt_pct(enc.breaking_fraction(), 4),
             fmt(static_cast<double>(enc.stored_bytes()) / 1e3, 0),
             fmt(g, 1)});
      run.record(obs::Json::object()
                     .set("ablation", "adaptive_reduce")
                     .set("input", in.name)
                     .set("scheme", "fixed_r")
                     .set("breaking_fraction", enc.breaking_fraction())
                     .set("compressed_bytes",
                          static_cast<u64>(enc.stored_bytes()))
                     .set("v100_gbps", g));
    }
    {
      simt::MemTally tally;
      AdaptiveStats st;
      const auto enc =
          encode_adaptive_simt<u16, 32>(in.syms, cb, {}, &tally, &st);
      if (decode_stream<u16>(enc, cb, 0) != in.syms) std::exit(1);
      const double g = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull,
                                             tally, bench::v100());
      t.row({in.name, "adaptive r", fmt_pct(enc.breaking_fraction(), 4),
             fmt(static_cast<double>(enc.stored_bytes()) / 1e3, 0),
             fmt(g, 1)});
      run.record(obs::Json::object()
                     .set("ablation", "adaptive_reduce")
                     .set("input", in.name)
                     .set("scheme", "adaptive_r")
                     .set("breaking_fraction", enc.breaking_fraction())
                     .set("compressed_bytes",
                          static_cast<u64>(enc.stored_bytes()))
                     .set("v100_gbps", g));
    }
  }
  t.print();
  std::printf("\n");
}

void ablation_width(bench::Driver& run) {
  // Nyx-Quant at an aggressive pinned r = 5 (32 symbols/group, expected
  // ~33 merged bits): right at the uint32 cell boundary, where the wider
  // cell shows its value.
  const auto syms = data::generate_nyx_quant(4u << 20, 7);
  const auto freq = histogram_serial<u16>(syms, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const std::size_t bytes = syms.size() * 2;

  TextTable t("B. merge-cell width (pinned r = 5 on Nyx-Quant)");
  t.header({"width", "breaking", "payload KB", "modeled V100 GB/s"});
  AdaptiveConfig pinned;
  pinned.min_reduce = pinned.max_reduce = 5;
  {
    simt::MemTally tally;
    AdaptiveStats st;
    const auto enc =
        encode_adaptive_simt<u16, 32>(syms, cb, pinned, &tally, &st);
    if (decode_stream<u16>(enc, cb, 0) != syms) std::exit(1);
    const double g = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull, tally,
                                           bench::v100());
    t.row({"uint32 (paper)", fmt_pct(enc.breaking_fraction(), 4),
           fmt(static_cast<double>(enc.stored_bytes()) / 1e3, 0), fmt(g, 1)});
    run.record(obs::Json::object()
                   .set("ablation", "cell_width")
                   .set("width_bits", 32)
                   .set("breaking_fraction", enc.breaking_fraction())
                   .set("compressed_bytes", static_cast<u64>(enc.stored_bytes()))
                   .set("v100_gbps", g));
  }
  {
    simt::MemTally tally;
    AdaptiveStats st;
    const auto enc =
        encode_adaptive_simt<u16, 64>(syms, cb, pinned, &tally, &st);
    if (decode_stream<u16>(enc, cb, 0) != syms) std::exit(1);
    const double g = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull, tally,
                                           bench::v100());
    t.row({"uint64", fmt_pct(enc.breaking_fraction(), 4),
           fmt(static_cast<double>(enc.stored_bytes()) / 1e3, 0), fmt(g, 1)});
    run.record(obs::Json::object()
                   .set("ablation", "cell_width")
                   .set("width_bits", 64)
                   .set("breaking_fraction", enc.breaking_fraction())
                   .set("compressed_bytes", static_cast<u64>(enc.stored_bytes()))
                   .set("v100_gbps", g));
  }
  t.print();
  std::printf("\n");
}

void ablation_histogram(bench::Driver& run) {
  const auto text = data::generate_text(8u << 20, 3);
  TextTable t("C. histogram shared-memory replication degree");
  t.header({"budget KiB", "replicas", "modeled V100 GB/s",
            "shared atomic conflicts / sym"});
  for (const std::size_t kib : {1, 2, 4, 8, 48}) {
    SimtHistogramConfig cfg;
    cfg.shared_budget_bytes = kib * 1024;
    simt::MemTally tally;
    const auto h = histogram_simt<u8>(text, 256, &tally, cfg);
    u64 total = 0;
    for (u64 f : h) total += f;
    if (total != text.size()) std::exit(1);
    const std::size_t replicas =
        std::min<std::size_t>(8, cfg.shared_budget_bytes / (256 * 4));
    const double g = perf::modeled_gbps_at(text.size(), 95 * 1000 * 1000ull,
                                           tally, bench::v100());
    const double conflicts = static_cast<double>(tally.shared_atomic_conflicts) /
                             static_cast<double>(text.size());
    t.row({std::to_string(kib), std::to_string(replicas), fmt(g, 1),
           fmt(conflicts, 3)});
    run.record(obs::Json::object()
                   .set("ablation", "histogram_replication")
                   .set("shared_budget_kib", static_cast<u64>(kib))
                   .set("replicas", static_cast<u64>(replicas))
                   .set("v100_gbps", g)
                   .set("shared_atomic_conflicts_per_symbol", conflicts));
  }
  t.print();
  std::printf("\n");
}

void ablation_decode(bench::Driver& run) {
  const auto syms = data::generate_nyx_quant(4u << 20, 9);
  const auto freq = histogram_serial<u16>(syms, 1024);
  const Codebook cb = build_codebook_serial(freq);
  const std::size_t bytes = syms.size() * 2;

  TextTable t("D. decode strategies (extension; not a paper table)");
  t.header({"decoder", "chunk symbols", "modeled V100 GB/s", "host ms",
            "notes"});
  for (const u32 chunk_mag : {10u, 12u}) {
    const auto enc = encode_reduceshuffle_simt<u16>(
        syms, cb, ReduceShuffleConfig{chunk_mag, 3}, nullptr, nullptr);
    {
      simt::MemTally tally;
      Timer timer;
      const auto back = decode_simt<u16>(enc, cb, &tally);
      const double host_ms = timer.millis();
      if (back != syms) std::exit(1);
      const double g = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull,
                                             tally, bench::v100());
      t.row({"thread-per-chunk", std::to_string(1u << chunk_mag), fmt(g, 1),
             fmt(host_ms, 1), "-"});
      run.record(obs::Json::object()
                     .set("ablation", "decode")
                     .set("decoder", "thread_per_chunk")
                     .set("chunk_symbols", u64{1} << chunk_mag)
                     .set("v100_gbps", g)
                     .set("host_ms", host_ms));
    }
    {
      simt::MemTally tally;
      SelfSyncStats st;
      Timer timer;
      const auto back = decode_selfsync<u16>(enc, cb, {}, &tally, &st);
      const double host_ms = timer.millis();
      if (back != syms) std::exit(1);
      const double g = perf::modeled_gbps_at(bytes, 256 * 1000 * 1000ull,
                                             tally, bench::v100());
      const double passes = static_cast<double>(st.sync_passes) /
                            static_cast<double>(enc.chunks());
      t.row({"self-sync (CUHD-style)", std::to_string(1u << chunk_mag),
             fmt(g, 1), fmt(host_ms, 1), fmt(passes, 1) + " passes/chunk"});
      run.record(obs::Json::object()
                     .set("ablation", "decode")
                     .set("decoder", "self_sync")
                     .set("chunk_symbols", u64{1} << chunk_mag)
                     .set("v100_gbps", g)
                     .set("host_ms", host_ms)
                     .set("sync_passes_per_chunk", passes));
    }
  }
  t.print();
}

}  // namespace
}  // namespace parhuff

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("ablation", argc, argv);
  bench::banner("ABLATIONS: adaptive reduce factor, cell width, histogram "
                "replication, decode");
  ablation_adaptive(run);
  ablation_width(run);
  ablation_histogram(run);
  ablation_decode(run);
  return run.finish();
}
