// Table V reproduction: overall Huffman performance breakdown on the six
// datasets — avg bits, breaking %, #reduce, histogram GB/s, codebook ms,
// encode GB/s, overall GB/s — for the cuSZ-style baseline and for our
// encoder, modeled on RTX 5000 (TU) and V100 (V).

#include <optional>
#include <vector>

#include "common.hpp"
#include "core/decode.hpp"
#include "core/encode_simt.hpp"
#include "core/entropy.hpp"
#include "simt/coop.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"

namespace parhuff {
namespace {

struct Row {
  std::string name;
  obs::Json record = obs::Json::object();  ///< machine-readable twin
  std::size_t bytes = 0;
  double avg_bits = 0;
  double breaking = 0;
  u32 reduce = 0;
  // Modeled numbers, [0]=TU, [1]=V.
  double hist_gbps[2] = {0, 0};
  double cb_ms[2] = {0, 0};
  double enc_gbps[2] = {0, 0};
  double overall_gbps[2] = {0, 0};
};

template <typename Sym>
Row run_dataset(const data::DatasetInfo& info, std::span<const Sym> syms,
                bool ours) {
  Row row;
  row.name = info.name;
  row.bytes = syms.size() * sizeof(Sym);
  const double scale = static_cast<double>(info.paper_bytes) /
                       static_cast<double>(row.bytes);
  const simt::DeviceSpec* devs[2] = {&bench::rtx5000(), &bench::v100()};

  // Histogram (same kernel in both systems).
  simt::MemTally hist_tally;
  const auto freq = histogram_simt<Sym>(syms, info.nbins, &hist_tally);

  // Codebook: cuSZ = serial builder executed by one GPU thread;
  // ours = Algorithm 1 on the cooperative grid.
  simt::MemTally cb_tally;
  Codebook cb;
  if (ours) {
    simt::CooperativeGrid grid(info.nbins, &cb_tally);
    cb = build_codebook_parallel(grid, freq, nullptr, &cb_tally);
  } else {
    SerialBuildStats st;
    cb = canonize_from_lengths(build_lengths_pq(freq, &st));
    cb_tally.kernel_launches = 1;
    cb_tally.serial_dependent_ops =
        st.dependent_ops + canonize_last_op_count() / 3;
  }
  row.avg_bits = cb.average_bits(freq);

  // Encoder.
  simt::MemTally enc_tally;
  EncodedStream enc;
  if (ours) {
    ReduceShuffleConfig cfg;
    cfg.magnitude = 10;
    cfg.reduce_factor = decide_reduce_factor(row.avg_bits, cfg.magnitude);
    ReduceShuffleStats stats;
    enc = encode_reduceshuffle_simt<Sym>(syms, cb, cfg, &enc_tally, &stats);
    row.reduce = cfg.reduce_factor;
    row.breaking = enc.breaking_fraction();
  } else {
    enc = encode_coarse_simt<Sym>(syms, cb, 1024, &enc_tally);
  }
  // Sanity: the stream must decode (kept on to guarantee the numbers come
  // from a correct encoder).
  const auto back = decode_stream<Sym>(enc, cb, 0);
  if (back.size() != syms.size() ||
      !std::equal(back.begin(), back.end(), syms.begin())) {
    std::fprintf(stderr, "FATAL: %s round-trip failed\n", info.name.c_str());
    std::exit(1);
  }

  obs::Json modeled = obs::Json::object();
  for (int d = 0; d < 2; ++d) {
    row.hist_gbps[d] =
        perf::modeled_gbps_at(row.bytes, info.paper_bytes, hist_tally,
                              *devs[d]);
    row.cb_ms[d] = perf::modeled_ms(cb_tally, *devs[d]);
    row.enc_gbps[d] = perf::modeled_gbps_at(row.bytes, info.paper_bytes,
                                            enc_tally, *devs[d]);
    const double total_s =
        perf::model_time_scaled(hist_tally, *devs[d], scale).total() +
        perf::model_time(cb_tally, *devs[d]).total() +
        perf::model_time_scaled(enc_tally, *devs[d], scale).total();
    row.overall_gbps[d] =
        static_cast<double>(info.paper_bytes) / 1e9 / total_s;
    modeled.set(devs[d]->name,
                obs::Json::object()
                    .set("histogram_gbps", row.hist_gbps[d])
                    .set("codebook_ms", row.cb_ms[d])
                    .set("encode_gbps", row.enc_gbps[d])
                    .set("overall_gbps", row.overall_gbps[d])
                    .set("encode_breakdown",
                         obs::to_json(perf::model_time(enc_tally, *devs[d]))));
  }
  row.record = obs::Json::object()
                   .set("dataset", row.name)
                   .set("system", ours ? "ours" : "cusz")
                   .set("input_bytes", static_cast<u64>(row.bytes))
                   .set("paper_bytes", static_cast<u64>(info.paper_bytes))
                   .set("avg_bits", row.avg_bits)
                   .set("breaking_fraction", row.breaking)
                   .set("reduce_factor", static_cast<u64>(row.reduce))
                   .set("tallies", obs::Json::object()
                                       .set("histogram", obs::to_json(hist_tally))
                                       .set("codebook", obs::to_json(cb_tally))
                                       .set("encode", obs::to_json(enc_tally)))
                   .set("modeled", std::move(modeled));
  return row;
}

void print_block(const char* title, const std::vector<Row>& rows) {
  TextTable t(title);
  t.header({"dataset", "size", "avg bits", "breaking", "#reduce", "hist TU",
            "hist V", "codebook TU ms", "codebook V ms", "enc TU", "enc V",
            "overall TU", "overall V"});
  for (const auto& r : rows) {
    t.row({r.name, fmt_bytes(r.bytes), fmt(r.avg_bits, 4),
           r.reduce ? fmt_pct(r.breaking, 6) : "-",
           r.reduce ? std::to_string(r.reduce) + " (" +
                          std::to_string(1u << r.reduce) + "x)"
                    : "-",
           fmt(r.hist_gbps[0], 1), fmt(r.hist_gbps[1], 1), fmt(r.cb_ms[0], 3),
           fmt(r.cb_ms[1], 3), fmt(r.enc_gbps[0], 1), fmt(r.enc_gbps[1], 1),
           fmt(r.overall_gbps[0], 1), fmt(r.overall_gbps[1], 1)});
  }
  t.print();
  std::printf("\n");
}

}  // namespace
}  // namespace parhuff

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("table5", argc, argv);
  bench::banner(
      "TABLE V: overall Huffman performance breakdown (cuSZ baseline vs "
      "ours)");

  std::vector<Row> cusz_rows, ours_rows;
  for (const auto& info : data::paper_datasets()) {
    const std::size_t bytes = bench::scaled_bytes(info.paper_bytes);
    const auto ds = data::generate(info.name, bytes, 31);
    std::printf("  running %-10s (%s)...\n", info.name.c_str(),
                fmt_bytes(ds.input_bytes()).c_str());
    if (info.width == data::SymbolWidth::kByte) {
      cusz_rows.push_back(run_dataset<u8>(info, ds.bytes8, false));
      ours_rows.push_back(run_dataset<u8>(info, ds.bytes8, true));
    } else {
      cusz_rows.push_back(run_dataset<u16>(info, ds.syms16, false));
      ours_rows.push_back(run_dataset<u16>(info, ds.syms16, true));
    }
  }
  std::printf("\n");
  print_block("cuSZ-style coarse-grained encoder (baseline)", cusz_rows);
  print_block("Ours (reduce/shuffle-merge encoder, parallel codebook)",
              ours_rows);

  // Paper-vs-reproduction comparison on the headline column.
  TextTable cmp("encode GB/s on V100: paper vs modeled reproduction");
  cmp.header({"dataset", "paper cuSZ", "repro cuSZ", "paper ours",
              "repro ours", "paper speedup", "repro speedup"});
  const auto& reg = data::paper_datasets();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    const double paper_speedup =
        reg[i].paper_encode_v100 / reg[i].paper_cusz_encode_v100;
    const double repro_speedup =
        ours_rows[i].enc_gbps[1] / cusz_rows[i].enc_gbps[1];
    cmp.row({reg[i].name, fmt(reg[i].paper_cusz_encode_v100, 1),
             fmt(cusz_rows[i].enc_gbps[1], 1),
             fmt(reg[i].paper_encode_v100, 1), fmt(ours_rows[i].enc_gbps[1], 1),
             fmt(paper_speedup, 2) + "x", fmt(repro_speedup, 2) + "x"});
  }
  cmp.print();

  for (const auto* rows : {&cusz_rows, &ours_rows}) {
    for (const Row& r : *rows) run.record(r.record);
  }
  return run.finish();
}
