// Table I reproduction: the parallelism taxonomy of every kernel in the
// pipeline. Unlike the other tables this one is descriptive, so instead of
// timing anything we *check* each row against the implementation: each
// kernel is run once on a probe workload and its tally must exhibit the
// properties the taxonomy claims (e.g. the privatized histogram uses
// atomics and block sync; reduce-merge is block-synchronized and
// reduction-shaped; canonization's RAW section is sequential).

#include "common.hpp"
#include "core/canonical.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_simt.hpp"
#include "core/histogram.hpp"
#include "core/par_codebook.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "simt/coop.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("table1", argc, argv);
  bench::banner("TABLE I: parallelism per sub-procedure (verified against "
                "kernel tallies)");

  const auto codes = data::generate_nyx_quant(1u << 20, 3);

  TextTable t("kernel taxonomy");
  t.header({"kernel", "granularity", "data-thread", "mechanism", "boundary",
            "verified"});
  const auto note = [&run](const char* kernel, bool ok) {
    run.record(obs::Json::object().set("kernel", kernel).set("verified", ok));
  };

  // Histogram: fine-grained, many-to-one, atomic write + reduction,
  // block sync.
  {
    simt::MemTally tally;
    (void)histogram_simt<u16>(codes, 1024, &tally);
    const bool ok = tally.shared_atomics > 0 && tally.global_atomics > 0 &&
                    tally.block_syncs > 0;
    t.row({"histogram (block+grid reduce)", "fine-grained", "many-to-one",
           "atomic write + reduction", "sync block", ok ? "yes" : "NO"});
    note("histogram", ok);
  }

  const auto freq = histogram_serial<u16>(codes, 1024);

  // Codebook: GenerateCL fine+coarse (merge partitions), GenerateCW fine,
  // both under one cooperative launch (grid sync).
  {
    simt::MemTally tally;
    ParCodebookStats stats;
    simt::CooperativeGrid grid(1024, &tally);
    const Codebook cb = build_codebook_parallel(grid, freq, &stats, &tally);
    const bool ok = tally.kernel_launches == 1 && tally.grid_syncs > 0 &&
                    stats.rounds > 0 && cb.validate().empty();
    t.row({"build codebook: GenerateCL", "coarse+fine", "one-to-one",
           "ParMerge (merge path)", "sync grid", ok ? "yes" : "NO"});
    t.row({"build codebook: GenerateCW", "fine-grained", "one-to-one",
           "level scan + assign", "sync grid", ok ? "yes" : "NO"});
    note("codebook", ok);
  }

  // Canonize: serial RAW sections (the paper's partially-parallel kernel);
  // our counted serial ops stand in for them.
  {
    const auto lens = build_lengths_twoqueue(freq);
    (void)canonize_from_lengths(lens);
    const bool ok = canonize_last_op_count() > 0;
    t.row({"canonize (RAW sections)", "sequential", "many-to-one",
           "counting sort", "sync grid", ok ? "yes" : "NO"});
    note("canonize", ok);
  }

  const Codebook cb = build_codebook_serial(freq);

  // Reduce-merge: fine-grained reduction with block sync; shuffle-merge:
  // one-to-one batched moves; blockwise length + prefix sum; coalescing
  // copy with device sync (second launch).
  {
    simt::MemTally tally;
    ReduceShuffleStats stats;
    (void)encode_reduceshuffle_simt<u16>(codes, cb,
                                         ReduceShuffleConfig{10, 3}, &tally,
                                         &stats);
    const bool ok = tally.block_syncs > 0 && tally.kernel_launches == 2 &&
                    stats.reduce_iterations == 3 &&
                    stats.shuffle_iterations == 7;
    t.row({"Huffman enc: REDUCE-merge", "coarse+fine", "many-to-one",
           "reduction", "sync block", ok ? "yes" : "NO"});
    t.row({"Huffman enc: SHUFFLE-merge", "coarse+fine", "one-to-one",
           "two-step batch move", "sync device", ok ? "yes" : "NO"});
    t.row({"get blockwise code len", "coarse+fine", "one-to-one",
           "prefix sum", "sync grid", ok ? "yes" : "NO"});
    t.row({"coalescing copy", "coarse+fine", "one-to-one", "copy",
           "sync device", ok ? "yes" : "NO"});
    note("reduce_shuffle_encode", ok);
  }

  // Prefix-sum baseline for contrast: atomics + scan.
  {
    simt::MemTally tally;
    (void)encode_prefixsum_simt<u16>(codes, cb, 1024, &tally);
    const bool ok = tally.global_atomics > 0;
    t.row({"(baseline) prefix-sum scatter", "fine-grained", "one-to-one",
           "prefix sum + atomic write", "sync block", ok ? "yes" : "NO"});
    note("prefixsum_baseline", ok);
  }

  t.print();
  return run.finish();
}
