// Table VI reproduction: the multithreaded CPU Huffman encoder on
// Nyx-Quant — histogram GB/s, codebook ms, encode GB/s, parallel
// efficiency, and overall GB/s for 1–64 cores, with the GPU (modeled TU/V)
// columns alongside.
//
// Host measurements calibrate single-thread throughput; the 2x28-core Xeon
// 8280 scaling comes from perf::CpuSpec (see DESIGN.md).

#include "common.hpp"
#include "core/decode.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_serial.hpp"
#include "core/histogram.hpp"
#include "simt/coop.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("table6", argc, argv);
  bench::banner("TABLE VI: multithreaded CPU encoder on Nyx-Quant");

  const std::size_t bytes = bench::scaled_bytes(256 * 1000 * 1000ull);
  const auto codes = data::generate_nyx_quant(bytes / sizeof(u16), 6);
  const std::size_t in_bytes = codes.size() * sizeof(u16);
  std::printf("input: %s of quantization codes\n\n",
              fmt_bytes(in_bytes).c_str());

  // --- Measured single-thread throughputs on this host. -------------------
  const double hist_1t_gbps = [&] {
    auto reps = time_reps(3, [&] {
      Timer t;
      (void)histogram_openmp<u16>(codes, 1024, 1);
      return t.seconds();
    });
    return gbps(in_bytes, summarize(reps).median);
  }();
  auto freq = histogram_serial<u16>(codes, 1024);
  // Pad to a full 1024-symbol codebook as in the paper's Nyx-Quant setup.
  for (u64& f : freq) {
    if (f == 0) f = 1;
  }
  const Codebook cb = build_codebook_serial(freq);
  const double cb_ms = [&] {
    auto reps = time_reps(7, [&] {
      Timer t;
      (void)build_codebook_serial(freq);
      return t.seconds();
    });
    return summarize(reps).median * 1e3;
  }();
  const double enc_1t_gbps = [&] {
    auto reps = time_reps(3, [&] {
      Timer t;
      (void)encode_openmp<u16>(codes, cb, 1024, 1);
      return t.seconds();
    });
    return gbps(in_bytes, summarize(reps).median);
  }();
  // Verify correctness once.
  if (decode_stream<u16>(encode_openmp<u16>(codes, cb, 1024, 2), cb, 0) !=
      codes) {
    std::fprintf(stderr, "FATAL: encoder round trip failed\n");
    return 1;
  }

  std::printf("host single-thread: hist %.2f GB/s, codebook %.3f ms, "
              "encode %.2f GB/s\n",
              hist_1t_gbps, cb_ms, enc_1t_gbps);
  const double host2_hist = [&] {
    auto reps = time_reps(3, [&] {
      Timer t;
      (void)histogram_openmp<u16>(codes, 1024, 2);
      return t.seconds();
    });
    return gbps(in_bytes, summarize(reps).median);
  }();
  const double host2_enc = [&] {
    auto reps = time_reps(3, [&] {
      Timer t;
      (void)encode_openmp<u16>(codes, cb, 1024, 2);
      return t.seconds();
    });
    return gbps(in_bytes, summarize(reps).median);
  }();
  std::printf("host 2-thread (measured): hist %.2f GB/s, encode %.2f GB/s\n\n",
              host2_hist, host2_enc);

  // --- Scaled to the paper's Xeon testbed. --------------------------------
  const perf::CpuSpec cpu;
  // Histogramming saturates each socket's effective bandwidth early (reads
  // plus table read-modify-writes): the paper measures ~63 GB/s at 32
  // cores. Model it with a tighter per-socket roofline.
  perf::CpuSpec hist_cpu = cpu;
  hist_cpu.per_socket_bw_gbps = 32.0;
  const int cores[] = {1, 2, 4, 8, 16, 32, 56, 64};
  TextTable t("modeled 2x28-core Xeon 8280 scaling + modeled GPUs");
  t.header({"metric", "1", "2", "4", "8", "16", "32", "56", "64", "TU", "V"});

  // GPU columns from the simulated pipeline.
  simt::MemTally hist_tally, enc_tally;
  (void)histogram_simt<u16>(codes, 1024, &hist_tally);
  ReduceShuffleStats stats;
  (void)encode_reduceshuffle_simt<u16>(codes, cb,
                                       ReduceShuffleConfig{10, 3}, &enc_tally,
                                       &stats);
  simt::MemTally cb_tally;
  {
    simt::CooperativeGrid grid(1024, &cb_tally);
    (void)build_codebook_parallel(grid, freq, nullptr, &cb_tally);
  }

  std::vector<std::string> hist_row = {"hist (GB/s)"};
  std::vector<std::string> enc_row = {"encode (GB/s)"};
  std::vector<std::string> eff_row = {"par. efficiency"};
  std::vector<std::string> overall_row = {"overall (GB/s)"};
  for (int p : cores) {
    const double h = perf::scaled_throughput_gbps(hist_1t_gbps, p, hist_cpu);
    const double e = perf::scaled_throughput_gbps(enc_1t_gbps, p, cpu);
    hist_row.push_back(fmt(h, 2));
    enc_row.push_back(fmt(e, 2));
    eff_row.push_back(fmt(perf::parallel_efficiency(enc_1t_gbps, p, cpu), 2));
    const double total_s = static_cast<double>(in_bytes) / 1e9 / h +
                           cb_ms / 1e3 +
                           static_cast<double>(in_bytes) / 1e9 / e;
    overall_row.push_back(
        fmt(static_cast<double>(in_bytes) / 1e9 / total_s, 2));
    run.record(obs::Json::object()
                   .set("system", "cpu_xeon8280")
                   .set("cores", p)
                   .set("hist_gbps", h)
                   .set("encode_gbps", e)
                   .set("codebook_ms", cb_ms)
                   .set("parallel_efficiency",
                        perf::parallel_efficiency(enc_1t_gbps, p, cpu))
                   .set("overall_gbps",
                        static_cast<double>(in_bytes) / 1e9 / total_s));
  }
  const std::size_t paper_bytes = 256 * 1000 * 1000ull;
  for (const auto* dev : {&bench::rtx5000(), &bench::v100()}) {
    const double h = perf::modeled_gbps_at(in_bytes, paper_bytes, hist_tally,
                                           *dev);
    const double e = perf::modeled_gbps_at(in_bytes, paper_bytes, enc_tally,
                                           *dev);
    const double c = perf::modeled_ms(cb_tally, *dev);
    hist_row.push_back(fmt(h, 1));
    enc_row.push_back(fmt(e, 1));
    eff_row.push_back("-");
    const double total_s = static_cast<double>(paper_bytes) / 1e9 / h +
                           c / 1e3 +
                           static_cast<double>(paper_bytes) / 1e9 / e;
    overall_row.push_back(
        fmt(static_cast<double>(paper_bytes) / 1e9 / total_s, 2));
    run.record(obs::Json::object()
                   .set("system", std::string("gpu_") + dev->name)
                   .set("hist_gbps", h)
                   .set("encode_gbps", e)
                   .set("codebook_ms", c)
                   .set("overall_gbps",
                        static_cast<double>(paper_bytes) / 1e9 / total_s));
  }
  t.row(hist_row);
  t.row({"codebook (ms)", fmt(cb_ms, 2), fmt(cb_ms, 2), fmt(cb_ms, 2),
         fmt(cb_ms, 2), fmt(cb_ms, 2), fmt(cb_ms, 2), fmt(cb_ms, 2),
         fmt(cb_ms, 2), fmt(perf::modeled_ms(cb_tally, bench::rtx5000()), 2),
         fmt(perf::modeled_ms(cb_tally, bench::v100()), 2)});
  t.row(enc_row);
  t.row(eff_row);
  t.row(overall_row);
  t.print();

  std::printf(
      "\npaper (Table VI): encode 1.22 GB/s @1 core scaling to 55.71 @56\n"
      "(efficiency 0.81), collapsing to 29.33 @64; overall 29.22 GB/s on\n"
      "56 cores vs 96.01 modeled V100 — a ~3.3x GPU advantage. Expected\n"
      "shape here: near-linear scaling to 32 cores, saturation at 56,\n"
      "collapse at 64, and V100 overall ~3-4x the 56-core CPU.\n");
  return run.finish();
}
