// Reproduction of the paper's in-text quantitative claims:
//   §II-C : a naive serial Huffman-tree build on one V100 thread takes
//           ~144 ms at 8192 symbols, capping 1 GB compression below
//           10 GB/s.
//   §III-B: the prefix-sum encoder reaches only ~37 GB/s on V100 at
//           1.027 avg bits; coarse-grained cuSZ reaches ~30 GB/s.
//   §IV-B2: canonizing a 1024-codeword codebook costs ~200 us on V100.

#include "common.hpp"
#include "core/canonical.hpp"
#include "core/decode.hpp"
#include "core/encode_reduceshuffle.hpp"
#include "core/encode_simt.hpp"
#include "core/histogram.hpp"
#include "core/tree.hpp"
#include "data/quant.hpp"
#include "data/synth_hist.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  bench::Driver run("claims", argc, argv);
  bench::banner("IN-TEXT CLAIMS: serial-tree-on-GPU, prefix-sum ceiling, "
                "canonization cost");

  TextTable t("claims");
  t.header({"claim", "paper", "reproduction (modeled V100)"});

  // --- Claim 1: naive serial tree on the GPU, 8192 symbols. ---------------
  {
    const auto freq = data::kmer_like_histogram(8192, 1u << 24, 5);
    SerialBuildStats st;
    (void)build_lengths_pq(freq, &st);
    simt::MemTally tally;
    tally.kernel_launches = 1;
    // The naive builder allocates and chases tree/heap nodes scattered in
    // global memory: each logical step is ~3 dependent uncached accesses,
    // unlike the flat-array builders the other tables model.
    tally.serial_dependent_ops = st.dependent_ops * 3;
    const double ms = perf::modeled_ms(tally, bench::v100());
    t.row({"serial codebook build @8192 syms", "144 ms",
           fmt(ms, 1) + " ms"});
    run.record(obs::Json::object()
                   .set("claim", "serial_tree_build_8192")
                   .set("paper", "144 ms")
                   .set("modeled_v100_ms", ms));
  }

  // --- Claim 2: encoder ceilings at 1.027 avg bits. ------------------------
  {
    const std::size_t bytes = bench::scaled_bytes(256 * 1000 * 1000ull);
    const auto codes = data::generate_nyx_quant(bytes / 2, 1);
    const auto freq = histogram_serial<u16>(codes, 1024);
    const Codebook cb = build_codebook_serial(freq);
    const std::size_t in_bytes = codes.size() * 2;

    simt::MemTally ps, coarse, rs;
    const auto e1 = encode_prefixsum_simt<u16>(codes, cb, 1024, &ps);
    const auto e2 = encode_coarse_simt<u16>(codes, cb, 1024, &coarse);
    ReduceShuffleStats stats;
    const auto e3 = encode_reduceshuffle_simt<u16>(
        codes, cb, ReduceShuffleConfig{10, 3}, &rs, &stats);
    if (decode_stream<u16>(e1, cb, 0) != codes ||
        decode_stream<u16>(e2, cb, 0) != codes ||
        decode_stream<u16>(e3, cb, 0) != codes) {
      std::fprintf(stderr, "FATAL: encoder round trip failed\n");
      return 1;
    }
    const double ps_g = perf::modeled_gbps_at(in_bytes, 256 * 1000 * 1000ull,
                                              ps, bench::v100());
    const double coarse_g = perf::modeled_gbps_at(
        in_bytes, 256 * 1000 * 1000ull, coarse, bench::v100());
    const double rs_g = perf::modeled_gbps_at(in_bytes, 256 * 1000 * 1000ull,
                                              rs, bench::v100());
    t.row({"prefix-sum encoder @1.03 avg bits", "~37 GB/s",
           fmt(ps_g, 1) + " GB/s"});
    t.row({"coarse (cuSZ) encoder", "~30 GB/s", fmt(coarse_g, 1) + " GB/s"});
    t.row({"ours (reduce/shuffle)", "314.6 GB/s", fmt(rs_g, 1) + " GB/s"});
    run.record(obs::Json::object()
                   .set("claim", "encoder_ceilings")
                   .set("prefixsum_v100_gbps", ps_g)
                   .set("coarse_v100_gbps", coarse_g)
                   .set("reduceshuffle_v100_gbps", rs_g));
  }

  // --- Claim 3: canonization cost at 1024 codewords. -----------------------
  {
    const auto codes = data::generate_nyx_quant(1u << 20, 2);
    const auto freq = histogram_serial<u16>(codes, 1024);
    const auto lens = build_lengths_twoqueue(freq);
    (void)canonize_from_lengths(lens);
    simt::MemTally tally;
    // The paper's canonization kernel is partially parallel; only the RAW
    // radix-sort section (~1/3 of the ops) pays lone-thread latency.
    tally.serial_dependent_ops = canonize_last_op_count() / 3;
    tally.kernel_launches = 1;
    const double us = perf::modeled_ms(tally, bench::v100()) * 1e3;
    t.row({"canonize 1024-codeword codebook", "~200 us", fmt(us, 0) + " us"});
    run.record(obs::Json::object()
                   .set("claim", "canonize_1024")
                   .set("paper", "~200 us")
                   .set("modeled_v100_us", us));
  }

  t.print();
  std::printf(
      "\nexpected shape: the serial GPU build is in the hundred-ms class —\n"
      "orders of magnitude above the parallel construction (Table III);\n"
      "both prior encoders are stuck in the 25-45 GB/s band on a 900 GB/s\n"
      "part while the reduce/shuffle encoder clears 200+ GB/s.\n");
  return run.finish();
}
