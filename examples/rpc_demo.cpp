// RPC demo: the cross-process front door, exercised end to end in one
// process. Starts an RpcServer on a unix-domain socket, dials it with
// RpcClient, and walks the four protocol verbs: a compress/decompress
// round trip, a deadline-bounded request, a cancel racing a large
// request, and a stats document fetch (docs/rpc.md).
//
// Run: ./rpc_demo

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include <unistd.h>

#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/transport.hpp"
#include "svc/deadline.hpp"
#include "util/rng.hpp"

namespace {

using namespace parhuff;

std::vector<u8> skewed_bytes(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  std::vector<u8> v(n);
  for (auto& s : v) s = static_cast<u8>(rng.below(97));
  return v;
}

}  // namespace

int main() {
  const std::string path =
      "/tmp/parhuff_rpc_demo_" + std::to_string(::getpid()) + ".sock";
  rpc::RpcServer server(rpc::listen_unix(path), rpc::ServerConfig{});
  rpc::RpcClient cli([path] { return rpc::connect_unix(path); });
  std::printf("rpc demo: server on %s\n\n", path.c_str());

  // 1. Compress / decompress round trip across the socket.
  const std::vector<u8> data = skewed_bytes(256 * 1024, 11);
  rpc::RpcCall comp = cli.compress(data);
  const std::vector<u8> blob = comp.result.get();
  const std::vector<u8> back = cli.decompress(blob).result.get();
  std::printf("round trip : %zu bytes -> %zu on the wire -> %zu back (%s), "
              "ratio %.2fx\n",
              data.size(), blob.size(), back.size(),
              back == data ? "bit-identical" : "MISMATCH",
              static_cast<double>(data.size()) /
                  static_cast<double>(blob.size()));

  // 2. A deadline rides the frame as a relative budget and is re-anchored
  // on the server's clock; a generous one simply succeeds.
  rpc::RpcOptions opts;
  opts.deadline_seconds = 30.0;
  opts.priority = svc::Priority::kHigh;
  const std::size_t high_bytes =
      cli.compress(data, 1, opts).result.get().size();
  std::printf("deadline   : high-priority request with a 30 s budget "
              "compressed to %zu bytes\n", high_bytes);

  // 3. Cancel racing a large request. Either side can win: a pending
  // request dies immediately, a dispatched one aborts at the encoder's
  // next poll point, and a fast server may finish first — every outcome
  // resolves the future.
  const std::vector<u8> big = skewed_bytes(4 * 1024 * 1024, 23);
  rpc::RpcCall racer = cli.compress(big);
  cli.cancel(racer.id).get();  // ack: the server applied the cancel
  try {
    const std::size_t n = racer.result.get().size();
    std::printf("cancel race: request %llu finished first (%zu bytes)\n",
                static_cast<unsigned long long>(racer.id), n);
  } catch (const svc::CancelledError&) {
    std::printf("cancel race: request %llu cancelled\n",
                static_cast<unsigned long long>(racer.id));
  }

  // 4. Server-side counters, as the parhuff-metrics-v1 JSON document.
  const std::string stats = cli.stats().get();
  std::printf("\nstats document (%zu bytes):\n%.400s%s\n", stats.size(),
              stats.c_str(), stats.size() > 400 ? "  ..." : "");
  return 0;
}
