// Syllable-based text compression — the n-gram language scenario of §II-A:
// morphologically rich (agglutinative) text segments into a few thousand
// distinct syllables, so encoding syllable ids with a large-alphabet
// Huffman codebook beats byte-level coding, and the parallel codebook
// construction keeps the bigger alphabet cheap.
//
// Run: ./syllable_text

#include <cstdio>

#include "core/pipeline.hpp"
#include "data/syllable.hpp"
#include "util/table.hpp"

int main() {
  using namespace parhuff;

  const auto text = data::generate_agglutinative(12 * MiB, 5);
  std::printf("synthetic agglutinative corpus: %s\n",
              fmt_bytes(text.size()).c_str());
  std::printf("sample: %.60s...\n\n",
              reinterpret_cast<const char*>(text.data()));

  // --- Byte-level baseline. -------------------------------------------------
  PipelineConfig byte_cfg;
  byte_cfg.nbins = 256;
  byte_cfg.encoder = EncoderKind::kAdaptiveSimt;
  PipelineReport byte_rep;
  const auto byte_blob = compress<u8>(text, byte_cfg, &byte_rep);
  if (decompress(byte_blob, 2) != text) {
    std::fprintf(stderr, "FATAL: byte round trip failed\n");
    return 1;
  }

  // --- Syllable-level pipeline. ----------------------------------------------
  const auto syl = data::syllabify(text);
  PipelineConfig syl_cfg;
  syl_cfg.nbins = syl.nbins;
  syl_cfg.encoder = EncoderKind::kAdaptiveSimt;
  PipelineReport syl_rep;
  const auto syl_blob = compress<u16>(syl.symbols, syl_cfg, &syl_rep);
  data::SyllableStream back = syl;
  back.symbols = decompress(syl_blob, 2);
  if (data::unsyllabify(back) != text) {
    std::fprintf(stderr, "FATAL: syllable round trip failed\n");
    return 1;
  }
  // Dictionary must ship with the stream; charge it against the ratio.
  std::size_t dict_bytes = 0;
  for (const auto& d : syl.dictionary) dict_bytes += d.size() + 1;

  TextTable t("byte-level vs syllable-level Huffman");
  t.header({"metric", "bytes (256 symbols)", "syllables"});
  t.row({"symbols", std::to_string(text.size()),
         std::to_string(syl.symbols.size())});
  t.row({"alphabet", "256", std::to_string(syl.distinct) + " (nbins " +
                               std::to_string(syl.nbins) + ")"});
  t.row({"entropy/sym", fmt(byte_rep.entropy_bits, 3),
         fmt(syl_rep.entropy_bits, 3)});
  t.row({"avg code bits", fmt(byte_rep.avg_bits, 3), fmt(syl_rep.avg_bits, 3)});
  t.row({"codebook ms (host)", fmt(byte_rep.codebook_seconds * 1e3, 3),
         fmt(syl_rep.codebook_seconds * 1e3, 3)});
  const double byte_out = static_cast<double>(byte_rep.compressed_bytes);
  const double syl_out =
      static_cast<double>(syl_rep.compressed_bytes + dict_bytes);
  t.row({"compressed", fmt_bytes(byte_rep.compressed_bytes),
         fmt_bytes(syl_rep.compressed_bytes + dict_bytes) + " (incl. dict)"});
  t.row({"ratio", fmt(static_cast<double>(text.size()) / byte_out, 2) + "x",
         fmt(static_cast<double>(text.size()) / syl_out, 2) + "x"});
  t.print();

  std::printf(
      "\nsyllable symbols capture within-word structure an order-0 byte\n"
      "model cannot, at the cost of a %zu-symbol codebook — the regime the\n"
      "paper's parallel codebook construction (Table III) is built for.\n",
      syl.distinct);
  return 0;
}
