// n-gram/DNA scenario (§II-A): k-mer symbolization of a GenBank-style
// sequence file produces alphabets of thousands of symbols — the regime
// where serial codebook construction becomes the bottleneck and the
// paper's parallel construction pays off.
//
// Run: ./dna_kmer

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/tree.hpp"
#include "data/dnagen.hpp"
#include "perf/gpu_model.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace parhuff;

  const auto bytes = data::generate_genbank(16 * MiB, 77);
  std::printf("GenBank-like flat file: %s\n\n", fmt_bytes(bytes.size()).c_str());

  TextTable t("k-mer compression (codebook: serial vs parallel)");
  t.header({"k", "symbols", "nbins", "avg bits", "serial cb ms",
            "parallel cb ms (host)", "modeled V100 ms", "ratio", "roundtrip"});

  for (unsigned k : {3u, 4u, 5u}) {
    const auto stream = data::kmer_pack(bytes, k);

    // Serial baseline codebook timing on the host.
    std::vector<u64> freq(stream.nbins, 0);
    for (u16 s : stream.symbols) ++freq[s];
    Timer timer;
    const Codebook serial_cb = build_codebook_serial(freq);
    const double serial_ms = timer.millis();

    // Full pipeline with the parallel builder.
    PipelineConfig cfg;
    cfg.nbins = stream.nbins;
    PipelineReport rep;
    const auto blob = compress<u16>(stream.symbols, cfg, &rep);

    // Round trip all the way back to the original bytes.
    const auto codes_back = decompress(blob);
    data::KmerStream back = stream;
    back.symbols = codes_back;
    const bool ok = data::kmer_unpack(back, k, bytes.size()) == bytes;

    const double in_bytes =
        static_cast<double>(stream.symbols.size() * sizeof(u16));
    t.row({std::to_string(k), std::to_string(stream.symbols.size()),
           std::to_string(stream.nbins), fmt(rep.avg_bits, 3),
           fmt(serial_ms, 3), fmt(rep.codebook_seconds * 1e3, 3),
           fmt(perf::modeled_ms(rep.codebook_tally,
                                simt::DeviceSpec::v100()),
               3),
           fmt(in_bytes / static_cast<double>(rep.compressed_bytes), 2) + "x",
           ok ? "OK" : "FAIL"});
    if (!ok) {
      t.print();
      return 1;
    }
  }
  t.print();
  std::printf(
      "\nNote: k-mer symbols inflate the alphabet (Table III regime); the\n"
      "modeled-V100 column uses the transaction tallies of the cooperative\n"
      "codebook kernels, not host wall time.\n");
  return 0;
}
