// Error-bounded lossy compression of a scientific field — the paper's
// motivating scenario (§I): a cuSZ-style pipeline where Huffman encoding of
// multi-byte quantization codes is the throughput-critical stage. Uses the
// parhuff::lossy subsystem (prediction + quantization + Huffman + container)
// end to end and verifies the error bound on the reconstruction.
//
// Run: ./sz_pipeline [rel_error_bound]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "data/quant.hpp"
#include "lossy/lossy.hpp"
#include "perf/gpu_model.hpp"
#include "simt/spec.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace parhuff;
  const double rel_eb = argc > 1 ? std::atof(argv[1]) : 1e-2;

  const data::Dims dims{192, 192, 128};
  std::printf("generating %zux%zux%zu cosmology-like field (%s of f32)...\n\n",
              dims.nx, dims.ny, dims.nz,
              fmt_bytes(dims.total() * sizeof(float)).c_str());
  const auto field = data::generate_cosmo_field(dims, 2027);

  lossy::Config cfg;
  cfg.rel_error_bound = rel_eb;
  lossy::Report rep;
  const auto bytes = lossy::compress_field(field, dims, cfg, &rep);

  TextTable t("cuSZ-style lossy compression");
  t.header({"stage", "result"});
  t.row({"abs error bound", fmt(rep.error_bound, 6)});
  t.row({"quantize (host)", fmt(rep.quantize_seconds * 1e3, 1) + " ms"});
  t.row({"outliers", std::to_string(rep.outliers)});
  t.row({"codes entropy", fmt(rep.huffman.entropy_bits, 4) + " bits"});
  t.row({"avg codeword", fmt(rep.huffman.avg_bits, 4) + " bits"});
  t.row({"huffman encode (host)",
         fmt(rep.huffman.encode_seconds * 1e3, 1) + " ms"});
  t.row({"huffman encode (modeled V100)",
         fmt(perf::modeled_gbps(rep.huffman.input_bytes,
                                rep.huffman.encode_tally,
                                simt::DeviceSpec::v100()),
             1) +
             " GB/s"});
  t.row({"float size", fmt_bytes(rep.raw_bytes)});
  t.row({"compressed", fmt_bytes(rep.compressed_bytes)});
  t.row({"overall ratio", fmt(rep.ratio(), 1) + "x"});
  t.print();

  // Decompress and verify the bound end to end.
  const auto back = lossy::decompress_field(bytes);
  double worst = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(field[i]) -
                                     static_cast<double>(back.values[i])));
  }
  std::printf("\nmax reconstruction error: %.4g (bound %.4g) — %s\n", worst,
              rep.error_bound,
              worst <= rep.error_bound * 1.0001 ? "WITHIN BOUND" : "VIOLATED");
  return worst <= rep.error_bound * 1.0001 ? 0 : 1;
}
