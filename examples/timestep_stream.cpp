// Streaming compression of simulation output — the paper's §I motivation
// (HACC producing 20 PB across 300 timesteps): each timestep's field is
// quantized and Huffman-encoded as it is produced, with ONE codebook
// trained on the first timestep and reused for the rest, so steady-state
// timesteps pay no codebook construction at all.
//
// Run: ./timestep_stream [n_timesteps]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/streaming.hpp"
#include "data/quant.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace parhuff;

/// Evolve the field between timesteps: gentle advection + growth, so later
/// steps stay statistically similar to the training step (the property the
/// shared codebook relies on).
std::vector<float> evolve(const std::vector<float>& field, data::Dims dims,
                          int step) {
  std::vector<float> next(field.size());
  const std::size_t sx = 1, sy = dims.nx;
  const std::size_t shift = static_cast<std::size_t>(step) % dims.nx;
  std::size_t idx = 0;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    for (std::size_t y = 0; y < dims.ny; ++y) {
      for (std::size_t x = 0; x < dims.nx; ++x, ++idx) {
        const std::size_t src_x = (x + shift) % dims.nx;
        const std::size_t src =
            idx - x * sx + src_x * sx - y * sy + ((y + 1) % dims.ny) * sy;
        next[idx] = field[src] * 1.002f;
      }
    }
  }
  return next;
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 8;
  const data::Dims dims{128, 128, 64};
  std::printf("simulating %d timesteps of a %zux%zux%zu field (%s each)\n\n",
              steps, dims.nx, dims.ny, dims.nz,
              fmt_bytes(dims.total() * sizeof(float)).c_str());

  auto field = data::generate_cosmo_field(dims, 11);
  float fmin = field[0], fmax = field[0];
  for (float v : field) {
    fmin = std::min(fmin, v);
    fmax = std::max(fmax, v);
  }
  const double eb = static_cast<double>(fmax - fmin) * 1e-2;

  PipelineConfig cfg;
  cfg.nbins = 1024;
  cfg.encoder = EncoderKind::kAdaptiveSimt;
  StreamingCompressor<u16> sc(cfg);

  // Train the codebook on timestep 0 only.
  const auto q0 = data::lorenzo_quantize(field, dims, eb, 1024);
  Timer train_timer;
  sc.observe(q0.codes);
  sc.smooth();  // later timesteps drift: keep every bin encodable
  sc.freeze();
  const double train_ms = train_timer.millis();
  const auto header = sc.header();

  TextTable t("per-timestep streaming compression (codebook from step 0)");
  t.header({"step", "outliers", "frame bytes", "ratio", "encode ms",
            "roundtrip"});

  StreamingDecompressor<u16> sd(header);
  std::size_t total_raw = 0, total_compressed = header.size();
  for (int step = 0; step < steps; ++step) {
    const auto q = data::lorenzo_quantize(field, dims, eb, 1024);
    Timer timer;
    std::vector<u8> frame;
    bool fallback = false;
    try {
      frame = sc.encode_segment(q.codes);
    } catch (const std::exception&) {
      // A drifted timestep can contain codes never seen during training;
      // a production integration would retrain. Flag it here.
      fallback = true;
    }
    const double enc_ms = timer.millis();
    if (fallback) {
      t.row({std::to_string(step), "-", "-", "-", "-", "UNSEEN SYMBOL"});
    } else {
      const bool ok = sd.decode_segment(frame) == q.codes;
      const std::size_t raw = q.codes.size() * sizeof(u16);
      total_raw += raw;
      total_compressed += frame.size();
      t.row({std::to_string(step), std::to_string(q.outliers.size()),
             std::to_string(frame.size()),
             fmt(static_cast<double>(raw) /
                     static_cast<double>(frame.size()),
                 2) +
                 "x",
             fmt(enc_ms, 1), ok ? "OK" : "FAIL"});
      if (!ok) {
        t.print();
        return 1;
      }
    }
    if (step + 1 < steps) field = evolve(field, dims, step + 1);
  }
  t.print();

  std::printf(
      "\ncodebook: trained once in %.2f ms, shipped once (%s header);\n"
      "stream total: %s raw -> %s compressed (%.2fx overall)\n",
      train_ms, fmt_bytes(header.size()).c_str(),
      fmt_bytes(total_raw).c_str(), fmt_bytes(total_compressed).c_str(),
      static_cast<double>(total_raw) /
          static_cast<double>(total_compressed));
  return 0;
}
