// Quickstart: compress a buffer with the full GPU-style pipeline
// (privatized histogram → parallel canonical codebook → reduce/shuffle
// encoding), inspect the per-stage report, round-trip, and use the
// serialized container.
//
// Run: ./quickstart

#include <cstdio>
#include <span>

#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "data/textgen.hpp"
#include "obs/report.hpp"
#include "perf/gpu_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace parhuff;

  // 8 MB of Wikipedia-like text.
  const auto input = data::generate_text(8 * MiB, /*seed=*/1);
  std::printf("input: %s of XML-ish text\n\n",
              fmt_bytes(input.size()).c_str());

  // 1. Configure the pipeline. Defaults are the paper's operating point:
  //    SIMT histogram, Algorithm-1 codebook, reduce/shuffle encoder with
  //    M=10 and r decided from the measured average bitwidth.
  PipelineConfig cfg;
  cfg.nbins = 256;

  // 2. Compress.
  PipelineReport rep;
  const Compressed<u8> blob = compress<u8>(input, cfg, &rep);

  std::printf("entropy          : %.4f bits/symbol\n", rep.entropy_bits);
  std::printf("avg codeword     : %.4f bits\n", rep.avg_bits);
  std::printf("reduce factor r  : %u  (merged width ~%.1f bits)\n",
              rep.reduce_factor,
              rep.avg_bits * static_cast<double>(1u << rep.reduce_factor));
  std::printf("compressed       : %s (ratio %.2fx)\n",
              fmt_bytes(rep.compressed_bytes).c_str(),
              rep.compression_ratio());
  std::printf("breaking points  : %s of symbols\n\n",
              fmt_pct(blob.stream.breaking_fraction(), 4).c_str());

  // 3. Stage breakdown: host wall time + modeled GPU time for the
  //    transaction counts each simulated kernel generated.
  const auto v100 = simt::DeviceSpec::v100();
  TextTable t("pipeline breakdown (host wall vs modeled V100)");
  t.header({"stage", "host ms", "modeled V100 ms", "modeled GB/s"});
  t.row({"histogram", fmt(rep.hist_seconds * 1e3),
         fmt(perf::modeled_ms(rep.hist_tally, v100), 3),
         fmt(perf::modeled_gbps(rep.input_bytes, rep.hist_tally, v100), 1)});
  t.row({"codebook", fmt(rep.codebook_seconds * 1e3),
         fmt(perf::modeled_ms(rep.codebook_tally, v100), 3), "-"});
  t.row({"encode", fmt(rep.encode_seconds * 1e3),
         fmt(perf::modeled_ms(rep.encode_tally, v100), 3),
         fmt(perf::modeled_gbps(rep.input_bytes, rep.encode_tally, v100),
             1)});
  t.print();

  // 4. Round trip.
  const auto back = decompress(blob, /*threads=*/0);
  std::printf("\nround trip: %s\n", back == input ? "OK" : "MISMATCH");

  // 5. The self-contained container survives serialization.
  const auto bytes = serialize(blob);
  const auto blob2 = deserialize<u8>(bytes);
  const bool ok = decompress(blob2) == input;
  std::printf("container round trip (%s): %s\n",
              fmt_bytes(bytes.size()).c_str(), ok ? "OK" : "MISMATCH");

  // 6. The same report, machine-readable (docs/observability.md): the
  //    schema every bench emits via --json-out.
  std::printf("\nreport as JSON (schema %s):\n%s\n", obs::kMetricsSchema,
              obs::to_json(rep).dump(2).c_str());
  return back == input && ok ? 0 : 1;
}
