// phuffc — a gzip-style CLI over the parhuff container format, exposing
// the full pipeline configuration space.
//
// Usage:
//   ./file_compressor c <input> <output.phf> [flags]     compress
//   ./file_compressor d <input.phf> <output>             decompress
//   ./file_compressor t <input.phf>                      integrity test
//   (no arguments: self-demo on a generated file in /tmp)
//
// Flags:
//   --symbol-width 8|16     treat the input as bytes or 16-bit symbols
//   --nbins N               alphabet size (default 256 / 65536 by width)
//   --magnitude M           chunk = 2^M symbols (default 10)
//   --reduce R              fixed reduce factor (default: Fig. 3 rule)
//   --encoder serial|openmp|coarse|prefixsum|reduceshuffle|adaptive
//   --codebook serial|parallel|omp
//   --threads N             OpenMP threads for the CPU stages
//   --json-out PATH         write a parhuff-metrics-v1 report of the run
//   --trace-out PATH        write a Chrome trace_event file of the run
//                           (also enabled by PARHUFF_TRACE, see
//                           docs/observability.md)

#include <cstdio>
#include <cstring>
#include <string>

#include "core/format.hpp"
#include "core/pipeline.hpp"
#include "data/textgen.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace parhuff;

const std::vector<std::string> kKnownFlags = {
    "symbol-width", "nbins",   "magnitude", "reduce",  "encoder",
    "codebook",     "threads", "json-out",  "trace-out"};

PipelineConfig config_from(const CliArgs& args, unsigned symbol_width) {
  PipelineConfig cfg;
  cfg.nbins = static_cast<std::size_t>(
      args.get_int("nbins", symbol_width == 8 ? 256 : 65536));
  cfg.magnitude = static_cast<u32>(args.get_int("magnitude", 10));
  if (args.has("reduce")) {
    cfg.reduce_factor = static_cast<u32>(args.get_int("reduce", 3));
  }
  const std::string enc = args.get_string("encoder", "reduceshuffle");
  if (enc == "serial") cfg.encoder = EncoderKind::kSerial;
  else if (enc == "openmp") cfg.encoder = EncoderKind::kOpenMP;
  else if (enc == "coarse") cfg.encoder = EncoderKind::kCoarseSimt;
  else if (enc == "prefixsum") cfg.encoder = EncoderKind::kPrefixSumSimt;
  else if (enc == "reduceshuffle") cfg.encoder = EncoderKind::kReduceShuffleSimt;
  else if (enc == "adaptive") cfg.encoder = EncoderKind::kAdaptiveSimt;
  else throw std::invalid_argument("unknown --encoder: " + enc);
  const std::string cbk = args.get_string("codebook", "parallel");
  if (cbk == "serial") cfg.codebook = CodebookKind::kSerialTree;
  else if (cbk == "parallel") cfg.codebook = CodebookKind::kParallelSimt;
  else if (cbk == "omp") cfg.codebook = CodebookKind::kParallelOmp;
  else throw std::invalid_argument("unknown --codebook: " + cbk);
  cfg.cpu_threads = static_cast<int>(args.get_int("threads", 0));
  return cfg;
}

template <typename Sym>
int compress_file(const std::string& in, const std::string& out,
                  const CliArgs& args, unsigned symbol_width) {
  const std::vector<u8> raw = read_file(in);
  if (raw.size() % sizeof(Sym) != 0) {
    std::fprintf(stderr, "input size is not a multiple of the symbol width\n");
    return 1;
  }
  std::span<const Sym> data(reinterpret_cast<const Sym*>(raw.data()),
                            raw.size() / sizeof(Sym));
  PipelineConfig cfg = config_from(args, symbol_width);
  PipelineReport rep;
  Timer t;
  const auto blob = compress<Sym>(data, cfg, &rep);
  const auto bytes = serialize(blob);
  write_file(out, bytes);
  std::printf(
      "%s: %s -> %s (%.2fx) in %.1f ms  [avg %.3f bits, entropy %.3f, "
      "r=%u, breaking %s]\n",
      in.c_str(), fmt_bytes(raw.size()).c_str(), fmt_bytes(bytes.size()).c_str(),
      static_cast<double>(raw.size()) / static_cast<double>(bytes.size()),
      t.millis(), rep.avg_bits, rep.entropy_bits, rep.reduce_factor,
      fmt_pct(blob.stream.breaking_fraction(), 4).c_str());
  if (args.has("json-out")) {
    obs::MetricsDocument doc("phuffc");
    doc.config()
        .set("input", in)
        .set("output", out)
        .set("symbol_width", symbol_width)
        .set("config", obs::to_json(cfg));
    doc.add_record(obs::to_json(rep));
    const std::string path = args.get_string("json-out", "");
    doc.write(path);
    std::printf("metrics: wrote %s\n", path.c_str());
  }
  return 0;
}

template <typename Sym>
int decompress_file(const std::string& in, const std::string& out) {
  const auto bytes = read_file(in);
  const auto blob = deserialize<Sym>(bytes);
  Timer t;
  const auto data = decompress(blob);
  std::vector<u8> raw(reinterpret_cast<const u8*>(data.data()),
                      reinterpret_cast<const u8*>(data.data() + data.size()));
  write_file(out, raw);
  std::printf("%s: %s -> %s in %.1f ms\n", in.c_str(),
              fmt_bytes(bytes.size()).c_str(), fmt_bytes(raw.size()).c_str(),
              t.millis());
  return 0;
}

template <typename Sym>
int test_file(const std::string& in) {
  const auto blob = deserialize<Sym>(read_file(in));
  const auto data = decompress(blob);
  std::printf("%s: OK (%zu symbols, codebook %u/%u symbols, max code %u "
              "bits%s)\n",
              in.c_str(), data.size(),
              static_cast<unsigned>(blob.codebook.present_symbols()),
              blob.codebook.nbins, blob.codebook.max_len,
              blob.stream.chunk_reduce.empty() ? "" : ", adaptive r");
  return 0;
}

int self_demo() {
  const std::string raw = "/tmp/parhuff_demo.txt";
  const std::string phf = "/tmp/parhuff_demo.phf";
  const std::string back = "/tmp/parhuff_demo.out";
  write_file(raw, data::generate_text(4 * MiB, 5));
  const char* cargv[] = {"phuffc"};
  const CliArgs defaults(1, cargv);
  if (compress_file<u8>(raw, phf, defaults, 8) != 0) return 1;
  if (test_file<u8>(phf) != 0) return 1;
  if (decompress_file<u8>(phf, back) != 0) return 1;
  const bool ok = read_file(raw) == read_file(back);
  std::printf("verify: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    for (const auto& bad : args.unknown(kKnownFlags)) {
      std::fprintf(stderr, "unknown flag: --%s\n", bad.c_str());
      return 2;
    }
    const std::string trace_path = args.get_string("trace-out", "");
    if (!trace_path.empty()) obs::TraceRecorder::global().enable();
    const auto done = [&trace_path](int rc) {
      if (!trace_path.empty()) {
        obs::TraceRecorder::global().write(trace_path);
        std::printf("trace: wrote %s (%zu events)\n", trace_path.c_str(),
                    obs::TraceRecorder::global().event_count());
      }
      return rc;
    };
    const auto& pos = args.positional();
    if (pos.empty()) return done(self_demo());
    const unsigned width =
        static_cast<unsigned>(args.get_int("symbol-width", 8));
    if (width != 8 && width != 16) {
      std::fprintf(stderr, "--symbol-width must be 8 or 16\n");
      return 2;
    }
    const std::string& mode = pos[0];
    if (mode == "c" && pos.size() == 3) {
      return done(width == 8 ? compress_file<u8>(pos[1], pos[2], args, 8)
                             : compress_file<u16>(pos[1], pos[2], args, 16));
    }
    if (mode == "d" && pos.size() == 3) {
      return done(width == 8 ? decompress_file<u8>(pos[1], pos[2])
                             : decompress_file<u16>(pos[1], pos[2]));
    }
    if (mode == "t" && pos.size() == 2) {
      return done(width == 8 ? test_file<u8>(pos[1]) : test_file<u16>(pos[1]));
    }
    std::fprintf(stderr,
                 "usage: %s c <in> <out.phf> | d <in.phf> <out> | t <in.phf> "
                 "[flags]\n",
                 argv[0]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
