// Compression service demo: an ingest front-end pushing mixed traffic —
// many small text buffers (log-like, u8) interleaved with quantization-code
// buffers (HPC field slices, u16) at two priorities — through
// CompressionService instead of calling compress() inline. Shows request
// batching, codebook-cache hits across same-distribution requests, and the
// service's observability counters.
//
// Run: ./service_demo [requests_per_kind]

#include <cstdio>
#include <cstdlib>
#include <future>
#include <span>
#include <vector>

#include "data/quant.hpp"
#include "data/textgen.hpp"
#include "obs/metrics.hpp"
#include "svc/service.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace parhuff;

struct KindStats {
  std::size_t requests = 0;
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::size_t cache_hits = 0;
  std::size_t max_batch = 0;
};

template <typename Sym>
void tally(KindStats& ks,
           std::vector<std::future<svc::CompressResult<Sym>>>& futs,
           std::size_t request_symbols) {
  for (auto& f : futs) {
    const svc::CompressResult<Sym> res = f.get();
    ks.requests += 1;
    ks.input_bytes += request_symbols * sizeof(Sym);
    ks.output_bytes += res.stream.stored_bytes();
    ks.cache_hits += res.cache_hit ? 1 : 0;
    ks.max_batch = std::max(ks.max_batch, res.batch_requests);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1
                            ? static_cast<std::size_t>(std::atoi(argv[1]))
                            : 96;
  std::printf("service demo: %zu text + %zu quant requests, mixed "
              "priorities\n\n",
              n, n);

  obs::MetricsRegistry::global().clear();

  // Two services because the symbol type is part of the request type; a
  // real integration would own one per ingest stream kind.
  svc::ServiceConfig sc;
  sc.workers = 2;
  sc.batch_window_seconds = 300e-6;
  svc::CompressionService<u8> text_svc(sc);
  svc::CompressionService<u16> quant_svc(sc);

  PipelineConfig text_cfg;
  text_cfg.nbins = 256;
  text_cfg.histogram = HistogramKind::kSerial;
  text_cfg.codebook = CodebookKind::kSerialTree;
  text_cfg.encoder = EncoderKind::kSerial;
  PipelineConfig quant_cfg = text_cfg;
  quant_cfg.nbins = 1024;

  constexpr std::size_t kTextSyms = 8192;
  constexpr std::size_t kQuantSyms = 4096;
  const auto text = data::generate_text(kTextSyms * 8, 3);
  const auto quant = data::generate_nyx_quant(kQuantSyms * 8, 7);

  std::vector<std::future<svc::CompressResult<u8>>> text_futs;
  std::vector<std::future<svc::CompressResult<u16>>> quant_futs;
  Timer t;
  for (std::size_t i = 0; i < n; ++i) {
    // Interleaved arrivals; every fourth quant buffer is a checkpoint
    // slice that must jump the batch-leader queue.
    const std::span<const u8> tslice(text.data() + (i % 8) * kTextSyms,
                                     kTextSyms);
    text_futs.push_back(text_svc.submit(tslice, text_cfg));
    const std::span<const u16> qslice(quant.data() + (i % 8) * kQuantSyms,
                                      kQuantSyms);
    quant_futs.push_back(quant_svc.submit(
        qslice, quant_cfg,
        (i % 4 == 0) ? svc::Priority::kHigh : svc::Priority::kNormal));
  }

  KindStats text_stats, quant_stats;
  tally(text_stats, text_futs, kTextSyms);
  tally(quant_stats, quant_futs, kQuantSyms);
  const double total_s = t.seconds();

  TextTable table("per-kind results");
  table.header({"kind", "requests", "in", "out", "ratio", "cache hits",
                "max batch"});
  for (const auto& [name, ks] :
       {std::pair<const char*, KindStats&>{"text (u8)", text_stats},
        {"quant (u16)", quant_stats}}) {
    table.row({name, std::to_string(ks.requests),
               fmt_bytes(ks.input_bytes), fmt_bytes(ks.output_bytes),
               fmt(static_cast<double>(ks.input_bytes) /
                       static_cast<double>(ks.output_bytes),
                   2),
               std::to_string(ks.cache_hits), std::to_string(ks.max_batch)});
  }
  table.print();

  const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const obs::HistoStat lat = reg.histo("svc.request_seconds");
  std::printf(
      "\n%zu requests in %.1f ms (%.0f req/s)\n"
      "latency p50/p95/p99: %.3f / %.3f / %.3f ms\n"
      "batches: %llu   cache hits/misses: %llu/%llu   guard rejects: %llu\n"
      "(counters are the svc.* namespace of the parhuff-metrics-v1\n"
      " document — see docs/service.md and docs/observability.md)\n",
      text_stats.requests + quant_stats.requests, total_s * 1e3,
      static_cast<double>(text_stats.requests + quant_stats.requests) /
          total_s,
      lat.quantile(0.5) * 1e3, lat.quantile(0.95) * 1e3,
      lat.quantile(0.99) * 1e3,
      static_cast<unsigned long long>(reg.counter("svc.batches")),
      static_cast<unsigned long long>(reg.counter("svc.cache_hits")),
      static_cast<unsigned long long>(reg.counter("svc.cache_misses")),
      static_cast<unsigned long long>(
          reg.counter("svc.cache_guard_rejects")));
  return 0;
}
