// Serial Huffman builders: optimality, Kraft completeness, agreement
// between the priority-queue and two-queue constructions, degenerate inputs.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/tree.hpp"
#include "data/synth_hist.hpp"

namespace parhuff {
namespace {

u64 weighted_length(std::span<const u64> freq, std::span<const u8> lens) {
  u64 total = 0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    total += freq[i] * lens[i];
  }
  return total;
}

u64 kraft_scaled(std::span<const u8> lens, unsigned max_len) {
  u64 k = 0;
  for (u8 l : lens) {
    if (l) k += u64{1} << (max_len - l);
  }
  return k;
}

unsigned max_of(std::span<const u8> lens) {
  unsigned m = 0;
  for (u8 l : lens) m = std::max<unsigned>(m, l);
  return m;
}

TEST(SerialTree, EmptyHistogram) {
  std::vector<u64> freq(16, 0);
  EXPECT_EQ(max_of(build_lengths_pq(freq)), 0u);
  EXPECT_EQ(max_of(build_lengths_twoqueue(freq)), 0u);
}

TEST(SerialTree, SingleSymbolGetsOneBit) {
  std::vector<u64> freq(16, 0);
  freq[5] = 100;
  auto l1 = build_lengths_pq(freq);
  auto l2 = build_lengths_twoqueue(freq);
  EXPECT_EQ(l1[5], 1);
  EXPECT_EQ(l2[5], 1);
  EXPECT_EQ(std::accumulate(l1.begin(), l1.end(), 0), 1);
}

TEST(SerialTree, TwoSymbols) {
  std::vector<u64> freq = {3, 7};
  auto l = build_lengths_twoqueue(freq);
  EXPECT_EQ(l[0], 1);
  EXPECT_EQ(l[1], 1);
}

TEST(SerialTree, KnownSmallExample) {
  // freqs 1,1,2,4: lengths 3,3,2,1 (cost 3+3+4+4=14).
  std::vector<u64> freq = {1, 1, 2, 4};
  auto l = build_lengths_twoqueue(freq);
  EXPECT_EQ(weighted_length(freq, l), 14u);
  EXPECT_EQ(l[3], 1);
}

TEST(SerialTree, UniformPowerOfTwoIsFixedLength) {
  std::vector<u64> freq(64, 10);
  auto l = build_lengths_pq(freq);
  for (u8 x : l) EXPECT_EQ(x, 6);
}

TEST(SerialTree, ExponentialGivesDeepTree) {
  auto freq = data::exponential_histogram(24, 2.2, 1);
  auto l = build_lengths_twoqueue(freq);
  EXPECT_GE(max_of(l), 16u);  // strongly skewed → deep codes
  EXPECT_EQ(kraft_scaled(l, max_of(l)), u64{1} << max_of(l));
}

struct HistCase {
  const char* name;
  std::vector<u64> freq;
};

class SerialTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SerialTreeProperty, BuildersAgreeAndSatisfyKraft) {
  const int seed = GetParam();
  std::vector<std::vector<u64>> cases = {
      data::normal_histogram(256, 1 << 20, static_cast<u64>(seed)),
      data::zipf_histogram(512, 1.2, 1 << 22, static_cast<u64>(seed)),
      data::uniform_histogram(100, 1000, static_cast<u64>(seed)),
      data::exponential_histogram(40, 1.8, static_cast<u64>(seed)),
      data::kmer_like_histogram(1024, 1 << 22, static_cast<u64>(seed)),
  };
  for (const auto& freq : cases) {
    SerialBuildStats s1, s2;
    auto l1 = build_lengths_pq(freq, &s1);
    auto l2 = build_lengths_twoqueue(freq, &s2);
    // Optimal cost is unique even when trees differ.
    EXPECT_EQ(weighted_length(freq, l1), weighted_length(freq, l2));
    const unsigned m1 = max_of(l1);
    const unsigned m2 = max_of(l2);
    EXPECT_EQ(kraft_scaled(l1, m1), u64{1} << m1);
    EXPECT_EQ(kraft_scaled(l2, m2), u64{1} << m2);
    EXPECT_GT(s1.dependent_ops, 0u);
    EXPECT_GT(s2.dependent_ops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialTreeProperty, ::testing::Range(0, 12));

TEST(SerialTree, CodebookFromLengthsValidates) {
  auto freq = data::zipf_histogram(300, 1.1, 1 << 20, 7);
  Codebook cb = build_codebook_serial(freq);
  EXPECT_EQ(cb.validate(), "");
  EXPECT_GT(cb.max_len, 0u);
  EXPECT_EQ(cb.present_symbols(), 300u);
}

TEST(SerialTree, ZeroFrequencySymbolsExcluded) {
  std::vector<u64> freq(100, 0);
  freq[3] = 5;
  freq[50] = 10;
  freq[99] = 1;
  Codebook cb = build_codebook_serial(freq);
  EXPECT_EQ(cb.present_symbols(), 3u);
  EXPECT_EQ(cb.cw[0].len, 0);
  EXPECT_GT(cb.cw[3].len, 0);
}

}  // namespace
}  // namespace parhuff
