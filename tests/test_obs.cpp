// Observability layer: JSON document model round trips, metrics registry
// semantics, trace_event export shape, and the lossless
// PipelineReport → parhuff-metrics-v1 projection.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "core/pipeline.hpp"
#include "data/textgen.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace parhuff {
namespace {

// --- Json: construction and access. -----------------------------------------

TEST(Json, KindsAndAccessors) {
  EXPECT_TRUE(obs::Json().is_null());
  EXPECT_TRUE(obs::Json(nullptr).is_null());
  EXPECT_TRUE(obs::Json(true).as_bool());
  EXPECT_EQ(obs::Json(i64{-7}).as_i64(), -7);
  EXPECT_EQ(obs::Json(u64{7}).as_u64(), 7u);
  EXPECT_DOUBLE_EQ(obs::Json(1.5).as_double(), 1.5);
  EXPECT_EQ(obs::Json("hi").as_string(), "hi");
  EXPECT_TRUE(obs::Json::object().is_object());
  EXPECT_TRUE(obs::Json::array().is_array());
  // Numeric kinds convert freely.
  EXPECT_DOUBLE_EQ(obs::Json(i64{3}).as_double(), 3.0);
  EXPECT_EQ(obs::Json(u64{3}).as_i64(), 3);
  // Kind mismatches throw.
  EXPECT_THROW((void)obs::Json("x").as_i64(), std::runtime_error);
  EXPECT_THROW((void)obs::Json(1.0).as_string(), std::runtime_error);
}

TEST(Json, ObjectSetPreservesOrderAndOverwrites) {
  obs::Json j = obs::Json::object();
  j.set("b", 1).set("a", 2).set("b", 3);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.members()[0].first, "b");
  EXPECT_EQ(j.members()[1].first, "a");
  EXPECT_EQ(j.at("b").as_i64(), 3);
  EXPECT_TRUE(j.has("a"));
  EXPECT_FALSE(j.has("c"));
  EXPECT_THROW((void)j.at("c"), std::runtime_error);
}

// --- Json: dump/parse round trips. ------------------------------------------

TEST(Json, RoundTripNested) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", "parhuff-metrics-v1");
  doc.set("tallies", obs::Json::object()
                         .set("histogram",
                              obs::Json::object()
                                  .set("global_read_bytes", u64{1} << 40)
                                  .set("block_syncs", u64{123456789}))
                         .set("nested_empty", obs::Json::object()));
  obs::Json arr = obs::Json::array();
  arr.push(1).push(-2).push(obs::Json::array().push("deep"));
  doc.set("records", std::move(arr));
  doc.set("ratio", 3.4567890123);
  doc.set("none", nullptr);
  doc.set("flag", false);

  for (int indent : {-1, 0, 2}) {
    const obs::Json back = obs::Json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
    EXPECT_EQ(back.at("schema").as_string(), "parhuff-metrics-v1");
    EXPECT_EQ(back.at("tallies").at("histogram").at("global_read_bytes")
                  .as_u64(),
              u64{1} << 40);
    EXPECT_EQ(back.at("records").at(2).at(0).as_string(), "deep");
  }
}

TEST(Json, ExactIntegerRoundTrip) {
  // u64 counters must survive bit-for-bit — the whole reason kInt/kUint
  // exist separately from kDouble.
  const u64 big = std::numeric_limits<u64>::max();
  const i64 small = std::numeric_limits<i64>::min();
  obs::Json j = obs::Json::object();
  j.set("umax", big).set("imin", small);
  const obs::Json back = obs::Json::parse(j.dump());
  EXPECT_EQ(back.at("umax").as_u64(), big);
  EXPECT_EQ(back.at("imin").as_i64(), small);
}

TEST(Json, DoubleRoundTrip) {
  for (double v : {0.0, -1.5, 1e-300, 6.02214076e23, 0.1, 1.0 / 3.0}) {
    const obs::Json back = obs::Json::parse(obs::Json(v).dump());
    EXPECT_DOUBLE_EQ(back.as_double(), v);
  }
  // Non-finite values have no JSON representation; they serialize as null.
  EXPECT_EQ(obs::Json(std::nan("")).dump(), "null");
  EXPECT_EQ(obs::Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  const std::string nasty = "quote\" back\\slash \n\t\r\b\f ctrl\x01 µ☃";
  const obs::Json back = obs::Json::parse(obs::Json(nasty).dump());
  EXPECT_EQ(back.as_string(), nasty);
  EXPECT_EQ(obs::Json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::Json::escape("\n"), "\\n");
  EXPECT_EQ(obs::Json::escape("\x01"), "\\u0001");
}

TEST(Json, ParseUnicodeEscapes) {
  EXPECT_EQ(obs::Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(obs::Json::parse("\"\\u00b5\"").as_string(), "µ");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(obs::Json::parse("\"\\ud83d\\ude00\"").as_string(), "😀");
}

TEST(Json, ParseRejectsMalformed) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "01", "\"unterminated",
        "{\"a\":1,}", "[1 2]", "1 trailing"}) {
    EXPECT_THROW((void)obs::Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, WriteFile) {
  const std::string path = ::testing::TempDir() + "parhuff_json_test.json";
  obs::Json j = obs::Json::object();
  j.set("x", 1);
  obs::write_json_file(path, j);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(obs::Json::parse(ss.str()), j);
  std::remove(path.c_str());
}

// --- MetricsRegistry. --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesStages) {
  obs::MetricsRegistry reg;
  reg.counter_add("c");
  reg.counter_add("c", 4);
  reg.gauge_set("g", 1.5);
  reg.gauge_set("g", 2.5);
  reg.stage_add("s", 0.25);
  reg.stage_add("s", 0.75);
  EXPECT_EQ(reg.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 2.5);
  EXPECT_DOUBLE_EQ(reg.stage("s").seconds, 1.0);
  EXPECT_EQ(reg.stage("s").count, 2u);
  EXPECT_DOUBLE_EQ(reg.stage("s").mean_seconds(), 0.5);
  EXPECT_EQ(reg.counter("absent"), 0u);

  const obs::Json j = reg.to_json();
  EXPECT_EQ(j.at("counters").at("c").as_u64(), 5u);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("g").as_double(), 2.5);
  EXPECT_EQ(j.at("stages").at("s").at("count").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(j.at("stages").at("s").at("mean_seconds").as_double(), 0.5);

  reg.clear();
  EXPECT_EQ(reg.counter("c"), 0u);
  EXPECT_EQ(reg.to_json().at("counters").size(), 0u);
}

TEST(MetricsRegistry, Merge) {
  obs::MetricsRegistry a, b;
  a.counter_add("c", 1);
  b.counter_add("c", 2);
  b.counter_add("only_b", 3);
  b.gauge_set("g", 9.0);
  b.stage_add("s", 0.5);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_EQ(a.counter("only_b"), 3u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);
  EXPECT_EQ(a.stage("s").count, 1u);
}

TEST(MetricsRegistry, ThreadSafeCounters) {
  obs::MetricsRegistry reg;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) reg.counter_add("n");
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.counter("n"), 4000u);
}

TEST(MetricsRegistry, ScopedStageTimer) {
  obs::MetricsRegistry reg;
  { obs::ScopedStageTimer t(reg, "stage"); }
  { obs::ScopedStageTimer t(reg, "stage"); }
  EXPECT_EQ(reg.stage("stage").count, 2u);
  EXPECT_GE(reg.stage("stage").seconds, 0.0);
}

TEST(MetricsRegistry, HistogramQuantilesWithinBucketError) {
  obs::MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.histo_record("lat", static_cast<double>(i) * 1e-3);  // 1ms..100ms
  }
  const obs::HistoStat h = reg.histo("lat");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.min, 1e-3);
  EXPECT_DOUBLE_EQ(h.max, 0.1);
  EXPECT_NEAR(h.mean(), 0.0505, 1e-12);
  // Geometric buckets bound quantile error to ~7.5% of the value.
  EXPECT_NEAR(h.quantile(0.50), 0.050, 0.050 * 0.08);
  EXPECT_NEAR(h.quantile(0.95), 0.095, 0.095 * 0.08);
  EXPECT_NEAR(h.quantile(0.99), 0.099, 0.099 * 0.08);
  // Unknown name: an empty distribution, quantile 0.
  EXPECT_EQ(reg.histo("absent").count, 0u);
  EXPECT_DOUBLE_EQ(reg.histo("absent").quantile(0.5), 0.0);
}

TEST(MetricsRegistry, HistogramClampsOutOfRangeToObservedBounds) {
  obs::MetricsRegistry reg;
  // Below the lowest bucket edge (1e-7): lands in the edge bucket, and the
  // quantile clamps to the observed min/max rather than the bucket mid.
  reg.histo_record("tiny", 5e-9);
  EXPECT_DOUBLE_EQ(reg.histo("tiny").quantile(0.5), 5e-9);
  reg.histo_record("huge", 5e4);  // above the top edge (1e3)
  EXPECT_DOUBLE_EQ(reg.histo("huge").quantile(0.99), 5e4);
}

TEST(MetricsRegistry, HistogramMergeAndJson) {
  obs::MetricsRegistry a, b;
  a.histo_record("x", 1.0);
  b.histo_record("x", 4.0);
  b.histo_record("only_b", 2.0);
  a.merge(b);
  const obs::HistoStat h = a.histo("x");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 5.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 4.0);
  EXPECT_EQ(a.histo("only_b").count, 1u);

  const obs::Json j = a.to_json();
  const obs::Json& hx = j.at("histograms").at("x");
  EXPECT_EQ(hx.at("count").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(hx.at("sum").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(hx.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(hx.at("max").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(hx.at("mean").as_double(), 2.5);
  EXPECT_TRUE(hx.has("p50"));
  EXPECT_TRUE(hx.has("p95"));
  EXPECT_TRUE(hx.has("p99"));

  a.clear();
  EXPECT_EQ(a.histo("x").count, 0u);
}

// --- TraceRecorder: Chrome trace_event shape. --------------------------------

TEST(Trace, ExportsValidTraceEventJson) {
  obs::TraceRecorder rec;
  rec.enable();
  const double t0 = rec.now_us();
  rec.complete("span_a", "cat1", t0, 125.0);
  rec.instant("mark_b", "cat2");
  {
    obs::TraceSpan span("unarmed", "cat3");  // global recorder is off here
  }
  rec.disable();
  rec.complete("after_disable", "cat1", t0, 1.0);  // must be dropped

  const obs::Json doc = obs::Json::parse(rec.to_json().dump());
  ASSERT_TRUE(doc.has("traceEvents"));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").elements();
  // Metadata event + the two recorded events; nothing after disable().
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("ph").as_string(), "M");
  EXPECT_EQ(events[0].at("name").as_string(), "process_name");

  const obs::Json& x = events[1];
  EXPECT_EQ(x.at("name").as_string(), "span_a");
  EXPECT_EQ(x.at("cat").as_string(), "cat1");
  EXPECT_EQ(x.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(x.at("dur").as_double(), 125.0);
  EXPECT_GE(x.at("ts").as_double(), 0.0);
  EXPECT_TRUE(x.has("pid"));
  EXPECT_TRUE(x.has("tid"));

  const obs::Json& i = events[2];
  EXPECT_EQ(i.at("ph").as_string(), "i");
  EXPECT_EQ(i.at("s").as_string(), "t");
}

TEST(Trace, SpanRecordsIntoGlobalWhenEnabled) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  {
    obs::TraceSpan span("test.span", "test");
  }
  rec.disable();
  EXPECT_EQ(rec.event_count(), 1u);
  const obs::Json doc = rec.to_json();
  bool found = false;
  for (const obs::Json& e : doc.at("traceEvents").elements()) {
    if (e.at("name").as_string() == "test.span") {
      found = true;
      EXPECT_EQ(e.at("cat").as_string(), "test");
      EXPECT_GE(e.at("dur").as_double(), 0.0);
    }
  }
  EXPECT_TRUE(found);
  rec.clear();
}

TEST(Trace, PipelineEmitsStageSpans) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  const auto input = data::generate_text(64 * 1024, 3);
  PipelineConfig cfg;
  cfg.nbins = 256;
  const auto blob = compress<u8>(input, cfg);
  (void)decompress(blob);
  rec.disable();

  std::vector<std::string> names;
  const obs::Json doc = rec.to_json();  // keep the temporary alive
  for (const obs::Json& e : doc.at("traceEvents").elements()) {
    names.push_back(e.at("name").as_string());
  }
  for (const char* want :
       {"pipeline.compress", "pipeline.histogram", "pipeline.codebook",
        "pipeline.encode", "pipeline.decompress", "simt.coop_grid"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing span " << want;
  }
  rec.clear();
}

// --- PipelineReport → metrics projection. ------------------------------------

TEST(Report, PipelineReportToJsonIsLossless) {
  const auto input = data::generate_text(256 * 1024, 7);
  PipelineConfig cfg;
  cfg.nbins = 256;
  PipelineReport rep;
  const auto blob = compress<u8>(input, cfg, &rep);
  ASSERT_EQ(decompress(blob), input);

  const obs::Json j = obs::Json::parse(obs::to_json(rep).dump());

  EXPECT_DOUBLE_EQ(j.at("stages").at("histogram").at("seconds").as_double(),
                   rep.hist_seconds);
  EXPECT_DOUBLE_EQ(j.at("stages").at("codebook").at("seconds").as_double(),
                   rep.codebook_seconds);
  EXPECT_DOUBLE_EQ(j.at("stages").at("encode").at("seconds").as_double(),
                   rep.encode_seconds);
  // Every MemTally counter appears verbatim; spot-check the busiest ones
  // and verify the key set matches the struct field-for-field.
  const obs::Json& enc = j.at("stages").at("encode").at("tally");
  EXPECT_EQ(enc.at("global_read_bytes").as_u64(),
            rep.encode_tally.global_read_bytes);
  EXPECT_EQ(enc.at("block_syncs").as_u64(), rep.encode_tally.block_syncs);
  EXPECT_EQ(enc.at("kernel_launches").as_u64(),
            rep.encode_tally.kernel_launches);
  EXPECT_EQ(enc.size(), 15u) << "MemTally gained/lost a counter — update "
                                "obs::to_json(MemTally) and this test";
  EXPECT_DOUBLE_EQ(j.at("entropy_bits").as_double(), rep.entropy_bits);
  EXPECT_DOUBLE_EQ(j.at("avg_bits").as_double(), rep.avg_bits);
  EXPECT_EQ(j.at("reduce_factor").as_u64(), rep.reduce_factor);
  EXPECT_EQ(j.at("input_bytes").as_u64(), rep.input_bytes);
  EXPECT_EQ(j.at("compressed_bytes").as_u64(), rep.compressed_bytes);
  EXPECT_DOUBLE_EQ(j.at("compression_ratio").as_double(),
                   rep.compression_ratio());
  EXPECT_EQ(j.at("reduce_shuffle").at("reduce_iterations").as_u64(),
            rep.rs.reduce_iterations);
  EXPECT_EQ(j.at("codebook_stats").at("rounds").as_u64(), rep.cb_stats.rounds);
}

TEST(Report, ModeledJsonPricesEveryStage) {
  const auto input = data::generate_text(128 * 1024, 9);
  PipelineConfig cfg;
  cfg.nbins = 256;
  PipelineReport rep;
  (void)compress<u8>(input, cfg, &rep);

  const auto v100 = simt::DeviceSpec::v100();
  const obs::Json m = obs::modeled_json(rep, {&v100});
  ASSERT_TRUE(m.has("V100"));
  const obs::Json& d = m.at("V100");
  EXPECT_GT(d.at("total_s").as_double(), 0.0);
  EXPECT_GT(d.at("overall_gbps").as_double(), 0.0);
  for (const char* stage : {"histogram", "codebook", "encode"}) {
    const obs::Json& b = d.at(stage);
    // total_s must reproduce GpuTimeBreakdown::total(): dram/shared/compute
    // overlap (max), the rest serialize (docs/model.md terms).
    const double overlapped =
        std::max({b.at("dram_s").as_double(), b.at("shared_s").as_double(),
                  b.at("compute_s").as_double()});
    const double expected = b.at("launch_s").as_double() +
                            b.at("sync_s").as_double() + overlapped +
                            b.at("atomic_s").as_double() +
                            b.at("serial_s").as_double();
    EXPECT_NEAR(b.at("total_s").as_double(), expected, 1e-12) << stage;
  }
}

TEST(Report, PublishFillsRegistry) {
  const auto input = data::generate_text(64 * 1024, 5);
  PipelineConfig cfg;
  cfg.nbins = 256;
  PipelineReport rep;
  (void)compress<u8>(input, cfg, &rep);

  obs::MetricsRegistry reg;
  obs::publish(reg, rep);
  EXPECT_EQ(reg.counter("pipeline.runs"), 1u);
  EXPECT_EQ(reg.counter("pipeline.input_bytes"), rep.input_bytes);
  EXPECT_EQ(reg.counter("pipeline.histogram.global_read_bytes"),
            rep.hist_tally.global_read_bytes);
  EXPECT_EQ(reg.stage("pipeline.encode").count, 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("pipeline.last.avg_bits"), rep.avg_bits);
}

TEST(Report, CompressPublishesToGlobalRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  reg.clear();
  const auto input = data::generate_text(64 * 1024, 11);
  PipelineConfig cfg;
  cfg.nbins = 256;
  (void)compress<u8>(input, cfg);
  EXPECT_EQ(reg.counter("pipeline.runs"), 1u);
  EXPECT_GT(reg.counter("simt.kernel_launches"), 0u);
  EXPECT_GT(reg.counter("simt.grid_syncs"), 0u);
  reg.clear();
}

// --- MetricsDocument: the versioned envelope. ---------------------------------

TEST(Report, MetricsDocumentSchema) {
  obs::MetricsRegistry reg;
  reg.counter_add("k", 42);
  obs::MetricsDocument doc("test_doc");
  doc.config().set("param", 1);
  doc.add_record(obs::Json::object().set("case", "a"));
  doc.add_record(obs::Json::object().set("case", "b"));
  EXPECT_EQ(doc.record_count(), 2u);

  const obs::Json j = obs::Json::parse(doc.to_json(reg).dump(2));
  EXPECT_EQ(j.at("schema").as_string(), "parhuff-metrics-v1");
  EXPECT_EQ(j.at("name").as_string(), "test_doc");
  EXPECT_EQ(j.at("config").at("param").as_i64(), 1);
  EXPECT_EQ(j.at("records").size(), 2u);
  EXPECT_EQ(j.at("records").at(1).at("case").as_string(), "b");
  EXPECT_EQ(j.at("metrics").at("counters").at("k").as_u64(), 42u);
}

TEST(Report, KindNamesCoverEveryEnum) {
  EXPECT_STREQ(obs::kind_name(HistogramKind::kSimt), "simt");
  EXPECT_STREQ(obs::kind_name(CodebookKind::kParallelSimt), "parallel_simt");
  EXPECT_STREQ(obs::kind_name(EncoderKind::kReduceShuffleSimt),
               "reduceshuffle_simt");
  const obs::Json c = obs::to_json(PipelineConfig{});
  EXPECT_TRUE(c.at("reduce_factor").is_null());  // unset optional → null
  EXPECT_EQ(c.at("histogram").as_string(), "simt");
}

}  // namespace
}  // namespace parhuff
